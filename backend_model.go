package optsched

import (
	"context"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
)

// modelBackend runs the scenario on the bare scheduler model: tasks are
// placed on their cores' runqueues and balancing rounds execute until
// the machine is work-conserved (or the round cap strikes). This is the
// substrate the proof obligations quantify over, so a verified policy
// converging here is exactly what the verifier promised.
type modelBackend struct{}

// Name implements Backend.
func (modelBackend) Name() string { return "model" }

// Execute implements Backend. Arrival times and per-task work are
// ignored — the model has no clock; what it measures is balancing
// behavior: rounds to convergence, tasks migrated, failed optimistic
// attempts, and the final load vector. Fault events fire at balancing
// round boundaries: an event with At == r is applied before round r
// runs, exactly the semantics the fault obligations quantify over.
func (b modelBackend) Execute(ctx context.Context, c *Cluster, sc Scenario, cores int, groups []int) (*Result, error) {
	start := time.Now()
	m := sched.NewMachine(cores)
	for id, g := range groups {
		m.Core(id).Group = g
		m.Core(id).Node = g
	}
	for _, batch := range sc.Batches {
		for i := 0; i < batch.Tasks; i++ {
			m.Spawn(batch.Core%cores, batch.weight())
		}
	}
	p := c.NewPolicy()
	rng := sim.NewRNG(c.Seed())
	faults := c.faultSchedule(sc)

	res := newResult(b, c, sc, cores)
	for res.Rounds < int64(c.maxRounds) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Apply every fault event due at this round index. While events
		// are still pending the machine's shape is not final, so neither
		// conservation nor a stuck round may end the run early.
		for len(faults) > 0 && faults[0].At <= res.Rounds {
			ev := faults[0]
			faults = faults[1:]
			core := ev.Core % cores
			if ev.Revive {
				m.ReviveCore(core)
			} else {
				m.FailCore(core)
				res.FaultRescued += int64(sched.Rescue(p, m, core))
			}
			res.Faults++
		}
		if len(faults) == 0 && m.WorkConserved() {
			break
		}
		var rr sched.RoundResult
		if c.Sequential() {
			rr = sched.SequentialRound(p, m)
		} else {
			rr = sched.ConcurrentRound(p, m, rng.Perm(cores))
		}
		res.Rounds++
		res.Steals += int64(rr.TasksMoved())
		res.StealFails += int64(rr.Failures())
		if rr.TasksMoved() == 0 && len(faults) == 0 {
			break // stuck: no steal possible, conserved or not
		}
	}
	res.Converged = m.WorkConserved()
	res.Orphaned = int64(len(m.Orphans()))
	res.FinalLoads = m.Loads()
	res.Wall = time.Since(start)
	return res, nil
}
