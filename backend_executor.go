package optsched

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
)

// executorBackend runs the scenario on the real work-stealing goroutine
// pool: one worker per core, lock-free selection over published load
// counters, locked re-validated steals — the verified protocol under
// actual Go concurrency.
type executorBackend struct{}

// Name implements Backend.
func (executorBackend) Name() string { return "executor" }

// Execute implements Backend. Batch arrival times are ignored (all work
// is submitted up front — submission is the arrival) and each task
// occupies its worker for Work microseconds of real time. Fault events
// fire after At microseconds of wall time, fail-stopping and reviving
// workers while the run drains; a schedule that strands tasks forever
// (rescue-less policy, no revive) blocks completion until ctx fires. On
// cancellation the pool is closed and drains its remaining queue in the
// background; the run's error is ctx's.
func (b executorBackend) Execute(ctx context.Context, c *Cluster, sc Scenario, cores int, groups []int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	pool := engine.NewPool(cores, func() sched.Policy { return c.NewPolicy() },
		engine.Options{Groups: groups})
	if faults := c.faultSchedule(sc); len(faults) > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for _, ev := range faults {
				if d := time.Duration(ev.At)*time.Microsecond - time.Since(start); d > 0 {
					select {
					case <-time.After(d):
					case <-stop:
						return
					}
				}
				// The schedule was validated against an online-state replay,
				// but wall time may interleave events with chaos self-kills;
				// a refused kill/revive is a no-op, like a failed steal.
				if ev.Revive {
					pool.Revive(ev.Core % cores)
				} else {
					pool.Kill(ev.Core % cores)
				}
			}
		}()
	}
	for _, batch := range sc.Batches {
		if err := ctx.Err(); err != nil {
			pool.Close()
			return nil, err
		}
		d := time.Duration(batch.work()) * time.Microsecond
		for i := 0; i < batch.Tasks; i++ {
			pool.SubmitTo(batch.Core%cores, func() { time.Sleep(d) })
		}
	}
	pool.Close()

	done := make(chan struct{})
	go func() {
		pool.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	st := pool.Stats()
	res := newResult(b, c, sc, cores)
	res.Completed = st.Executed
	res.Steals = st.Steals
	res.StealFails = st.StealFails
	res.Faults = st.Kills + st.Revives
	res.FaultRescued = st.Rescued
	res.Orphaned = st.Orphaned
	res.Converged = res.Completed >= int64(res.Tasks)
	res.Wall = time.Since(start)
	return res, nil
}
