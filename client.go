package optsched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/verify"
)

// Incremental verification service types (see internal/service). The
// daemon itself is cmd/schedverifyd; NewVerifyService embeds the same
// engine in-process.
type (
	// VerifyRequest is one submission to the verification service: a
	// policy by registered name or as DSL source, an optional universe
	// and an optional obligation subset.
	VerifyRequest = service.Request
	// VerifyUniverse is the wire form of a bounded universe.
	VerifyUniverse = service.UniverseSpec
	// VerifyStats is the service's /v1/stats snapshot: cache hit/miss
	// counters, queue depth, per-obligation checker latency and — when
	// the daemon runs with -data-dir — the durable store's counters.
	VerifyStats = service.Stats
	// VerifyService is the embeddable incremental verifier behind
	// cmd/schedverifyd.
	VerifyService = service.Service
	// VerifyServiceConfig parameterizes a VerifyService.
	VerifyServiceConfig = service.Config
)

// NewVerifyService starts an in-process incremental verifier — the
// engine cmd/schedverifyd serves over HTTP. Close it when done. It
// returns an error only when VerifyServiceConfig.DataDir names an
// unusable durable-store directory (corruption there recovers, it never
// errors).
var NewVerifyService = service.New

// VerifyServiceUniverse converts a Universe to its wire form.
var VerifyServiceUniverse = service.UniverseSpecOf

// ErrCircuitOpen is returned by VerifyClient when its circuit breaker
// is open: enough consecutive request failures (transport errors or
// 5xx responses) that the daemon is presumed down, so calls fail fast
// instead of hammering it. The breaker half-opens after
// BreakerCooldown; a Cluster built with WithVerifyService falls back to
// local in-process verification while the breaker is open.
var ErrCircuitOpen = errors.New("optsched: verify service circuit breaker open")

// VerifyClient talks to a running schedverifyd daemon — the fourth way
// to verify a policy, next to Cluster.Verify, optsched.Verify and the
// schedverify CLI. The zero value is not usable; set BaseURL. A client
// is safe for concurrent use and should be reused: the circuit breaker
// accumulates state across calls.
//
// Verify submits and blocks until a verdict, resiliently:
//
//   - Queued jobs are polled with jittered exponential backoff from
//     PollInterval up to MaxPollInterval, not at a fixed interval.
//   - 429 backpressure honors the server's Retry-After (jittered).
//   - Transport errors and 5xx responses retry with jittered backoff
//     until the circuit breaker opens (BreakerThreshold consecutive
//     failures), after which calls return ErrCircuitOpen immediately
//     until BreakerCooldown elapses and a half-open probe succeeds.
//   - A ctx deadline propagates to the daemon (Request.TimeoutMs), so
//     a queued job dies server-side when its client stops caring.
//
// The returned Report is decoded from the daemon's deterministic JSON
// encoding, so re-encoding it with ReportToJSON reproduces the server's
// bytes exactly.
type VerifyClient struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the initial job-poll spacing (default 25ms); each
	// subsequent poll backs off exponentially with full jitter.
	PollInterval time.Duration
	// MaxPollInterval caps the poll backoff (default 2s).
	MaxPollInterval time.Duration
	// RetryBase is the initial backoff after a failed request
	// (default 100ms); it doubles per consecutive failure, jittered,
	// capped at MaxPollInterval.
	RetryBase time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// half-open probe (default 10s).
	BreakerCooldown time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func (c *VerifyClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *VerifyClient) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 25 * time.Millisecond
}

func (c *VerifyClient) maxPollInterval() time.Duration {
	if c.MaxPollInterval > 0 {
		return c.MaxPollInterval
	}
	return 2 * time.Second
}

func (c *VerifyClient) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 100 * time.Millisecond
}

func (c *VerifyClient) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	return 5
}

func (c *VerifyClient) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 10 * time.Second
}

// backoffDelay is the attempt-th (0-based) delay of an exponential
// backoff from base, capped, with full jitter in [d/2, d): retries from
// many clients spread out instead of thundering in lockstep.
func backoffDelay(attempt int, base, cap time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int64N(int64(half)))
	}
	return d
}

// breakerOpen reports whether calls must fail fast right now. After the
// cooldown it lets one probe through (half-open): the failure count
// stays at the threshold, so the next recordFailure re-opens
// immediately and the next recordSuccess closes fully.
func (c *VerifyClient) breakerOpen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails >= c.breakerThreshold() && time.Now().Before(c.openUntil)
}

// recordFailure counts one failed request and reports whether the
// breaker is now open.
func (c *VerifyClient) recordFailure() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fails++
	if c.fails >= c.breakerThreshold() {
		c.openUntil = time.Now().Add(c.breakerCooldown())
		return true
	}
	return false
}

// BreakerState is a point-in-time snapshot of a VerifyClient's circuit
// breaker, for dashboards and tests (see Cluster.VerifyServiceStatus).
type BreakerState struct {
	// State is "closed" (requests flow), "open" (calls fail fast with
	// ErrCircuitOpen) or "half-open" (the cooldown elapsed; the next
	// call is a probe that fully closes or re-opens the breaker).
	State string
	// ConsecutiveFailures is the current run of failed requests; it
	// resets to zero on any success.
	ConsecutiveFailures int
}

// Breaker returns the circuit breaker's current state. The snapshot is
// advisory — the breaker may transition immediately after.
func (c *VerifyClient) Breaker() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := BreakerState{ConsecutiveFailures: c.fails}
	switch {
	case c.fails < c.breakerThreshold():
		st.State = "closed"
	case time.Now().Before(c.openUntil):
		st.State = "open"
	default:
		st.State = "half-open"
	}
	return st
}

func (c *VerifyClient) recordSuccess() {
	c.mu.Lock()
	c.fails = 0
	c.openUntil = time.Time{}
	c.mu.Unlock()
}

// Verify submits req and blocks until the daemon produces a report,
// honoring ctx throughout (a cancelled poll loop also cancels the
// remote job — queued work is not left behind). See the type comment
// for the retry, backoff and circuit-breaker behavior.
func (c *VerifyClient) Verify(ctx context.Context, req VerifyRequest) (*Report, error) {
	if deadline, ok := ctx.Deadline(); ok && req.TimeoutMs == 0 {
		if remain := time.Until(deadline); remain > 0 {
			req.TimeoutMs = int64(remain / time.Millisecond)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("optsched: encoding verify request: %w", err)
	}
	attempt := 0
	for {
		if c.breakerOpen() {
			return nil, fmt.Errorf("%w (%s)", ErrCircuitOpen, c.BaseURL)
		}
		resp, err := c.do(ctx, http.MethodPost, "/v1/verify", body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			if c.recordFailure() {
				return nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, err)
			}
			if err := sleepCtx(ctx, backoffDelay(attempt, c.retryBase(), c.maxPollInterval())); err != nil {
				return nil, err
			}
			attempt++
			continue
		}
		switch {
		case resp.code == http.StatusOK:
			c.recordSuccess()
			return decodeReport(resp.envelope)
		case resp.code == http.StatusAccepted:
			c.recordSuccess()
			return c.poll(ctx, resp.envelope.Poll, resp.envelope.JobID)
		case resp.code == http.StatusTooManyRequests:
			// Backpressure is health, not failure: obey the server's
			// Retry-After (plus jitter so resubmissions spread out) and
			// leave the breaker alone.
			if err := sleepCtx(ctx, jitter(resp.retryAfter)); err != nil {
				return nil, err
			}
			continue
		case resp.code >= 500:
			if c.recordFailure() {
				return nil, fmt.Errorf("%w (last response: %s)", ErrCircuitOpen, resp.errMsg())
			}
			if err := sleepCtx(ctx, backoffDelay(attempt, c.retryBase(), c.maxPollInterval())); err != nil {
				return nil, err
			}
			attempt++
			continue
		default:
			// 4xx: the request itself is bad; retrying cannot help.
			return nil, fmt.Errorf("optsched: verify service: %s", resp.errMsg())
		}
	}
}

// jitter spreads d over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// poll drives one queued job to completion with jittered exponential
// backoff between polls.
func (c *VerifyClient) poll(ctx context.Context, pollURL, jobID string) (*Report, error) {
	if pollURL == "" {
		pollURL = "/v1/jobs/" + jobID
	}
	attempt := 0
	for {
		if err := sleepCtx(ctx, backoffDelay(attempt, c.pollInterval(), c.maxPollInterval())); err != nil {
			c.cancelRemote(pollURL)
			return nil, err
		}
		attempt++
		if c.breakerOpen() {
			c.cancelRemote(pollURL)
			return nil, fmt.Errorf("%w (abandoning job %s)", ErrCircuitOpen, jobID)
		}
		resp, err := c.do(ctx, http.MethodGet, pollURL, nil)
		if err != nil {
			if ctx.Err() != nil {
				c.cancelRemote(pollURL)
				return nil, err
			}
			if c.recordFailure() {
				c.cancelRemote(pollURL)
				return nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, err)
			}
			continue
		}
		switch {
		case resp.code >= 500:
			if c.recordFailure() {
				c.cancelRemote(pollURL)
				return nil, fmt.Errorf("%w (last response: %s)", ErrCircuitOpen, resp.errMsg())
			}
			continue
		case resp.code != http.StatusOK:
			return nil, fmt.Errorf("optsched: verify service: %s", resp.errMsg())
		}
		c.recordSuccess()
		switch resp.envelope.Status {
		case string(service.JobDone):
			return decodeReport(resp.envelope)
		case string(service.JobCancelled):
			return nil, fmt.Errorf("optsched: verify job %s cancelled: %s", jobID, resp.envelope.Error)
		}
	}
}

// cancelRemote best-effort cancels an abandoned job so queued work is
// not left behind.
func (c *VerifyClient) cancelRemote(pollURL string) {
	cancelCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	c.do(cancelCtx, http.MethodDelete, pollURL, nil)
	cancel()
}

// Stats fetches the daemon's counter snapshot.
func (c *VerifyClient) Stats(ctx context.Context) (*VerifyStats, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("optsched: verify service stats: HTTP %d", httpResp.StatusCode)
	}
	var st VerifyStats
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("optsched: decoding stats: %w", err)
	}
	return &st, nil
}

// FlushCache performs the daemon's admin cache flush (DELETE /v1/cache)
// and returns how many memoized results were dropped.
func (c *VerifyClient) FlushCache(ctx context.Context) (int, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/cache", nil)
	if err != nil {
		return 0, err
	}
	var out struct {
		Flushed int    `json:"flushed"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(resp.raw, &out); err != nil || resp.code != http.StatusOK {
		return out.Flushed, fmt.Errorf("optsched: cache flush: %s", resp.errMsg())
	}
	return out.Flushed, nil
}

// clientResp is one decoded daemon response.
type clientResp struct {
	code       int
	envelope   service.SubmitResponse
	retryAfter time.Duration
	raw        []byte
	rawError   string
}

func (r *clientResp) errMsg() string {
	if r.envelope.Error != "" {
		return r.envelope.Error
	}
	if r.rawError != "" {
		return r.rawError
	}
	return fmt.Sprintf("HTTP %d", r.code)
}

func (c *VerifyClient) do(ctx context.Context, method, path string, body []byte) (*clientResp, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	httpReq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		httpReq.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("optsched: verify service unreachable: %w", err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	resp := &clientResp{code: httpResp.StatusCode, raw: data}
	if ra := httpResp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			resp.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.retryAfter == 0 {
		resp.retryAfter = time.Second
	}
	if err := json.Unmarshal(data, &resp.envelope); err != nil {
		// Error responses are {"error": "..."} maps, which also land in
		// envelope.Error; anything else is reported raw.
		resp.rawError = string(data)
	}
	return resp, nil
}

// decodeReport extracts the report from a done envelope.
func decodeReport(env service.SubmitResponse) (*Report, error) {
	if len(env.Report) == 0 {
		return nil, fmt.Errorf("optsched: verify service sent a done response without a report")
	}
	return verify.ReportFromJSON(env.Report)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Report JSON codec: the deterministic encoding shared by the daemon,
// the client and `schedverify -json`.
var (
	// ReportToJSON renders a report in the service's canonical JSON form;
	// equal reports always produce byte-identical documents.
	ReportToJSON = verify.ReportJSON
	// ReportFromJSON is its inverse.
	ReportFromJSON = verify.ReportFromJSON
)
