package optsched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/service"
	"repro/internal/verify"
)

// Incremental verification service types (see internal/service). The
// daemon itself is cmd/schedverifyd; NewVerifyService embeds the same
// engine in-process.
type (
	// VerifyRequest is one submission to the verification service: a
	// policy by registered name or as DSL source, an optional universe
	// and an optional obligation subset.
	VerifyRequest = service.Request
	// VerifyUniverse is the wire form of a bounded universe.
	VerifyUniverse = service.UniverseSpec
	// VerifyStats is the service's /v1/stats snapshot: cache hit/miss
	// counters, queue depth and per-obligation checker latency.
	VerifyStats = service.Stats
	// VerifyService is the embeddable incremental verifier behind
	// cmd/schedverifyd.
	VerifyService = service.Service
	// VerifyServiceConfig parameterizes a VerifyService.
	VerifyServiceConfig = service.Config
)

// NewVerifyService starts an in-process incremental verifier — the
// engine cmd/schedverifyd serves over HTTP. Close it when done.
var NewVerifyService = service.New

// VerifyServiceUniverse converts a Universe to its wire form.
var VerifyServiceUniverse = service.UniverseSpecOf

// VerifyClient talks to a running schedverifyd daemon — the fourth way
// to verify a policy, next to Cluster.Verify, optsched.Verify and the
// schedverify CLI. The zero value is not usable; set BaseURL.
//
// Verify submits and blocks until a verdict: memoized submissions
// return on the first round trip, queued jobs are polled at
// PollInterval, and 429 backpressure responses are retried after the
// server's advertised Retry-After delay. The returned Report is decoded
// from the daemon's deterministic JSON encoding, so re-encoding it with
// ReportToJSON reproduces the server's bytes exactly.
type VerifyClient struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the job-poll spacing (default 25ms).
	PollInterval time.Duration
}

func (c *VerifyClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *VerifyClient) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 25 * time.Millisecond
}

// Verify submits req and blocks until the daemon produces a report,
// honoring ctx throughout (a cancelled poll loop also cancels the
// remote job — queued work is not left behind).
func (c *VerifyClient) Verify(ctx context.Context, req VerifyRequest) (*Report, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("optsched: encoding verify request: %w", err)
	}
	for {
		resp, err := c.do(ctx, http.MethodPost, "/v1/verify", body)
		if err != nil {
			return nil, err
		}
		switch resp.code {
		case http.StatusOK:
			return decodeReport(resp.envelope)
		case http.StatusAccepted:
			return c.poll(ctx, resp.envelope.Poll, resp.envelope.JobID)
		case http.StatusTooManyRequests:
			if err := sleepCtx(ctx, resp.retryAfter); err != nil {
				return nil, err
			}
			continue
		default:
			return nil, fmt.Errorf("optsched: verify service: %s", resp.errMsg())
		}
	}
}

// poll drives one queued job to completion.
func (c *VerifyClient) poll(ctx context.Context, pollURL, jobID string) (*Report, error) {
	if pollURL == "" {
		pollURL = "/v1/jobs/" + jobID
	}
	for {
		if err := sleepCtx(ctx, c.pollInterval()); err != nil {
			// Best-effort remote cancellation; the poller is gone either way.
			cancelCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			c.do(cancelCtx, http.MethodDelete, pollURL, nil)
			cancel()
			return nil, err
		}
		resp, err := c.do(ctx, http.MethodGet, pollURL, nil)
		if err != nil {
			return nil, err
		}
		if resp.code != http.StatusOK {
			return nil, fmt.Errorf("optsched: verify service: %s", resp.errMsg())
		}
		switch resp.envelope.Status {
		case string(service.JobDone):
			return decodeReport(resp.envelope)
		case string(service.JobCancelled):
			return nil, fmt.Errorf("optsched: verify job %s cancelled: %s", jobID, resp.envelope.Error)
		}
	}
}

// Stats fetches the daemon's counter snapshot.
func (c *VerifyClient) Stats(ctx context.Context) (*VerifyStats, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("optsched: verify service stats: HTTP %d", httpResp.StatusCode)
	}
	var st VerifyStats
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("optsched: decoding stats: %w", err)
	}
	return &st, nil
}

// clientResp is one decoded daemon response.
type clientResp struct {
	code       int
	envelope   service.SubmitResponse
	retryAfter time.Duration
	rawError   string
}

func (r *clientResp) errMsg() string {
	if r.envelope.Error != "" {
		return r.envelope.Error
	}
	if r.rawError != "" {
		return r.rawError
	}
	return fmt.Sprintf("HTTP %d", r.code)
}

func (c *VerifyClient) do(ctx context.Context, method, path string, body []byte) (*clientResp, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	httpReq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		httpReq.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("optsched: verify service unreachable: %w", err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	resp := &clientResp{code: httpResp.StatusCode}
	if ra := httpResp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			resp.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.retryAfter == 0 {
		resp.retryAfter = time.Second
	}
	if err := json.Unmarshal(data, &resp.envelope); err != nil {
		// Error responses are {"error": "..."} maps, which also land in
		// envelope.Error; anything else is reported raw.
		resp.rawError = string(data)
	}
	return resp, nil
}

// decodeReport extracts the report from a done envelope.
func decodeReport(env service.SubmitResponse) (*Report, error) {
	if len(env.Report) == 0 {
		return nil, fmt.Errorf("optsched: verify service sent a done response without a report")
	}
	return verify.ReportFromJSON(env.Report)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Report JSON codec: the deterministic encoding shared by the daemon,
// the client and `schedverify -json`.
var (
	// ReportToJSON renders a report in the service's canonical JSON form;
	// equal reports always produce byte-identical documents.
	ReportToJSON = verify.ReportJSON
	// ReportFromJSON is its inverse.
	ReportFromJSON = verify.ReportFromJSON
)
