// Package optsched is a Go reproduction of "Towards Proving Optimistic
// Multicore Schedulers" (Lepers et al., HotOS 2017): a multicore
// scheduler model built on the paper's three-step load-balancing
// abstraction (Filter → Choose → Steal), a bounded model checker that
// stands in for the paper's Leon verifier, a policy DSL with execution
// and code-generation backends, a discrete-event simulator reproducing
// the wasted-cores motivation, and a real work-stealing executor running
// the verified protocol.
//
// This top-level package is the curated public surface: it re-exports
// the library's main entry points so downstream users can write
//
//	m := optsched.MachineFromLoads(0, 1, 2)
//	p := optsched.NewDelta2()
//	report := optsched.Verify("delta2", func() optsched.Policy { return optsched.NewDelta2() })
//
// without importing the internal packages individually. The full
// surface (simulator, workloads, DSL, executor) lives in the internal
// packages, documented in README.md.
package optsched

import (
	"repro/internal/dsl"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/topology"
	"repro/internal/verify"
)

// Core model types (see internal/sched).
type (
	// Task is a schedulable entity with an identity and load weight.
	Task = sched.Task
	// Core is one CPU's scheduling state: current task plus runqueue.
	Core = sched.Core
	// Machine is the global state: one Core per CPU.
	Machine = sched.Machine
	// Policy is the paper's three-step policy abstraction.
	Policy = sched.Policy
	// FuncPolicy assembles a Policy from closures.
	FuncPolicy = sched.FuncPolicy
	// RoundResult reports one balancing round's attempts.
	RoundResult = sched.RoundResult
	// Attempt is one core's participation in a round.
	Attempt = sched.Attempt
)

// Verification types (see internal/verify).
type (
	// Report aggregates proof-obligation results for one policy.
	Report = verify.Report
	// ObligationID names one proof obligation.
	ObligationID = verify.ObligationID
	// Universe bounds the state space the checker quantifies over.
	Universe = statespace.Universe
	// VerifyConfig parameterizes a verification run.
	VerifyConfig = verify.Config
)

// Topology types (see internal/topology).
type (
	// Topology describes NUMA nodes and scheduling domains.
	Topology = topology.Topology
)

// Machine construction.
var (
	// NewMachine returns n empty cores.
	NewMachine = sched.NewMachine
	// MachineFromLoads builds a machine from per-core thread counts.
	MachineFromLoads = sched.MachineFromLoads
)

// Round execution: the three steps of Figure 1.
var (
	// Select runs steps 1-2 (lock-free filter + choice).
	Select = sched.Select
	// Steal runs step 3 (locked, re-validated migration).
	Steal = sched.Steal
	// SequentialRound executes a §4.2 non-overlapping round.
	SequentialRound = sched.SequentialRound
	// ConcurrentRound executes a §3.1 optimistic round with the given
	// adversarial steal order.
	ConcurrentRound = sched.ConcurrentRound
	// PairwiseImbalance computes the §4.3 potential function d.
	PairwiseImbalance = sched.PairwiseImbalance
)

// Built-in policies.
var (
	// NewDelta2 is Listing 1's simple balancer (proved work-conserving).
	NewDelta2 = policy.NewDelta2
	// NewWeighted is the niceness-weighted balancer (proved).
	NewWeighted = policy.NewWeighted
	// NewGreedyBuggy is the §4.3 counterexample (refuted: livelock).
	NewGreedyBuggy = policy.NewGreedyBuggy
	// NewCFSGroupBuggy models the Lozi et al. group-imbalance bug
	// (refuted: fails Lemma 1).
	NewCFSGroupBuggy = policy.NewCFSGroupBuggy
	// NewHierarchical is the §5 two-level balancer (proved).
	NewHierarchical = policy.NewHierarchical
	// NewNUMAAware is Delta2 with a locality-preferring choice step.
	NewNUMAAware = policy.NewNUMAAware
	// NewPolicy looks up a built-in policy by name.
	NewPolicy = policy.New
	// PolicyNames lists the built-in policies.
	PolicyNames = policy.Names
)

// Topologies.
var (
	// FlatTopology is a single-node machine.
	FlatTopology = topology.Flat
	// NUMATopology builds nodes × perNode cores.
	NUMATopology = topology.NUMA
)

// Verification entry points.
var (
	// Verify checks a policy against every proof obligation over the
	// default bounded universe.
	Verify = func(name string, factory func() Policy) *Report {
		return verify.Policy(name, factory, verify.Config{})
	}
	// VerifyWith checks with an explicit configuration.
	VerifyWith = verify.Policy
	// DefaultUniverse is the verifier's default bounded state space.
	DefaultUniverse = verify.DefaultUniverse
)

// DSL entry points.
var (
	// ParsePolicy parses and type-checks DSL source.
	ParsePolicy = dsl.Parse
	// CompilePolicy turns DSL source into an executable Policy.
	CompilePolicy = dsl.CompileSource
	// GeneratePolicyGo emits Go source for a parsed DSL policy.
	GeneratePolicyGo = dsl.Generate
)

// Simulation types and entry points (see internal/sim for the full
// workload API).
type (
	// Simulator is the discrete-event multicore simulator.
	Simulator = sim.Simulator
	// SimConfig parameterizes a simulation.
	SimConfig = sim.Config
	// SimStats is the measurement snapshot of a run.
	SimStats = sim.Stats
)

// NewSimulator builds a simulator.
var NewSimulator = sim.New
