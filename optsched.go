// Package optsched is a Go reproduction of "Towards Proving Optimistic
// Multicore Schedulers" (Lepers et al., HotOS 2017): a multicore
// scheduler model built on the paper's three-step load-balancing
// abstraction (Filter → Choose → Steal), a bounded model checker that
// stands in for the paper's Leon verifier, a policy DSL with execution
// and code-generation backends, a discrete-event simulator reproducing
// the wasted-cores motivation, and a real work-stealing executor running
// the verified protocol.
//
// This top-level package is the curated public surface. The session API
// is the Cluster facade: configure one (policy, topology, backend)
// triple with functional options, then run any scenario on any
// execution substrate and verify the policy's proof obligations —
//
//	c, err := optsched.New(
//	    optsched.WithPolicy("delta2"),
//	    optsched.WithTopology(optsched.NUMATopology(2, 4)),
//	    optsched.WithBackend(optsched.BackendSim),
//	)
//	res, err := c.Run(ctx, optsched.SkewedScenario("burst", 400, 1500))
//	rep, err := c.Verify(ctx)
//
// The same Cluster.Run call executes the scenario on the bare model
// (BackendModel), the discrete-event simulator (BackendSim) or the real
// work-stealing executor (BackendExecutor), returning one common Result
// type — the paper's "prove once, run anywhere" claim as an API.
//
// The model-level types and round primitives below remain exported for
// direct use; the full surface (simulator behaviors, workloads, DSL,
// executor) lives in the internal packages, documented in README.md.
package optsched

import (
	"repro/internal/dsl"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Core model types (see internal/sched).
type (
	// Task is a schedulable entity with an identity and load weight.
	Task = sched.Task
	// Core is one CPU's scheduling state: current task plus runqueue.
	Core = sched.Core
	// Machine is the global state: one Core per CPU.
	Machine = sched.Machine
	// Policy is the paper's three-step policy abstraction.
	Policy = sched.Policy
	// FuncPolicy assembles a Policy from closures.
	FuncPolicy = sched.FuncPolicy
	// RoundResult reports one balancing round's attempts.
	RoundResult = sched.RoundResult
	// Attempt is one core's participation in a round.
	Attempt = sched.Attempt
	// Rescuer is the optional Policy extension that re-homes tasks
	// orphaned by fail-stop core faults (see FaultEvent, WithFaults and
	// the DSL's rescue clause).
	Rescuer = sched.Rescuer
)

// Verification types (see internal/verify).
type (
	// Report aggregates proof-obligation results for one policy.
	Report = verify.Report
	// ObligationID names one proof obligation.
	ObligationID = verify.ObligationID
	// Universe bounds the state space the checker quantifies over.
	Universe = statespace.Universe
	// VerifyConfig parameterizes a verification run.
	VerifyConfig = verify.Config
)

// Topology types (see internal/topology).
type (
	// Topology describes NUMA nodes and scheduling domains.
	Topology = topology.Topology
)

// Machine construction.
var (
	// NewMachine returns n empty cores.
	NewMachine = sched.NewMachine
	// MachineFromLoads builds a machine from per-core thread counts.
	MachineFromLoads = sched.MachineFromLoads
)

// Round execution: the three steps of Figure 1.
var (
	// Select runs steps 1-2 (lock-free filter + choice).
	Select = sched.Select
	// Steal runs step 3 (locked, re-validated migration).
	Steal = sched.Steal
	// SequentialRound executes a §4.2 non-overlapping round.
	SequentialRound = sched.SequentialRound
	// ConcurrentRound executes a §3.1 optimistic round with the given
	// adversarial steal order.
	ConcurrentRound = sched.ConcurrentRound
	// PairwiseImbalance computes the §4.3 potential function d.
	PairwiseImbalance = sched.PairwiseImbalance
)

// Built-in policies.
var (
	// NewDelta2 is Listing 1's simple balancer (proved work-conserving).
	NewDelta2 = policy.NewDelta2
	// NewWeighted is the niceness-weighted balancer (proved).
	NewWeighted = policy.NewWeighted
	// NewGreedyBuggy is the §4.3 counterexample (refuted: livelock).
	NewGreedyBuggy = policy.NewGreedyBuggy
	// NewCFSGroupBuggy models the Lozi et al. group-imbalance bug
	// (refuted: fails Lemma 1).
	NewCFSGroupBuggy = policy.NewCFSGroupBuggy
	// NewHierarchical is the §5 two-level balancer (proved).
	NewHierarchical = policy.NewHierarchical
	// NewNUMAAware is Delta2 with a locality-preferring choice step.
	NewNUMAAware = policy.NewNUMAAware
	// NewPolicy looks up a built-in policy by name.
	NewPolicy = policy.New
	// NewPolicyWithTopology looks up a built-in policy by name, building
	// topology-needing policies (numa-aware) over the given topology.
	NewPolicyWithTopology = policy.NewWithTopology
	// PolicyNames lists the built-in policies.
	PolicyNames = policy.Names
	// PolicySpecs lists the built-in policies with their registry
	// metadata (provenance, topology needs, one-line docs), sorted.
	PolicySpecs = policy.Specs
	// LookupPolicy returns the registry metadata for one policy name.
	LookupPolicy = policy.Lookup
	// RegisterPolicy adds a policy spec to the global registry, making it
	// available to WithPolicy and the command-line tools.
	RegisterPolicy = policy.Register
)

// Policy-registry metadata types (see internal/policy).
type (
	// PolicySpec is one registry entry: constructor plus metadata.
	PolicySpec = policy.Spec
	// PolicyFactory constructs a fresh policy instance per call.
	PolicyFactory = policy.Factory
	// Provenance classifies a registered policy's verification status.
	Provenance = policy.Provenance
)

// Topologies.
var (
	// FlatTopology is a single-node machine.
	FlatTopology = topology.Flat
	// NUMATopology builds nodes × perNode cores.
	NUMATopology = topology.NUMA
	// AssignGroups stamps a machine's cores with the topology's node
	// assignment (Group and Node per core).
	AssignGroups = policy.AssignGroups
)

// Verification entry points.
var (
	// Verify checks a policy against every proof obligation over the
	// default bounded universe.
	//
	// Deprecated: build a Cluster with WithPolicyFactory and call
	// Cluster.Verify(ctx) — it is context-cancellable and runs the
	// obligations in parallel.
	Verify = func(name string, factory func() Policy) *Report {
		return verify.Policy(name, factory, verify.Config{})
	}
	// VerifyWith checks with an explicit configuration.
	//
	// Deprecated: build a Cluster with WithUniverse/WithObligations and
	// call Cluster.Verify(ctx).
	VerifyWith = verify.Policy
	// DefaultUniverse is the verifier's default bounded state space.
	DefaultUniverse = verify.DefaultUniverse
)

// DSL entry points.
var (
	// ParsePolicy parses and type-checks DSL source.
	ParsePolicy = dsl.Parse
	// CompilePolicy turns DSL source into an executable Policy.
	CompilePolicy = dsl.CompileSource
	// GeneratePolicyGo emits Go source for a parsed DSL policy.
	GeneratePolicyGo = dsl.Generate
)

// Simulation types and entry points (see internal/sim for the full
// workload API).
type (
	// Simulator is the discrete-event multicore simulator.
	Simulator = sim.Simulator
	// SimConfig parameterizes a simulation.
	SimConfig = sim.Config
	// SimStats is the measurement snapshot of a run.
	SimStats = sim.Stats
)

// NewSimulator builds a simulator.
var NewSimulator = sim.New

// Tracing (see internal/trace).
type (
	// TraceRing is a fixed-capacity ring buffer of scheduler trace
	// events, attachable to the simulator backend via WithTrace.
	TraceRing = trace.Ring
)

// NewTraceRing builds a trace ring holding the last n events.
var NewTraceRing = trace.NewRing
