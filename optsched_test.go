package optsched

import (
	"strings"
	"testing"
)

// The facade tests double as the library's quickstart documentation:
// each exercises the README's advertised three-line workflows.

func TestFacadeModelRoundTrip(t *testing.T) {
	m := MachineFromLoads(0, 1, 2)
	p := NewDelta2()
	for i := 0; i < 4 && !m.WorkConserved(); i++ {
		SequentialRound(p, m)
	}
	if !m.WorkConserved() {
		t.Fatalf("no convergence: %v", m.Loads())
	}
}

func TestFacadeVerify(t *testing.T) {
	rep := Verify("delta2", func() Policy { return NewDelta2() })
	if !rep.Passed() {
		t.Fatalf("delta2 verification failed:\n%s", rep)
	}
	repBad := Verify("greedy-buggy", func() Policy { return NewGreedyBuggy() })
	if repBad.Passed() {
		t.Fatal("greedy verification should fail")
	}
}

func TestFacadeDSL(t *testing.T) {
	p, ast, err := CompilePolicy(`policy quick { filter = stealee.load - thief.load >= 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	m := MachineFromLoads(0, 3)
	att := Select(p, m, 0)
	Steal(p, m, &att)
	if !att.Succeeded() {
		t.Fatalf("DSL policy did not steal: %+v", att)
	}
	code := GeneratePolicyGo(ast, "mypolicies")
	if !strings.Contains(code, "func (p *Quick) CanSteal") {
		t.Errorf("generated code unexpected:\n%s", code)
	}
}

func TestFacadeSimulator(t *testing.T) {
	s := NewSimulator(SimConfig{Cores: 2, Policy: NewDelta2(), Seed: 5})
	// The facade exposes the simulator; behaviors come from
	// internal/sim via the examples. Here just check the empty run.
	st := s.Run(10_000)
	if st.Completed != 0 || st.Duration != 10_000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeTopologyAndPolicies(t *testing.T) {
	top := NUMATopology(2, 2)
	if top.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", top.NumNodes())
	}
	numa := NewNUMAAware(top)
	if numa.Name() == "" {
		t.Error("empty policy name")
	}
	names := PolicyNames()
	if len(names) < 6 {
		t.Errorf("PolicyNames = %v", names)
	}
	for _, n := range names {
		if _, err := NewPolicy(n); err != nil {
			t.Errorf("NewPolicy(%q): %v", n, err)
		}
	}
}

func TestFacadePotential(t *testing.T) {
	m := MachineFromLoads(0, 4)
	p := NewDelta2()
	before := PairwiseImbalance(p, m)
	SequentialRound(p, m)
	if after := PairwiseImbalance(p, m); after >= before {
		t.Errorf("potential %d -> %d", before, after)
	}
}
