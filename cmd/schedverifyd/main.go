// Command schedverifyd is the incremental verification daemon: a
// long-running HTTP/JSON service that memoizes per-obligation
// verification results under content hashes, so resubmitting an
// unchanged policy returns instantly and an edited policy re-runs only
// the obligations the edit invalidates.
//
//	schedverifyd -addr :8377 -workers 2 -queue 64 -data-dir /var/lib/schedverifyd
//
// With -data-dir the memo is durable: every result is WAL-appended and
// fsynced before it is served, periodically compacted into a snapshot,
// and recovered at startup — a crashed or restarted daemon serves warm
// verdicts byte-identically with zero obligation re-runs, truncating
// (never replaying) any torn final write.
//
// API (see internal/service):
//
//	POST   /v1/verify     submit {"policy": "delta2"} or {"source": "policy ..."}
//	GET    /v1/jobs/{id}  poll a queued job
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/stats      cache, queue and durable-store counters
//	DELETE /v1/cache      admin flush of the memo (memory + disk)
//	GET    /healthz       liveness
//	GET    /readyz        readiness; 503 while draining toward shutdown
//
// On SIGTERM/SIGINT the daemon drains: /readyz flips to 503, new
// submissions are rejected, in-flight jobs get -drain-timeout to
// finish (polls keep working so clients can collect reports), then
// whatever remains is cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/service/faultinject"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main minus the process exit, for tests. When ready is non-nil
// it receives the bound address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("schedverifyd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
	queue := fs.Int("queue", 64, "job queue depth; a full queue answers 429 with Retry-After")
	workers := fs.Int("workers", 2, "concurrent verification jobs")
	parallel := fs.Int("parallel", 0, "per-job shard worker pool size (0 = GOMAXPROCS)")
	maxRounds := fs.Int("maxrounds", 1000, "sequential work-conservation round bound")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff advertised on 429 responses")
	dataDir := fs.String("data-dir", "", "durable memo store directory (empty = in-memory only)")
	compactEvery := fs.Int("compact-every", 0, "WAL records between snapshot compactions (0 = 256)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "in-flight job drain budget on SIGTERM before cancellation")
	faultSpec := fs.String("faults", "", "hidden: fault-injection spec for chaos testing, e.g. 'wal-append:torn=5@2,checker:panic=lemma1' (see internal/service/faultinject)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "schedverifyd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	faults, err := faultinject.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "schedverifyd: %v\n", err)
		return 2
	}

	d, err := startDaemon(*addr, service.Config{
		QueueDepth:   *queue,
		Workers:      *workers,
		Parallelism:  *parallel,
		MaxRounds:    *maxRounds,
		RetryAfter:   *retryAfter,
		DataDir:      *dataDir,
		CompactEvery: *compactEvery,
	}, service.WithFaults(faults))
	if err != nil {
		fmt.Fprintf(stderr, "schedverifyd: %v\n", err)
		return 1
	}
	if st := d.svc.Stats().Store; st != nil {
		fmt.Fprintf(stdout, "schedverifyd: durable memo at %s: %d results recovered (%d from snapshot, %d WAL records; %d bytes truncated as torn/corrupt)\n",
			*dataDir, st.Entries, st.SnapshotEntries, st.WALRecords, st.TruncatedBytes)
	}
	fmt.Fprintf(stdout, "schedverifyd listening on http://%s\n", d.Addr())
	if ready != nil {
		ready <- d.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintf(stdout, "schedverifyd: draining (budget %s)\n", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		d.Shutdown(shutdownCtx)
	}()

	if err := d.Serve(); err != nil {
		fmt.Fprintf(stderr, "schedverifyd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "schedverifyd: shut down")
	return 0
}

// daemon couples one service instance to one HTTP listener.
type daemon struct {
	svc *service.Service
	srv *http.Server
	ln  net.Listener
}

// startDaemon binds the listener; Serve starts handling.
func startDaemon(addr string, cfg service.Config, opts ...service.Option) (*daemon, error) {
	svc, err := service.New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &daemon{
		svc: svc,
		srv: &http.Server{Handler: svc.Handler()},
		ln:  ln,
	}, nil
}

// Addr returns the bound address.
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Serve blocks until Shutdown; a clean shutdown returns nil.
func (d *daemon) Serve() error {
	err := d.srv.Serve(d.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown is the graceful exit: drain the verification workers within
// ctx's budget (readyz flips to 503, polls keep answering so clients
// collect finished reports), then stop the HTTP server and cancel
// whatever outlived the deadline.
func (d *daemon) Shutdown(ctx context.Context) {
	d.svc.Drain(ctx)
	d.srv.Shutdown(ctx)
	d.svc.Close()
}
