package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	optsched "repro"

	"repro/internal/service"
)

// End-to-end smoke: real listener on a random port, real HTTP client.
func TestDaemonEndToEnd(t *testing.T) {
	d, err := startDaemon("127.0.0.1:0", service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := &optsched.VerifyClient{BaseURL: "http://" + d.Addr(), PollInterval: 5 * time.Millisecond}

	// A policy the paper refutes must come back REFUTED...
	rep, err := client.Verify(ctx, optsched.VerifyRequest{Policy: "greedy-buggy"})
	if err != nil {
		t.Fatalf("verify greedy-buggy: %v", err)
	}
	if rep.Passed() {
		t.Error("greedy-buggy verified PROVED; the §4.3 livelock should refute it")
	}

	// ...and a proved one PROVED.
	rep, err = client.Verify(ctx, optsched.VerifyRequest{Policy: "delta2"})
	if err != nil {
		t.Fatalf("verify delta2: %v", err)
	}
	if !rep.Passed() {
		t.Errorf("delta2 refuted:\n%s", rep)
	}
	coldJSON, err := optsched.ReportToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}

	// Resubmission is served from the memo, byte-identical.
	before, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := client.Verify(ctx, optsched.VerifyRequest{Policy: "delta2"})
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := optsched.ReportToJSON(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm report differs from cold:\n%s\nvs\n%s", coldJSON, warmJSON)
	}
	after, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.ServedFromCache != before.ServedFromCache+1 {
		t.Errorf("ServedFromCache %d -> %d, want +1", before.ServedFromCache, after.ServedFromCache)
	}
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("warm resubmission missed the cache: misses %d -> %d", before.CacheMisses, after.CacheMisses)
	}

	// The Cluster facade's fourth verification path: WithVerifyService.
	c, err := optsched.New(
		optsched.WithPolicy("delta2"),
		optsched.WithVerifyService("http://"+d.Addr()),
	)
	if err != nil {
		t.Fatal(err)
	}
	viaCluster, err := c.Verify(ctx)
	if err != nil {
		t.Fatalf("Cluster.Verify via daemon: %v", err)
	}
	clusterJSON, err := optsched.ReportToJSON(viaCluster)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, clusterJSON) {
		t.Error("Cluster.Verify via daemon differs from direct client report")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errBuf, nil); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errBuf, nil); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unexpected arguments") {
		t.Errorf("stray-argument diagnostic missing: %q", errBuf.String())
	}
}

// TestChaosDaemonWarmRestart is the PR's acceptance scenario end-to-end: a
// daemon restarted onto a warm -data-dir recovers its memo and serves a
// previously verified submission as a cache hit — zero obligation
// re-runs, byte-identical report.
func TestChaosDaemonWarmRestart(t *testing.T) {
	dataDir := t.TempDir()
	cfg := service.Config{DataDir: dataDir}
	req := optsched.VerifyRequest{Policy: "delta2", Obligations: []string{"lemma1", "steal-soundness"}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	d1, err := startDaemon("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go d1.Serve()
	rep, err := (&optsched.VerifyClient{BaseURL: "http://" + d1.Addr(), PollInterval: 5 * time.Millisecond}).Verify(ctx, req)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	coldJSON, err := optsched.ReportToJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	d1.Shutdown(shutdownCtx)
	cancelShutdown()

	// Second process lifetime over the same data directory.
	d2, err := startDaemon("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go d2.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d2.Shutdown(ctx)
	}()
	client := &optsched.VerifyClient{BaseURL: "http://" + d2.Addr(), PollInterval: 5 * time.Millisecond}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.RecoveredRecords != 2 {
		t.Fatalf("restarted daemon recovered %+v, want 2 records", st.Store)
	}
	warm, err := client.Verify(ctx, req)
	if err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	warmJSON, err := optsched.ReportToJSON(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("report across restart differs:\npre:\n%s\npost:\n%s", coldJSON, warmJSON)
	}
	st2, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheMisses != 0 {
		t.Errorf("warm restart re-ran %d obligations, want 0", st2.CacheMisses)
	}
	if st2.ServedFromCache != 1 {
		t.Errorf("warm submission not served from the recovered memo: %+v", st2)
	}
}

// TestDaemonFaultFlag covers the hidden -faults flag surface: a bad
// spec is a usage error, a good one arms the harness.
func TestDaemonFaultFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-faults", "bogus:nope"}, &out, &errBuf, nil); code != 2 {
		t.Errorf("bad -faults spec: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "faultinject") {
		t.Errorf("bad-spec diagnostic missing: %q", errBuf.String())
	}
}
