// Command schedlint runs the repository's static-analysis suite
// (internal/lint): depsaudit, determinism and atomicsdiscipline — the
// machine-checked versions of the invariants the verifier's soundness
// rests on.
//
// Standalone:
//
//	schedlint [-passes depsaudit,determinism,atomicsdiscipline] [packages]
//
// analyzes the packages (default ./...) and prints findings as
// file:line:col: pass: message. Exit status: 0 clean, 1 findings,
// 2 load or internal error.
//
// Vet tool:
//
//	go vet -vettool=$(command -v schedlint) ./...
//
// schedlint also speaks cmd/go's unit-checker protocol (-V=full
// handshake, a JSON *.cfg naming one package's files and export data),
// so the same checks run under go vet. In that mode depsaudit resolves
// module-local dependency sources via the enclosing go.mod. The
// standalone mode is what CI gates on.
//
// Findings are suppressed per line with `//schedlint:allow <pass>
// <reason>`; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go probes vet tools before use: -V=full asks for a version
	// line it hashes into build IDs, -flags for the supported flag set.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Fprintf(stdout, "schedlint version %s\n", runtime.Version())
		return 0
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	passes := fs.String("passes", "", "comma-separated analyzer subset (default: all, gated per package)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	selected, err := selectAnalyzers(*passes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], *passes, selected, stderr)
	}
	return runStandalone(rest, *passes, selected, stdout, stderr)
}

// selectAnalyzers parses -passes; nil means "all, gated per package by
// lint.AnalyzersFor".
func selectAnalyzers(passes string) ([]*lint.Analyzer, error) {
	if passes == "" {
		return nil, nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(passes, ",") {
		name = strings.TrimSpace(name)
		a, ok := lint.ByName(name)
		if !ok {
			return nil, fmt.Errorf("schedlint: unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzersFor(importPath string, selected []*lint.Analyzer) []*lint.Analyzer {
	// Test variants are named like "repro/internal/verify
	// [repro/internal/verify.test]"; the base path decides the gates.
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	gated := lint.AnalyzersFor(importPath)
	if selected == nil {
		return gated
	}
	var out []*lint.Analyzer
	for _, a := range selected {
		for _, g := range gated {
			if a == g {
				out = append(out, a)
			}
		}
	}
	return out
}

func runStandalone(patterns []string, passes string, selected []*lint.Analyzer, stdout, stderr io.Writer) int {
	prog, targets, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := 0
	for _, pkg := range targets {
		diags, err := lint.RunPackage(prog, pkg, analyzersFor(pkg.Path, selected))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "schedlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// vetConfig is the JSON cmd/go writes for each vet unit (a subset of
// cmd/go/internal/work's vetConfig; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath, passes string, selected []*lint.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "schedlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go requires the facts file to exist even though schedlint
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}
	// The unit config names export data only for the unit's direct
	// imports. depsaudit's source descent into module-local dependencies
	// type-checks those from scratch, which needs export data for THEIR
	// imports too — resolve anything missing through the build cache
	// with `go list -export`, memoized per process.
	extraExports := make(map[string]string)
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if file, ok := cfg.PackageFile[path]; ok {
			return os.Open(file)
		}
		file, ok := extraExports[path]
		if !ok {
			cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
			cmd.Dir = cfg.Dir
			out, err := cmd.Output()
			if err != nil {
				return nil, fmt.Errorf("schedlint: no export data for %q", path)
			}
			file = strings.TrimSpace(string(out))
			extraExports[path] = file
		}
		if file == "" {
			return nil, fmt.Errorf("schedlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	prog, pkg, err := lint.LoadFiles(cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Let depsaudit descend into module-local dependencies: map every
	// in-module import path under the enclosing module root.
	if root, modPath, ok := findModule(cfg.Dir); ok {
		for path := range cfg.PackageFile {
			if path == cfg.ImportPath {
				continue
			}
			if rel, in := moduleRel(path, modPath); in {
				prog.AddSourceDir(path, filepath.Join(root, filepath.FromSlash(rel)))
			}
		}
	}
	diags, err := lint.RunPackage(prog, pkg, analyzersFor(cfg.ImportPath, selected))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2 // vet's "diagnostics reported" status
	}
	return 0
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, ok bool) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", false
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			if m := moduleLine.FindSubmatch(data); m != nil {
				return dir, string(m[1]), true
			}
			return "", "", false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", false
		}
		dir = parent
	}
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// moduleRel returns path's directory relative to the module path.
func moduleRel(path, modPath string) (string, bool) {
	if path == modPath {
		return ".", true
	}
	if strings.HasPrefix(path, modPath+"/") {
		return path[len(modPath)+1:], true
	}
	return "", false
}
