package main

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// cmd/go probes vet tools with -V=full and -flags before trusting them;
// both must answer on stdout and exit 0 or `go vet -vettool` refuses to
// run the tool at all.
func TestVetToolHandshake(t *testing.T) {
	var stdout, stderr strings.Builder
	if exit := run([]string{"-V=full"}, &stdout, &stderr); exit != 0 {
		t.Fatalf("-V=full exited %d: %s", exit, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "schedlint version ") {
		t.Errorf("-V=full printed %q, want a version line", stdout.String())
	}

	stdout.Reset()
	if exit := run([]string{"-flags"}, &stdout, &stderr); exit != 0 {
		t.Fatalf("-flags exited %d: %s", exit, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", stdout.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	if got, err := selectAnalyzers(""); err != nil || got != nil {
		t.Errorf("empty -passes = %v, %v; want nil, nil (all analyzers, gated)", got, err)
	}
	got, err := selectAnalyzers("determinism, depsaudit")
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "depsaudit" {
		t.Errorf("two-pass selection = %v, %v", got, err)
	}
	if _, err := selectAnalyzers("nope"); err == nil {
		t.Error("unknown pass name did not error")
	}
}

// Test-variant import paths ("pkg [pkg.test]") must gate exactly like
// the base package: vet analyzes the variant compiled with the
// package's test files.
func TestAnalyzersForTestVariant(t *testing.T) {
	base := analyzersFor("repro/internal/verify", nil)
	variant := analyzersFor("repro/internal/verify [repro/internal/verify.test]", nil)
	if len(base) == 0 {
		t.Fatal("internal/verify gates no analyzers")
	}
	if len(variant) != len(base) {
		t.Fatalf("test variant gates %d analyzers, base gates %d", len(variant), len(base))
	}
	for i := range base {
		if base[i] != variant[i] {
			t.Errorf("analyzer %d differs: %s vs %s", i, base[i].Name, variant[i].Name)
		}
	}

	// -passes intersects with the per-package gates rather than
	// overriding them: atomicsdiscipline only guards the executor, so
	// selecting it for internal/sched yields nothing.
	atomics, _ := lint.ByName("atomicsdiscipline")
	if got := analyzersFor("repro/internal/sched", []*lint.Analyzer{atomics}); len(got) != 0 {
		t.Errorf("atomicsdiscipline selected for internal/sched: %v", got)
	}
	// depsaudit runs everywhere (it no-ops without an obligationDeps
	// table), so the same selection keeps it.
	dep, _ := lint.ByName("depsaudit")
	if got := analyzersFor("repro/internal/sched", []*lint.Analyzer{dep}); len(got) != 1 || got[0] != dep {
		t.Errorf("depsaudit not selected for internal/sched: %v", got)
	}
}

func TestModuleResolution(t *testing.T) {
	root, modPath, ok := findModule(".")
	if !ok || modPath != "repro" {
		t.Fatalf("findModule(.) = %q, %q, %v", root, modPath, ok)
	}
	if rel, in := moduleRel("repro/internal/sched", "repro"); !in || rel != "internal/sched" {
		t.Errorf("moduleRel(repro/internal/sched) = %q, %v", rel, in)
	}
	if rel, in := moduleRel("repro", "repro"); !in || rel != "." {
		t.Errorf("moduleRel(repro) = %q, %v", rel, in)
	}
	if _, in := moduleRel("reprox/other", "repro"); in {
		t.Error("moduleRel matched a module-path prefix that is not a path boundary")
	}
	if _, in := moduleRel("sort", "repro"); in {
		t.Error("moduleRel matched the standard library")
	}
}
