// Command scheddsl compiles a scheduling-policy DSL file: it
// type-checks the source, optionally verifies it against the proof
// obligations, and emits the generated Go backend — the repository's
// analogue of the paper's DSL→{C, Scala} compiler.
//
// Usage:
//
//	scheddsl -in policy.pol [-gen out.go] [-pkg policies] [-verify] [-print]
//	scheddsl -lint [-max-faults n] -in policy.pol
//
// With no -in, scheddsl reads standard input.
//
// -lint runs the DSL semantic linter (dsl.Analyze) and prints its
// findings instead of compiling: exit 0 when the policy lints clean,
// 1 when there are findings, 2 when the source does not parse.
// -max-faults supplies the fault budget of the universe the policy is
// headed for, which decides whether a missing rescue clause is worth a
// warning.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	optsched "repro"
	"repro/internal/dsl"
)

func main() {
	var (
		in        = flag.String("in", "", "DSL source file (default: stdin)")
		gen       = flag.String("gen", "", "write generated Go code to this file")
		pkg       = flag.String("pkg", "policies", "package name for generated code")
		check     = flag.Bool("verify", false, "run the proof obligations on the compiled policy")
		pretty    = flag.Bool("print", false, "print the canonicalized policy")
		lint      = flag.Bool("lint", false, "run the semantic linter and exit (0 clean, 1 findings, 2 parse error)")
		maxFaults = flag.Int("max-faults", 0, "fault budget of the target universe (with -lint: makes a missing rescue clause a finding)")
	)
	flag.Parse()

	src, err := readSource(*in)
	if err != nil {
		fatal(err)
	}

	if *lint {
		name := *in
		if name == "" {
			name = "<stdin>"
		}
		os.Exit(runLint(src, name, *maxFaults, os.Stdout, os.Stderr))
	}

	ast, err := dsl.Parse(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed policy %q: ok\n", ast.Name)
	if *pretty {
		fmt.Print(ast)
	}

	if *check {
		cluster, err := optsched.New(optsched.WithDSL(src))
		if err != nil {
			fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		rep, err := cluster.Verify(ctx)
		if err != nil {
			if rep != nil {
				fmt.Println(rep) // the partial report of a cancelled run
			}
			fatal(err)
		}
		fmt.Println(rep)
		if !rep.Passed() {
			os.Exit(1)
		}
	}

	if *gen != "" {
		// The policy and its support declarations are separate files of
		// one package (each carries its own package clause).
		if err := os.WriteFile(*gen, []byte(dsl.Generate(ast, *pkg)), 0o644); err != nil {
			fatal(err)
		}
		support := supportPath(*gen)
		if err := os.WriteFile(support, []byte(dsl.GenerateSupport(*pkg)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("generated %s and %s (package %s)\n", *gen, support, *pkg)
	}
}

// runLint is the -lint mode: parse, analyze, print findings. Exit
// contract: 0 clean, 1 findings, 2 parse error.
func runLint(src, name string, maxFaults int, stdout, stderr io.Writer) int {
	ast, err := dsl.Parse(src)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := dsl.Analyze(ast, dsl.AnalyzeOptions{MaxFaults: maxFaults})
	for _, d := range findings {
		fmt.Fprintf(stdout, "%s:%s\n", name, d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "scheddsl: %d finding(s) in policy %q\n", len(findings), ast.Name)
		return 1
	}
	fmt.Fprintf(stdout, "policy %q lints clean\n", ast.Name)
	return 0
}

// supportPath derives the support-file name: foo.go -> foo_support.go.
func supportPath(gen string) string {
	const ext = ".go"
	if len(gen) > len(ext) && gen[len(gen)-len(ext):] == ext {
		return gen[:len(gen)-len(ext)] + "_support" + ext
	}
	return gen + "_support.go"
}

func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
