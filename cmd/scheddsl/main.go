// Command scheddsl compiles a scheduling-policy DSL file: it
// type-checks the source, optionally verifies it against the proof
// obligations, and emits the generated Go backend — the repository's
// analogue of the paper's DSL→{C, Scala} compiler.
//
// Usage:
//
//	scheddsl -in policy.pol [-gen out.go] [-pkg policies] [-verify] [-print]
//
// With no -in, scheddsl reads standard input.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	optsched "repro"
	"repro/internal/dsl"
)

func main() {
	var (
		in     = flag.String("in", "", "DSL source file (default: stdin)")
		gen    = flag.String("gen", "", "write generated Go code to this file")
		pkg    = flag.String("pkg", "policies", "package name for generated code")
		check  = flag.Bool("verify", false, "run the proof obligations on the compiled policy")
		pretty = flag.Bool("print", false, "print the canonicalized policy")
	)
	flag.Parse()

	src, err := readSource(*in)
	if err != nil {
		fatal(err)
	}
	ast, err := dsl.Parse(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed policy %q: ok\n", ast.Name)
	if *pretty {
		fmt.Print(ast)
	}

	if *check {
		cluster, err := optsched.New(optsched.WithDSL(src))
		if err != nil {
			fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		rep, err := cluster.Verify(ctx)
		if err != nil {
			if rep != nil {
				fmt.Println(rep) // the partial report of a cancelled run
			}
			fatal(err)
		}
		fmt.Println(rep)
		if !rep.Passed() {
			os.Exit(1)
		}
	}

	if *gen != "" {
		// The policy and its support declarations are separate files of
		// one package (each carries its own package clause).
		if err := os.WriteFile(*gen, []byte(dsl.Generate(ast, *pkg)), 0o644); err != nil {
			fatal(err)
		}
		support := supportPath(*gen)
		if err := os.WriteFile(support, []byte(dsl.GenerateSupport(*pkg)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("generated %s and %s (package %s)\n", *gen, support, *pkg)
	}
}

// supportPath derives the support-file name: foo.go -> foo_support.go.
func supportPath(gen string) string {
	const ext = ".go"
	if len(gen) > len(ext) && gen[len(gen)-len(ext):] == ext {
		return gen[:len(gen)-len(ext)] + "_support" + ext
	}
	return gen + "_support.go"
}

func readSource(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
