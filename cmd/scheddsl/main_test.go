package main

import "testing"

func TestSupportPath(t *testing.T) {
	cases := map[string]string{
		"out.go":      "out_support.go",
		"a/b/pol.go":  "a/b/pol_support.go",
		"noext":       "noext_support.go",
		"tricky.go.x": "tricky.go.x_support.go",
	}
	for in, want := range cases {
		if got := supportPath(in); got != want {
			t.Errorf("supportPath(%q) = %q, want %q", in, got, want)
		}
	}
}
