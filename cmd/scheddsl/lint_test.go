package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunLintExitContract table-drives the -lint exit contract over the
// internal/dsl/testdata fixtures: 0 clean, 1 findings, 2 parse error.
func TestRunLintExitContract(t *testing.T) {
	cases := []struct {
		file      string
		maxFaults int
		exit      int
		contains  string // required substring of stdout (exit 0/1) or stderr (exit 2)
	}{
		{"delta2.pol", 0, 0, "lints clean"},
		{"delta2.pol", 2, 1, "rescue-missing"},
		{"shadowed.pol", 0, 1, "shadowed-clause"},
		{"shadowed.pol", 1, 1, "rescue-missing"},
		{"selfsteal.pol", 0, 1, "self-steal"},
		{"loadunused.pol", 0, 1, "load-unused"},
		{"aliasmixed.pol", 0, 1, "alias-mixed"},
		{"badparse.pol", 0, 2, "expected an expression"},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			src, err := os.ReadFile("../../internal/dsl/testdata/" + c.file)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			var stdout, stderr strings.Builder
			exit := runLint(string(src), c.file, c.maxFaults, &stdout, &stderr)
			if exit != c.exit {
				t.Errorf("maxFaults=%d: exit %d, want %d\nstdout: %s\nstderr: %s",
					c.maxFaults, exit, c.exit, stdout.String(), stderr.String())
			}
			out := stdout.String()
			if c.exit == 2 {
				out = stderr.String()
			}
			if !strings.Contains(out, c.contains) {
				t.Errorf("output missing %q:\n%s", c.contains, out)
			}
		})
	}
}

// TestRunLintDeterministic pins byte-identical lint output run to run.
func TestRunLintDeterministic(t *testing.T) {
	src, err := os.ReadFile("../../internal/dsl/testdata/shadowed.pol")
	if err != nil {
		t.Fatal(err)
	}
	var first strings.Builder
	runLint(string(src), "shadowed.pol", 3, &first, &first)
	for i := 0; i < 5; i++ {
		var again strings.Builder
		runLint(string(src), "shadowed.pol", 3, &again, &again)
		if first.String() != again.String() {
			t.Fatalf("run %d differs:\n%s\n%s", i, first.String(), again.String())
		}
	}
}
