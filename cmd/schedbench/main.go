// Command schedbench regenerates the paper-shaped outputs: the
// EXPERIMENTS.md tables (default mode) and the open-loop service
// tail-latency sweeps (-workload service). Interrupting (Ctrl-C)
// cancels the run wherever it is — mid-state-space for the verification
// experiments, mid-event-loop for a sweep point — and exits non-zero.
//
// Usage:
//
//	schedbench                                   # all experiments
//	schedbench -only E3                          # one experiment
//	schedbench -workload service -load 0.9       # one-point tail report
//	schedbench -workload service \
//	    -load 0.60:0.95:0.05 -policy delta2,weighted,cfs-group-buggy,null \
//	    -out BENCH_service.json                  # the committed curve
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/loadgen"
	"repro/internal/policy"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so deferred cleanup and tests work.
func run() int {
	var (
		only     = flag.String("only", "", "run a single experiment (E1..E10)")
		workload = flag.String("workload", "", `workload mode: "service" runs a tail-latency sweep instead of the experiments`)
		loads    = flag.String("load", "0.60:0.95:0.05", `target load: one value ("0.9"), a comma list ("0.6,0.9"), or "lo:hi:step"`)
		policies = flag.String("policy", "delta2,weighted,cfs-group-buggy,null", "comma-separated registered policies to sweep")
		seed     = flag.Uint64("seed", 1, "sweep seed (fixed seed ⇒ byte-identical report)")
		cores    = flag.Int("cores", 8, "machine width")
		horizon  = flag.Int64("horizon", 2_000_000, "arrival window in ticks per point")
		arrival  = flag.String("arrival", "poisson", `arrival process: "poisson" or "map" (bursty)`)
		dist     = flag.String("dist", "pareto", `service distribution: "pareto" (heavy-tailed) or "exp"`)
		out      = flag.String("out", "", "write the report JSON to this file (default stdout)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var code int
	switch *workload {
	case "service":
		code = runService(ctx, serviceFlags{
			loads: *loads, policies: *policies, seed: *seed, cores: *cores,
			horizon: *horizon, arrival: *arrival, dist: *dist, out: *out,
		})
	case "":
		code = runExperiments(ctx, *only)
	default:
		fmt.Fprintf(os.Stderr, "schedbench: unknown workload %q (want service)\n", *workload)
		return 2
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "schedbench: interrupted")
		if code == 0 {
			code = 1
		}
	}
	return code
}

// runExperiments is the original mode: regenerate EXPERIMENTS.md tables.
func runExperiments(ctx context.Context, only string) int {
	runners := map[string]func(context.Context) experiment.Result{
		"E1":  experiment.E1Lemma1,
		"E2":  experiment.E2SequentialConvergence,
		"E3":  experiment.E3Counterexample,
		"E4":  experiment.E4Potential,
		"E5":  experiment.E5RoundCost,
		"E6":  experiment.E6WastedCores,
		"E7":  experiment.E7Hierarchical,
		"E8":  experiment.E8Concurrent,
		"E9":  experiment.E9ConvergenceRate,
		"E10": experiment.E10ServiceTail,
	}
	if only != "" {
		run, ok := runners[only]
		if !ok {
			fmt.Fprintf(os.Stderr, "schedbench: unknown experiment %q (want E1..E10)\n", only)
			return 2
		}
		fmt.Println(run(ctx))
		return 0
	}
	for _, r := range experiment.All(ctx) {
		fmt.Println(r)
	}
	return 0
}

type serviceFlags struct {
	loads, policies    string
	seed               uint64
	cores              int
	horizon            int64
	arrival, dist, out string
}

// runService runs a tail-latency sweep per the flags. On cancellation
// the partial report is still rendered (to stderr-adjacent visibility it
// is written wherever -out points) and the exit code is non-zero.
func runService(ctx context.Context, f serviceFlags) int {
	grid, err := parseLoads(f.loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: %v\n", err)
		return 2
	}
	names := splitNonEmpty(f.policies)
	cfg := loadgen.SweepConfig{
		Policies: names,
		Loads:    grid,
		Cores:    f.cores,
		Horizon:  f.horizon,
		Seed:     f.seed,
		Arrival:  f.arrival,
		Dist:     f.dist,
	}
	rep, runErr := loadgen.RunSweep(ctx, cfg)
	if runErr != nil && rep == nil {
		fmt.Fprintf(os.Stderr, "schedbench: %v (known policies: %v)\n", runErr, policy.Names())
		return 2
	}
	data, err := loadgen.ReportJSON(rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: encoding report: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if f.out != "" {
		if err := os.WriteFile(f.out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: %v\n", err)
			return 1
		}
	} else {
		os.Stdout.Write(data)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "schedbench: sweep incomplete: %v\n", runErr)
		return 1
	}
	return 0
}

// parseLoads accepts "0.9", "0.6,0.75,0.9", or "lo:hi:step".
func parseLoads(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("load range %q: want lo:hi:step", s)
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("load range %q: %v", s, err)
			}
			v[i] = f
		}
		lo, hi, step := v[0], v[1], v[2]
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("load range %q: want lo ≤ hi and step > 0", s)
		}
		var grid []float64
		// Walk in integer steps to dodge float accumulation drift.
		for i := 0; ; i++ {
			l := lo + float64(i)*step
			if l > hi+step/2 {
				break
			}
			grid = append(grid, roundLoad(l))
		}
		return grid, nil
	}
	var grid []float64
	for _, p := range splitNonEmpty(s) {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("load %q: %v", p, err)
		}
		grid = append(grid, f)
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("no load points in %q", s)
	}
	return grid, nil
}

// roundLoad snaps a grid point to 4 decimals so "0.60:0.95:0.05" yields
// the exact literals 0.6, 0.65, ... the report's validator compares.
func roundLoad(l float64) float64 {
	v, _ := strconv.ParseFloat(strconv.FormatFloat(l, 'f', 4, 64), 64)
	return v
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
