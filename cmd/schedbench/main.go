// Command schedbench regenerates every experiment table of
// EXPERIMENTS.md — the paper-shaped output in one shot.
//
// Usage:
//
//	schedbench            # all experiments
//	schedbench -only E3   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9)")
	flag.Parse()

	runners := map[string]func() experiment.Result{
		"E1": experiment.E1Lemma1,
		"E2": experiment.E2SequentialConvergence,
		"E3": experiment.E3Counterexample,
		"E4": experiment.E4Potential,
		"E5": experiment.E5RoundCost,
		"E6": experiment.E6WastedCores,
		"E7": experiment.E7Hierarchical,
		"E8": experiment.E8Concurrent,
		"E9": experiment.E9ConvergenceRate,
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "schedbench: unknown experiment %q (want E1..E9)\n", *only)
			os.Exit(2)
		}
		fmt.Println(run())
		return
	}
	for _, r := range experiment.All() {
		fmt.Println(r)
	}
}
