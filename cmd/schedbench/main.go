// Command schedbench regenerates every experiment table of
// EXPERIMENTS.md — the paper-shaped output in one shot. Interrupting
// (Ctrl-C) cancels the run: the verification experiments abort at the
// next state and whatever completed is printed.
//
// Usage:
//
//	schedbench            # all experiments
//	schedbench -only E3   # one experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiment"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runners := map[string]func(context.Context) experiment.Result{
		"E1": experiment.E1Lemma1,
		"E2": experiment.E2SequentialConvergence,
		"E3": experiment.E3Counterexample,
		"E4": experiment.E4Potential,
		"E5": experiment.E5RoundCost,
		"E6": experiment.E6WastedCores,
		"E7": experiment.E7Hierarchical,
		"E8": experiment.E8Concurrent,
		"E9": experiment.E9ConvergenceRate,
	}
	if *only != "" {
		run, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "schedbench: unknown experiment %q (want E1..E9)\n", *only)
			os.Exit(2)
		}
		fmt.Println(run(ctx))
	} else {
		for _, r := range experiment.All(ctx) {
			fmt.Println(r)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "schedbench: interrupted")
		os.Exit(1)
	}
}
