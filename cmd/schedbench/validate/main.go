// Command validate checks a service sweep report: it must decode
// through the validating reader (schema version, workload kind,
// registered policies, point grid matching the load grid) and carry
// non-degenerate data. CI fails the bench-service job on any drift.
//
// Usage: validate REPORT.json...
package main

import (
	"fmt"
	"os"

	"repro/internal/loadgen"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate REPORT.json...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %v\n", err)
			os.Exit(1)
		}
		rep, err := loadgen.ReportFromJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %s: %v\n", path, err)
			os.Exit(1)
		}
		for _, c := range rep.Policies {
			for _, pt := range c.Points {
				if pt.JobsArrived == 0 || pt.Latency.Count == 0 {
					fmt.Fprintf(os.Stderr, "validate: %s: policy %s at load %v has no data\n",
						path, c.Policy, pt.Load)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("%s: ok (%d policies x %d loads, seed %d)\n",
			path, len(rep.Policies), len(rep.Loads), rep.Seed)
	}
}
