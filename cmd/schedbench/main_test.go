package main

import (
	"context"
	"os"
	"testing"

	"repro/internal/loadgen"
)

func TestParseLoads(t *testing.T) {
	cases := []struct {
		in   string
		want []float64
	}{
		{"0.9", []float64{0.9}},
		{"0.6,0.75,0.9", []float64{0.6, 0.75, 0.9}},
		{"0.60:0.95:0.05", []float64{0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}},
		{"0.9:0.9:0.05", []float64{0.9}},
	}
	for _, c := range cases {
		got, err := parseLoads(c.in)
		if err != nil {
			t.Errorf("parseLoads(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseLoads(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseLoads(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
	for _, bad := range []string{"", "x", "0.9:0.6:0.05", "0.6:0.9:0", "1:2:3:4"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads(%q) accepted bad input", bad)
		}
	}
}

// The default flag set must sweep at least three registered policies —
// the acceptance bar for comparing policies per report.
func TestDefaultPoliciesAreRegistered(t *testing.T) {
	names := splitNonEmpty("delta2,weighted,cfs-group-buggy,null")
	if len(names) < 3 {
		t.Fatalf("default sweep has %d policies, want ≥ 3", len(names))
	}
	cfg := loadgen.SweepConfig{Policies: names, Loads: []float64{0.9}, Cores: 4, Horizon: 20_000}
	if _, err := loadgen.RunSweep(context.Background(), cfg); err != nil {
		t.Fatalf("default policy list fails to sweep: %v", err)
	}
}

// A cancelled context must surface as a non-zero exit, with whatever
// partial report exists still rendered.
func TestRunServiceCancelledExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code := runService(ctx, serviceFlags{
		loads: "0.9", policies: "delta2", seed: 1, cores: 4,
		horizon: 50_000_000, arrival: "poisson", dist: "pareto",
		out: t.TempDir() + "/partial.json",
	})
	if code == 0 {
		t.Error("cancelled sweep exited zero")
	}
}

// Bad flags exit 2 without running anything.
func TestRunServiceBadFlags(t *testing.T) {
	for name, f := range map[string]serviceFlags{
		"bad load":   {loads: "nope", policies: "delta2", cores: 4, horizon: 1000, arrival: "poisson", dist: "pareto"},
		"bad policy": {loads: "0.9", policies: "no-such", cores: 4, horizon: 1000, arrival: "poisson", dist: "pareto"},
		"bad dist":   {loads: "0.9", policies: "delta2", cores: 4, horizon: 1000, arrival: "poisson", dist: "normal"},
	} {
		if code := runService(context.Background(), f); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}

// The service mode writes a report that the validating decoder accepts.
func TestRunServiceWritesValidReport(t *testing.T) {
	path := t.TempDir() + "/report.json"
	code := runService(context.Background(), serviceFlags{
		loads: "0.6,0.9", policies: "delta2,null", seed: 7, cores: 4,
		horizon: 100_000, arrival: "poisson", dist: "pareto", out: path,
	})
	if code != 0 {
		t.Fatalf("runService exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.ReportFromJSON(data)
	if err != nil {
		t.Fatalf("report failed validation: %v", err)
	}
	if len(rep.Policies) != 2 || len(rep.Loads) != 2 {
		t.Errorf("report shape: %d policies, %d loads", len(rep.Policies), len(rep.Loads))
	}
}
