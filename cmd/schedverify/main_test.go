package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 0,1,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad input accepted")
	}
}

func TestBuildClusterBuiltin(t *testing.T) {
	c, err := buildCluster("delta2", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.PolicyName() != "delta2" || c.NewPolicy().Name() != "delta2" {
		t.Errorf("resolved %q", c.PolicyName())
	}
	if _, err := buildCluster("nope", "", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := buildCluster("", "", 0); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := buildCluster("delta2", "x.pol", 0); err == nil {
		t.Error("both -policy and -dsl accepted")
	}
}

func TestBuildClusterDSL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pol")
	src := "policy fromfile { filter = stealee.load - thief.load >= 2 }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := buildCluster("", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.PolicyName() != "fromfile" || c.NewPolicy().Name() != "fromfile" {
		t.Errorf("resolved %q", c.PolicyName())
	}
	// Missing file and broken DSL both error.
	if _, err := buildCluster("", filepath.Join(dir, "missing.pol"), 0); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.pol")
	os.WriteFile(bad, []byte("policy x {}"), 0o644)
	if _, err := buildCluster("", bad, 0); err == nil {
		t.Error("filterless policy accepted")
	}
}
