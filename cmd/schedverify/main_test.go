package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 0,1,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseInts = %v", got)
		}
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad input accepted")
	}
}

func TestResolvePolicyBuiltin(t *testing.T) {
	f, name, err := resolvePolicy("delta2", "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "delta2" || f().Name() != "delta2" {
		t.Errorf("resolved %q", name)
	}
	if _, _, err := resolvePolicy("nope", ""); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, _, err := resolvePolicy("", ""); err == nil {
		t.Error("empty selection accepted")
	}
	if _, _, err := resolvePolicy("delta2", "x.pol"); err == nil {
		t.Error("both -policy and -dsl accepted")
	}
}

func TestResolvePolicyDSL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.pol")
	src := "policy fromfile { filter = stealee.load - thief.load >= 2 }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	f, name, err := resolvePolicy("", path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fromfile" || f().Name() != "fromfile" {
		t.Errorf("resolved %q", name)
	}
	// Missing file and broken DSL both error.
	if _, _, err := resolvePolicy("", filepath.Join(dir, "missing.pol")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.pol")
	os.WriteFile(bad, []byte("policy x {}"), 0o644)
	if _, _, err := resolvePolicy("", bad); err == nil {
		t.Error("filterless policy accepted")
	}
}
