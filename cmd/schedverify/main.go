// Command schedverify checks a scheduling policy against the paper's
// proof obligations — the repository's analogue of running the Leon
// verification pipeline. It drives the optsched session API: the
// obligations run in parallel and Ctrl-C cancels the run.
//
// Usage:
//
//	schedverify [-policy name | -dsl file.pol] [-cores N] [-maxper N]
//	            [-maxtotal N] [-groups 0,0,1,1] [-weights 1,3]
//	            [-max-faults N] [-obligation id] [-quick] [-parallel N]
//	            [-json] [-service http://host:port]
//
// -json prints the report in the canonical JSON encoding shared with
// the schedverifyd daemon: equal reports are byte-identical documents.
// -service verifies through a running schedverifyd instead of checking
// in-process, reusing the daemon's memoized results.
//
// The obligations are sharded across a worker pool; -parallel bounds the
// pool (default GOMAXPROCS). The report is identical at every level —
// parallelism only changes how long the run takes.
//
// Examples:
//
//	schedverify -policy delta2
//	schedverify -policy greedy-buggy            # prints the livelock
//	schedverify -dsl mypolicy.pol -cores 3
//	schedverify -policy cfs-group-buggy -cores 4 -groups 0,0,1,1 -weights 1,8
//	schedverify -policy delta2 -max-faults 1    # refutes no-task-lost
//	schedverify -policy delta2-rescue -max-faults 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	optsched "repro"
	"repro/internal/dsl"
)

func main() {
	var (
		policyName = flag.String("policy", "", "built-in policy to verify (see -list)")
		dslFile    = flag.String("dsl", "", "DSL policy file to verify")
		list       = flag.Bool("list", false, "list built-in policies and exit")
		cores      = flag.Int("cores", 3, "universe: number of cores")
		maxPer     = flag.Int("maxper", 3, "universe: max threads per core")
		maxTotal   = flag.Int("maxtotal", 5, "universe: max total threads (0 = cores*maxper)")
		groups     = flag.String("groups", "", "comma-separated group per core (e.g. 0,0,1,1)")
		weights    = flag.String("weights", "", "comma-separated task weights (e.g. 1,3)")
		maxFaults  = flag.Int("max-faults", 0, "universe: max fail/revive events per fault script (0 = healthy machines only)")
		obligation = flag.String("obligation", "", "check only this obligation (e.g. lemma1)")
		quick      = flag.Bool("quick", false, "smaller universe (cores=3, maxper=2, maxtotal=4)")
		parallel   = flag.Int("parallel", 0, "verification worker pool size (0 = GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "print the report as canonical JSON (the schedverifyd wire encoding)")
		serviceURL = flag.String("service", "", "verify through a running schedverifyd daemon at this base URL")
	)
	flag.Parse()

	if *list {
		fmt.Println("built-in policies:")
		for _, s := range optsched.PolicySpecs() {
			topo := ""
			if s.NeedsTopology {
				topo = " [topology]"
			}
			fmt.Printf("  %-18s %-10s%s %s\n", s.Name, s.Provenance, topo, s.Doc)
		}
		return
	}

	u := optsched.Universe{
		Cores:              *cores,
		MaxPerCore:         *maxPer,
		MaxTotal:           *maxTotal,
		IncludeUnscheduled: true,
		MaxFaults:          *maxFaults,
	}
	if *quick {
		u.Cores, u.MaxPerCore, u.MaxTotal = 3, 2, 4
	}
	if *groups != "" {
		g, err := parseInts(*groups)
		if err != nil {
			fatal(fmt.Errorf("bad -groups: %w", err))
		}
		u.Groups = g
	}
	if *weights != "" {
		w, err := parseInts(*weights)
		if err != nil {
			fatal(fmt.Errorf("bad -weights: %w", err))
		}
		u.Weights = make([]int64, len(w))
		for i, v := range w {
			u.Weights[i] = int64(v)
		}
	}

	opts := []optsched.Option{optsched.WithUniverse(u)}
	if *parallel != 0 && *serviceURL == "" {
		opts = append(opts, optsched.WithParallelism(*parallel))
	}
	if *serviceURL != "" {
		opts = append(opts, optsched.WithVerifyService(*serviceURL))
	}
	if *obligation != "" {
		opts = append(opts, optsched.WithObligations(optsched.ObligationID(*obligation)))
	}
	cluster, err := buildCluster(*policyName, *dslFile, u.MaxFaults, opts...)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := cluster.Verify(ctx)
	if err != nil {
		if rep != nil && !*jsonOut {
			fmt.Println(rep) // the partial report of a cancelled run
		}
		fatal(fmt.Errorf("schedverify: %w", err))
	}
	if *jsonOut {
		data, err := optsched.ReportToJSON(rep)
		if err != nil {
			fatal(fmt.Errorf("schedverify: %w", err))
		}
		fmt.Printf("%s\n", data)
	} else {
		fmt.Println(rep)
	}
	if !rep.Passed() {
		os.Exit(1)
	}
}

// buildCluster assembles the verification session from either a
// built-in policy name or a DSL file. DSL policies additionally run
// through the semantic linter (dsl.Analyze): findings go to stderr as
// warnings and never change the exit status — the verifier, not the
// linter, is the authority on whether the policy is correct.
func buildCluster(name, dslFile string, maxFaults int, extra ...optsched.Option) (*optsched.Cluster, error) {
	switch {
	case name != "" && dslFile != "":
		return nil, fmt.Errorf("schedverify: use -policy or -dsl, not both")
	case name != "":
		return optsched.New(append(extra, optsched.WithPolicy(name))...)
	case dslFile != "":
		src, err := os.ReadFile(dslFile)
		if err != nil {
			return nil, err
		}
		if ast, err := dsl.Parse(string(src)); err == nil {
			for _, d := range dsl.Analyze(ast, dsl.AnalyzeOptions{MaxFaults: maxFaults}) {
				fmt.Fprintf(os.Stderr, "schedverify: warning: %s:%s\n", dslFile, d)
			}
		}
		return optsched.New(append(extra, optsched.WithDSL(string(src)))...)
	}
	return nil, fmt.Errorf("schedverify: need -policy <name> or -dsl <file> (try -list)")
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
