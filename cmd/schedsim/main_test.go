package main

import "testing"

func TestBuildScenarioKnownNames(t *testing.T) {
	for _, name := range []string{"db-trap", "barrier-trap", "barrier", "forkjoin", "bursty"} {
		sc, _ := buildScenario(name)
		if sc.Name != name || sc.Cores <= 0 {
			t.Errorf("buildScenario(%q) = %+v", name, sc)
		}
		if sc.Workload == nil && len(sc.Batches) == 0 {
			t.Errorf("buildScenario(%q) carries no work", name)
		}
	}
}

func TestBuildScenarioMetrics(t *testing.T) {
	sc, metric := buildScenario("db-trap")
	if sc.Groups == nil {
		t.Error("db-trap should carry groups")
	}
	if metric == nil {
		t.Fatal("db-trap should expose a metric")
	}
	if name, v := metric(); name != "requests" || v != 0 {
		t.Errorf("metric = %q %d", name, v)
	}
}

func TestPortableScenariosAreBatchOnly(t *testing.T) {
	// forkjoin and bursty must stay portable: no sim-native workload, so
	// they run on the model and executor backends too.
	for _, name := range []string{"forkjoin", "bursty"} {
		sc, _ := buildScenario(name)
		if sc.Workload != nil {
			t.Errorf("%s should be a portable batch scenario", name)
		}
		if sc.TotalTasks() == 0 {
			t.Errorf("%s has no tasks", name)
		}
	}
}
