package main

import "testing"

func TestBuildWorkloadKnownNames(t *testing.T) {
	for _, name := range []string{"db-trap", "barrier-trap", "barrier", "forkjoin", "bursty"} {
		wl, width, _, _ := buildWorkload(name)
		if wl == nil || width <= 0 {
			t.Errorf("buildWorkload(%q) = %v, width %d", name, wl, width)
		}
	}
}

func TestBuildWorkloadMetrics(t *testing.T) {
	_, _, groups, metric := buildWorkload("db-trap")
	if groups == nil {
		t.Error("db-trap should carry groups")
	}
	if metric == nil {
		t.Fatal("db-trap should expose a metric")
	}
	if name, v := metric(); name != "requests" || v != 0 {
		t.Errorf("metric = %q %d", name, v)
	}
}
