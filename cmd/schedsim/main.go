// Command schedsim runs the discrete-event simulator on a chosen
// policy × workload × machine and prints the measurement snapshot —
// the repository's stand-in for running a patched kernel on a testbed.
//
// Usage:
//
//	schedsim [-policy name] [-workload name] [-cores N] [-horizon T]
//	         [-seed S] [-sequential] [-trace file.json]
//
// Workloads: db-trap, barrier-trap, barrier, forkjoin, bursty.
//
// Examples:
//
//	schedsim -policy weighted -workload db-trap
//	schedsim -policy cfs-group-buggy -workload db-trap    # the bug, live
//	schedsim -policy delta2 -workload forkjoin -cores 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "delta2", "balancing policy (see schedverify -list)")
		wlName     = flag.String("workload", "db-trap", "workload: db-trap, barrier-trap, barrier, forkjoin, bursty")
		cores      = flag.Int("cores", 0, "cores (0 = workload's calibrated width)")
		horizon    = flag.Int64("horizon", 1_500_000, "virtual ticks to simulate (1 tick = 1µs)")
		seed       = flag.Uint64("seed", 1, "deterministic RNG seed")
		sequential = flag.Bool("sequential", false, "use §4.2 sequential rounds instead of optimistic concurrent")
		traceFile  = flag.String("trace", "", "write the last 64k trace events as JSON")
	)
	flag.Parse()

	p, err := policy.New(*policyName)
	if err != nil {
		fatal(err)
	}

	wl, width, groups, metric := buildWorkload(*wlName)
	if *cores > 0 {
		width = *cores
		groups = nil
	}

	var ring *trace.Ring
	if *traceFile != "" {
		ring = trace.NewRing(65536)
	}
	mode := sim.RoundConcurrent
	if *sequential {
		mode = sim.RoundSequential
	}
	s := sim.New(sim.Config{
		Cores: width, Policy: p, Groups: groups,
		Mode: mode, Seed: *seed, Ring: ring,
	})
	wl.Setup(s)
	st := s.Run(*horizon)

	fmt.Printf("policy    %s\nworkload  %s\ncores     %d\n", *policyName, wl.Name(), width)
	fmt.Printf("stats     %v\n", st)
	fmt.Printf("latency   p50=%d p90=%d p99=%d max=%d\n",
		st.Latency.Quantile(0.5), st.Latency.Quantile(0.9),
		st.Latency.Quantile(0.99), st.Latency.Max())
	fmt.Printf("wasted    %.0f core-ticks (%.1f%% of capacity), %d violation episodes\n",
		st.WastedCoreTicks, st.WastedPct, st.ViolationEpisodes)
	if metric != nil {
		name, value := metric()
		fmt.Printf("workload  %s = %d\n", name, value)
	}

	if ring != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ring.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace     %d events -> %s\n", ring.Len(), *traceFile)
	}
}

// buildWorkload returns the workload, its calibrated machine width and
// groups, and an optional workload-specific metric.
func buildWorkload(name string) (workload.Workload, int, []int, func() (string, int64)) {
	switch name {
	case "db-trap":
		t := workload.NewDBTrap()
		return t, t.Cores(), t.Groups(), func() (string, int64) { return "requests", t.Server.Requests() }
	case "barrier-trap":
		t := workload.NewBarrierTrap(1700)
		return t, t.Cores(), t.Groups(), func() (string, int64) { return "generations", t.Barrier.Generations() }
	case "barrier":
		b := &workload.Barrier{Threads: 8, Work: 1700}
		return b, 8, nil, func() (string, int64) { return "generations", b.Generations() }
	case "forkjoin":
		return &workload.ForkJoin{Waves: 20, Width: 16, Work: 2000, Gap: 40_000}, 8, nil, nil
	case "bursty":
		return &workload.Bursty{Bursts: 30, TasksPerBurst: 12, Work: 1500, Period: 25_000}, 8, nil, nil
	}
	fatal(fmt.Errorf("schedsim: unknown workload %q", name))
	return nil, 0, nil, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
