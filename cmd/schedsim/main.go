// Command schedsim runs a scheduling scenario on a chosen policy ×
// backend × machine and prints the unified measurement snapshot — the
// repository's stand-in for running a patched kernel on a testbed. It
// drives the optsched session API, so the same scenario can run on the
// discrete-event simulator (default), the bare model, or the real
// work-stealing executor.
//
// Usage:
//
//	schedsim [-policy name] [-workload name] [-backend model|sim|executor]
//	         [-cores N] [-horizon T] [-seed S] [-sequential] [-trace file.json]
//	         [-hotplug spec]
//
// Workloads: db-trap, barrier-trap, barrier, forkjoin, bursty.
// The trap and barrier workloads are simulator-native (blocking,
// barriers) and run only with -backend sim; forkjoin and bursty are
// portable batch scenarios and run on every backend.
//
// -hotplug attaches a fail-stop fault schedule: comma-separated
// fail:CORE@AT and revive:CORE@AT events, AT in the backend's time unit
// (balancing rounds on the model, virtual ticks on the simulator,
// microseconds of wall time on the executor). E.g.
// "fail:2@50000,revive:2@400000" kills core 2 at t=50000 and brings it
// back at t=400000.
//
// Examples:
//
//	schedsim -policy weighted -workload db-trap
//	schedsim -policy cfs-group-buggy -workload db-trap    # the bug, live
//	schedsim -policy delta2 -workload forkjoin -cores 8
//	schedsim -policy delta2 -workload forkjoin -backend executor
//	schedsim -policy delta2-rescue -workload bursty -hotplug fail:0@100000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	optsched "repro"
	"repro/internal/workload"
)

func main() {
	var (
		policyName  = flag.String("policy", "delta2", "balancing policy (see schedverify -list)")
		wlName      = flag.String("workload", "db-trap", "workload: db-trap, barrier-trap, barrier, forkjoin, bursty")
		backendName = flag.String("backend", "sim", "execution backend: model, sim, executor")
		cores       = flag.Int("cores", 0, "cores (0 = workload's calibrated width)")
		horizon     = flag.Int64("horizon", 1_500_000, "virtual ticks to simulate (1 tick = 1µs)")
		seed        = flag.Uint64("seed", 1, "deterministic RNG seed")
		sequential  = flag.Bool("sequential", false, "use §4.2 sequential rounds instead of optimistic concurrent")
		traceFile   = flag.String("trace", "", "write the last 64k trace events as JSON (sim backend)")
		hotplug     = flag.String("hotplug", "", "fault schedule: fail:CORE@AT,revive:CORE@AT,... (AT in backend time units)")
	)
	flag.Parse()

	backend, err := optsched.BackendByName(*backendName)
	if err != nil {
		fatal(err)
	}
	scenario, metric := buildScenario(*wlName)
	if *cores > 0 {
		scenario.Cores = *cores
		scenario.Groups = nil
	}
	if *hotplug != "" {
		faults, err := parseHotplug(*hotplug)
		if err != nil {
			fatal(err)
		}
		scenario.Faults = faults
	}

	opts := []optsched.Option{
		optsched.WithPolicy(*policyName),
		optsched.WithBackend(backend),
		optsched.WithSeed(*seed),
	}
	if *sequential {
		if backend == optsched.BackendExecutor {
			fatal(fmt.Errorf("schedsim: -sequential has no meaning on the executor backend (it balances on idle, not in rounds)"))
		}
		opts = append(opts, optsched.WithSequentialRounds())
	}
	if backend == optsched.BackendSim {
		scenario.Horizon = *horizon
	} else {
		flag.Visit(func(f *flag.Flag) {
			switch {
			case f.Name == "horizon":
				fmt.Fprintf(os.Stderr, "schedsim: note: -horizon has no effect on the %s backend (it has no virtual clock)\n", backend.Name())
			case f.Name == "seed" && backend == optsched.BackendExecutor:
				fmt.Fprintln(os.Stderr, "schedsim: note: -seed has no effect on the executor backend (real concurrency is nondeterministic)")
			}
		})
	}
	var ring *optsched.TraceRing
	if *traceFile != "" {
		if backend != optsched.BackendSim {
			fatal(fmt.Errorf("schedsim: -trace requires -backend sim (the %s backend emits no trace events)", backend.Name()))
		}
		ring = optsched.NewTraceRing(65536)
		opts = append(opts, optsched.WithTrace(ring))
	}
	cluster, err := optsched.New(opts...)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := cluster.Run(ctx, scenario)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("policy    %s\nworkload  %s\nbackend   %s\ncores     %d\n",
		cluster.PolicyName(), scenario.Name, res.Backend, res.Cores)
	fmt.Printf("result    %v\n", res)
	if res.Faults > 0 {
		fmt.Printf("faults    %d events applied, %d tasks rescued, %d still orphaned\n",
			res.Faults, res.FaultRescued, res.Orphaned)
	}
	if st := res.Sim; st != nil {
		fmt.Printf("stats     %v\n", *st)
		fmt.Printf("latency   p50=%d p90=%d p99=%d max=%d\n",
			st.Latency.Quantile(0.5), st.Latency.Quantile(0.9),
			st.Latency.Quantile(0.99), st.Latency.Max())
		fmt.Printf("wasted    %.0f core-ticks (%.1f%% of capacity), %d violation episodes\n",
			st.WastedCoreTicks, st.WastedPct, st.ViolationEpisodes)
	}
	if metric != nil {
		name, value := metric()
		fmt.Printf("workload  %s = %d\n", name, value)
	}

	if ring != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := ring.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace     %d events -> %s\n", ring.Len(), *traceFile)
	}
}

// buildScenario returns the named scenario (with its calibrated machine
// width and groups baked in) and an optional workload-specific metric.
// The trap and barrier scenarios are simulator-native; forkjoin and
// bursty are portable batch scenarios that run on every backend.
func buildScenario(name string) (optsched.Scenario, func() (string, int64)) {
	switch name {
	case "db-trap":
		t := workload.NewDBTrap()
		return optsched.Scenario{
			Name: name, Cores: t.Cores(), Groups: t.Groups(), Workload: t,
		}, func() (string, int64) { return "requests", t.Server.Requests() }
	case "barrier-trap":
		t := workload.NewBarrierTrap(1700)
		return optsched.Scenario{
			Name: name, Cores: t.Cores(), Groups: t.Groups(), Workload: t,
		}, func() (string, int64) { return "generations", t.Barrier.Generations() }
	case "barrier":
		b := &workload.Barrier{Threads: 8, Work: 1700}
		return optsched.Scenario{Name: name, Cores: 8, Workload: b},
			func() (string, int64) { return "generations", b.Generations() }
	case "forkjoin":
		// 20 waves of 16 tasks forking on core 0, 40ms apart.
		sc := optsched.ForkJoinScenario(name, 20, 16, 2000, 40_000, 0)
		sc.Cores = 8
		return sc, nil
	case "bursty":
		// 30 bursts of 12 tasks landing on core 0, 25ms apart.
		sc := optsched.BurstyScenario(name, 30, 12, 1500, 25_000, 0)
		sc.Cores = 8
		return sc, nil
	}
	fatal(fmt.Errorf("schedsim: unknown workload %q", name))
	return optsched.Scenario{}, nil
}

// parseHotplug parses the -hotplug spec: comma-separated fail:CORE@AT
// and revive:CORE@AT elements. Schedule validity (event order, no
// double-fail, never the last online core) is checked by the scenario
// validation at Run time, against the resolved machine width.
func parseHotplug(spec string) ([]optsched.FaultEvent, error) {
	var events []optsched.FaultEvent
	for _, elem := range strings.Split(spec, ",") {
		elem = strings.TrimSpace(elem)
		verb, rest, ok := strings.Cut(elem, ":")
		if !ok || (verb != "fail" && verb != "revive") {
			return nil, fmt.Errorf("schedsim: bad -hotplug element %q (want fail:CORE@AT or revive:CORE@AT)", elem)
		}
		coreStr, atStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("schedsim: bad -hotplug element %q (missing @AT)", elem)
		}
		core, err := strconv.Atoi(coreStr)
		if err != nil || core < 0 {
			return nil, fmt.Errorf("schedsim: bad core in -hotplug element %q", elem)
		}
		at, err := strconv.ParseInt(atStr, 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("schedsim: bad time in -hotplug element %q", elem)
		}
		events = append(events, optsched.FaultEvent{At: at, Core: core, Revive: verb == "revive"})
	}
	return events, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
