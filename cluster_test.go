package optsched

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/verify"
)

// TestClusterRunAcrossBackends is the API's core promise: one fixed
// scenario runs through all three backends via the same Cluster.Run
// call and every backend returns a non-empty, internally consistent
// Result.
func TestClusterRunAcrossBackends(t *testing.T) {
	// A skewed burst: 24 tasks born on core 0 of a 4-core machine. Every
	// backend must spread the work (steals > 0 under delta2).
	scenario := SkewedScenario("skew", 24, 200)
	scenario.Cores = 4

	for _, backend := range Backends() {
		t.Run(backend.Name(), func(t *testing.T) {
			c, err := New(
				WithPolicy("delta2"),
				WithBackend(backend),
				WithSeed(7),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), scenario)
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != backend.Name() || res.Policy != "delta2" || res.Scenario != "skew" {
				t.Errorf("result identity wrong: %+v", res)
			}
			if res.Cores != 4 || res.Tasks != 24 {
				t.Errorf("cores=%d tasks=%d, want 4/24", res.Cores, res.Tasks)
			}
			if !res.Converged {
				t.Errorf("backend %s did not converge: %v", backend.Name(), res)
			}
			if res.Steals <= 0 {
				t.Errorf("backend %s moved no tasks off the overloaded core: %v", backend.Name(), res)
			}
			if res.Wall <= 0 {
				t.Errorf("backend %s reports no wall time", backend.Name())
			}
			if res.String() == "" || !strings.Contains(res.String(), backend.Name()) {
				t.Errorf("String() = %q", res.String())
			}

			// Per-backend consistency.
			switch backend {
			case BackendModel:
				if res.FinalLoads == nil || len(res.FinalLoads) != 4 {
					t.Errorf("model: FinalLoads = %v", res.FinalLoads)
				}
				total := 0
				for _, l := range res.FinalLoads {
					total += l
				}
				if total != 24 {
					t.Errorf("model: threads not conserved: %v", res.FinalLoads)
				}
				if res.Rounds <= 0 {
					t.Error("model: no rounds recorded")
				}
			case BackendSim:
				if res.Completed != 24 {
					t.Errorf("sim: completed %d of 24", res.Completed)
				}
				if res.Sim == nil || res.VirtualTicks <= 0 {
					t.Errorf("sim: missing sim stats: %+v", res)
				}
			case BackendExecutor:
				if res.Completed != 24 {
					t.Errorf("executor: completed %d of 24", res.Completed)
				}
			}
		})
	}
}

// TestClusterRunWithFaultsAcrossBackends is the fault model's
// cross-backend promise: the same fault schedule — kill core 1 at the
// start of a skewed burst — round-trips through all three backends
// under a rescue-capable policy with every task accounted for.
func TestClusterRunWithFaultsAcrossBackends(t *testing.T) {
	scenario := SkewedScenario("skew-faults", 24, 200)
	scenario.Cores = 4
	scenario.Faults = []FaultEvent{{At: 0, Core: 1}}

	for _, backend := range Backends() {
		t.Run(backend.Name(), func(t *testing.T) {
			c, err := New(
				WithPolicy("delta2-rescue"),
				WithBackend(backend),
				WithSeed(7),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), scenario)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Errorf("backend %s did not converge under the fault schedule: %v", backend.Name(), res)
			}
			if res.Orphaned != 0 {
				t.Errorf("backend %s left %d tasks orphaned: %v", backend.Name(), res.Orphaned, res)
			}
			// The executor's fault clock is wall time, so an instant drain
			// can in principle outrun the kill; the virtual-time backends
			// must apply it exactly.
			if backend != BackendExecutor && res.Faults != 1 {
				t.Errorf("backend %s applied %d fault events, want 1", backend.Name(), res.Faults)
			}
			if backend == BackendSim && res.Completed != 24 {
				t.Errorf("sim completed %d of 24 under faults", res.Completed)
			}
		})
	}
}

// TestClusterRunModelFaultSemantics pins the model backend's fault
// accounting: a rescue-less policy strands the failed core's tasks
// (visible as Orphaned), a scripted revival recovers them, and the
// rescue rule re-homes them immediately.
func TestClusterRunModelFaultSemantics(t *testing.T) {
	base := SkewedScenario("strand", 6, 100)
	base.Cores = 3

	run := func(t *testing.T, policy string, faults []FaultEvent) *Result {
		t.Helper()
		sc := base
		sc.Faults = faults
		c, err := New(WithPolicy(policy), WithBackend(BackendModel))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// No rescue, no revival: all six tasks stay stranded on core 0.
	res := run(t, "delta2", []FaultEvent{{At: 0, Core: 0}})
	if res.Orphaned != 6 || res.FaultRescued != 0 {
		t.Errorf("delta2 fail(0): orphaned=%d rescued=%d, want 6/0", res.Orphaned, res.FaultRescued)
	}

	// Scripted revival recovers the stranded tasks without a rescue rule.
	res = run(t, "delta2", []FaultEvent{{At: 0, Core: 0}, {At: 2, Core: 0, Revive: true}})
	if res.Orphaned != 0 {
		t.Errorf("delta2 fail+revive: %d tasks still orphaned", res.Orphaned)
	}
	if res.Faults != 2 {
		t.Errorf("delta2 fail+revive: %d fault events applied, want 2", res.Faults)
	}
	if !res.Converged {
		t.Errorf("delta2 fail+revive did not converge: %v", res)
	}

	// The rescue rule re-homes every orphan at fail time.
	res = run(t, "delta2-rescue", []FaultEvent{{At: 0, Core: 0}})
	if res.Orphaned != 0 || res.FaultRescued != 6 {
		t.Errorf("delta2-rescue fail(0): orphaned=%d rescued=%d, want 0/6", res.Orphaned, res.FaultRescued)
	}
	if !res.Converged {
		t.Errorf("delta2-rescue did not converge: %v", res)
	}
}

// TestClusterWithFaultsDefault checks the cluster-level fault schedule:
// it applies when the scenario carries none and yields to a scenario
// schedule when both are set.
func TestClusterWithFaultsDefault(t *testing.T) {
	c, err := New(
		WithPolicy("delta2-rescue"),
		WithBackend(BackendModel),
		WithFaults(FaultEvent{At: 0, Core: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := SkewedScenario("plain", 8, 100)
	sc.Cores = 3
	res, err := c.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 1 {
		t.Errorf("cluster-default schedule not applied: %d fault events", res.Faults)
	}

	sc.Faults = []FaultEvent{{At: 0, Core: 1}, {At: 1, Core: 1, Revive: true}}
	res, err = c.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 2 {
		t.Errorf("scenario schedule did not override cluster default: %d fault events", res.Faults)
	}
}

// TestClusterRunRejectsBadFaultSchedule checks schedule validation at
// Run time: out-of-order events, reviving an online core, and failing
// the last online core are all structural errors.
func TestClusterRunRejectsBadFaultSchedule(t *testing.T) {
	for name, faults := range map[string][]FaultEvent{
		"out of order":     {{At: 5, Core: 0}, {At: 1, Core: 0, Revive: true}},
		"revive online":    {{At: 0, Core: 1, Revive: true}},
		"double fail":      {{At: 0, Core: 1}, {At: 1, Core: 1}},
		"fail last online": {{At: 0, Core: 0}, {At: 0, Core: 1}},
		"negative time":    {{At: -1, Core: 0}},
	} {
		c, err := New(WithPolicy("delta2"), WithBackend(BackendModel))
		if err != nil {
			t.Fatal(err)
		}
		sc := SkewedScenario("bad", 4, 100)
		sc.Cores = 2
		sc.Faults = faults
		if _, err := c.Run(context.Background(), sc); err == nil {
			t.Errorf("%s: Run accepted invalid fault schedule %v", name, faults)
		}
	}
}

// TestClusterRunSharesScenarioAcrossTopologies checks that the cluster
// topology supplies width and groups when the scenario leaves them open.
func TestClusterTopologyDefaults(t *testing.T) {
	c, err := New(
		WithPolicy("numa-aware"),
		WithTopology(NUMATopology(2, 2)),
		WithBackend(BackendModel),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), Scenario{
		Name:    "numa-skew",
		Batches: []Batch{{Core: 0, Tasks: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 4 {
		t.Errorf("cores = %d, want the topology's 4", res.Cores)
	}
	if !res.Converged {
		t.Errorf("not converged: %v", res)
	}
}

// TestClusterTopologyCoverage: a topology-built policy must not run on
// (or be verified over) a machine wider than its topology — that would
// index past NodeOf inside the policy's distance metric.
func TestClusterTopologyCoverage(t *testing.T) {
	c, err := New(WithPolicy("numa-aware")) // default 2×4 topology
	if err != nil {
		t.Fatal(err)
	}
	sc := SkewedScenario("wide", 8, 100)
	sc.Cores = 16
	if _, err := c.Run(context.Background(), sc); err == nil {
		t.Error("16-core scenario accepted by a policy built over 8 cores")
	}
	wide, err := New(WithPolicy("numa-aware"),
		WithUniverse(Universe{Cores: 16, MaxPerCore: 1, MaxTotal: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wide.Verify(context.Background()); err == nil {
		t.Error("16-core universe accepted by a policy built over 8 cores")
	}
	// Within the topology's width both still work.
	sc.Cores = 8
	if _, err := c.Run(context.Background(), sc); err != nil {
		t.Errorf("8-core scenario rejected: %v", err)
	}
}

func TestClusterRunModelHonorsCancellation(t *testing.T) {
	c, err := New(WithPolicy("greedy-buggy"), WithBackend(BackendModel))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, ScenarioFromLoads("cancelled", 0, 1, 2)); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestClusterVerify(t *testing.T) {
	c, err := New(WithPolicy("delta2"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("delta2 verification failed:\n%s", rep)
	}
	if want := len(verify.AllObligations()); len(rep.Results) != want {
		t.Errorf("expected the full %d-obligation suite, got %d results", want, len(rep.Results))
	}

	bad, err := New(WithPolicy("greedy-buggy"))
	if err != nil {
		t.Fatal(err)
	}
	repBad, err := bad.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if repBad.Passed() {
		t.Error("greedy-buggy verification should fail")
	}
}

// TestClusterVerifyParallelismDeterminism pins the WithParallelism
// contract: a refuted policy's report — witnesses included — is
// byte-identical at every worker-pool size.
func TestClusterVerifyParallelismDeterminism(t *testing.T) {
	reports := make([]string, 0, 3)
	for _, par := range []int{1, 2, 5} {
		c, err := New(WithPolicy("greedy-buggy"), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Verify(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Passed() {
			t.Fatal("greedy-buggy verification should fail")
		}
		reports = append(reports, rep.String())
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Errorf("report at parallelism level %d diverged:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
	}
}

// TestClusterVerifyHonorsCancellation is the satellite requirement:
// Verify(ctx) aborts when the context dies and says so.
func TestClusterVerifyHonorsCancellation(t *testing.T) {
	c, err := New(WithPolicy("delta2"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := c.Verify(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Verify on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled Verify still took %v", elapsed)
	}
	if rep == nil {
		t.Fatal("cancelled Verify should still return the partial report")
	}
	if rep.Passed() {
		t.Error("a cancelled report must not claim the policy proved")
	}
	for _, r := range rep.Results {
		if r.Passed {
			continue
		}
		if !strings.Contains(r.Witness, "aborted") {
			t.Errorf("obligation %s failed without an aborted witness: %q", r.ID, r.Witness)
		}
	}
}

func TestClusterDSLPolicy(t *testing.T) {
	c, err := New(
		WithDSL(`policy quick { filter = stealee.load - thief.load >= 2 }`),
		WithBackend(BackendModel),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.PolicyName() != "quick" {
		t.Errorf("PolicyName = %q", c.PolicyName())
	}
	res, err := c.Run(context.Background(), ScenarioFromLoads("dsl", 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steals == 0 {
		t.Errorf("DSL policy did not balance: %v", res)
	}
}

func TestClusterOptionValidation(t *testing.T) {
	cases := map[string][]Option{
		"unknown policy":      {WithPolicy("nope")},
		"nil backend":         {WithBackend(nil)},
		"nil topology":        {WithTopology(nil)},
		"bad cores":           {WithCores(-1)},
		"bad horizon":         {WithHorizon(0)},
		"bad max rounds":      {WithMaxRounds(0)},
		"broken DSL":          {WithDSL("policy x {}")},
		"conflicting sources": {WithPolicy("delta2"), WithDSL(`policy y { filter = stealee.load - thief.load >= 2 }`)},
		"policy + factory": {WithPolicyFactory("mine", func() Policy { return NewDelta2() }),
			WithPolicy("delta2")},
		"nil factory":        {WithPolicyFactory("x", nil)},
		"cores vs topology":  {WithTopology(NUMATopology(2, 4)), WithCores(16)},
		"unknown obligation": {WithObligations("lemma1typo")},
		"zero parallelism":   {WithParallelism(0)},
		"neg parallelism":    {WithParallelism(-2)},
		"zero-core universe": {WithUniverse(Universe{Groups: []int{0, 1}})},
		"empty service URL":  {WithVerifyService("")},
		"service + factory": {WithVerifyService("http://127.0.0.1:1"),
			WithPolicyFactory("mine", func() Policy { return NewDelta2() })},
		"service + max rounds": {WithVerifyService("http://127.0.0.1:1"), WithMaxRounds(50)},
	}
	for name, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("%s: New accepted invalid options", name)
		}
	}
}

func TestClusterRunValidation(t *testing.T) {
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Run(ctx, Scenario{}); err == nil {
		t.Error("nameless scenario accepted")
	}
	// An all-idle machine is legitimate: trivially converged, no rounds.
	if res, err := c.Run(ctx, ScenarioFromLoads("idle", 0, 0, 0)); err != nil || !res.Converged || res.Rounds != 0 {
		t.Errorf("idle machine: res=%v err=%v", res, err)
	}
	if _, err := c.Run(ctx, Scenario{Name: "x", Batches: []Batch{{Core: 0, Tasks: 0}}}); err == nil {
		t.Error("zero-task batch accepted")
	}
	if _, err := c.Run(ctx, Scenario{Name: "x", Cores: 2, Groups: []int{0},
		Batches: []Batch{{Core: 0, Tasks: 1}}}); err == nil {
		t.Error("mismatched groups accepted")
	}
	// Sim-native workloads are rejected off-simulator.
	wl := Scenario{Name: "wl", Workload: dummyWorkload{}}
	if _, err := c.Run(ctx, wl); err == nil {
		t.Error("model backend accepted a sim-native workload")
	}
}

type dummyWorkload struct{}

func (dummyWorkload) Name() string       { return "dummy" }
func (dummyWorkload) Setup(s *Simulator) {}

// TestBackendByName pins the CLI-facing backend names.
func TestBackendByName(t *testing.T) {
	for _, want := range []string{"model", "sim", "executor"} {
		b, err := BackendByName(want)
		if err != nil || b.Name() != want {
			t.Errorf("BackendByName(%q) = %v, %v", want, b, err)
		}
	}
	if _, err := BackendByName("kernel"); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestClusterVerifyServiceRoundTrip delegates Verify to an in-process
// schedverifyd and pins the remote path's contract: the report is
// byte-identical to local verification, and a second Verify is served
// entirely from the daemon's memo.
func TestClusterVerifyServiceRoundTrip(t *testing.T) {
	svc := service.MustNew(service.Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	obligations := []ObligationID{"lemma1", "steal-soundness"}
	local, err := New(WithPolicy("delta2"), WithObligations(obligations...))
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := local.Verify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := ReportToJSON(localRep)
	if err != nil {
		t.Fatal(err)
	}

	remote, err := New(WithPolicy("delta2"), WithObligations(obligations...),
		WithVerifyService(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := remote.Verify(context.Background())
		if err != nil {
			t.Fatalf("remote Verify %d: %v", i, err)
		}
		remoteJSON, err := ReportToJSON(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(localJSON, remoteJSON) {
			t.Fatalf("remote report %d differs from local:\nlocal:\n%s\nremote:\n%s", i, localJSON, remoteJSON)
		}
	}
	if st := svc.Stats(); st.ServedFromCache != 1 {
		t.Errorf("second remote Verify was not a pure cache hit: %+v", st)
	}
}

// TestClusterVerifyServiceFallback pins the resilience contract of
// WithVerifyService: when the daemon is unreachable and the circuit
// breaker opens, Verify falls back to local in-process verification and
// still returns a valid report.
func TestClusterVerifyServiceFallback(t *testing.T) {
	c, err := New(WithPolicy("delta2"), WithObligations("lemma1", "steal-soundness"),
		WithVerifyService("http://127.0.0.1:1")) // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	vc := c.VerifyServiceClient()
	if vc == nil {
		t.Fatal("WithVerifyService did not install a client")
	}
	vc.BreakerThreshold = 2
	vc.RetryBase = time.Millisecond
	vc.MaxPollInterval = 4 * time.Millisecond
	vc.BreakerCooldown = time.Hour

	rep, err := c.Verify(context.Background())
	if err != nil {
		t.Fatalf("Verify with a dead daemon did not fall back locally: %v", err)
	}
	if !rep.Passed() || len(rep.Results) != 2 {
		t.Errorf("fallback report invalid:\n%s", rep)
	}
	// The breaker is open now: subsequent Verifies fail fast into the
	// local path without waiting out retry backoffs.
	start := time.Now()
	if _, err := c.Verify(context.Background()); err != nil {
		t.Fatalf("second fallback Verify: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("open-breaker fallback took %v, want fail-fast", took)
	}
}

// TestClusterVerifyServiceStatus pins the observability contract that
// rides on the fallback path: VerifyServiceStatus exposes the circuit
// breaker's state and counts the Verify calls diverted to local
// verification, so operators can see a degraded daemon instead of
// inferring it from latency.
func TestClusterVerifyServiceStatus(t *testing.T) {
	c, err := New(WithPolicy("delta2"), WithObligations("lemma1"),
		WithVerifyService("http://127.0.0.1:1")) // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.VerifyServiceStatus()
	if !ok {
		t.Fatal("VerifyServiceStatus reported no delegation despite WithVerifyService")
	}
	if st.Breaker.State != "closed" || st.Breaker.ConsecutiveFailures != 0 || st.LocalFallbacks != 0 {
		t.Errorf("pristine status = %+v, want closed/0/0", st)
	}

	vc := c.VerifyServiceClient()
	vc.BreakerThreshold = 2
	vc.RetryBase = time.Millisecond
	vc.MaxPollInterval = 4 * time.Millisecond
	vc.BreakerCooldown = time.Hour

	for i := 1; i <= 2; i++ {
		if _, err := c.Verify(context.Background()); err != nil {
			t.Fatalf("fallback Verify %d: %v", i, err)
		}
		st, _ = c.VerifyServiceStatus()
		if st.LocalFallbacks != int64(i) {
			t.Errorf("after Verify %d: LocalFallbacks = %d, want %d", i, st.LocalFallbacks, i)
		}
	}
	if st.Breaker.State != "open" {
		t.Errorf("breaker state %q after repeated failures, want open", st.Breaker.State)
	}
	if st.Breaker.ConsecutiveFailures < 2 {
		t.Errorf("ConsecutiveFailures = %d, want >= threshold 2", st.Breaker.ConsecutiveFailures)
	}

	// Once the cooldown elapses the breaker half-opens: the next Verify
	// would probe the daemon again.
	vc.mu.Lock()
	vc.openUntil = time.Now().Add(-time.Millisecond)
	vc.mu.Unlock()
	st, _ = c.VerifyServiceStatus()
	if st.Breaker.State != "half-open" {
		t.Errorf("breaker state %q after cooldown, want half-open", st.Breaker.State)
	}

	// Without WithVerifyService there is no delegation to report on.
	plain, err := New(WithPolicy("delta2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.VerifyServiceStatus(); ok {
		t.Error("VerifyServiceStatus reported a delegation on a local-only cluster")
	}
}
