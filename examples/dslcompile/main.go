// Dslcompile walks the paper's full DSL pipeline in one program through
// the session API: parse a policy written in the scheduling DSL, verify
// it (the Leon-backend analogue), run it in the real executor (the
// kernel-backend analogue), and emit the generated Go code. One
// WithDSL cluster serves both the verification and the execution —
// that is the paper's "compile once, target every backend" pipeline.
//
//	go run ./examples/dslcompile
package main

import (
	"context"
	"fmt"

	optsched "repro"
)

// source is Listing 1 in the DSL.
const source = `
# Listing 1: the simple work-conserving load balancer.
policy delta2 {
    load   = self.ready.size + self.current.size
    filter = stealee.load() - self.load() >= 2
    steal  = 1
    choose = max_load
}
`

func main() {
	ctx := context.Background()

	// Front end: parse + type-check (the session API compiles the same
	// source internally; parsing here shows the canonicalized policy).
	ast, err := optsched.ParsePolicy(source)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed policy %q:\n%s\n", ast.Name, ast)

	cluster, err := optsched.New(
		optsched.WithDSL(source),
		optsched.WithBackend(optsched.BackendExecutor),
		optsched.WithCores(4),
	)
	if err != nil {
		panic(err)
	}

	// Backend 1 (verification): the proof obligations, in parallel.
	rep, err := cluster.Verify(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)

	// Backend 2 (execution): drive the work-stealing executor with the
	// compiled policy; submit everything to worker 0 and watch steals.
	res, err := cluster.Run(ctx, optsched.SkewedScenario("dsl-burst", 800, 50))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexecutor: %d/%d tasks done, %d stolen, %d optimistic failures\n",
		res.Completed, res.Tasks, res.Steals, res.StealFails)

	// Backend 3 (codegen): the Go source a kernel build would compile.
	fmt.Println("\ngenerated Go backend:")
	fmt.Println(optsched.GeneratePolicyGo(ast, "policies"))
}
