// Dslcompile walks the paper's full DSL pipeline in one program: parse a
// policy written in the scheduling DSL, verify it (the Leon-backend
// analogue), run it in the executor (the kernel-backend analogue), and
// emit the generated Go code.
//
//	go run ./examples/dslcompile
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/verify"
)

// source is Listing 1 in the DSL.
const source = `
# Listing 1: the simple work-conserving load balancer.
policy delta2 {
    load   = self.ready.size + self.current.size
    filter = stealee.load() - self.load() >= 2
    steal  = 1
    choose = max_load
}
`

func main() {
	// Front end: parse + type-check.
	ast, err := dsl.Parse(source)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed policy %q:\n%s\n", ast.Name, ast)

	// Backend 1 (verification): the proof obligations.
	rep := verify.Policy(ast.Name,
		func() sched.Policy { return dsl.Compile(ast) }, verify.Config{})
	fmt.Println(rep)

	// Backend 2 (execution): drive the work-stealing executor with the
	// compiled policy; submit everything to worker 0 and watch steals.
	pool := engine.NewPool(4, func() sched.Policy { return dsl.Compile(ast) },
		engine.Options{})
	defer pool.Close()
	var done atomic.Int64
	const tasks = 800
	for i := 0; i < tasks; i++ {
		pool.SubmitTo(0, func() {
			time.Sleep(50 * time.Microsecond)
			done.Add(1)
		})
	}
	pool.Wait()
	st := pool.Stats()
	fmt.Printf("\nexecutor: %d/%d tasks done, %d stolen, %d optimistic failures\n",
		done.Load(), tasks, st.Steals, st.StealFails)

	// Backend 3 (codegen): the Go source a kernel build would compile.
	fmt.Println("\ngenerated Go backend:")
	fmt.Println(dsl.Generate(ast, "policies"))
}
