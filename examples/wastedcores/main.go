// Wastedcores reproduces the paper's §1 motivation (Lozi et al., "The
// Linux Scheduler: a Decade of Wasted Cores") through the session API:
// the CFS group-imbalance bug leaves a core idle while others are
// overloaded, costing ~25% database throughput and slowing
// barrier-synchronized scientific code many-fold. Each policy is one
// Cluster over the simulator backend; the workloads are the canonical
// E6 traps.
//
//	go run ./examples/wastedcores
package main

import (
	"context"
	"fmt"

	optsched "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	fmt.Println("=== database trap (4 cores, 2 groups, 1 hog, 5 workers) ===")
	dbBase := int64(0)
	for _, name := range []string{"weighted", "cfs-group-buggy", "null"} {
		trap := workload.NewDBTrap()
		res := runTrap(ctx, name, optsched.Scenario{
			Name: "db-trap", Cores: trap.Cores(), Groups: trap.Groups(),
			Workload: trap, Horizon: 1_500_000,
		})
		req := trap.Server.Requests()
		if name == "weighted" {
			dbBase = req
		}
		loss := 100 * float64(dbBase-req) / float64(dbBase)
		fmt.Printf("%-16s requests=%-6d loss=%5.1f%%  wasted=%5.1f%% of capacity  episodes=%d\n",
			name, req, loss, res.WastedPct, res.Sim.ViolationEpisodes)
	}
	fmt.Println("paper: 'up to 25% decrease in throughput for realistic database workloads'")

	fmt.Println("\n=== barrier trap (10 cores, 8 threads confined to 2 cores) ===")
	barBase := int64(0)
	for _, name := range []string{"weighted", "cfs-group-buggy", "null"} {
		trap := workload.NewBarrierTrap(1700)
		runTrap(ctx, name, optsched.Scenario{
			Name: "barrier-trap", Cores: trap.Cores(), Groups: trap.Groups(),
			Workload: trap, Horizon: 400_000,
		})
		gens := trap.Barrier.Generations()
		if name == "weighted" {
			barBase = gens
		}
		slowdown := float64(barBase) / float64(gens)
		fmt.Printf("%-16s generations=%-5d slowdown=%.1fx\n", name, gens, slowdown)
	}
	fmt.Println("paper: 'many-fold performance degradation in the case of scientific applications'")
}

// runTrap executes one trap scenario under the named policy on the
// simulator backend.
func runTrap(ctx context.Context, policy string, sc optsched.Scenario) *optsched.Result {
	c, err := optsched.New(
		optsched.WithPolicy(policy),
		optsched.WithBackend(optsched.BackendSim),
		optsched.WithSeed(11),
	)
	if err != nil {
		panic(err)
	}
	res, err := c.Run(ctx, sc)
	if err != nil {
		panic(err)
	}
	return res
}
