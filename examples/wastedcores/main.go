// Wastedcores reproduces the paper's §1 motivation (Lozi et al., "The
// Linux Scheduler: a Decade of Wasted Cores") in simulation: the CFS
// group-imbalance bug leaves a core idle while others are overloaded,
// costing ~25% database throughput and slowing barrier-synchronized
// scientific code many-fold.
//
//	go run ./examples/wastedcores
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	fmt.Println("=== database trap (4 cores, 2 groups, 1 hog, 5 workers) ===")
	dbBase := int64(0)
	for _, name := range []string{"weighted", "cfs-group-buggy", "null"} {
		trap := workload.NewDBTrap()
		p, err := policy.New(name)
		if err != nil {
			panic(err)
		}
		s := sim.New(sim.Config{Cores: trap.Cores(), Policy: p, Groups: trap.Groups(), Seed: 11})
		trap.Setup(s)
		st := s.Run(1_500_000)
		req := trap.Server.Requests()
		if name == "weighted" {
			dbBase = req
		}
		loss := 100 * float64(dbBase-req) / float64(dbBase)
		fmt.Printf("%-16s requests=%-6d loss=%5.1f%%  wasted=%5.1f%% of capacity  episodes=%d\n",
			name, req, loss, st.WastedPct, st.ViolationEpisodes)
	}
	fmt.Println("paper: 'up to 25% decrease in throughput for realistic database workloads'")

	fmt.Println("\n=== barrier trap (10 cores, 8 threads confined to 2 cores) ===")
	barBase := int64(0)
	for _, name := range []string{"weighted", "cfs-group-buggy", "null"} {
		trap := workload.NewBarrierTrap(1700)
		p, err := policy.New(name)
		if err != nil {
			panic(err)
		}
		s := sim.New(sim.Config{Cores: trap.Cores(), Policy: p, Groups: trap.Groups(), Seed: 11})
		trap.Setup(s)
		s.Run(400_000)
		gens := trap.Barrier.Generations()
		if name == "weighted" {
			barBase = gens
		}
		slowdown := float64(barBase) / float64(gens)
		fmt.Printf("%-16s generations=%-5d slowdown=%.1fx\n", name, gens, slowdown)
	}
	fmt.Println("paper: 'many-fold performance degradation in the case of scientific applications'")
}
