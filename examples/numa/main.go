// Numa demonstrates the §5 extensions through the session API:
// hierarchical (two-level) load balancing and NUMA-aware placement in
// the choice step — both verified with the unchanged proof obligations
// via Cluster.Verify, and both measurably changing locality without
// breaking work conservation.
//
//	go run ./examples/numa
package main

import (
	"context"
	"fmt"

	optsched "repro"
)

func main() {
	ctx := context.Background()
	top := optsched.NUMATopology(2, 4) // 2 nodes x 4 cores
	fmt.Printf("machine: %d cores, %d NUMA nodes, groups %v\n\n",
		top.NCores, top.NumNodes(), top.Groups())

	// 1. Verify the hierarchical policy with groups: same obligations,
	// no new proof work. The obligations run in parallel.
	hier, err := optsched.New(
		optsched.WithPolicy("hierarchical"),
		optsched.WithUniverse(optsched.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 4,
			IncludeUnscheduled: true, Groups: []int{0, 0, 1, 1}}),
	)
	if err != nil {
		panic(err)
	}
	rep, err := hier.Verify(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)

	// 2. NUMA-aware choice: compare where steals land. numa-aware is a
	// registered policy now — the registry builds it over the cluster's
	// topology (NeedsTopology in its spec).
	fmt.Println("\nsteal locality on a skewed machine (one overloaded core per node):")
	for _, name := range []string{"delta2", "numa-aware"} {
		p, err := optsched.NewPolicyWithTopology(name, top)
		if err != nil {
			panic(err)
		}
		intra, total := 0, 0
		m := optsched.MachineFromLoads(6, 0, 0, 0, 6, 0, 0, 0)
		optsched.AssignGroups(m, top)
		for round := 0; round < 6; round++ {
			rr := optsched.SequentialRound(p, m)
			for _, att := range rr.Attempts {
				if att.Succeeded() {
					total++
					if m.Core(att.Thief).Node == m.Core(att.Victim).Node {
						intra++
					}
				}
			}
		}
		fmt.Printf("  %-18s %d/%d steals stayed on the victim's node -> %v\n",
			name, intra, total, m.Loads())
	}
	fmt.Println("\nBoth variants share Delta2's filter, so both inherit its proof:")
	fmt.Println("locality heuristics live in step 2 and cost zero proof effort (§5).")
}
