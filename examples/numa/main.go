// Numa demonstrates the §5 extensions: hierarchical (two-level) load
// balancing and NUMA-aware placement in the choice step — both verified
// with the unchanged proof obligations, and both measurably changing
// locality without breaking work conservation.
//
//	go run ./examples/numa
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/statespace"
	"repro/internal/topology"
	"repro/internal/verify"
)

func main() {
	top := topology.NUMA(2, 4) // 2 nodes x 4 cores
	fmt.Printf("machine: %d cores, %d NUMA nodes, groups %v\n\n",
		top.NCores, top.NumNodes(), top.Groups())

	// 1. Verify the hierarchical policy with groups: same obligations,
	// no new proof work.
	u := statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 4,
		IncludeUnscheduled: true, Groups: []int{0, 0, 1, 1}}
	rep := verify.Policy("hierarchical",
		func() sched.Policy { return policy.NewHierarchical() },
		verify.Config{Universe: u})
	fmt.Println(rep)

	// 2. NUMA-aware choice: compare where steals land.
	fmt.Println("\nsteal locality on a skewed machine (one overloaded core per node):")
	for _, variant := range []string{"plain delta2", "numa-aware delta2"} {
		var p sched.Policy
		if variant == "plain delta2" {
			p = policy.NewDelta2()
		} else {
			p = policy.NewNUMAAware(top)
		}
		intra, total := 0, 0
		m := sched.MachineFromLoads(6, 0, 0, 0, 6, 0, 0, 0)
		policy.AssignGroups(m, top)
		for round := 0; round < 6; round++ {
			rr := sched.SequentialRound(p, m)
			for _, att := range rr.Attempts {
				if att.Succeeded() {
					total++
					if m.Core(att.Thief).Node == m.Core(att.Victim).Node {
						intra++
					}
				}
			}
		}
		fmt.Printf("  %-18s %d/%d steals stayed on the victim's node -> %v\n",
			variant, intra, total, m.Loads())
	}
	fmt.Println("\nBoth variants share Delta2's filter, so both inherit its proof:")
	fmt.Println("locality heuristics live in step 2 and cost zero proof effort (§5).")
}
