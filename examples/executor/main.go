// Executor demonstrates the real work-stealing backend through the
// session API: a goroutine pool whose balancer is the paper's verified
// three-step protocol — lock-free selection over published load
// counters, locked re-validated steals. A skewed submission stream
// spreads across workers; optimistic failures are visible in the
// unified Result, and the null-policy baseline shows what no balancing
// costs.
//
//	go run ./examples/executor
package main

import (
	"context"
	"fmt"
	"time"

	optsched "repro"
)

func main() {
	ctx := context.Background()

	// A skewed burst: 2000 tasks of 100µs each land on worker 0, as if
	// one connection produced all the work. The balancer must spread it.
	scenario := optsched.SkewedScenario("skewed-burst", 2000, 100)
	scenario.Cores = 4

	c, err := optsched.New(
		optsched.WithPolicy("delta2"),
		optsched.WithBackend(optsched.BackendExecutor),
	)
	if err != nil {
		panic(err)
	}
	res, err := c.Run(ctx, scenario)
	if err != nil {
		panic(err)
	}
	fmt.Printf("executed %d/%d tasks in %v\n", res.Completed, res.Tasks, res.Wall.Round(time.Millisecond))
	fmt.Printf("steals: %d tasks migrated, %d optimistic failures\n", res.Steals, res.StealFails)
	fmt.Printf("≈%d of %d tasks ran on workers other than the submission target\n",
		res.Steals, res.Tasks)

	// The same stream with the null policy runs entirely on worker 0 —
	// the cost of not balancing, measured with the identical API.
	baseline, err := optsched.New(
		optsched.WithPolicy("null"),
		optsched.WithBackend(optsched.BackendExecutor),
	)
	if err != nil {
		panic(err)
	}
	resNull, err := baseline.Run(ctx, scenario)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnull policy: %d/%d tasks, %d steals, %v (%.1fx slower; timer\n",
		resNull.Completed, resNull.Tasks, resNull.Steals, resNull.Wall.Round(time.Millisecond),
		float64(resNull.Wall)/float64(res.Wall))
	fmt.Println("granularity makes absolute times machine-dependent)")
}
