// Executor demonstrates internal/engine as a user library: a
// work-stealing goroutine pool whose balancer is the paper's verified
// three-step protocol — lock-free selection over published load
// counters, locked re-validated steals. Skewed submissions spread across
// workers; optimistic failures are visible in the stats.
//
//	go run ./examples/executor
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/sched"
)

func main() {
	pool := engine.NewPool(4, func() sched.Policy { return policy.NewDelta2() },
		engine.Options{})
	defer pool.Close()

	// A skewed burst: everything lands on worker 0, as if one connection
	// produced all the work. The balancer must spread it.
	var done atomic.Int64
	const tasks = 2000
	start := time.Now()
	for i := 0; i < tasks; i++ {
		pool.SubmitTo(0, func() {
			time.Sleep(100 * time.Microsecond) // simulated work
			done.Add(1)
		})
	}
	pool.Wait()
	elapsed := time.Since(start)

	st := pool.Stats()
	fmt.Printf("executed %d/%d tasks in %v\n", st.Executed, tasks, elapsed.Round(time.Millisecond))
	fmt.Printf("steals: %d tasks migrated, %d optimistic failures\n", st.Steals, st.StealFails)
	fmt.Printf("≈%d of %d tasks ran on workers other than the submission target\n",
		st.Steals, tasks)
	fmt.Println("\n(the same Submit stream with the null policy would run entirely on worker 0,")
	fmt.Println(" taking ~4x longer; timer granularity makes absolute times machine-dependent)")
}
