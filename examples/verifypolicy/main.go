// Verifypolicy shows the verification workflow: write policies as plain
// Go, check them against the paper's proof obligations, and read the
// counterexamples the checker produces for broken filters.
//
// Three policies are checked:
//
//   - a Delta2 variant with a custom step-2 heuristic — passes everything,
//     demonstrating the paper's claim that the choice step needs no proof;
//
//   - an overly timid filter (gap >= 3) — fails Lemma 1's exists-
//     direction: an idle core cannot steal from a load-2 overloaded core;
//
//   - the §4.3 greedy filter — sequentially fine, but the checker finds
//     the concurrent ping-pong livelock automatically.
//
//     go run ./examples/verifypolicy
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/verify"
)

// fancyChooser is an arbitrary placement heuristic: prefer even core IDs,
// then the most loaded. Heuristics like this never affect the proofs.
func fancyChooser(load func(*sched.Core) int64) sched.ChooseFunc {
	return func(_ *sched.Core, candidates []*sched.Core) *sched.Core {
		best := candidates[0]
		key := func(c *sched.Core) int64 {
			k := load(c)
			if c.ID%2 == 0 {
				k += 1 << 20
			}
			return k
		}
		for _, c := range candidates[1:] {
			if key(c) > key(best) {
				best = c
			}
		}
		return best
	}
}

func delta2Fancy() sched.Policy {
	p := policy.NewDelta2()
	p.Chooser = fancyChooser(p.Load)
	return p
}

// delta3 steals only across a gap of 3 — too timid: an idle core facing
// a load-2 overloaded core has no candidate, violating Lemma 1.
func delta3() sched.Policy {
	load := func(c *sched.Core) int64 { return int64(c.NThreads()) }
	return &sched.FuncPolicy{
		PolicyName: "delta3-timid",
		LoadFn:     load,
		FilterFn: func(thief, stealee *sched.Core) bool {
			return load(stealee)-load(thief) >= 3
		},
	}
}

func main() {
	fmt.Println("== Delta2 with a custom placement heuristic ==")
	fmt.Println("(the paper's point: step 2 carries no proof obligations)")
	fmt.Println(verify.Policy("delta2-fancy-choice", delta2Fancy, verify.Config{}))

	fmt.Println("\n== an overly timid filter (gap >= 3) ==")
	fmt.Println(verify.Policy("delta3-timid", delta3, verify.Config{}))

	fmt.Println("\n== the paper's greedy counterexample ==")
	fmt.Println(verify.Policy("greedy-buggy",
		func() sched.Policy { return policy.NewGreedyBuggy() }, verify.Config{}))
}
