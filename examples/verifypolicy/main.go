// Verifypolicy shows the verification workflow through the session API:
// write policies as plain Go, install them with WithPolicyFactory,
// check them against the paper's proof obligations with Cluster.Verify
// (parallel across obligations, cancellable), and read the
// counterexamples the checker produces for broken filters.
//
// Three policies are checked:
//
//   - a Delta2 variant with a custom step-2 heuristic — passes everything,
//     demonstrating the paper's claim that the choice step needs no proof;
//
//   - an overly timid filter (gap >= 3) — fails Lemma 1's exists-
//     direction: an idle core cannot steal from a load-2 overloaded core;
//
//   - the §4.3 greedy filter — sequentially fine, but the checker finds
//     the concurrent ping-pong livelock automatically.
//
//     go run ./examples/verifypolicy
package main

import (
	"context"
	"fmt"

	optsched "repro"
	"repro/internal/policy"
	"repro/internal/sched"
)

// fancyChooser is an arbitrary placement heuristic: prefer even core IDs,
// then the most loaded. Heuristics like this never affect the proofs.
func fancyChooser(load func(*sched.Core) int64) sched.ChooseFunc {
	return func(_ *sched.Core, candidates []*sched.Core) *sched.Core {
		best := candidates[0]
		key := func(c *sched.Core) int64 {
			k := load(c)
			if c.ID%2 == 0 {
				k += 1 << 20
			}
			return k
		}
		for _, c := range candidates[1:] {
			if key(c) > key(best) {
				best = c
			}
		}
		return best
	}
}

func delta2Fancy() optsched.Policy {
	p := policy.NewDelta2()
	p.Chooser = fancyChooser(p.Load)
	return p
}

// delta3 steals only across a gap of 3 — too timid: an idle core facing
// a load-2 overloaded core has no candidate, violating Lemma 1.
func delta3() optsched.Policy {
	load := func(c *sched.Core) int64 { return int64(c.NThreads()) }
	return &optsched.FuncPolicy{
		PolicyName: "delta3-timid",
		LoadFn:     load,
		FilterFn: func(thief, stealee *sched.Core) bool {
			return load(stealee)-load(thief) >= 3
		},
	}
}

func main() {
	ctx := context.Background()
	cases := []struct {
		banner  string
		name    string
		factory func() optsched.Policy
	}{
		{"== Delta2 with a custom placement heuristic ==\n(the paper's point: step 2 carries no proof obligations)",
			"delta2-fancy-choice", delta2Fancy},
		{"\n== an overly timid filter (gap >= 3) ==", "delta3-timid", delta3},
		{"\n== the paper's greedy counterexample ==", "greedy-buggy",
			func() optsched.Policy { return optsched.NewGreedyBuggy() }},
	}
	for _, tc := range cases {
		fmt.Println(tc.banner)
		c, err := optsched.New(optsched.WithPolicyFactory(tc.name, tc.factory))
		if err != nil {
			panic(err)
		}
		rep, err := c.Verify(ctx)
		if err != nil {
			panic(err)
		}
		fmt.Println(rep)
	}
}
