// Quickstart: one session API, three execution substrates. Build a
// Cluster, run the same skewed scenario on the bare model, the
// discrete-event simulator and the real work-stealing executor, and
// read one common Result — then drop to the model primitives to watch
// work conservation emerge round by round.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	optsched "repro"
)

func main() {
	ctx := context.Background()

	// The same scenario — 12 tasks born on core 0 of a 4-core machine —
	// through every backend via the same Run call.
	scenario := optsched.SkewedScenario("quickstart", 12, 500)
	scenario.Cores = 4
	for _, backend := range optsched.Backends() {
		c, err := optsched.New(
			optsched.WithPolicy("delta2"),
			optsched.WithBackend(backend),
		)
		if err != nil {
			panic(err)
		}
		res, err := c.Run(ctx, scenario)
		if err != nil {
			panic(err)
		}
		fmt.Println(res)
	}

	// The model primitives remain available for fine-grained control:
	// the §4.3 example machine, one round at a time.
	fmt.Println("\nthe §4.3 machine, round by round:")
	m := optsched.MachineFromLoads(0, 1, 2)
	p := optsched.NewDelta2()
	fmt.Println("initial state:", m.Loads(), "work-conserved:", m.WorkConserved())
	for round := 1; !m.WorkConserved(); round++ {
		res := optsched.SequentialRound(p, m)
		fmt.Printf("round %d: moved %d task(s) -> %v, d = %d\n",
			round, res.TasksMoved(), m.Loads(), optsched.PairwiseImbalance(p, m))
	}

	// And the optimistic concurrent mode: two idle cores race for one
	// stealable thread; one must fail re-validation (§4.3).
	m2 := optsched.MachineFromLoads(0, 0, 2)
	fmt.Println("\nconcurrent round on", m2.Loads(), "(two thieves, one stealable thread):")
	res := optsched.ConcurrentRound(p, m2, []int{0, 1, 2})
	for _, att := range res.Attempts {
		fmt.Printf("  core %d -> victim %d: %v\n", att.Thief, att.Victim, att.Reason)
	}
	fmt.Println("state:", m2.Loads(),
		"- the failed steal is explained by the concurrent success (§4.3)")
}
