// Quickstart: build a small machine, run Listing 1's balancer, and watch
// work conservation emerge — the paper's model in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sched"
)

func main() {
	// The §4.3 example machine: core 0 idle, core 1 with one thread,
	// core 2 overloaded with two.
	m := sched.MachineFromLoads(0, 1, 2)
	p := policy.NewDelta2()

	fmt.Println("initial state:", m.Loads(), "work-conserved:", m.WorkConserved())
	fmt.Println("potential d =", sched.PairwiseImbalance(p, m))

	for round := 1; !m.WorkConserved(); round++ {
		res := sched.SequentialRound(p, m)
		fmt.Printf("round %d: moved %d task(s) -> %v, d = %d\n",
			round, res.TasksMoved(), m.Loads(), sched.PairwiseImbalance(p, m))
		for _, att := range res.Attempts {
			if att.Succeeded() {
				fmt.Printf("  core %d stole task %v from core %d\n",
					att.Thief, att.MovedTasks, att.Victim)
			}
		}
	}
	fmt.Println("final state:", m.Loads(), "work-conserved:", m.WorkConserved())

	// The same in the optimistic concurrent mode: two idle cores race
	// for one stealable thread; one must fail re-validation.
	m2 := sched.MachineFromLoads(0, 0, 2)
	fmt.Println("\nconcurrent round on", m2.Loads(), "(two thieves, one stealable thread):")
	res := sched.ConcurrentRound(p, m2, []int{0, 1, 2})
	for _, att := range res.Attempts {
		fmt.Printf("  core %d -> victim %d: %v\n", att.Thief, att.Victim, att.Reason)
	}
	fmt.Println("state:", m2.Loads(),
		"- the failed steal is explained by the concurrent success (§4.3)")
}
