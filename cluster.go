package optsched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dsl"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/statespace"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Cluster is the session facade: one configured (policy, topology,
// backend) triple that can execute scenarios on any backend via Run and
// discharge the paper's proof obligations via Verify. Build one with New
// and functional options:
//
//	c, err := optsched.New(
//	    optsched.WithPolicy("delta2"),
//	    optsched.WithTopology(optsched.NUMATopology(2, 4)),
//	    optsched.WithBackend(optsched.BackendSim),
//	)
//	res, err := c.Run(ctx, optsched.SkewedScenario("burst", 400, 1500))
//	rep, err := c.Verify(ctx)
//
// A Cluster is immutable after New and safe for concurrent use — each
// Run and Verify constructs fresh policy instances through the
// cluster's factory — with one exception: a cluster carrying a
// WithTrace ring must not Run concurrently, because the trace ring is
// deliberately unsynchronized (see WithTrace).
type Cluster struct {
	policyName   string
	factory      func() sched.Policy
	spec         *policy.Spec       // set when the policy came from the registry
	policyTop    *topology.Topology // the topology the policy was built over (NeedsTopology specs)
	top          *topology.Topology
	backend      Backend
	cores        int
	seed         uint64
	sequential   bool
	idleBalance  bool
	horizon      int64
	maxRounds    int
	parallelism  int
	universe     statespace.Universe
	hasUniverse  bool
	obligations  []verify.ObligationID
	ring         *trace.Ring
	faults       []FaultEvent // WithFaults: default fault schedule
	dslSource    string       // set when the policy came from WithDSL
	verifyURL    string       // set by WithVerifyService: Verify delegates here
	verifyClient *VerifyClient
	fallbacks    int64 // verifyRemote→verifyLocal circuit-open fallbacks (atomic)
}

// options accumulates the functional options before validation.
type options struct {
	cluster     Cluster
	namedPolicy string // WithPolicy
	factoryName string // WithPolicyFactory
	factory     func() sched.Policy
	dslSource   string // WithDSL
	err         error
}

// Option configures a Cluster under construction.
type Option func(*options)

// WithPolicy selects a registered policy by name (see PolicySpecs).
// Topology-needing policies (numa-aware) are built over the cluster's
// topology, or the registry's default 2×4 NUMA machine when none is set.
func WithPolicy(name string) Option {
	return func(o *options) {
		if name == "" {
			o.fail(fmt.Errorf("optsched: WithPolicy with an empty name (omit the option for the delta2 default)"))
			return
		}
		o.namedPolicy = name
	}
}

// WithPolicyFactory installs a custom policy under the given name — the
// escape hatch for policies written as plain Go outside the registry.
// The factory must return a fresh instance per call and be safe for
// concurrent calls (Verify fans sharded obligation checks out over a
// worker pool).
func WithPolicyFactory(name string, factory func() Policy) Option {
	return func(o *options) {
		if name == "" || factory == nil {
			o.fail(fmt.Errorf("optsched: WithPolicyFactory needs a name and a factory"))
			return
		}
		o.factoryName = name
		o.factory = func() sched.Policy { return factory() }
	}
}

// WithDSL compiles a policy written in the scheduling DSL and installs
// it as the cluster's policy. Compilation errors surface from New.
func WithDSL(source string) Option {
	return func(o *options) {
		if source == "" {
			o.fail(fmt.Errorf("optsched: WithDSL with empty source"))
			return
		}
		o.dslSource = source
	}
}

// WithTopology sets the machine topology: the default machine width, the
// group assignment scenarios inherit, and the distance metric
// NUMA-aware policies consult.
func WithTopology(top *Topology) Option {
	return func(o *options) {
		if top == nil {
			o.fail(fmt.Errorf("optsched: WithTopology(nil)"))
			return
		}
		if err := top.Validate(); err != nil {
			o.fail(err)
			return
		}
		o.cluster.top = top
	}
}

// WithBackend selects the execution substrate for Run: BackendModel,
// BackendSim or BackendExecutor (default BackendModel).
func WithBackend(b Backend) Option {
	return func(o *options) {
		if b == nil {
			o.fail(fmt.Errorf("optsched: WithBackend(nil)"))
			return
		}
		o.cluster.backend = b
	}
}

// WithCores sets the default machine width used when neither the
// scenario nor a topology specifies one.
func WithCores(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("optsched: WithCores(%d)", n))
			return
		}
		o.cluster.cores = n
	}
}

// WithSeed fixes the deterministic RNG driving concurrent-round steal
// orders and the simulator. Zero selects the default seed 1 (the
// simulator's own convention), so seeds 0 and 1 are the same run.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.cluster.seed = seed }
}

// WithSequentialRounds switches the model and simulator backends to the
// §4.2 non-overlapping round mode instead of the default §3.1 optimistic
// concurrent mode.
func WithSequentialRounds() Option {
	return func(o *options) { o.cluster.sequential = true }
}

// WithIdleBalance enables the simulator's steal-on-idle: a core that
// runs out of work immediately attempts one three-step steal instead of
// waiting for the next periodic round.
func WithIdleBalance() Option {
	return func(o *options) { o.cluster.idleBalance = true }
}

// WithHorizon sets the simulator backend's default virtual-time horizon
// in ticks (default 1,000,000 — one simulated second).
func WithHorizon(ticks int64) Option {
	return func(o *options) {
		if ticks <= 0 {
			o.fail(fmt.Errorf("optsched: WithHorizon(%d)", ticks))
			return
		}
		o.cluster.horizon = ticks
	}
}

// WithMaxRounds caps the model backend's convergence loop and the
// verifier's sequential work-conservation search (default 1000).
func WithMaxRounds(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("optsched: WithMaxRounds(%d)", n))
			return
		}
		o.cluster.maxRounds = n
	}
}

// WithParallelism bounds the worker pool Verify's sharded driver uses:
// at most n shard checks run concurrently across all obligations
// (default GOMAXPROCS). The level changes only wall-clock time —
// verdicts, counters and witnesses are identical at every n, because
// the universe's shard partition is fixed per machine and refutations
// merge in deterministic enumeration order.
func WithParallelism(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.fail(fmt.Errorf("optsched: WithParallelism(%d) (need n >= 1; omit the option for GOMAXPROCS)", n))
			return
		}
		o.cluster.parallelism = n
	}
}

// WithTrace attaches a ring buffer that receives the simulator
// backend's trace events (spawns, steals, violations); the other
// backends ignore it. The ring is unsynchronized (tracing stays cheap
// on the simulator's hot path), so a cluster carrying one must not
// Run concurrently — use one cluster per concurrent run instead.
func WithTrace(ring *TraceRing) Option {
	return func(o *options) { o.cluster.ring = ring }
}

// WithVerifyService delegates Verify to a running schedverifyd daemon
// at the given base URL (e.g. "http://127.0.0.1:8377") instead of
// checking in-process. The daemon memoizes per-obligation results under
// content hashes, so repeated verification of unchanged policies
// returns without re-running any checker, and an edited policy re-runs
// only the obligations the edit invalidates.
//
// The delegation is resilient: the cluster keeps one VerifyClient
// (retries with jittered backoff, honors Retry-After, circuit breaker —
// see VerifyClient) across Verify calls, and when the breaker is open —
// the daemon is down or persistently failing — Verify transparently
// falls back to local in-process verification. Reports are
// byte-identical either way, so the fallback is observable only through
// latency and the daemon's stats. Tune the resilience knobs through
// VerifyServiceClient before the first Verify.
//
// Only registry policies (WithPolicy) and DSL policies (WithDSL) can be
// shipped over the wire; WithPolicyFactory closures cannot, and the
// combination is rejected by New. Registry policies are resolved
// against the daemon's registry by name, topology-needing ones over the
// daemon's default topology. The daemon's own -maxrounds setting
// governs the sequential work-conservation bound, so WithMaxRounds is
// rejected too; WithParallelism is ignored (the daemon's worker pool
// applies, and parallelism never changes verdicts).
func WithVerifyService(baseURL string) Option {
	return func(o *options) {
		if baseURL == "" {
			o.fail(fmt.Errorf("optsched: WithVerifyService with an empty URL"))
			return
		}
		o.cluster.verifyURL = baseURL
	}
}

// WithUniverse sets the bounded state space Verify quantifies over
// (default: the verifier's 3-core, 5-thread universe).
func WithUniverse(u Universe) Option {
	return func(o *options) {
		o.cluster.universe = u
		o.cluster.hasUniverse = true
	}
}

// WithFaults installs the cluster's default fault schedule: every
// scenario that does not carry its own Faults runs under these events,
// on whichever backend (see FaultEvent for how each backend interprets
// At). The schedule is validated against the resolved machine width at
// Run time, like the scenario's own fields.
func WithFaults(events ...FaultEvent) Option {
	return func(o *options) {
		if len(events) == 0 {
			o.fail(fmt.Errorf("optsched: WithFaults needs at least one event (omit the option for a healthy machine)"))
			return
		}
		o.cluster.faults = append([]FaultEvent(nil), events...)
	}
}

// WithObligations restricts Verify to the given proof obligations
// (default: all). At least one obligation is required — an empty
// restriction would make Verify vacuously pass.
func WithObligations(ids ...ObligationID) Option {
	return func(o *options) {
		if len(ids) == 0 {
			o.fail(fmt.Errorf("optsched: WithObligations needs at least one obligation (omit the option for all)"))
			return
		}
		o.cluster.obligations = ids
	}
}

func (o *options) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// New builds a Cluster from functional options. Every option is
// validated here — an invalid combination (unknown policy, broken DSL,
// conflicting policy sources, malformed topology) returns an error
// rather than surfacing later in Run.
func New(opts ...Option) (*Cluster, error) {
	o := &options{}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	c := o.cluster

	// Resolve the policy source: registry name, custom factory, or DSL.
	sources := 0
	if o.factory != nil {
		sources++
	}
	if o.dslSource != "" {
		sources++
	}
	if o.namedPolicy != "" {
		sources++
	}
	if sources > 1 {
		return nil, fmt.Errorf("optsched: WithPolicy, WithPolicyFactory and WithDSL are mutually exclusive")
	}
	switch {
	case o.factory != nil:
		c.policyName = o.factoryName
		c.factory = o.factory
	case o.dslSource != "":
		ast, err := dsl.Parse(o.dslSource)
		if err != nil {
			return nil, err
		}
		c.policyName = ast.Name
		c.dslSource = o.dslSource
		c.factory = func() sched.Policy { return dsl.Compile(ast) }
	default:
		name := o.namedPolicy
		if name == "" {
			name = "delta2"
		}
		spec, ok := policy.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("optsched: unknown policy %q (known: %v)", name, policy.Names())
		}
		top := c.top
		if spec.NeedsTopology {
			if top == nil {
				top = policy.DefaultTopology()
			}
			c.policyTop = top
		}
		c.policyName = name
		c.spec = &spec
		c.factory = func() sched.Policy { return spec.New(top) }
	}

	// A topology fixes the machine width; an explicit conflicting
	// WithCores would silently run the policy on a machine it was not
	// built for, so reject the combination outright.
	if c.cores > 0 && c.top != nil && c.top.NCores != c.cores {
		return nil, fmt.Errorf("optsched: WithCores(%d) conflicts with the %d-core topology",
			c.cores, c.top.NCores)
	}
	if c.hasUniverse {
		if c.universe.Cores <= 0 {
			return nil, fmt.Errorf("optsched: WithUniverse needs Cores > 0 (the verifier would silently substitute its default universe)")
		}
		if err := c.universe.Validate(); err != nil {
			return nil, err
		}
	}
	for _, id := range c.obligations {
		if !verify.KnownObligation(id) {
			return nil, fmt.Errorf("optsched: unknown obligation %q (known: %v)",
				id, verify.AllObligations())
		}
	}
	if c.verifyURL != "" {
		if o.factory != nil {
			return nil, fmt.Errorf("optsched: WithVerifyService cannot ship a WithPolicyFactory closure; use WithPolicy or WithDSL")
		}
		if c.maxRounds != 0 && c.maxRounds != 1000 {
			return nil, fmt.Errorf("optsched: WithMaxRounds conflicts with WithVerifyService (the daemon's -maxrounds setting governs)")
		}
	}

	if c.backend == nil {
		c.backend = BackendModel
	}
	if c.seed == 0 {
		c.seed = 1
	}
	if c.horizon == 0 {
		c.horizon = 1_000_000
	}
	if c.maxRounds == 0 {
		c.maxRounds = 1000
	}
	if c.verifyURL != "" {
		c.verifyClient = &VerifyClient{BaseURL: c.verifyURL}
	}
	return &c, nil
}

// PolicyName returns the configured policy's name.
func (c *Cluster) PolicyName() string { return c.policyName }

// NewPolicy constructs a fresh instance of the cluster's policy — fresh
// because policies may carry per-round caches that must not be shared
// across machines or workers.
func (c *Cluster) NewPolicy() Policy { return c.factory() }

// PolicySpec returns the registry metadata of the cluster's policy, or
// false for custom-factory and DSL policies.
func (c *Cluster) PolicySpec() (PolicySpec, bool) {
	if c.spec == nil {
		return PolicySpec{}, false
	}
	return *c.spec, true
}

// Topology returns the cluster's topology, or nil when none was set.
func (c *Cluster) Topology() *Topology { return c.top }

// Backend returns the cluster's execution backend.
func (c *Cluster) Backend() Backend { return c.backend }

// Seed returns the deterministic RNG seed (never zero).
func (c *Cluster) Seed() uint64 { return c.seed }

// Sequential reports whether rounds run in the §4.2 sequential mode.
func (c *Cluster) Sequential() bool { return c.sequential }

// Run executes the scenario on the cluster's backend and returns the
// unified measurement snapshot. It honors ctx: cancellation makes Run
// return ctx's error promptly. The model and simulator backends stop
// computing at that point; the executor cannot un-submit queued work,
// so its pool keeps draining in the background (see BackendExecutor).
func (c *Cluster) Run(ctx context.Context, sc Scenario) (*Result, error) {
	if sc.Workload != nil && c.backend != BackendSim {
		return nil, fmt.Errorf("optsched: scenario %q carries a simulator-native workload; backend %s needs Batches",
			sc.Name, c.backend.Name())
	}
	cores, groups, err := c.layout(sc)
	if err != nil {
		return nil, err
	}
	return c.backend.Execute(ctx, c, sc, cores, groups)
}

// layout resolves the machine width and group assignment for a
// scenario: the scenario's own values win, then the cluster topology,
// then WithCores, then an 8-core flat default.
func (c *Cluster) layout(sc Scenario) (int, []int, error) {
	cores := sc.Cores
	if cores <= 0 {
		switch {
		case c.top != nil:
			cores = c.top.NCores
		case c.cores > 0:
			cores = c.cores
		default:
			cores = 8
		}
	}
	// A topology-built policy consults per-core distances; a machine
	// wider than its topology would index past NodeOf.
	if c.policyTop != nil && cores > c.policyTop.NCores {
		return 0, nil, fmt.Errorf(
			"optsched: policy %q is built over a %d-core topology but the scenario needs %d cores (set WithTopology)",
			c.policyName, c.policyTop.NCores, cores)
	}
	groups := sc.Groups
	if groups == nil && c.top != nil && c.top.NCores == cores {
		groups = append([]int(nil), c.top.NodeOf...)
	}
	if err := sc.validate(cores); err != nil {
		return 0, nil, err
	}
	// The cluster-default schedule only applies when the scenario has
	// none of its own, and only then needs to fit this machine width.
	if len(sc.Faults) == 0 && len(c.faults) > 0 {
		if err := validateFaults(c.faults, cores); err != nil {
			return 0, nil, fmt.Errorf("optsched: cluster fault schedule: %w", err)
		}
	}
	return cores, groups, nil
}

// faultSchedule resolves the fault schedule a backend applies: the
// scenario's own Faults win, then the cluster default (WithFaults),
// then none.
func (c *Cluster) faultSchedule(sc Scenario) []FaultEvent {
	if len(sc.Faults) > 0 {
		return sc.Faults
	}
	return c.faults
}

// Verify discharges the paper's proof obligations for the cluster's
// policy over the configured universe. Each obligation's state space is
// split into disjoint shards that drain through one worker pool (size
// WithParallelism, default GOMAXPROCS), and the whole suite aborts
// early when ctx is cancelled, returning the partial report alongside
// ctx's error. Reports are deterministic: the parallelism level never
// changes verdicts, counters or witnesses.
func (c *Cluster) Verify(ctx context.Context) (*Report, error) {
	if c.verifyURL != "" {
		return c.verifyRemote(ctx)
	}
	return c.verifyLocal(ctx)
}

// verifyLocal is the in-process verification path — the default, and
// the fallback when the verify-service circuit breaker is open.
func (c *Cluster) verifyLocal(ctx context.Context) (*Report, error) {
	cfg := verify.Config{MaxRounds: c.maxRounds, Obligations: c.obligations, Parallelism: c.parallelism}
	if c.hasUniverse {
		cfg.Universe = c.universe
	}
	uCores := cfg.Universe.Cores
	if uCores == 0 {
		uCores = verify.DefaultUniverse().Cores
	}
	if c.policyTop != nil && uCores > c.policyTop.NCores {
		return nil, fmt.Errorf(
			"optsched: policy %q is built over a %d-core topology but the universe has %d cores (set WithTopology)",
			c.policyName, c.policyTop.NCores, uCores)
	}
	return verify.PolicyContext(ctx, c.policyName, c.factory, cfg)
}

// verifyRemote discharges the obligations through the schedverifyd
// daemon configured by WithVerifyService (see VerifyClient).
func (c *Cluster) verifyRemote(ctx context.Context) (*Report, error) {
	req := service.Request{}
	switch {
	case c.spec != nil:
		req.Policy = c.spec.Name
	case c.dslSource != "":
		req.Source = c.dslSource
	default:
		// New rejects WithPolicyFactory+WithVerifyService, and the default
		// policy is the registry's delta2; policyName is always a registry
		// name here.
		req.Policy = c.policyName
	}
	if c.hasUniverse {
		u := service.UniverseSpecOf(c.universe)
		req.Universe = &u
	}
	for _, id := range c.obligations {
		req.Obligations = append(req.Obligations, string(id))
	}
	rep, err := c.verifyClient.Verify(ctx, req)
	if errors.Is(err, ErrCircuitOpen) {
		// The daemon is down or persistently failing: the session still
		// owes its caller a verdict, and the local driver produces the
		// byte-identical report (only slower, with no memoization).
		atomic.AddInt64(&c.fallbacks, 1)
		return c.verifyLocal(ctx)
	}
	return rep, err
}

// VerifyServiceStatus is the cluster-level health view of the
// WithVerifyService delegation: the resilient client's circuit-breaker
// snapshot plus how many Verify calls the breaker diverted to local
// in-process verification.
type VerifyServiceStatus struct {
	// Breaker is the shared VerifyClient's breaker snapshot.
	Breaker BreakerState
	// LocalFallbacks counts Verify calls that returned a locally
	// computed report because the breaker was open.
	LocalFallbacks int64
}

// VerifyServiceStatus reports the verify-service delegation's health.
// The second return is false when the cluster was built without
// WithVerifyService (there is no delegation to report on).
func (c *Cluster) VerifyServiceStatus() (VerifyServiceStatus, bool) {
	if c.verifyClient == nil {
		return VerifyServiceStatus{}, false
	}
	return VerifyServiceStatus{
		Breaker:        c.verifyClient.Breaker(),
		LocalFallbacks: atomic.LoadInt64(&c.fallbacks),
	}, true
}

// VerifyServiceClient returns the shared resilient client behind
// WithVerifyService (nil without that option). Its backoff and breaker
// knobs may be tuned before the first Verify; the client must be reused
// as-is afterwards, since the circuit breaker accumulates state across
// calls.
func (c *Cluster) VerifyServiceClient() *VerifyClient { return c.verifyClient }
