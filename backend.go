package optsched

import (
	"context"
	"fmt"
)

// Backend is one execution substrate for the verified three-step
// protocol. The library ships three — the bare model (BackendModel), the
// discrete-event simulator (BackendSim) and the real work-stealing
// executor (BackendExecutor) — which is the paper's portability claim
// made concrete: one policy abstraction, proved once, runs anywhere.
//
// Execute receives the owning cluster (for the policy factory, seed and
// mode), the scenario, and the resolved machine width and group
// assignment (len(groups) == cores when non-nil). Cluster.Run filters
// simulator-native Workload scenarios to BackendSim before Execute is
// called, so other backends only ever see Batches. Implementations must
// honor ctx and return a Result with the fields their substrate can
// measure (see Result's field docs).
type Backend interface {
	// Name identifies the backend in results and listings.
	Name() string
	// Execute runs the scenario and returns the measurement snapshot.
	Execute(ctx context.Context, c *Cluster, sc Scenario, cores int, groups []int) (*Result, error)
}

// The built-in execution backends.
var (
	// BackendModel executes balancing rounds on the bare scheduler model
	// until work conservation — the substrate the proofs quantify over.
	BackendModel Backend = modelBackend{}
	// BackendSim executes the scenario on the discrete-event multicore
	// simulator — the substrate the wasted-cores experiments run on.
	BackendSim Backend = simBackend{}
	// BackendExecutor executes the scenario on the real work-stealing
	// goroutine pool — the protocol under actual concurrency.
	BackendExecutor Backend = executorBackend{}
)

// Backends lists the built-in backends in model → sim → executor order.
func Backends() []Backend {
	return []Backend{BackendModel, BackendSim, BackendExecutor}
}

// BackendByName resolves a built-in backend from its name — the CLI
// entry point.
func BackendByName(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	known := make([]string, 0, 3)
	for _, b := range Backends() {
		known = append(known, b.Name())
	}
	return nil, fmt.Errorf("optsched: unknown backend %q (known: %v)", name, known)
}

// newResult seeds the shared Result fields for one run.
func newResult(b Backend, c *Cluster, sc Scenario, cores int) *Result {
	return &Result{
		Backend:  b.Name(),
		Policy:   c.PolicyName(),
		Scenario: sc.Name,
		Cores:    cores,
		Tasks:    sc.TotalTasks(),
	}
}
