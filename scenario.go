package optsched

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/workload"
)

// Workload is a simulator-native workload generator (see
// internal/workload): barrier applications, open-loop databases, the E6
// traps. Scenarios carrying one run only on BackendSim; portable
// scenarios describe their work as Batches instead.
type Workload = workload.Workload

// Batch is one group of identical tasks arriving together: the portable
// unit of work every backend knows how to interpret.
//
//   - BackendModel places the tasks on the core's runqueue and balances
//     until work conservation (arrival time is ignored — the model has no
//     clock).
//   - BackendSim spawns the tasks at time At (in virtual ticks, 1 tick =
//     1µs) and each computes for Work ticks before exiting.
//   - BackendExecutor submits the tasks up front to the worker with the
//     batch's core index and each holds its worker for Work microseconds
//     of wall time (sleeping, not spinning — wall-clock results are
//     comparable across backends, CPU-time measurements are not; arrival
//     time is ignored — submission is the arrival).
type Batch struct {
	// At is the arrival time in virtual ticks (BackendSim only).
	At int64
	// Core is where the tasks are born. Backends with fewer cores than
	// Core treat it modulo the machine width.
	Core int
	// Tasks is how many tasks the batch contains.
	Tasks int
	// Work is each task's CPU demand: virtual ticks in the simulator,
	// microseconds of wall time holding a worker in the executor
	// (sleeping, not spinning), ignored by the model. Zero means
	// DefaultWork.
	Work int64
	// Weight is each task's load weight (zero = DefaultWeight), the input
	// to weight-aware policies on the model and simulator backends. The
	// executor ignores it: its published load counters are thread
	// counts, so every executor task weighs one.
	Weight int64
}

// DefaultWork is the per-task CPU demand a Batch gets when it leaves
// Work zero: 1000 virtual ticks (1ms) — long enough for balancing rounds
// to observe the queue, short enough for quick runs.
const DefaultWork int64 = 1000

// DefaultWeight is the per-task load weight used when a Batch leaves
// Weight zero — the unit weight of a default-niceness thread.
const DefaultWeight int64 = 1024

// work returns the batch's effective per-task CPU demand.
func (b Batch) work() int64 {
	if b.Work > 0 {
		return b.Work
	}
	return DefaultWork
}

// weight returns the batch's effective per-task load weight.
func (b Batch) weight() int64 {
	if b.Weight > 0 {
		return b.Weight
	}
	return DefaultWeight
}

// FaultEvent is one scripted fail-stop core fault or hotplug recovery,
// the portable unit of a fault schedule. Like Batch, only the
// interpretation of time changes across backends:
//
//   - BackendModel applies the event before balancing-round index At
//     (fail: the core goes offline, its queue is re-homed through the
//     policy's rescue rule or stranded without one; revive: the core
//     rejoins and may be stolen from/to again).
//   - BackendSim applies it at virtual tick At, preempting whatever the
//     core was running (the interrupted task keeps its remaining work).
//   - BackendExecutor applies it after At microseconds of wall time:
//     the worker goroutine stops executing and its queue is re-homed
//     (or stranded) exactly like the model.
type FaultEvent struct {
	// At is when the event fires: balancing-round index on the model,
	// virtual ticks on the simulator, elapsed microseconds of wall time
	// on the executor.
	At int64
	// Core is the core that fails or revives. Backends with fewer cores
	// treat it modulo the machine width, like Batch.Core.
	Core int
	// Revive marks a hotplug recovery instead of a failure.
	Revive bool
}

// Scenario is a backend-portable workload description: where tasks are
// born, how many, and how much work each carries. The same Scenario runs
// unchanged on the model, the simulator and the real executor via
// Cluster.Run — only the interpretation of "work" changes (see Batch).
//
// A scenario with no Batches and no Workload describes an already-idle
// machine — a legitimate state in the model-checker style — and every
// backend returns a trivially converged Result for it.
type Scenario struct {
	// Name identifies the scenario in results.
	Name string
	// Cores overrides the cluster's machine width when positive.
	Cores int
	// Groups assigns cores to scheduling groups (NUMA nodes); nil means
	// the cluster topology's assignment (when widths match) or a flat
	// machine.
	Groups []int
	// Batches lists the scenario's work, the portable representation.
	Batches []Batch
	// Horizon bounds the simulator's virtual time when positive
	// (BackendSim only; the model runs to convergence, the executor to
	// completion).
	Horizon int64
	// Workload optionally carries a simulator-native generator instead
	// of Batches. Scenarios with a Workload run only on BackendSim;
	// Cluster.Run rejects them on the other backends.
	Workload Workload
	// Faults is the scenario's fault schedule, applied in order on every
	// backend. Empty means the cluster default (WithFaults), which in
	// turn defaults to a healthy machine.
	Faults []FaultEvent
}

// TotalTasks sums the scenario's batch sizes. Workload-driven scenarios
// report zero: their task count is up to the generator.
func (sc Scenario) TotalTasks() int {
	n := 0
	for _, b := range sc.Batches {
		n += b.Tasks
	}
	return n
}

// validate checks the scenario against a resolved machine width.
func (sc Scenario) validate(cores int) error {
	if sc.Name == "" {
		return fmt.Errorf("optsched: scenario needs a Name")
	}
	if sc.Workload != nil && len(sc.Batches) > 0 {
		return fmt.Errorf("optsched: scenario %q has both Batches and a Workload; pick one", sc.Name)
	}
	for i, b := range sc.Batches {
		if b.Tasks <= 0 {
			return fmt.Errorf("optsched: scenario %q batch %d has %d tasks", sc.Name, i, b.Tasks)
		}
		if b.Core < 0 {
			return fmt.Errorf("optsched: scenario %q batch %d on negative core %d", sc.Name, i, b.Core)
		}
		if b.At < 0 || b.Work < 0 || b.Weight < 0 {
			return fmt.Errorf("optsched: scenario %q batch %d has negative At/Work/Weight", sc.Name, i)
		}
	}
	if sc.Groups != nil && len(sc.Groups) != cores {
		return fmt.Errorf("optsched: scenario %q has %d group entries for %d cores",
			sc.Name, len(sc.Groups), cores)
	}
	if err := validateFaults(sc.Faults, cores); err != nil {
		return fmt.Errorf("optsched: scenario %q: %w", sc.Name, err)
	}
	return nil
}

// validateFaults replays a fault schedule against a fresh online-state
// tracker, rejecting schedules no backend could apply: out-of-order
// events, failing an already-offline core, reviving an online one, or
// taking the last online core down. Core indices wrap modulo the
// machine width first, exactly as the backends apply them.
func validateFaults(events []FaultEvent, cores int) error {
	if len(events) == 0 {
		return nil
	}
	state := topology.NewOnlineState(cores)
	var prev int64
	for i, ev := range events {
		if ev.At < 0 {
			return fmt.Errorf("fault event %d has negative At %d", i, ev.At)
		}
		if ev.At < prev {
			return fmt.Errorf("fault event %d at %d is out of order (previous event at %d)", i, ev.At, prev)
		}
		prev = ev.At
		if ev.Core < 0 {
			return fmt.Errorf("fault event %d on negative core %d", i, ev.Core)
		}
		core := ev.Core % cores
		var err error
		if ev.Revive {
			err = state.Revive(core)
		} else {
			err = state.Fail(core)
		}
		if err != nil {
			return fmt.Errorf("fault event %d: %w", i, err)
		}
	}
	return nil
}

// ScenarioFromLoads builds the model-checker-style scenario: loads[i]
// unit tasks born on core i, the shape of the paper's 0/1/2
// counterexample machines.
func ScenarioFromLoads(name string, loads ...int) Scenario {
	sc := Scenario{Name: name, Cores: len(loads)}
	for core, n := range loads {
		if n > 0 {
			sc.Batches = append(sc.Batches, Batch{Core: core, Tasks: n})
		}
	}
	return sc
}

// SkewedScenario builds the canonical balancing stress: every task born
// on core 0, as if one connection produced all the work. The balancer
// must spread it.
func SkewedScenario(name string, tasks int, work int64) Scenario {
	return Scenario{Name: name, Batches: []Batch{{Core: 0, Tasks: tasks, Work: work}}}
}

// ForkJoinScenario builds `make -j`-style build bursts: waves batches
// of width tasks each, forking on core, separated by gap (virtual
// ticks; the executor submits everything up front).
func ForkJoinScenario(name string, waves, width int, work, gap int64, core int) Scenario {
	sc := Scenario{Name: name}
	for wave := 0; wave < waves; wave++ {
		sc.Batches = append(sc.Batches,
			Batch{At: int64(wave) * gap, Core: core, Tasks: width, Work: work})
	}
	return sc
}

// BurstyScenario builds square-wave load: bursts of tasks arriving
// together on one core, separated by quiet periods — the pattern that
// exposes slow rebalancing as latency spikes. It is the same batch
// shape as ForkJoinScenario under workload-specific parameter names.
func BurstyScenario(name string, bursts, tasksPerBurst int, work, period int64, core int) Scenario {
	return ForkJoinScenario(name, bursts, tasksPerBurst, work, period, core)
}
