package optsched

import (
	"context"
	"time"

	"repro/internal/sim"
)

// simBackend runs the scenario on the discrete-event multicore
// simulator: virtual time, per-core runqueues, periodic balancing
// rounds — the repository's stand-in for a patched kernel on a testbed.
type simBackend struct{}

// Name implements Backend.
func (simBackend) Name() string { return "sim" }

// Execute implements Backend. The horizon comes from the scenario, then
// the cluster (WithHorizon). Cancellation is cooperative inside the
// simulator's event loop (every 256 events).
func (b simBackend) Execute(ctx context.Context, c *Cluster, sc Scenario, cores int, groups []int) (*Result, error) {
	start := time.Now()
	mode := sim.RoundConcurrent
	if c.Sequential() {
		mode = sim.RoundSequential
	}
	s := sim.New(sim.Config{
		Cores:       cores,
		Policy:      c.NewPolicy(),
		Groups:      groups,
		Mode:        mode,
		Seed:        c.Seed(),
		IdleBalance: c.idleBalance,
		Ring:        c.ring,
	})
	if sc.Workload != nil {
		sc.Workload.Setup(s)
	} else {
		for _, batch := range sc.Batches {
			for i := 0; i < batch.Tasks; i++ {
				s.SpawnAt(batch.At, batch.Core%cores, batch.weight(), sim.RunOnce(batch.work()))
			}
		}
	}
	for _, ev := range c.faultSchedule(sc) {
		if ev.Revive {
			s.ReviveAt(ev.At, ev.Core%cores)
		} else {
			s.FailAt(ev.At, ev.Core%cores)
		}
	}

	horizon := sc.Horizon
	if horizon <= 0 {
		horizon = c.horizon
	}
	st, err := s.RunContext(ctx, horizon)
	if err != nil {
		return nil, err
	}

	res := newResult(b, c, sc, cores)
	res.Completed = st.Completed
	res.Steals = st.Steals
	res.StealFails = st.StealFails
	res.Rounds = st.Rounds
	res.Converged = res.Tasks == 0 || res.Completed >= int64(res.Tasks)
	res.Faults = st.Faults
	res.FaultRescued = st.Rescued
	res.Orphaned = st.Orphaned
	res.VirtualTicks = st.Duration
	res.WastedPct = st.WastedPct
	res.Sim = &st
	res.Wall = time.Since(start)
	return res, nil
}
