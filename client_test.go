package optsched

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/verify"
)

// doneEnvelope renders the daemon's 200 response for a minimal finished
// report.
func doneEnvelope(t *testing.T) []byte {
	t.Helper()
	rep := &verify.Report{
		Policy:   "p",
		Universe: "u",
		Results:  []verify.Result{{ID: verify.ObLemma1, Passed: true, StatesChecked: 7}},
	}
	raw, err := verify.ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	passed := true
	env, err := json.Marshal(service.SubmitResponse{Status: "done", Cached: true, Passed: &passed, Report: raw})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// fastClient returns a client tuned so retry loops resolve in
// milliseconds.
func fastClient(baseURL string) *VerifyClient {
	return &VerifyClient{
		BaseURL:          baseURL,
		PollInterval:     time.Millisecond,
		MaxPollInterval:  4 * time.Millisecond,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	}
}

func TestVerifyClientBreakerOpensAndFailsFast(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	_, err := c.Verify(context.Background(), VerifyRequest{Policy: "delta2"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Verify against a failing daemon returned %v, want ErrCircuitOpen", err)
	}
	if got := hits.Load(); got != int64(c.BreakerThreshold) {
		t.Errorf("breaker opened after %d requests, want %d", got, c.BreakerThreshold)
	}
	// While open, calls fail fast without touching the daemon.
	if _, err := c.Verify(context.Background(), VerifyRequest{Policy: "delta2"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if got := hits.Load(); got != int64(c.BreakerThreshold) {
		t.Errorf("open breaker still sent a request (%d total)", got)
	}
}

func TestVerifyClientBreakerHalfOpenRecovery(t *testing.T) {
	env := doneEnvelope(t)
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Write(env)
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	c.BreakerThreshold = 2
	c.BreakerCooldown = 20 * time.Millisecond
	if _, err := c.Verify(context.Background(), VerifyRequest{Policy: "delta2"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("first Verify returned %v, want ErrCircuitOpen", err)
	}
	time.Sleep(30 * time.Millisecond) // past the cooldown: half-open
	rep, err := c.Verify(context.Background(), VerifyRequest{Policy: "delta2"})
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if rep.Policy != "p" || !rep.Passed() {
		t.Errorf("recovered report %+v", rep)
	}
	if hits.Load() != 3 {
		t.Errorf("recovery took %d requests, want 3 (2 failures + 1 probe)", hits.Load())
	}
	if c.fails != 0 {
		t.Errorf("successful probe left the breaker at %d failures, want fully closed", c.fails)
	}
}

func TestVerifyClientHonorsRetryAfterOn429(t *testing.T) {
	env := doneEnvelope(t)
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write(env)
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	start := time.Now()
	rep, err := c.Verify(context.Background(), VerifyRequest{Policy: "delta2"})
	if err != nil || !rep.Passed() {
		t.Fatalf("Verify after backpressure: rep=%v err=%v", rep, err)
	}
	// The jittered Retry-After sleep is in [500ms, 1.5s).
	if took := time.Since(start); took < 450*time.Millisecond {
		t.Errorf("resubmitted after %v, ignoring Retry-After: 1", took)
	}
	if hits.Load() != 2 {
		t.Errorf("429 handling took %d requests, want 2", hits.Load())
	}
	if c.fails != 0 {
		t.Errorf("backpressure counted as %d failures toward the breaker, want 0", c.fails)
	}
}

func TestVerifyClientPollsQueuedJobWithBackoff(t *testing.T) {
	env := doneEnvelope(t)
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.SubmitResponse{Status: "queued", JobID: "j-1", Poll: "/v1/jobs/j-1"})
	})
	mux.HandleFunc("GET /v1/jobs/j-1", func(w http.ResponseWriter, _ *http.Request) {
		if polls.Add(1) < 3 {
			json.NewEncoder(w).Encode(service.SubmitResponse{Status: "running", JobID: "j-1"})
			return
		}
		w.Write(env)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := fastClient(srv.URL).Verify(context.Background(), VerifyRequest{Policy: "delta2"})
	if err != nil || !rep.Passed() {
		t.Fatalf("queued flow: rep=%v err=%v", rep, err)
	}
	if polls.Load() != 3 {
		t.Errorf("job polled %d times, want 3", polls.Load())
	}
}

func TestVerifyClientPropagatesContextDeadline(t *testing.T) {
	env := doneEnvelope(t)
	var got service.Request
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewDecoder(r.Body).Decode(&got)
		w.Write(env)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := fastClient(srv.URL).Verify(ctx, VerifyRequest{Policy: "delta2"}); err != nil {
		t.Fatal(err)
	}
	if got.TimeoutMs <= 0 || got.TimeoutMs > 5000 {
		t.Errorf("request carried timeout_ms=%d, want the ctx deadline (0 < ms <= 5000)", got.TimeoutMs)
	}
}

func TestVerifyClientRejects4xxWithoutRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"unknown policy"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	_, err := fastClient(srv.URL).Verify(context.Background(), VerifyRequest{Policy: "nope"})
	if err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("bad request returned %v, want a permanent non-breaker error", err)
	}
	if hits.Load() != 1 {
		t.Errorf("4xx retried: %d requests, want 1", hits.Load())
	}
}

func TestVerifyClientFlushCache(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete || r.URL.Path != "/v1/cache" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"flushed": 7}`))
	}))
	defer srv.Close()
	n, err := fastClient(srv.URL).FlushCache(context.Background())
	if err != nil || n != 7 {
		t.Errorf("FlushCache = %d, %v, want 7, nil", n, err)
	}
}

func TestBackoffDelayAndJitterBounds(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	for attempt := 0; attempt <= 8; attempt++ {
		raw := base * (1 << attempt)
		if raw > cap {
			raw = cap
		}
		for i := 0; i < 100; i++ {
			if d := backoffDelay(attempt, base, cap); d < raw/2 || d >= raw {
				t.Fatalf("backoffDelay(%d) = %v outside [%v, %v)", attempt, d, raw/2, raw)
			}
		}
	}
	for i := 0; i < 100; i++ {
		if d := jitter(time.Second); d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("jitter(1s) = %v outside [500ms, 1.5s)", d)
		}
	}
	if jitter(0) != 0 {
		t.Error("jitter(0) != 0")
	}
}
