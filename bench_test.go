package optsched

// The benchmark harness: one benchmark per experiment in EXPERIMENTS.md
// (regenerating the paper-shaped numbers under testing.B), plus
// micro-benchmarks of the protocol's building blocks. Run with
//
//	go test -bench=. -benchmem
//
// The per-iteration work of the E* benchmarks is one full experiment
// regeneration, so ns/op is the cost of reproducing that table.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// --- Experiment regeneration benches (one per table/figure) ---

func BenchmarkE1Lemma1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E1Lemma1(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE2SequentialWC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E2SequentialConvergence(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE3Counterexample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E3Counterexample(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE4Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E4Potential(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE5RoundCost(b *testing.B) {
	// The real Figure-1 numbers: ns per balancing round by core count
	// and mode, measured by testing.B rather than the harness's rough
	// timer.
	for _, cores := range []int{4, 16, 64, 256} {
		loads := make([]int, cores)
		for i := range loads {
			loads[i] = i * 7 % 5
		}
		p := policy.NewDelta2()
		b.Run(benchName("sequential", cores), func(b *testing.B) {
			m := sched.MachineFromLoads(loads...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.SequentialRound(p, m)
			}
		})
		b.Run(benchName("concurrent", cores), func(b *testing.B) {
			m := sched.MachineFromLoads(loads...)
			order := sched.IdentityOrder(cores)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.ConcurrentRound(p, m, order)
			}
		})
	}
}

func benchName(mode string, cores int) string {
	return mode + "/cores=" + itoa(cores)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkE5DSLOverhead(b *testing.B) {
	// Interpreted DSL policy vs native Go policy on the same round —
	// design constraint (iii): low overhead.
	src := `policy delta2_dsl {
	    load   = self.ready.size + self.current.size
	    filter = stealee.load - thief.load >= 2
	    steal  = 1
	}`
	dslPol, _, err := dsl.CompileSource(src)
	if err != nil {
		b.Fatal(err)
	}
	loads := []int{0, 3, 1, 4, 0, 2, 5, 1}
	b.Run("native", func(b *testing.B) {
		p := policy.NewDelta2()
		m := sched.MachineFromLoads(loads...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sched.SequentialRound(p, m)
		}
	})
	b.Run("dsl-interpreted", func(b *testing.B) {
		m := sched.MachineFromLoads(loads...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sched.SequentialRound(dslPol, m)
		}
	})
}

func BenchmarkE6WastedCores(b *testing.B) {
	// One full motivation run per policy: db trap + barrier trap.
	for _, name := range []string{"weighted", "cfs-group-buggy", "null"} {
		b.Run("db/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trap := workload.NewDBTrap()
				p, _ := policy.New(name)
				s := sim.New(sim.Config{Cores: trap.Cores(), Policy: p,
					Groups: trap.Groups(), Seed: 11})
				trap.Setup(s)
				st := s.Run(1_500_000)
				if st.Rounds == 0 {
					b.Fatal("no rounds")
				}
			}
		})
		b.Run("barrier/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trap := workload.NewBarrierTrap(1700)
				p, _ := policy.New(name)
				s := sim.New(sim.Config{Cores: trap.Cores(), Policy: p,
					Groups: trap.Groups(), Seed: 11})
				trap.Setup(s)
				s.Run(400_000)
			}
		})
	}
}

func BenchmarkE7Hierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E7Hierarchical(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE8Concurrent(b *testing.B) {
	// The adversarial concurrent WC check: the costliest verification.
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
	factory := func() sched.Policy { return policy.NewDelta2() }
	for i := 0; i < b.N; i++ {
		res := verify.CheckWorkConservationConcurrent(context.Background(), factory, u)
		if !res.Passed {
			b.Fatal(res.Witness)
		}
	}
}

func BenchmarkE9Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.E9ConvergenceRate(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkE10ServiceTail(b *testing.B) {
	// The open-loop 90%-load tail comparison: four policies through the
	// event loop, each with a half-horizon drain.
	for i := 0; i < b.N; i++ {
		r := experiment.E10ServiceTail(context.Background())
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

// --- Protocol micro-benches ---

func BenchmarkSelect(b *testing.B) {
	// Step 1+2 in isolation: the lock-free path every core runs each
	// round.
	for _, cores := range []int{4, 64} {
		loads := make([]int, cores)
		for i := range loads {
			loads[i] = i % 4
		}
		m := sched.MachineFromLoads(loads...)
		p := policy.NewDelta2()
		b.Run("cores="+itoa(cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched.Select(p, m, 0)
			}
		})
	}
}

func BenchmarkStealRevalidated(b *testing.B) {
	// Step 3 with re-validation, on a hit (steal succeeds) and a miss
	// (filter flipped).
	p := policy.NewDelta2()
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := sched.MachineFromLoads(0, 3)
			att := sched.Select(p, m, 0)
			b.StartTimer()
			sched.Steal(p, m, &att)
		}
	})
	b.Run("miss", func(b *testing.B) {
		m := sched.MachineFromLoads(1, 2)
		att := sched.Attempt{Thief: 0, Victim: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := att
			sched.Steal(p, m, &a) // gap 1: re-validation fails, no mutation
		}
	})
}

func BenchmarkPotentialFunctions(b *testing.B) {
	// Ablation: the paper's pairwise-sum potential vs the cheaper
	// max-min alternative.
	loads := make([]int, 64)
	for i := range loads {
		loads[i] = i % 5
	}
	m := sched.MachineFromLoads(loads...)
	p := policy.NewDelta2()
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.PairwiseImbalance(p, m)
		}
	})
	b.Run("maxmin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sched.MaxMinImbalance(p, m)
		}
	})
}

func BenchmarkEngineThroughput(b *testing.B) {
	// The executor under skewed submission: end-to-end cost per task
	// including steals, by policy.
	for _, name := range []string{"delta2", "null"} {
		b.Run(name, func(b *testing.B) {
			pool := engine.NewPool(4, func() sched.Policy {
				p, _ := policy.New(name)
				return p
			}, engine.Options{IdleSleep: 10 * time.Microsecond})
			defer pool.Close()
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.SubmitTo(0, func() { sink.Add(1) })
			}
			pool.Wait()
			if sink.Load() != int64(b.N) {
				b.Fatalf("executed %d of %d", sink.Load(), b.N)
			}
		})
	}
}

func BenchmarkSimulatorEventRate(b *testing.B) {
	// Simulator throughput: events per second on the DB trap, the
	// busiest scenario.
	trap := workload.NewDBTrap()
	for i := 0; i < b.N; i++ {
		p, _ := policy.New("weighted")
		s := sim.New(sim.Config{Cores: trap.Cores(), Policy: p, Groups: trap.Groups(), Seed: 3})
		workload.NewDBTrap().Setup(s)
		s.Run(200_000)
	}
}

func BenchmarkVerifyFullReport(b *testing.B) {
	// The complete Leon-substitute pipeline on Listing 1's policy.
	u := statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	for i := 0; i < b.N; i++ {
		rep := verify.Policy("delta2", func() sched.Policy { return policy.NewDelta2() },
			verify.Config{Universe: u})
		if !rep.Passed() {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkVerifyParallel is the sharded-driver headline: the full
// 8-obligation suite over a 4-core / 6-thread universe — a space the
// single-goroutine-per-obligation driver could not afford as a default —
// at increasing worker-pool sizes. "sequential" is Config.Sequential
// (every shard on the calling goroutine); the parallel levels share one
// pool across all obligations. Verdicts, counters and witnesses are
// asserted identical across levels; only ns/op should move. On a
// multi-core machine parallel=4 runs ≥ 2× faster than sequential; a
// single-core machine (GOMAXPROCS=1) times-shares the workers and shows
// parity instead.
func BenchmarkVerifyParallel(b *testing.B) {
	u := statespace.Universe{Cores: 4, MaxPerCore: 3, MaxTotal: 6, IncludeUnscheduled: true}
	factory := func() sched.Policy { return policy.NewDelta2() }
	var baseline *verify.Report
	run := func(b *testing.B, cfg verify.Config) {
		cfg.Universe = u
		for i := 0; i < b.N; i++ {
			rep, err := verify.PolicyContext(context.Background(), "delta2", factory, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Passed() {
				b.Fatalf("delta2 refuted:\n%s", rep)
			}
			if baseline == nil {
				baseline = rep
			} else if rep.String() != baseline.String() {
				b.Fatalf("report diverged across parallelism levels:\n%s\nvs baseline:\n%s", rep, baseline)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) {
		run(b, verify.Config{Sequential: true})
	})
	for _, par := range []int{1, 2, 4, 8} {
		b.Run("parallel="+itoa(par), func(b *testing.B) {
			run(b, verify.Config{Parallelism: par})
		})
	}
}

// BenchmarkVerifyFaults prices the fault dimension: the full obligation
// suite on the rescue-capable policy over the same universe healthy,
// then with one- and two-event fault scripts. Each MaxFaults step
// multiplies the state count by the number of valid scripts per
// machine, so this is the curve that says what `-max-faults` costs —
// recorded as BENCH_faults.json by CI.
func BenchmarkVerifyFaults(b *testing.B) {
	factory := func() sched.Policy {
		p, err := policy.New("delta2-rescue")
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	for _, maxFaults := range []int{0, 1, 2} {
		u := statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4,
			IncludeUnscheduled: true, MaxFaults: maxFaults}
		b.Run("maxFaults="+itoa(maxFaults), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := verify.PolicyContext(context.Background(), "delta2-rescue", factory,
					verify.Config{Universe: u})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Passed() {
					b.Fatalf("delta2-rescue refuted at maxFaults=%d:\n%s", maxFaults, rep)
				}
			}
		})
	}
}

func BenchmarkDSLParseCompile(b *testing.B) {
	src := `policy delta2 {
	    load   = self.ready.size + self.current.size
	    filter = stealee.load - thief.load >= 2
	    steal  = 1
	    choose = max_load
	}`
	for i := 0; i < b.N; i++ {
		if _, _, err := dsl.CompileSource(src); err != nil {
			b.Fatal(err)
		}
	}
}
