package optsched

import (
	"fmt"
	"strings"
	"time"
)

// Result is the common measurement snapshot every backend returns from
// Cluster.Run: one type for model rounds, simulated runs and real
// executions, so callers compare backends without re-plumbing metrics.
//
// Fields that a backend cannot measure stay at their zero value; the
// per-backend sections below say which. Backend-specific detail beyond
// the shared fields hangs off Sim.
type Result struct {
	// Backend, Policy and Scenario identify the run.
	Backend  string
	Policy   string
	Scenario string
	// Cores is the resolved machine width.
	Cores int

	// Tasks counts the tasks the scenario placed (zero for
	// workload-driven simulator scenarios, whose generators decide).
	Tasks int
	// Completed counts tasks that finished execution. The model backend
	// moves tasks but never runs them, so it reports zero.
	Completed int64
	// Steals counts migrated tasks across all balancing activity;
	// StealFails counts optimistic attempts that failed re-validation.
	Steals, StealFails int64
	// Rounds counts balancing rounds: model rounds to convergence, or
	// the simulator's periodic rounds. The executor balances on idle
	// rather than in rounds and reports zero.
	Rounds int64
	// Converged reports the backend's completion criterion: work
	// conservation for the model, all placed tasks retired for the
	// simulator and executor (workload-driven simulations report true at
	// the horizon).
	Converged bool

	// Faults counts the fault-schedule events the backend applied
	// (failures and revivals together); FaultRescued counts orphaned
	// tasks the policy's rescue rule re-homed at failure time; Orphaned
	// counts tasks still stranded on offline cores when the run ended —
	// nonzero only for rescue-less policies under an unrecovered
	// failure, the runtime shadow of a no-task-lost refutation.
	Faults, FaultRescued, Orphaned int64

	// VirtualTicks is the virtual time consumed (model: zero — it has no
	// clock; executor: zero — it runs in real time).
	VirtualTicks int64
	// Wall is the real time the run took.
	Wall time.Duration

	// FinalLoads is the per-core thread count after the run (model
	// backend only).
	FinalLoads []int
	// WastedPct is idle-while-overloaded core time as a percentage of
	// capacity (simulator backend only).
	WastedPct float64
	// Sim carries the simulator's full measurement snapshot (simulator
	// backend only).
	Sim *SimStats
}

// String renders the headline numbers.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s on %s[%d cores]: ", r.Scenario, r.Policy, r.Backend, r.Cores)
	fmt.Fprintf(&b, "tasks=%d completed=%d steals=%d fails=%d", r.Tasks, r.Completed, r.Steals, r.StealFails)
	if r.Rounds > 0 {
		fmt.Fprintf(&b, " rounds=%d", r.Rounds)
	}
	if r.VirtualTicks > 0 {
		fmt.Fprintf(&b, " vticks=%d", r.VirtualTicks)
	}
	if r.Faults > 0 {
		fmt.Fprintf(&b, " faults=%d rescued=%d orphaned=%d", r.Faults, r.FaultRescued, r.Orphaned)
	}
	if r.FinalLoads != nil {
		fmt.Fprintf(&b, " loads=%v", r.FinalLoads)
	}
	if r.Sim != nil {
		fmt.Fprintf(&b, " wasted=%.1f%%", r.WastedPct)
	}
	fmt.Fprintf(&b, " converged=%v wall=%v", r.Converged, r.Wall.Round(time.Microsecond))
	return b.String()
}
