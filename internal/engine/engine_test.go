package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/service/faultinject"
)

func delta2Factory() sched.Policy { return policy.NewDelta2() }

func TestAllTasksExecute(t *testing.T) {
	p := NewPool(4, delta2Factory, Options{})
	defer p.Close()
	var count atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if got := count.Load(); got != n {
		t.Fatalf("executed %d of %d", got, n)
	}
	if got := p.Stats().Executed; got != n {
		t.Errorf("Stats.Executed = %d", got)
	}
}

func TestSkewedSubmissionGetsStolen(t *testing.T) {
	p := NewPool(4, delta2Factory, Options{})
	defer p.Close()
	const n = 400
	for i := 0; i < n; i++ {
		p.SubmitTo(0, func() {
			time.Sleep(200 * time.Microsecond)
		})
	}
	p.Wait()
	st := p.Stats()
	if st.Steals == 0 {
		t.Error("no steals despite all work submitted to worker 0")
	}
	if st.Executed != n {
		t.Errorf("Executed = %d, want %d", st.Executed, n)
	}
}

func TestStealFailuresUnderContention(t *testing.T) {
	// Many workers fighting over one short queue must sometimes lose the
	// race between selection and steal — the optimistic failures of
	// §3.1. Run several rounds to make the race overwhelmingly likely.
	p := NewPool(8, delta2Factory, Options{})
	defer p.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < 16; i++ {
			p.SubmitTo(0, func() { time.Sleep(20 * time.Microsecond) })
		}
		p.Wait()
	}
	st := p.Stats()
	t.Logf("steals=%d fails=%d", st.Steals, st.StealFails)
	if st.Steals == 0 {
		t.Error("no steals")
	}
}

func TestNullPolicyNeverSteals(t *testing.T) {
	p := NewPool(4, func() sched.Policy { return policy.NewNull() }, Options{})
	defer p.Close()
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		p.SubmitTo(0, func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != 100 {
		t.Fatalf("executed %d", count.Load())
	}
	if st := p.Stats(); st.Steals != 0 {
		t.Errorf("null policy stole %d tasks", st.Steals)
	}
}

func TestSubmitFromManyGoroutines(t *testing.T) {
	p := NewPool(4, delta2Factory, Options{})
	defer p.Close()
	var count atomic.Int64
	const producers, each = 8, 200
	doneProducing := make(chan struct{})
	for g := 0; g < producers; g++ {
		go func() {
			for i := 0; i < each; i++ {
				p.Submit(func() { count.Add(1) })
			}
			doneProducing <- struct{}{}
		}()
	}
	for g := 0; g < producers; g++ {
		<-doneProducing
	}
	p.Wait()
	if got := count.Load(); got != producers*each {
		t.Fatalf("executed %d of %d", got, producers*each)
	}
}

func TestTasksRunAfterClose(t *testing.T) {
	p := NewPool(2, delta2Factory, Options{})
	var count atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Close() // close with work still queued: it must still drain
	p.Wait()
	if count.Load() != 50 {
		t.Fatalf("executed %d of 50", count.Load())
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1, delta2Factory, Options{})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Submit after Close did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestPoolValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero workers": func() { NewPool(0, delta2Factory, Options{}) },
		"nil factory":  func() { NewPool(1, nil, Options{}) },
		"bad groups":   func() { NewPool(2, delta2Factory, Options{Groups: []int{0}}) },
		"nil task": func() {
			p := NewPool(1, delta2Factory, Options{})
			defer p.Close()
			p.Submit(nil)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestGroupsReachPolicyViews(t *testing.T) {
	// A policy that records the groups it sees in views.
	type probe struct {
		*policy.Delta2
		sawGroup atomic.Int64
	}
	pr := &probe{Delta2: policy.NewDelta2()}
	factory := func() sched.Policy {
		return &sched.FuncPolicy{
			PolicyName: "probe",
			LoadFn:     func(c *sched.Core) int64 { return int64(c.NThreads()) },
			FilterFn: func(thief, stealee *sched.Core) bool {
				if stealee.Group == 1 {
					pr.sawGroup.Store(1)
				}
				return pr.Delta2.CanSteal(thief, stealee)
			},
		}
	}
	p := NewPool(2, factory, Options{Groups: []int{0, 1}})
	defer p.Close()
	for i := 0; i < 50; i++ {
		p.SubmitTo(1, func() { time.Sleep(50 * time.Microsecond) })
	}
	p.Wait()
	if pr.sawGroup.Load() != 1 {
		t.Error("policy views never carried group information")
	}
}

func TestFIFOWithinWorkerWithoutStealing(t *testing.T) {
	p := NewPool(1, func() sched.Policy { return policy.NewNull() }, Options{})
	defer p.Close()
	var order []int
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	for i := 0; i < 20; i++ {
		p.SubmitTo(0, func() {
			<-mu
			order = append(order, i)
			mu <- struct{}{}
		})
	}
	p.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("single worker executed out of order: %v", order)
		}
	}
}

func TestPlaceholders(t *testing.T) {
	a := placeholders(0)
	if a != nil {
		t.Error("placeholders(0) should be nil")
	}
	b := placeholders(10)
	if len(b) != 10 {
		t.Fatalf("len = %d", len(b))
	}
	c := placeholders(5)
	if len(c) != 5 {
		t.Fatalf("len = %d", len(c))
	}
	for _, task := range b {
		if task != placeholderTask {
			t.Fatal("placeholder slice contains a foreign task")
		}
	}
	big := placeholders(10_000)
	if len(big) != 10_000 {
		t.Fatalf("len = %d", len(big))
	}
}

func TestHierarchicalPolicyInPool(t *testing.T) {
	// Per-worker policy instances mean RoundObserver caches don't race.
	p := NewPool(4, func() sched.Policy { return policy.NewHierarchical() },
		Options{Groups: []int{0, 0, 1, 1}})
	defer p.Close()
	var count atomic.Int64
	for i := 0; i < 300; i++ {
		p.SubmitTo(2, func() {
			time.Sleep(100 * time.Microsecond)
			count.Add(1)
		})
	}
	p.Wait()
	if count.Load() != 300 {
		t.Fatalf("executed %d of 300", count.Load())
	}
}

func rescueFactory() sched.Policy {
	p, err := policy.New("delta2-rescue")
	if err != nil {
		panic(err)
	}
	return p
}

func TestKillRescuesQueuedTasks(t *testing.T) {
	p := NewPool(4, rescueFactory, Options{})
	defer p.Close()
	// Pin worker 0 on a gate task so its queue is guaranteed non-empty
	// when the kill lands, then verify the rescue rule re-homed every
	// queued task onto the survivors.
	gate := make(chan struct{})
	started := make(chan struct{})
	var count atomic.Int64
	p.SubmitTo(0, func() { close(started); <-gate })
	<-started
	const n = 40
	for i := 0; i < n; i++ {
		p.SubmitTo(0, func() { count.Add(1) })
	}
	if err := p.Kill(0); err != nil {
		t.Fatal(err)
	}
	close(gate)
	p.Wait()
	if got := count.Load(); got != n {
		t.Fatalf("executed %d of %d after the kill", got, n)
	}
	st := p.Stats()
	if st.Kills != 1 {
		t.Errorf("Kills = %d, want 1", st.Kills)
	}
	if st.Rescued != n {
		t.Errorf("Rescued = %d, want %d", st.Rescued, n)
	}
	if st.Orphaned != 0 {
		t.Errorf("Orphaned = %d, want 0", st.Orphaned)
	}
}

func TestKillWithoutRescueStrandsUntilRevive(t *testing.T) {
	// The null policy neither steals nor rescues: a killed worker's queue
	// is stranded — visible in Stats().Orphaned — until Revive brings the
	// worker back to drain it.
	p := NewPool(2, func() sched.Policy { return policy.NewNull() }, Options{})
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var count atomic.Int64
	p.SubmitTo(0, func() { close(started); <-gate })
	<-started
	const n = 10
	for i := 0; i < n; i++ {
		p.SubmitTo(0, func() { count.Add(1) })
	}
	if err := p.Kill(0); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if st := p.Stats(); st.Orphaned != n {
		t.Errorf("Orphaned = %d while worker 0 is down, want %d", st.Orphaned, n)
	}
	if err := p.Revive(0); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if got := count.Load(); got != n {
		t.Fatalf("executed %d of %d after revival", got, n)
	}
	st := p.Stats()
	if st.Orphaned != 0 {
		t.Errorf("Orphaned = %d after revival, want 0", st.Orphaned)
	}
	if st.Kills != 1 || st.Revives != 1 {
		t.Errorf("Kills/Revives = %d/%d, want 1/1", st.Kills, st.Revives)
	}
}

func TestKillReviveValidation(t *testing.T) {
	p := NewPool(2, delta2Factory, Options{})
	defer p.Close()
	if err := p.Kill(-1); err == nil {
		t.Error("Kill(-1) accepted")
	}
	if err := p.Kill(2); err == nil {
		t.Error("Kill out of range accepted")
	}
	if err := p.Revive(0); err == nil {
		t.Error("Revive of an online worker accepted")
	}
	if err := p.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Kill(0); err == nil {
		t.Error("double Kill accepted")
	}
	if err := p.Kill(1); err == nil {
		t.Error("Kill of the last online worker accepted")
	}
	if err := p.Revive(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Revive(0); err == nil {
		t.Error("Revive of an online worker accepted")
	}
}

func TestChaosCoreKillDrainsUnderRescue(t *testing.T) {
	// A probabilistic core-kill chaos rule self-kills workers mid-run;
	// the rescue rule keeps every task accounted for. The last-online
	// guard means the pool can never wedge no matter how often it fires.
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpCoreKill, Kind: faultinject.KindFail, Prob: 0.05, Seed: 9,
	})
	p := NewPool(4, rescueFactory, Options{Faults: faults})
	defer p.Close()
	var count atomic.Int64
	const n = 400
	for i := 0; i < n; i++ {
		p.SubmitTo(i%2, func() {
			count.Add(1)
			time.Sleep(50 * time.Microsecond)
		})
	}
	p.Wait()
	if got := count.Load(); got != n {
		t.Fatalf("executed %d of %d under chaos kills", got, n)
	}
	st := p.Stats()
	t.Logf("chaos: kills=%d rescued=%d steals=%d", st.Kills, st.Rescued, st.Steals)
	if st.Kills == 0 {
		t.Error("p=0.05 chaos rule never fired over the run")
	}
	if st.Orphaned != 0 {
		t.Errorf("Orphaned = %d after a drained run, want 0", st.Orphaned)
	}
}
