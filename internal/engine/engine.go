// Package engine is a concurrent work-stealing executor that runs the
// paper's three-step balancing protocol under real Go concurrency: one
// goroutine per worker, a locked per-worker runqueue, and an optimistic
// balancer — the selection phase (filter + choose) reads only atomically
// published load counters without taking any lock, and the stealing phase
// locks exactly the two runqueues involved and re-validates the filter
// before migrating work (Listing 1 line 12).
//
// It is the repository's stand-in for the paper's kernel scheduling
// class: where internal/verify proves the protocol's work conservation on
// the model, this package demonstrates the same protocol running
// race-detector-clean with real lock contention and stale observations.
// Unlike the kernel's periodic 4ms rounds, the executor balances when a
// worker runs out of local work (steal-on-idle), the standard adaptation
// for userspace work-stealing runtimes.
package engine

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/service/faultinject"
)

// Task is a unit of work.
type Task func()

// Factory builds one policy instance per worker; instances must not be
// shared because policies may carry per-round caches.
type Factory func() sched.Policy

// Pool is the work-stealing executor.
type Pool struct {
	workers []*worker
	closed  atomic.Bool
	inflt   atomic.Int64 // submitted but not finished tasks
	wg      sync.WaitGroup
	next    atomic.Uint64 // round-robin submission cursor
	faults  *faultinject.Set

	executed   atomic.Int64
	steals     atomic.Int64
	stealFails atomic.Int64
	kills      atomic.Int64
	revives    atomic.Int64
	rescued    atomic.Int64
}

// worker is one executor lane.
type worker struct {
	id     int
	group  int
	pool   *Pool
	policy sched.Policy

	mu      sync.Mutex
	queue   []Task
	running atomic.Bool
	qlen    atomic.Int64 // published queue length for lock-free selection
	offline atomic.Bool  // fail-stopped (Kill); executes and steals nothing
}

// Options configures optional pool behaviour.
type Options struct {
	// Groups assigns workers to scheduling groups (defaults to all 0).
	Groups []int
	// IdleSleep is the idle worker's poll interval (default 50µs).
	IdleSleep time.Duration
	// Faults optionally arms chaos fault injection: each worker consults
	// the set at the core-kill fault point (arg: its worker ID) once per
	// loop turn, and a fail directive fail-stops it exactly like Kill.
	// Probabilistic rules (op:kind%p@seed) make this a seeded chaos
	// monkey. Nil is inert.
	Faults *faultinject.Set
}

// NewPool starts n workers using policies from factory.
func NewPool(n int, factory Factory, opts Options) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("engine: NewPool(%d)", n))
	}
	if factory == nil {
		panic("engine: nil policy factory")
	}
	if opts.Groups != nil && len(opts.Groups) != n {
		panic(fmt.Sprintf("engine: %d groups for %d workers", len(opts.Groups), n))
	}
	if opts.IdleSleep <= 0 {
		opts.IdleSleep = 50 * time.Microsecond
	}
	p := &Pool{workers: make([]*worker, n), faults: opts.Faults}
	for i := range p.workers {
		g := 0
		if opts.Groups != nil {
			g = opts.Groups[i]
		}
		p.workers[i] = &worker{id: i, group: g, pool: p, policy: factory()}
	}
	for _, w := range p.workers {
		go w.run(opts.IdleSleep)
	}
	return p
}

// Submit enqueues a task on the next worker round-robin.
func (p *Pool) Submit(t Task) {
	p.SubmitTo(int(p.next.Add(1)-1)%len(p.workers), t)
}

// SubmitTo enqueues a task on a specific worker — how the benchmarks
// create the skewed placements the balancer must fix.
func (p *Pool) SubmitTo(id int, t Task) {
	if t == nil {
		panic("engine: Submit(nil)")
	}
	if p.closed.Load() {
		panic("engine: Submit on closed pool")
	}
	w := p.workers[id]
	p.inflt.Add(1)
	p.wg.Add(1)
	w.mu.Lock()
	w.queue = append(w.queue, t)
	w.qlen.Store(int64(len(w.queue)))
	w.mu.Unlock()
}

// Wait blocks until every submitted task has executed.
func (p *Pool) Wait() { p.wg.Wait() }

// Kill fail-stops a worker: it finishes its in-flight task (a real
// goroutine cannot be preempted mid-call) and then executes nothing
// further. Its queue is immediately offered to the policy's rescue rule
// (sched.Rescuer); orphans the policy declines stay stranded on the
// offline queue — and keep Wait blocked — until Revive. Killing the
// last online worker is refused: a pool with no lanes can never drain.
func (p *Pool) Kill(id int) error {
	if id < 0 || id >= len(p.workers) {
		return fmt.Errorf("engine: Kill(%d) of a %d-worker pool", id, len(p.workers))
	}
	w := p.workers[id]
	if !w.offline.CompareAndSwap(false, true) {
		return fmt.Errorf("engine: worker %d is already offline", id)
	}
	online := 0
	for _, ow := range p.workers {
		if !ow.offline.Load() {
			online++
		}
	}
	if online == 0 {
		w.offline.Store(false)
		return fmt.Errorf("engine: refusing to kill worker %d, the last online worker", id)
	}
	p.kills.Add(1)
	w.rehome()
	return nil
}

// Revive brings a killed worker back (hotplug add): it resumes running
// whatever is still stranded on its queue.
func (p *Pool) Revive(id int) error {
	if id < 0 || id >= len(p.workers) {
		return fmt.Errorf("engine: Revive(%d) of a %d-worker pool", id, len(p.workers))
	}
	if !p.workers[id].offline.CompareAndSwap(true, false) {
		return fmt.Errorf("engine: worker %d is not offline", id)
	}
	p.revives.Add(1)
	return nil
}

// rehome drains the dead worker's queue through the policy's rescue
// rule, popping one orphan under the dead worker's lock and appending
// it under the adopter's lock — never holding both, so it cannot
// deadlock against concurrent steals. The first orphan the policy
// declines (or a policy with no rescue rule at all) ends the drain and
// strands the rest.
func (w *worker) rehome() {
	rescuer, ok := w.policy.(sched.Rescuer)
	if !ok {
		return
	}
	for {
		w.mu.Lock()
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return
		}
		t := w.queue[0]
		w.queue = w.queue[1:]
		w.qlen.Store(int64(len(w.queue)))
		w.mu.Unlock()
		if !w.place(t, rescuer) {
			w.mu.Lock()
			w.queue = append([]Task{t}, w.queue...)
			w.qlen.Store(int64(len(w.queue)))
			w.mu.Unlock()
			return
		}
		w.pool.rescued.Add(1)
	}
}

// place asks the rescue rule for one orphan's adopter and enqueues the
// task there, re-selecting if the adopter was itself killed in between.
// False means the policy declined or no online worker remains.
func (w *worker) place(t Task, rescuer sched.Rescuer) bool {
	for {
		views := w.pool.snapshot()
		var online []*sched.Core
		for _, c := range views.Cores {
			if !c.Offline {
				online = append(online, c)
			}
		}
		if len(online) == 0 {
			return false
		}
		target := rescuer.RescueTarget(views.Cores[w.id], placeholderTask, online)
		if target == nil {
			return false
		}
		tw := w.pool.workers[target.ID]
		tw.mu.Lock()
		if tw.offline.Load() {
			tw.mu.Unlock()
			continue
		}
		tw.queue = append(tw.queue, t)
		tw.qlen.Store(int64(len(tw.queue)))
		tw.mu.Unlock()
		return true
	}
}

// Close stops the workers after the queues drain. The pool cannot be
// reused.
func (p *Pool) Close() {
	p.closed.Store(true)
}

// Stats is a snapshot of the pool's counters.
type Stats struct {
	// Executed counts completed tasks.
	Executed int64
	// Steals counts migrated tasks; StealFails counts optimistic
	// attempts that failed re-validation.
	Steals, StealFails int64
	// Kills and Revives count applied fault events; Rescued counts
	// orphans the rescue rule re-homed at kill time; Orphaned counts
	// tasks currently stranded on offline workers.
	Kills, Revives, Rescued, Orphaned int64
}

// Stats returns the current counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Executed:   p.executed.Load(),
		Steals:     p.steals.Load(),
		StealFails: p.stealFails.Load(),
		Kills:      p.kills.Load(),
		Revives:    p.revives.Load(),
		Rescued:    p.rescued.Load(),
	}
	for _, w := range p.workers {
		if w.offline.Load() {
			st.Orphaned += w.qlen.Load()
		}
	}
	return st
}

// run is the worker main loop.
func (w *worker) run(idleSleep time.Duration) {
	for {
		if w.offline.Load() {
			// Fail-stopped: execute nothing until Revive, but still honor
			// shutdown once every submitted task has drained elsewhere.
			if w.pool.closed.Load() && w.pool.inflt.Load() == 0 {
				return
			}
			time.Sleep(idleSleep)
			continue
		}
		if d := w.pool.faults.Check(faultinject.OpCoreKill, strconv.Itoa(w.id)); d.Err != nil {
			// Chaos self-kill; Kill refuses the last online worker, so an
			// aggressive probabilistic rule cannot wedge the pool.
			w.pool.Kill(w.id)
			continue
		}
		t := w.popLocal()
		if t == nil {
			t = w.stealWork()
		}
		if t == nil {
			if w.pool.closed.Load() && w.pool.inflt.Load() == 0 {
				return
			}
			time.Sleep(idleSleep)
			continue
		}
		w.running.Store(true)
		t()
		w.running.Store(false)
		w.pool.executed.Add(1)
		w.pool.inflt.Add(-1)
		w.pool.wg.Done()
	}
}

// popLocal takes the head of the worker's own queue.
func (w *worker) popLocal() Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.queue) == 0 {
		return nil
	}
	t := w.queue[0]
	w.queue[0] = nil
	w.queue = w.queue[1:]
	if len(w.queue) == 0 {
		w.queue = nil // release the drifting backing array
	}
	w.qlen.Store(int64(len(w.queue)))
	return t
}

// stealWork runs one three-step balancing round on behalf of this worker:
// lock-free selection over published counters, then a locked re-validated
// steal from the chosen victim. It returns one task to run immediately
// (the rest of the stolen batch goes on the local queue).
func (w *worker) stealWork() Task {
	// Step 1+2: selection against a lock-free snapshot.
	views := w.pool.snapshot()
	att := sched.Select(w.policy, views, w.id)
	if att.Victim < 0 {
		return nil
	}
	victim := w.pool.workers[att.Victim]

	// Step 3: lock both runqueues in ID order (deadlock freedom), then
	// re-validate the optimistic decision against live state.
	first, second := w, victim
	if victim.id < w.id {
		first, second = victim, w
	}
	first.mu.Lock()
	second.mu.Lock()
	defer second.mu.Unlock()
	defer first.mu.Unlock()

	// The selection snapshot already skipped offline cores, but either
	// side may have been killed since — re-validate like any other stale
	// observation.
	if w.offline.Load() || victim.offline.Load() {
		w.pool.stealFails.Add(1)
		return nil
	}

	thiefView := w.liveViewLocked()
	victimView := victim.liveViewLocked()
	if !w.policy.CanSteal(thiefView, victimView) {
		w.pool.stealFails.Add(1)
		return nil
	}
	n := w.policy.StealCount(thiefView, victimView)
	if n <= 0 || len(victim.queue) == 0 {
		w.pool.stealFails.Add(1)
		return nil
	}
	if n > len(victim.queue) {
		n = len(victim.queue)
	}
	// Transfer from the victim's tail, keeping its head (oldest) local.
	cut := len(victim.queue) - n
	stolen := make([]Task, n)
	copy(stolen, victim.queue[cut:])
	for i := cut; i < len(victim.queue); i++ {
		victim.queue[i] = nil
	}
	victim.queue = victim.queue[:cut]
	victim.qlen.Store(int64(cut))

	w.queue = append(w.queue, stolen[1:]...)
	w.qlen.Store(int64(len(w.queue)))
	w.pool.steals.Add(int64(n))
	return stolen[0]
}

// snapshot builds the lock-free selection view: one model core per
// worker, populated from atomically published counters only. The Ready
// slices alias a shared immutable array of placeholder tasks, so the
// policy sees correct lengths and unit weights without copying queues.
func (p *Pool) snapshot() *sched.Machine {
	m := &sched.Machine{Cores: make([]*sched.Core, len(p.workers))}
	for i, w := range p.workers {
		m.Cores[i] = w.viewAt(w.qlen.Load(), w.running.Load())
	}
	return m
}

// liveViewLocked builds a view from the worker's live state; the caller
// holds w.mu.
func (w *worker) liveViewLocked() *sched.Core {
	return w.viewAt(int64(len(w.queue)), w.running.Load())
}

func (w *worker) viewAt(qlen int64, running bool) *sched.Core {
	c := &sched.Core{
		ID: w.id, Group: w.group, Node: w.group,
		Ready:   placeholders(int(qlen)),
		Offline: w.offline.Load(),
	}
	if running {
		c.Current = placeholderTask
	}
	return c
}

// placeholderTask is the shared unit-weight stand-in for executor tasks
// in policy views.
var placeholderTask = sched.NewTask(-1)

// placeholderPool is an immutable, monotonically grown slice of pointers
// to placeholderTask; placeholders(n) returns a length-n prefix without
// allocating in the common case.
var placeholderPool atomic.Value // []*sched.Task

var placeholderMu sync.Mutex

func placeholders(n int) []*sched.Task {
	if n == 0 {
		return nil
	}
	cur, _ := placeholderPool.Load().([]*sched.Task)
	if n <= len(cur) {
		return cur[:n]
	}
	placeholderMu.Lock()
	defer placeholderMu.Unlock()
	cur, _ = placeholderPool.Load().([]*sched.Task)
	if n <= len(cur) {
		return cur[:n]
	}
	grown := make([]*sched.Task, n*2)
	for i := range grown {
		grown[i] = placeholderTask
	}
	placeholderPool.Store(grown)
	return grown[:n]
}
