package convergence

import (
	"repro/internal/sched"
)

// This file bridges the Xu & Lau iterative schemes and the paper's
// work-stealing rounds, so experiment E9 can compare their convergence
// speeds on the same initial load vectors.

// StealingRounds runs optimistic concurrent rounds of the given policy
// from the initial load vector until the machine is work-conserved
// (tol = "no idle while overloaded") or fully balanced (tol as a max−min
// bound on thread counts), whichever predicate `balanced` encodes.
// It returns the rounds taken, with maxRounds+1 as the not-converged
// sentinel. Orders rotate deterministically so repeated conflicts do not
// depend on a hidden RNG.
func StealingRounds(p sched.Policy, loads []int64, tol int64, maxRounds int) int {
	ints := make([]int, len(loads))
	for i, v := range loads {
		ints[i] = int(v)
	}
	m := sched.MachineFromLoads(ints...)
	n := m.NumCores()
	order := make([]int, n)
	for r := 0; r <= maxRounds; r++ {
		if machineImbalance(m) <= tol {
			return r
		}
		// Rotate the steal order each round: a deterministic adversary
		// weaker than the verifier's exhaustive one, but enough to
		// exercise conflicts.
		for i := range order {
			order[i] = (i + r) % n
		}
		rr := sched.ConcurrentRound(p, m, order)
		if rr.TasksMoved() == 0 {
			if machineImbalance(m) <= tol {
				return r + 1
			}
			return maxRounds + 1
		}
	}
	return maxRounds + 1
}

// WorkConservationRounds counts rounds until no core is idle while
// another is overloaded — the paper's N.
func WorkConservationRounds(p sched.Policy, loads []int64, maxRounds int) int {
	ints := make([]int, len(loads))
	for i, v := range loads {
		ints[i] = int(v)
	}
	m := sched.MachineFromLoads(ints...)
	n := m.NumCores()
	order := make([]int, n)
	for r := 0; r <= maxRounds; r++ {
		if m.WorkConserved() {
			return r
		}
		for i := range order {
			order[i] = (i + r) % n
		}
		sched.ConcurrentRound(p, m, order)
	}
	return maxRounds + 1
}

func machineImbalance(m *sched.Machine) int64 {
	loads := m.Loads()
	lo, hi := loads[0], loads[0]
	for _, v := range loads[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return int64(hi - lo)
}

// SpikeLoad builds the worst-case initial vector for n nodes: all
// `total` units on node 0 — the fork-burst that stresses convergence
// speed the most.
func SpikeLoad(n int, total int64) []int64 {
	load := make([]int64, n)
	load[0] = total
	return load
}
