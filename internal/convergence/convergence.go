// Package convergence implements the load-balancing convergence theory
// the paper plans to build on for latency bounds ("Xu et al. have
// studied the speed of convergence of various load balancing algorithms.
// We plan to build upon this work to prove latency limits on the
// work-conserving property of our scheduler", §2, citing Xu & Lau,
// *Load Balancing in Parallel Computers: Theory and Practice*, 1996).
//
// It provides the two classical iterative schemes from that line of work
// — nearest-neighbor diffusion and dimension exchange — on standard
// interconnect graphs (ring, mesh, hypercube, complete), plus empirical
// convergence measurement, so the paper's work-stealing rounds can be
// compared against the theory's baselines (experiment E9).
package convergence

import "fmt"

// Graph is an undirected interconnect graph over nodes [0, N).
type Graph struct {
	// N is the node count.
	N int
	// Adj lists each node's neighbors, ascending, no self-loops.
	Adj [][]int
	// Name labels the topology in reports.
	Name string
}

// Validate checks structural sanity and symmetry.
func (g Graph) Validate() error {
	if g.N <= 0 || len(g.Adj) != g.N {
		return fmt.Errorf("convergence: graph %q has N=%d with %d adjacency rows", g.Name, g.N, len(g.Adj))
	}
	for i, nbrs := range g.Adj {
		seen := make(map[int]bool, len(nbrs))
		for _, j := range nbrs {
			if j < 0 || j >= g.N {
				return fmt.Errorf("convergence: node %d has invalid neighbor %d", i, j)
			}
			if j == i {
				return fmt.Errorf("convergence: node %d has a self-loop", i)
			}
			if seen[j] {
				return fmt.Errorf("convergence: node %d lists neighbor %d twice", i, j)
			}
			seen[j] = true
			if !contains(g.Adj[j], i) {
				return fmt.Errorf("convergence: edge %d->%d not symmetric", i, j)
			}
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// MaxDegree returns the largest node degree.
func (g Graph) MaxDegree() int {
	d := 0
	for _, nbrs := range g.Adj {
		if len(nbrs) > d {
			d = len(nbrs)
		}
	}
	return d
}

// Ring returns the n-node cycle — the slowest-mixing standard topology.
func Ring(n int) Graph {
	if n < 3 {
		panic(fmt.Sprintf("convergence: Ring(%d)", n))
	}
	g := Graph{N: n, Adj: make([][]int, n), Name: fmt.Sprintf("ring(%d)", n)}
	for i := 0; i < n; i++ {
		g.Adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return g
}

// Complete returns the n-node complete graph — one diffusion round
// reaches near-perfect balance.
func Complete(n int) Graph {
	if n < 2 {
		panic(fmt.Sprintf("convergence: Complete(%d)", n))
	}
	g := Graph{N: n, Adj: make([][]int, n), Name: fmt.Sprintf("complete(%d)", n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				g.Adj[i] = append(g.Adj[i], j)
			}
		}
	}
	return g
}

// Hypercube returns the 2^dim-node hypercube, the dimension-exchange
// scheme's native topology.
func Hypercube(dim int) Graph {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("convergence: Hypercube(%d)", dim))
	}
	n := 1 << dim
	g := Graph{N: n, Adj: make([][]int, n), Name: fmt.Sprintf("hypercube(%d)", dim)}
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			g.Adj[i] = append(g.Adj[i], i^(1<<d))
		}
	}
	return g
}

// Mesh returns the rows×cols grid (no wraparound).
func Mesh(rows, cols int) Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("convergence: Mesh(%d, %d)", rows, cols))
	}
	n := rows * cols
	g := Graph{N: n, Adj: make([][]int, n), Name: fmt.Sprintf("mesh(%dx%d)", rows, cols)}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := id(r, c)
			if r > 0 {
				g.Adj[i] = append(g.Adj[i], id(r-1, c))
			}
			if c > 0 {
				g.Adj[i] = append(g.Adj[i], id(r, c-1))
			}
			if c < cols-1 {
				g.Adj[i] = append(g.Adj[i], id(r, c+1))
			}
			if r < rows-1 {
				g.Adj[i] = append(g.Adj[i], id(r+1, c))
			}
		}
	}
	return g
}

// DiffusionRound performs one synchronous first-order diffusion step
// (FOS in Xu & Lau): every edge (i,j) moves ⌊α·(xᵢ−xⱼ)⌋ units downhill,
// with the uniform diffusion parameter α = 1/(maxdeg+1) that guarantees
// convergence on any graph. It returns the units moved; zero means a
// fixpoint (balanced up to integer granularity).
func DiffusionRound(g Graph, load []int64) int64 {
	if len(load) != g.N {
		panic(fmt.Sprintf("convergence: %d loads for %d nodes", len(load), g.N))
	}
	alpha := int64(g.MaxDegree() + 1)
	delta := make([]int64, g.N)
	var moved int64
	for i, nbrs := range g.Adj {
		for _, j := range nbrs {
			if i < j { // each undirected edge once
				flow := (load[i] - load[j]) / alpha
				if flow > 0 {
					delta[i] -= flow
					delta[j] += flow
					moved += flow
				} else if flow < 0 {
					delta[i] += -flow
					delta[j] -= -flow
					moved += -flow
				}
			}
		}
	}
	for i := range load {
		load[i] += delta[i]
	}
	return moved
}

// DimensionExchangeRound performs one full dimension-exchange sweep on a
// hypercube of the given dimension: for each dimension d in order, every
// node pairs with its d-neighbor and the pair averages (the heavier side
// keeps the odd unit). One sweep reaches exact balance up to integer
// rounding — the classical O(log n) result.
func DimensionExchangeRound(dim int, load []int64) int64 {
	n := 1 << dim
	if len(load) != n {
		panic(fmt.Sprintf("convergence: %d loads for hypercube(%d)", len(load), dim))
	}
	var moved int64
	for d := 0; d < dim; d++ {
		bit := 1 << d
		for i := 0; i < n; i++ {
			j := i ^ bit
			if i > j {
				continue
			}
			sum := load[i] + load[j]
			hi, lo := sum/2+sum%2, sum/2
			var a, b int64
			if load[i] >= load[j] {
				a, b = hi, lo
			} else {
				a, b = lo, hi
			}
			if a != load[i] {
				diff := load[i] - a
				if diff < 0 {
					diff = -diff
				}
				moved += diff
			}
			load[i], load[j] = a, b
		}
	}
	return moved
}

// DiffusionRoundFloat is the real-valued first-order diffusion step —
// the object Xu & Lau's spectral analysis actually bounds (integer
// diffusion stalls at a rounding residue; the real scheme converges
// geometrically at the graph's mixing rate). Every edge moves
// α·(xᵢ−xⱼ) with α = 1/(maxdeg+1).
func DiffusionRoundFloat(g Graph, load []float64) {
	if len(load) != g.N {
		panic(fmt.Sprintf("convergence: %d loads for %d nodes", len(load), g.N))
	}
	alpha := 1.0 / float64(g.MaxDegree()+1)
	delta := make([]float64, g.N)
	for i, nbrs := range g.Adj {
		for _, j := range nbrs {
			if i < j {
				flow := alpha * (load[i] - load[j])
				delta[i] -= flow
				delta[j] += flow
			}
		}
	}
	for i := range load {
		load[i] += delta[i]
	}
}

// ImbalanceFloat returns max(load) − min(load).
func ImbalanceFloat(load []float64) float64 {
	lo, hi := load[0], load[0]
	for _, v := range load[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// RoundsToFloat iterates step until ImbalanceFloat(load) ≤ tol, up to
// maxRounds (sentinel maxRounds+1 when not reached).
func RoundsToFloat(step func([]float64), load []float64, tol float64, maxRounds int) int {
	for r := 0; r <= maxRounds; r++ {
		if ImbalanceFloat(load) <= tol {
			return r
		}
		step(load)
	}
	return maxRounds + 1
}

// SpikeLoadFloat is SpikeLoad for the real-valued scheme.
func SpikeLoadFloat(n int, total float64) []float64 {
	load := make([]float64, n)
	load[0] = total
	return load
}

// Imbalance returns max(load) − min(load).
func Imbalance(load []int64) int64 {
	lo, hi := load[0], load[0]
	for _, v := range load[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Total sums the loads (conservation checks).
func Total(load []int64) int64 {
	var s int64
	for _, v := range load {
		s += v
	}
	return s
}

// RoundsTo iterates step until Imbalance(load) ≤ tol or step moves
// nothing or maxRounds is hit, returning the rounds taken (maxRounds+1
// when not converged — a sentinel the caller can test).
func RoundsTo(step func([]int64) int64, load []int64, tol int64, maxRounds int) int {
	for r := 0; r <= maxRounds; r++ {
		if Imbalance(load) <= tol {
			return r
		}
		if step(load) == 0 {
			return maxRounds + 1 // stuck above tolerance
		}
	}
	return maxRounds + 1
}
