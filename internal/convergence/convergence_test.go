package convergence

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

func TestGraphBuilders(t *testing.T) {
	for _, g := range []Graph{Ring(5), Complete(4), Hypercube(3), Mesh(2, 3), Mesh(1, 4)} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
	if got := Ring(5).MaxDegree(); got != 2 {
		t.Errorf("ring degree = %d", got)
	}
	if got := Complete(4).MaxDegree(); got != 3 {
		t.Errorf("complete degree = %d", got)
	}
	if got := Hypercube(3).MaxDegree(); got != 3 {
		t.Errorf("hypercube degree = %d", got)
	}
	if got := Mesh(3, 3).MaxDegree(); got != 4 {
		t.Errorf("mesh degree = %d", got)
	}
}

func TestGraphBuilderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ring":      func() { Ring(2) },
		"complete":  func() { Complete(1) },
		"hypercube": func() { Hypercube(0) },
		"mesh":      func() { Mesh(1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestGraphValidateCatchesAsymmetry(t *testing.T) {
	g := Ring(4)
	g.Adj[0] = []int{1} // drop the 0-3 back edge
	if g.Validate() == nil {
		t.Error("asymmetric graph accepted")
	}
	g2 := Ring(4)
	g2.Adj[0] = append(g2.Adj[0], 0)
	if g2.Validate() == nil {
		t.Error("self-loop accepted")
	}
}

func TestDiffusionConvergesOnEveryTopology(t *testing.T) {
	for _, g := range []Graph{Ring(8), Complete(8), Hypercube(3), Mesh(2, 4)} {
		load := SpikeLoad(g.N, 64)
		total := Total(load)
		// Integer diffusion stalls once every *neighbor* gap is below
		// maxdeg+1, leaving a residual global imbalance of up to
		// (maxdeg) x diameter — tolerate that.
		tol := int64((g.MaxDegree() + 1) * g.N)
		rounds := RoundsTo(func(l []int64) int64 { return DiffusionRound(g, l) }, load, tol, 10_000)
		if rounds > 10_000 {
			t.Errorf("%s: diffusion did not converge; final %v", g.Name, load)
		}
		if Total(load) != total {
			t.Errorf("%s: load not conserved: %d -> %d", g.Name, total, Total(load))
		}
	}
}

func TestDiffusionSpeedOrdering(t *testing.T) {
	// The Xu & Lau shape result: complete mixes fastest, ring slowest,
	// hypercube in between, for the same spike.
	rounds := func(g Graph) int {
		load := SpikeLoad(g.N, 128)
		return RoundsTo(func(l []int64) int64 { return DiffusionRound(g, l) }, load, 8, 100_000)
	}
	ring := rounds(Ring(8))
	cube := rounds(Hypercube(3))
	comp := rounds(Complete(8))
	t.Logf("diffusion rounds to imbalance<=8 on n=8: ring=%d hypercube=%d complete=%d", ring, cube, comp)
	if !(comp <= cube && cube <= ring) {
		t.Errorf("speed ordering violated: complete=%d hypercube=%d ring=%d", comp, cube, ring)
	}
	if ring <= comp {
		t.Errorf("ring (%d) should be strictly slower than complete (%d)", ring, comp)
	}
}

func TestDimensionExchangeBalancesInOneSweep(t *testing.T) {
	// The classical result: one full sweep reaches balance up to ±1.
	load := SpikeLoad(8, 80)
	moved := DimensionExchangeRound(3, load)
	if moved == 0 {
		t.Fatal("sweep moved nothing")
	}
	if Imbalance(load) > 1 {
		t.Errorf("imbalance after one sweep = %d, want <= 1 (%v)", Imbalance(load), load)
	}
	if Total(load) != 80 {
		t.Errorf("total = %d", Total(load))
	}
}

func TestDimensionExchangeExactWhenDivisible(t *testing.T) {
	load := SpikeLoad(4, 64) // 64/4 = 16 each
	DimensionExchangeRound(2, load)
	for i, v := range load {
		if v != 16 {
			t.Fatalf("load[%d] = %d, want 16 (%v)", i, v, load)
		}
	}
}

func TestStealingRoundsMatchesModel(t *testing.T) {
	p := policy.NewDelta2()
	// Spike on one core: work conservation is immediate concern; full
	// ±1 balance takes longer.
	wc := WorkConservationRounds(p, SpikeLoad(8, 32), 1000)
	full := StealingRounds(p, SpikeLoad(8, 32), 1, 1000)
	t.Logf("delta2 on spike(8, 32): WC in %d rounds, ±1 balance in %d", wc, full)
	if wc > full {
		t.Errorf("WC (%d) cannot take longer than full balance (%d)", wc, full)
	}
	if wc == 0 || full > 1000 {
		t.Errorf("unexpected rounds: wc=%d full=%d", wc, full)
	}
}

func TestStealingBalancedStartNeedsZeroRounds(t *testing.T) {
	p := policy.NewDelta2()
	if got := WorkConservationRounds(p, []int64{1, 1, 1, 1}, 10); got != 0 {
		t.Errorf("rounds = %d, want 0", got)
	}
}

func TestRoundsToStuckSentinel(t *testing.T) {
	// A step that never moves anything must return the sentinel.
	load := []int64{5, 0}
	got := RoundsTo(func([]int64) int64 { return 0 }, load, 1, 50)
	if got != 51 {
		t.Errorf("RoundsTo = %d, want sentinel 51", got)
	}
}

func TestImbalanceAndTotal(t *testing.T) {
	load := []int64{3, 7, 1}
	if Imbalance(load) != 6 {
		t.Errorf("Imbalance = %d", Imbalance(load))
	}
	if Total(load) != 11 {
		t.Errorf("Total = %d", Total(load))
	}
}

// Property: diffusion conserves total load and never increases imbalance,
// on arbitrary small vectors over a ring.
func TestDiffusionMonotoneProperty(t *testing.T) {
	g := Ring(6)
	f := func(raw [6]uint8) bool {
		load := make([]int64, 6)
		for i, r := range raw {
			load[i] = int64(r % 32)
		}
		total := Total(load)
		before := Imbalance(load)
		DiffusionRound(g, load)
		return Total(load) == total && Imbalance(load) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: dimension exchange always reaches imbalance <= dim after one
// sweep (each pairwise averaging leaves at most 1 unit of residue per
// dimension), conserving totals.
func TestDimensionExchangeProperty(t *testing.T) {
	f := func(raw [8]uint8) bool {
		load := make([]int64, 8)
		for i, r := range raw {
			load[i] = int64(r % 64)
		}
		total := Total(load)
		DimensionExchangeRound(3, load)
		return Total(load) == total && Imbalance(load) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
