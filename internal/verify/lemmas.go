package verify

import (
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// Factory produces a fresh policy instance per check, isolating any
// per-round caches (sched.RoundObserver state) between runs. Checks
// fan out over universe shards on a worker pool — the standalone
// Check* entry points included — so a factory must be safe for
// concurrent calls; every registered and DSL-compiled factory is,
// since each call constructs a fresh policy. A caller whose factory is
// not concurrency-safe must go through Policy or PolicyContext with
// Config.Sequential, which runs every shard on the calling goroutine
// (and produces the identical report).
type Factory func() sched.Policy

// beginRound refreshes a policy's cached round statistics when it
// observes rounds; a no-op otherwise.
func beginRound(p sched.Policy, view *sched.Machine) {
	if obs, ok := p.(sched.RoundObserver); ok {
		obs.BeginRound(view)
	}
}

// CheckLemma1 checks Listing 2 over every state of the universe and every
// idle thief:
//
//	(∃ overloaded core  ⇒  ∃ core the thief can steal from)  ∧
//	(∀ cores c: thief.canSteal(c) ⇒ overloaded(c))
//
// The paper proves this with Leon for the sequential setting; here it is
// established by exhaustion up to the universe bound.
func CheckLemma1(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObLemma1, f, u, 0)
}

func checkLemma1Shard(ctx context.Context, f Factory, u statespace.Universe, sh shard) Result {
	res := Result{ID: ObLemma1, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		p := f()
		beginRound(p, m)
		for _, thief := range m.Cores {
			if !thief.Idle() {
				continue // Lemma 1's @require: the thief is idle
			}
			hasOverloaded, hasCandidate := false, false
			for _, c := range m.Cores {
				if c.ID == thief.ID {
					continue
				}
				if c.Overloaded() {
					hasOverloaded = true
				}
				if p.CanSteal(thief, c) {
					hasCandidate = true
					if !c.Overloaded() {
						res.refute(rank, fmt.Sprintf(
							"state %v: idle thief c%d may steal from non-overloaded c%d",
							m.Loads(), thief.ID, c.ID))
						return false
					}
				}
			}
			if hasOverloaded && !hasCandidate {
				res.refute(rank, fmt.Sprintf(
					"state %v (key %s): idle thief c%d has no candidate despite an overloaded core",
					m.Loads(), m.Key(), thief.ID))
				return false
			}
		}
		return true
	})
	return res
}

// CheckStealSoundness checks the §4.2 obligations on the stealing phase,
// over every state and every (thief, stealee) pair admitted by the
// filter:
//
//   - the steal succeeds (an admitted selection is realizable when no
//     concurrent steal interferes);
//   - the stealee does not end up idle ("does not steal too much");
//   - the thread population and structural invariants are preserved.
func CheckStealSoundness(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObStealSoundness, f, u, 0)
}

func checkStealSoundnessShard(ctx context.Context, f Factory, u statespace.Universe, sh shard) Result {
	res := Result{ID: ObStealSoundness, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		p := f()
		beginRound(p, m)
		for ti := range m.Cores {
			for si := range m.Cores {
				if ti == si {
					continue
				}
				if !p.CanSteal(m.Core(ti), m.Core(si)) {
					continue
				}
				trial := m.Clone()
				pt := f()
				beginRound(pt, trial)
				att := sched.Attempt{Thief: ti, Victim: si}
				sched.Steal(pt, trial, &att)
				if bad := stealViolation(m, trial, &att, ti, si); bad != "" {
					res.refute(rank, bad)
					return false
				}
			}
		}
		return true
	})
	return res
}

func stealViolation(before, after *sched.Machine, att *sched.Attempt, ti, si int) string {
	if !att.Succeeded() {
		return fmt.Sprintf("state %v: admitted steal c%d<-c%d failed in isolation (%v)",
			before.Loads(), ti, si, att.Reason)
	}
	if after.Core(si).Idle() {
		return fmt.Sprintf("state %v: steal c%d<-c%d emptied the stealee",
			before.Loads(), ti, si)
	}
	if after.TotalThreads() != before.TotalThreads() {
		return fmt.Sprintf("state %v: steal c%d<-c%d changed thread population %d->%d",
			before.Loads(), ti, si, before.TotalThreads(), after.TotalThreads())
	}
	if err := after.Validate(); err != nil {
		return fmt.Sprintf("state %v: steal c%d<-c%d corrupted the machine: %v",
			before.Loads(), ti, si, err)
	}
	return ""
}

// CheckPotentialDecrease checks the §4.3 bounded-successes obligation:
// every steal the filter admits strictly decreases the pairwise imbalance
// d, over every state and admitted pair. A policy failing this has
// unbounded steal sequences available (the GreedyBuggy ping-pong).
func CheckPotentialDecrease(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObPotentialDecrease, f, u, 0)
}

func checkPotentialDecreaseShard(ctx context.Context, f Factory, u statespace.Universe, sh shard) Result {
	res := Result{ID: ObPotentialDecrease, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		p := f()
		beginRound(p, m)
		for ti := range m.Cores {
			for si := range m.Cores {
				if ti == si || !p.CanSteal(m.Core(ti), m.Core(si)) {
					continue
				}
				trial := m.Clone()
				pt := f()
				beginRound(pt, trial)
				before := sched.PairwiseImbalance(pt, trial)
				att := sched.Attempt{Thief: ti, Victim: si}
				sched.Steal(pt, trial, &att)
				if !att.Succeeded() {
					continue // soundness check reports this separately
				}
				if after := sched.PairwiseImbalance(pt, trial); after >= before {
					res.refute(rank, fmt.Sprintf(
						"state %v: steal c%d<-c%d left potential %d -> %d (no strict decrease)",
						m.Loads(), ti, si, before, after))
					return false
				}
			}
		}
		return true
	})
	return res
}

// CheckFailureImpliesSuccess checks the first §4.3 concurrency
// obligation: in every concurrent round, under every adversarial steal
// order, every re-validation failure is explained by an earlier
// successful steal involving the failed attempt's thief or victim. The
// argument in the paper: only the stealing phase mutates runqueues, so a
// filter that flipped between selection and steal must have been flipped
// by a completed steal.
func CheckFailureImpliesSuccess(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObFailureImpliesSucc, f, u, 0)
}

func checkFailureImpliesSuccessShard(ctx context.Context, f Factory, u statespace.Universe, sh shard) Result {
	res := Result{ID: ObFailureImpliesSucc, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		ok := statespace.Permutations(m.NumCores(), func(order []int) bool {
			// Each state fans out to NumCores()! orders, so polling only
			// per state would stretch cancellation latency by that factor
			// on wide universes; poll per schedule at the same stride.
			if res.SchedulesChecked&63 == 0 && aborted(ctx, &res) {
				return false
			}
			res.SchedulesChecked++
			trial := m.Clone()
			rr := sched.ConcurrentRound(f(), trial, order)
			for _, att := range rr.Attempts {
				if att.Reason == sched.FailRevalidation && !att.PredecessorSuccess {
					res.refute(rank, fmt.Sprintf(
						"state %v order %v: c%d's failed steal from c%d has no predecessor success",
						m.Loads(), order, att.Thief, att.Victim))
					return false
				}
			}
			return true
		})
		return ok
	})
	return res
}
