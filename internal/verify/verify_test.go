package verify

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/statespace"
)

func delta2Factory() sched.Policy   { return policy.NewDelta2() }
func weightedFactory() sched.Policy { return policy.NewWeighted() }
func greedyFactory() sched.Policy   { return policy.NewGreedyBuggy() }

// smallUniverse keeps individual obligation tests fast.
func smallUniverse() statespace.Universe {
	return statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
}

func TestLemma1Delta2(t *testing.T) {
	r := CheckLemma1(context.Background(), delta2Factory, smallUniverse())
	if !r.Passed {
		t.Fatalf("Lemma 1 failed for Delta2: %s", r.Witness)
	}
	if r.StatesChecked == 0 {
		t.Error("no states checked")
	}
}

func TestLemma1Weighted(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4,
		Weights: []int64{1, 3}, IncludeUnscheduled: true}
	r := CheckLemma1(context.Background(), weightedFactory, u)
	if !r.Passed {
		t.Fatalf("Lemma 1 failed for Weighted: %s", r.Witness)
	}
}

func TestLemma1GreedyHoldsSequentially(t *testing.T) {
	// The §4.3 point: the buggy greedy filter is fine by the sequential
	// lemma — only concurrency breaks it.
	r := CheckLemma1(context.Background(), greedyFactory, smallUniverse())
	if !r.Passed {
		t.Fatalf("Lemma 1 should hold for GreedyBuggy: %s", r.Witness)
	}
}

func TestLemma1CatchesBadFilter(t *testing.T) {
	// A filter that steals from non-overloaded cores must fail the
	// forall direction.
	f := func() sched.Policy {
		return &sched.FuncPolicy{
			PolicyName: "steal-anything",
			LoadFn:     func(c *sched.Core) int64 { return int64(c.NThreads()) },
			FilterFn:   func(_, s *sched.Core) bool { return s.NThreads() >= 1 },
		}
	}
	r := CheckLemma1(context.Background(), f, smallUniverse())
	if r.Passed {
		t.Fatal("steal-anything filter passed Lemma 1")
	}
	if !strings.Contains(r.Witness, "non-overloaded") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestLemma1CatchesTimidFilter(t *testing.T) {
	// A filter that never steals fails the exists direction.
	r := CheckLemma1(context.Background(), func() sched.Policy { return policy.NewNull() }, smallUniverse())
	if r.Passed {
		t.Fatal("null policy passed Lemma 1")
	}
	if !strings.Contains(r.Witness, "no candidate") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestStealSoundnessDelta2(t *testing.T) {
	r := CheckStealSoundness(context.Background(), delta2Factory, smallUniverse())
	if !r.Passed {
		t.Fatalf("steal soundness failed for Delta2: %s", r.Witness)
	}
}

func TestStealSoundnessWeighted(t *testing.T) {
	u := statespace.Universe{Cores: 2, MaxPerCore: 3, Weights: []int64{1, 2, 5}, IncludeUnscheduled: true}
	r := CheckStealSoundness(context.Background(), weightedFactory, u)
	if !r.Passed {
		t.Fatalf("steal soundness failed for Weighted: %s", r.Witness)
	}
}

func TestStealSoundnessCatchesDraining(t *testing.T) {
	// Delta1Aggressive can steal a core's only (queued) thread.
	r := CheckStealSoundness(context.Background(), func() sched.Policy { return policy.NewDelta1Aggressive() },
		statespace.Universe{Cores: 2, MaxPerCore: 2, IncludeUnscheduled: true})
	if r.Passed {
		t.Fatal("Delta1Aggressive passed steal soundness")
	}
	if !strings.Contains(r.Witness, "emptied") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestPotentialDecreaseDelta2(t *testing.T) {
	r := CheckPotentialDecrease(context.Background(), delta2Factory, smallUniverse())
	if !r.Passed {
		t.Fatalf("potential decrease failed for Delta2: %s", r.Witness)
	}
}

func TestPotentialDecreaseWeighted(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4,
		Weights: []int64{1, 4}, IncludeUnscheduled: true}
	r := CheckPotentialDecrease(context.Background(), weightedFactory, u)
	if !r.Passed {
		t.Fatalf("potential decrease failed for Weighted: %s", r.Witness)
	}
}

func TestPotentialDecreaseFailsForGreedy(t *testing.T) {
	r := CheckPotentialDecrease(context.Background(), greedyFactory, smallUniverse())
	if r.Passed {
		t.Fatal("GreedyBuggy passed the potential-decrease obligation")
	}
	if !strings.Contains(r.Witness, "no strict decrease") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestFailureImpliesSuccessDelta2(t *testing.T) {
	r := CheckFailureImpliesSuccess(context.Background(), delta2Factory, smallUniverse())
	if !r.Passed {
		t.Fatalf("failure-implies-success failed for Delta2: %s", r.Witness)
	}
	if r.SchedulesChecked == 0 {
		t.Error("no schedules checked")
	}
}

func TestFailureImpliesSuccessGreedy(t *testing.T) {
	// Even the buggy policy satisfies this obligation: its failures are
	// always caused by successes — the problem is that successes are
	// unbounded, which is the *other* obligation.
	r := CheckFailureImpliesSuccess(context.Background(), greedyFactory, smallUniverse())
	if !r.Passed {
		t.Fatalf("failure-implies-success failed for GreedyBuggy: %s", r.Witness)
	}
}

func TestWorkConservationSequentialDelta2(t *testing.T) {
	r := CheckWorkConservationSequential(context.Background(), delta2Factory, smallUniverse(), 0)
	if !r.Passed {
		t.Fatalf("sequential WC failed for Delta2: %s", r.Witness)
	}
	if r.Bound < 1 {
		t.Errorf("worst-case N = %d, expected at least 1 round somewhere", r.Bound)
	}
}

func TestWorkConservationSequentialGreedy(t *testing.T) {
	// §4.2 vs §4.3: greedy is work-conserving without concurrency.
	r := CheckWorkConservationSequential(context.Background(), greedyFactory, smallUniverse(), 0)
	if !r.Passed {
		t.Fatalf("sequential WC failed for GreedyBuggy: %s", r.Witness)
	}
}

func TestWorkConservationSequentialNullFails(t *testing.T) {
	r := CheckWorkConservationSequential(context.Background(), func() sched.Policy { return policy.NewNull() },
		smallUniverse(), 0)
	if r.Passed {
		t.Fatal("null policy passed sequential WC")
	}
	if !strings.Contains(r.Witness, "stuck") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestWorkConservationConcurrentDelta2(t *testing.T) {
	r := CheckWorkConservationConcurrent(context.Background(), delta2Factory, smallUniverse())
	if !r.Passed {
		t.Fatalf("concurrent WC failed for Delta2: %s", r.Witness)
	}
	if r.Bound < 1 {
		t.Errorf("worst-case N = %d", r.Bound)
	}
}

func TestWorkConservationConcurrentGreedyLivelock(t *testing.T) {
	// The headline result: the explorer must automatically find the
	// §4.3 ping-pong livelock for the greedy filter.
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 3}
	r := CheckWorkConservationConcurrent(context.Background(), greedyFactory, u)
	if r.Passed {
		t.Fatal("GreedyBuggy passed concurrent WC — livelock not found")
	}
	if !strings.Contains(r.Witness, "livelock") {
		t.Errorf("witness = %q", r.Witness)
	}
	t.Logf("counterexample: %s", r.Witness)
}

func TestWorkConservationConcurrentHierarchical(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4,
		IncludeUnscheduled: true, Groups: []int{0, 0, 1}}
	r := CheckWorkConservationConcurrent(context.Background(), func() sched.Policy { return policy.NewHierarchical() }, u)
	if !r.Passed {
		t.Fatalf("concurrent WC failed for Hierarchical: %s", r.Witness)
	}
}

func TestCFSGroupBuggyFailsLemma1(t *testing.T) {
	// The motivation bug is caught at the cheapest obligation: with
	// groups and a heavy thread, an idle thief has no candidate.
	u := statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 5,
		Weights: []int64{1, 8}, Groups: []int{0, 0, 1, 1}}
	r := CheckLemma1(context.Background(), func() sched.Policy { return policy.NewCFSGroupBuggy() }, u)
	if r.Passed {
		t.Fatal("CFSGroupBuggy passed Lemma 1")
	}
	if !strings.Contains(r.Witness, "no candidate") {
		t.Errorf("witness = %q", r.Witness)
	}
	t.Logf("counterexample: %s", r.Witness)
}

func TestHierarchicalPassesLemma1WithGroups(t *testing.T) {
	u := statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 4,
		Groups: []int{0, 0, 1, 1}, IncludeUnscheduled: true}
	r := CheckLemma1(context.Background(), func() sched.Policy { return policy.NewHierarchical() }, u)
	if !r.Passed {
		t.Fatalf("Lemma 1 failed for Hierarchical: %s", r.Witness)
	}
}

func TestVerifyPolicyFullReportDelta2(t *testing.T) {
	rep := Policy("delta2", delta2Factory, Config{Universe: smallUniverse()})
	if !rep.Passed() {
		t.Fatalf("Delta2 report failed:\n%s", rep)
	}
	if len(rep.Results) != len(AllObligations()) {
		t.Errorf("results = %d, want %d", len(rep.Results), len(AllObligations()))
	}
	if rep.Result(ObLemma1) == nil || rep.Result("nope") != nil {
		t.Error("Result lookup misbehaves")
	}
	if !strings.Contains(rep.String(), "WORK-CONSERVING") {
		t.Errorf("report: %s", rep)
	}
}

func TestVerifyPolicyFullReportGreedy(t *testing.T) {
	rep := Policy("greedy-buggy", greedyFactory, Config{Universe: smallUniverse()})
	if rep.Passed() {
		t.Fatal("GreedyBuggy report passed")
	}
	failed := rep.Failed()
	wantFailed := map[ObligationID]bool{
		ObPotentialDecrease:  true,
		ObWorkConservConc:    true,
		ObChoiceIndependence: true, // livelocks regardless of the chooser
		ObReactivity:         true, // core 0 starves in the ping-pong
	}
	for _, id := range failed {
		if !wantFailed[id] {
			t.Errorf("unexpected failed obligation %s", id)
		}
		delete(wantFailed, id)
	}
	for id := range wantFailed {
		t.Errorf("obligation %s should have failed", id)
	}
	if !strings.Contains(rep.String(), "NOT PROVEN") {
		t.Errorf("report: %s", rep)
	}
}

func TestVerifyPolicyDefaults(t *testing.T) {
	rep := Policy("delta2", delta2Factory, Config{
		Obligations: []ObligationID{ObLemma1},
	})
	if len(rep.Results) != 1 || rep.Results[0].ID != ObLemma1 {
		t.Fatalf("results: %+v", rep.Results)
	}
	if !strings.Contains(rep.Universe, "cores:3") {
		t.Errorf("default universe not applied: %s", rep.Universe)
	}
}

func TestVerifyPolicyUnknownObligationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown obligation did not panic")
		}
	}()
	Policy("delta2", delta2Factory, Config{Obligations: []ObligationID{"bogus"}})
}

func TestChoiceIndependenceDelta2(t *testing.T) {
	// The paper's structural claim: any step-2 choice preserves work
	// conservation when the filter is sound. The adversary picks both
	// the victims and the steal order.
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
	r := CheckChoiceIndependence(context.Background(), delta2Factory, u)
	if !r.Passed {
		t.Fatalf("choice independence failed for Delta2: %s", r.Witness)
	}
	// The choice adversary explores strictly more schedules than the
	// order-only adversary.
	r2 := CheckWorkConservationConcurrent(context.Background(), delta2Factory, u)
	if r.SchedulesChecked <= r2.SchedulesChecked {
		t.Errorf("choice adversary explored %d schedules, order adversary %d",
			r.SchedulesChecked, r2.SchedulesChecked)
	}
}

func TestChoiceIndependenceGreedyFails(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 3}
	r := CheckChoiceIndependence(context.Background(), greedyFactory, u)
	if r.Passed {
		t.Fatal("greedy passed choice independence")
	}
	if !strings.Contains(r.Witness, "victims") {
		t.Errorf("witness should carry victim vectors: %q", r.Witness)
	}
}

func TestChoiceIndependenceHierarchical(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4,
		IncludeUnscheduled: true, Groups: []int{0, 0, 1}}
	r := CheckChoiceIndependence(context.Background(), func() sched.Policy { return policy.NewHierarchical() }, u)
	if !r.Passed {
		t.Fatalf("choice independence failed for Hierarchical: %s", r.Witness)
	}
}

func TestReactivityDelta2(t *testing.T) {
	// The §1 property the paper lists as unproven: a bound on the delay
	// before an idle core gets work. For Delta2 the bound exists and is
	// small over the bounded universe.
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
	r := CheckReactivity(context.Background(), delta2Factory, u)
	if !r.Passed {
		t.Fatalf("reactivity failed for Delta2: %s", r.Witness)
	}
	if r.Bound < 1 || r.Bound > 3 {
		t.Errorf("reactivity bound = %d rounds, want a small positive bound", r.Bound)
	}
	t.Logf("delta2 reactivity bound: %d round(s) over %d schedules", r.Bound, r.SchedulesChecked)
}

func TestReactivityGreedyStarves(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 3}
	r := CheckReactivity(context.Background(), greedyFactory, u)
	if r.Passed {
		t.Fatal("greedy passed reactivity despite the starvation cycle")
	}
	if !strings.Contains(r.Witness, "can starve") {
		t.Errorf("witness = %q", r.Witness)
	}
}

func TestReactivityNullFails(t *testing.T) {
	r := CheckReactivity(context.Background(), func() sched.Policy { return policy.NewNull() },
		statespace.Universe{Cores: 2, MaxPerCore: 2})
	if r.Passed {
		t.Fatal("null policy passed reactivity")
	}
}

func TestRevalidationAblation(t *testing.T) {
	res := CheckRevalidationAblation(context.Background(), delta2Factory,
		statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true})
	if res.SoundnessViolations == 0 {
		t.Error("removing re-validation produced no soundness violations — ablation shows nothing")
	}
	if res.FirstWitness == "" {
		t.Error("no witness recorded")
	}
	t.Logf("ablation: %d soundness violations, %d potential violations over %d schedules; e.g. %s",
		res.SoundnessViolations, res.PotentialViolations, res.SchedulesChecked, res.FirstWitness)
}

func TestShardedDeterminismAcrossParallelism(t *testing.T) {
	// The sharded driver's contract: Sequential and every parallel level
	// produce byte-identical reports — same verdicts, same counters,
	// same witnesses — for proved and refuted policies alike.
	for _, tc := range []struct {
		name string
		f    Factory
	}{
		{"delta2", delta2Factory},
		{"greedy-buggy", greedyFactory},
	} {
		base, err := PolicyContext(context.Background(), tc.name, tc.f,
			Config{Universe: smallUniverse(), Sequential: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		for _, par := range []int{1, 2, 4, 8} {
			rep, err := PolicyContext(context.Background(), tc.name, tc.f,
				Config{Universe: smallUniverse(), Parallelism: par})
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", tc.name, par, err)
			}
			if !reflect.DeepEqual(rep.Results, base.Results) {
				t.Errorf("%s parallel=%d: results diverged from sequential:\n%s\nvs\n%s",
					tc.name, par, rep, base)
			}
			for i := range rep.Results {
				if rep.Results[i].Witness != base.Results[i].Witness {
					t.Errorf("%s parallel=%d %s: witness %q != sequential %q",
						tc.name, par, rep.Results[i].ID, rep.Results[i].Witness, base.Results[i].Witness)
				}
			}
		}
	}
}

func rescueFactory() sched.Policy {
	p, err := policy.New("delta2-rescue")
	if err != nil {
		panic(err)
	}
	return p
}

// faultUniverse extends the small fixture with the fault dimension.
func faultUniverse() statespace.Universe {
	u := smallUniverse()
	u.MaxFaults = 1
	return u
}

func TestNoTaskLostRefutesRescueless(t *testing.T) {
	r := CheckNoTaskLost(context.Background(), delta2Factory, faultUniverse(), 0)
	if r.Passed {
		t.Fatal("delta2 (no rescue rule) passed no-task-lost under faults")
	}
	if !strings.Contains(r.Witness, "never re-homed") {
		t.Errorf("witness %q does not explain the stranded task", r.Witness)
	}
}

func TestNoTaskLostProvesRescue(t *testing.T) {
	r := CheckNoTaskLost(context.Background(), rescueFactory, faultUniverse(), 0)
	if !r.Passed {
		t.Fatalf("delta2-rescue failed no-task-lost: %s", r.Witness)
	}
}

func TestDegradedWastedCoresRefutesRescueless(t *testing.T) {
	r := CheckDegradedWastedCores(context.Background(), delta2Factory, faultUniverse(), 0)
	if r.Passed {
		t.Fatal("delta2 (no rescue rule) passed degraded-wasted-cores under faults")
	}
}

func TestDegradedWastedCoresProvesRescue(t *testing.T) {
	r := CheckDegradedWastedCores(context.Background(), rescueFactory, faultUniverse(), 0)
	if !r.Passed {
		t.Fatalf("delta2-rescue failed degraded-wasted-cores: %s", r.Witness)
	}
}

func TestShardedDeterminismAcrossParallelismWithFaults(t *testing.T) {
	// The PR 2 determinism contract extended to the fault dimension:
	// sequential and every parallel level must produce byte-identical
	// reports over a fault-extended universe, for the proved
	// (delta2-rescue) and refuted (delta2, stranded orphans) sides alike.
	for _, tc := range []struct {
		name string
		f    Factory
	}{
		{"delta2", delta2Factory},
		{"delta2-rescue", rescueFactory},
	} {
		base, err := PolicyContext(context.Background(), tc.name, tc.f,
			Config{Universe: faultUniverse(), Sequential: true})
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		for _, par := range []int{1, 2, 4, 8} {
			rep, err := PolicyContext(context.Background(), tc.name, tc.f,
				Config{Universe: faultUniverse(), Parallelism: par})
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", tc.name, par, err)
			}
			if !reflect.DeepEqual(rep.Results, base.Results) {
				t.Errorf("%s parallel=%d: results diverged from sequential:\n%s\nvs\n%s",
					tc.name, par, rep, base)
			}
		}
	}
}

func TestFaultObligationsVacuousOnHealthyUniverse(t *testing.T) {
	// With MaxFaults 0 every state is healthy, so both fault obligations
	// are vacuously proved even for rescue-less policies — the fault
	// dimension is opt-in and cannot refute a legacy run.
	for _, check := range []func(context.Context, Factory, statespace.Universe, int) Result{
		CheckNoTaskLost, CheckDegradedWastedCores,
	} {
		r := check(context.Background(), delta2Factory, smallUniverse(), 0)
		if !r.Passed {
			t.Errorf("%s refuted on a healthy universe: %s", r.ID, r.Witness)
		}
	}
}

func TestShardedWitnessMatchesWholeUniverseScan(t *testing.T) {
	// The merged witness must be the one a single sequential scan of the
	// whole universe finds first (lowest enumeration rank), not whichever
	// shard happened to refute: re-derive GreedyBuggy's first
	// potential-decrease violation by brute force and compare.
	u := smallUniverse()
	var want string
	u.Enumerate(func(m *sched.Machine) bool {
		p := greedyFactory()
		beginRound(p, m)
		for ti := range m.Cores {
			for si := range m.Cores {
				if ti == si || !p.CanSteal(m.Core(ti), m.Core(si)) {
					continue
				}
				trial := m.Clone()
				pt := greedyFactory()
				beginRound(pt, trial)
				before := sched.PairwiseImbalance(pt, trial)
				att := sched.Attempt{Thief: ti, Victim: si}
				sched.Steal(pt, trial, &att)
				if !att.Succeeded() {
					continue
				}
				if after := sched.PairwiseImbalance(pt, trial); after >= before {
					want = fmt.Sprintf(
						"state %v: steal c%d<-c%d left potential %d -> %d (no strict decrease)",
						m.Loads(), ti, si, before, after)
					return false
				}
			}
		}
		return true
	})
	if want == "" {
		t.Fatal("brute force found no violation — fixture broken")
	}
	r := CheckPotentialDecrease(context.Background(), greedyFactory, u)
	if r.Passed {
		t.Fatal("GreedyBuggy passed potential decrease")
	}
	if r.Witness != want {
		t.Errorf("sharded witness %q, whole-universe first witness %q", r.Witness, want)
	}
}

func TestFailureImpliesSuccessCancelsMidState(t *testing.T) {
	// The per-schedule ctx poll: one state of a 7-core universe fans out
	// to 5040 adversarial orders, so polling only per state would run
	// thousands of schedules after cancellation. Cancel during the first
	// round and require the check to stop within a few poll strides.
	u := statespace.Universe{Cores: 7, MaxPerCore: 1}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	f := func() sched.Policy {
		if calls.Add(1) == 1 {
			cancel()
		}
		return policy.NewDelta2()
	}
	r := CheckFailureImpliesSuccess(ctx, f, u)
	if !r.Aborted {
		t.Fatalf("check not aborted: %+v", r)
	}
	// Each shard may run up to ~2 poll strides (128 schedules) past the
	// cancellation, and the shard count scales with GOMAXPROCS; anything
	// near the 5040-order fan-out of a single state per shard means the
	// inner poll is gone.
	if limit := shardTotal() * 128; r.SchedulesChecked > limit {
		t.Errorf("aborted check still ran %d schedules (limit %d)", r.SchedulesChecked, limit)
	}
}

func TestRevalidationAblationCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := CheckRevalidationAblation(ctx, delta2Factory,
		statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true})
	if !res.Aborted {
		t.Error("cancelled ablation not marked aborted")
	}
	if limit := shardTotal() * 128; res.SchedulesChecked > limit {
		t.Errorf("cancelled ablation still ran %d schedules (limit %d)", res.SchedulesChecked, limit)
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: ObLemma1, Passed: true, StatesChecked: 10}
	if !strings.Contains(r.String(), "PASS") {
		t.Errorf("String = %q", r.String())
	}
	r2 := Result{ID: ObWorkConservConc, Passed: false, Witness: "w", StatesChecked: 5, SchedulesChecked: 30, Bound: 4}
	s := r2.String()
	for _, frag := range []string{"FAIL", "schedules=30", "worst-N=4", "witness: w"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}
