// Package verify is this repository's stand-in for the paper's Leon
// verification toolchain: it checks scheduling policies against the
// paper's proof obligations by exhaustive bounded model checking instead
// of deductive proof.
//
// Every lemma the paper states over "all machines" is checked over every
// machine of a statespace.Universe (all thread placements up to a bound,
// optionally with weighted tasks), and every statement about concurrent
// rounds is checked over every adversarial serialization of the round's
// steal operations. The obligations:
//
//   - Lemma 1 (Listing 2): an idle thief can steal whenever an overloaded
//     core exists, and its filter passes only overloaded cores.
//   - Steal soundness (§4.2): a steal admitted by the filter succeeds,
//     never empties the stealee, and preserves the thread population.
//   - Potential decrease (§4.3): every successful steal strictly
//     decreases the pairwise load imbalance d.
//   - Failure implies success (§4.3): a steal that fails re-validation is
//     always explained by an earlier successful steal in the same round.
//   - Work conservation (§3.2): from every state, under every adversarial
//     steal order, some finite number N of rounds reaches a state with no
//     idle core while an overloaded core exists — checked by exhaustive
//     game-graph exploration with cycle detection, which finds the §4.3
//     GreedyBuggy ping-pong automatically.
package verify

import (
	"fmt"
	"strings"
)

// ObligationID names one proof obligation.
type ObligationID string

// The paper's proof obligations.
const (
	ObLemma1             ObligationID = "lemma1"
	ObStealSoundness     ObligationID = "steal-soundness"
	ObPotentialDecrease  ObligationID = "potential-decrease"
	ObFailureImpliesSucc ObligationID = "failure-implies-success"
	ObWorkConservSeq     ObligationID = "work-conservation-sequential"
	ObWorkConservConc    ObligationID = "work-conservation-concurrent"
	ObChoiceIndependence ObligationID = "choice-independence"
	ObReactivity         ObligationID = "reactivity"
)

// Fault-model obligations: graceful degradation under fail-stop core
// faults and hotplug (see internal/verify/faults.go). They quantify over
// the universe's fault dimension (statespace.Universe.MaxFaults) and are
// vacuously true when it is zero.
const (
	// ObNoTaskLost: every task orphaned by a core failure is re-homed
	// onto an online core (by the policy's rescue rule or by the core's
	// revival) within MaxRounds rounds of the failure.
	ObNoTaskLost ObligationID = "no-task-lost"
	// ObDegradedWastedCores: the wasted-cores invariant restricted to
	// online cores — after any fail/revive event, no online core stays
	// idle while another online core is overloaded or orphan work sits
	// stranded offline, within MaxRounds rounds.
	ObDegradedWastedCores ObligationID = "degraded-wasted-cores"
)

// Result is the outcome of checking one obligation. The json tags define
// the deterministic wire encoding (see ReportJSON): field order follows
// the struct declaration, and fields that are zero on passing sequential
// obligations (witness, schedule count, bound, aborted) are omitted.
type Result struct {
	// ID identifies the obligation.
	ID ObligationID `json:"id"`
	// Passed reports whether the obligation holds over the whole
	// universe.
	Passed bool `json:"passed"`
	// Aborted reports that the check was cut short by context
	// cancellation: Passed is false but nothing was refuted, and the
	// counts below cover only the part of the universe visited.
	Aborted bool `json:"aborted,omitempty"`
	// Witness describes the first violating state/schedule when the
	// obligation fails; empty otherwise.
	Witness string `json:"witness,omitempty"`
	// StatesChecked counts the machine states examined.
	StatesChecked int `json:"states_checked"`
	// SchedulesChecked counts (state, steal-order) pairs examined by the
	// concurrent obligations; zero for sequential ones.
	SchedulesChecked int `json:"schedules_checked,omitempty"`
	// Bound carries the obligation's quantitative finding, when one
	// exists: the worst-case N for the work-conservation obligations,
	// zero otherwise.
	Bound int `json:"bound,omitempty"`

	// order is the witness's global enumeration rank (the index of its
	// thread-count vector in statespace.Universe.Enumerate order). The
	// sharded driver merges per-shard refutations by keeping the lowest
	// order, so parallel runs report the same witness a sequential scan
	// finds first. Meaningful only when Passed is false and Aborted is
	// false.
	order int
}

// String renders a single-line summary.
func (r Result) String() string {
	status := "PASS"
	switch {
	case r.Aborted:
		status = "ABORTED"
	case !r.Passed:
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %-28s states=%d", status, r.ID, r.StatesChecked)
	if r.SchedulesChecked > 0 {
		fmt.Fprintf(&b, " schedules=%d", r.SchedulesChecked)
	}
	if r.Bound > 0 {
		fmt.Fprintf(&b, " worst-N=%d", r.Bound)
	}
	if r.Witness != "" {
		fmt.Fprintf(&b, "\n    witness: %s", r.Witness)
	}
	return b.String()
}

// Report aggregates obligation results for one policy.
type Report struct {
	// Policy is the verified policy's name.
	Policy string `json:"policy"`
	// Universe describes the bounded state space the checks ran over.
	Universe string `json:"universe"`
	// Results holds one entry per checked obligation.
	Results []Result `json:"results"`
}

// Passed reports whether every obligation holds.
func (r *Report) Passed() bool {
	for _, res := range r.Results {
		if !res.Passed {
			return false
		}
	}
	return true
}

// Failed returns the IDs of obligations that do not hold.
func (r *Report) Failed() []ObligationID {
	var ids []ObligationID
	for _, res := range r.Results {
		if !res.Passed {
			ids = append(ids, res.ID)
		}
	}
	return ids
}

// Aborted returns the IDs of obligations cut short by cancellation.
func (r *Report) Aborted() []ObligationID {
	var ids []ObligationID
	for _, res := range r.Results {
		if res.Aborted {
			ids = append(ids, res.ID)
		}
	}
	return ids
}

// Result returns the result for the given obligation, or nil.
func (r *Report) Result(id ObligationID) *Result {
	for i := range r.Results {
		if r.Results[i].ID == id {
			return &r.Results[i]
		}
	}
	return nil
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	// Conclusive refutations outrank cancellation: a policy refuted
	// before the cut is refuted, however many obligations were left
	// unfinished.
	var refuted []ObligationID
	for _, res := range r.Results {
		if !res.Passed && !res.Aborted {
			refuted = append(refuted, res.ID)
		}
	}
	aborted := r.Aborted()
	verdict := "WORK-CONSERVING (all obligations hold over the bounded universe)"
	switch {
	case len(refuted) > 0 && len(aborted) > 0:
		verdict = fmt.Sprintf("NOT PROVEN: failed %v (cancelled with %v unfinished)", refuted, aborted)
	case len(refuted) > 0:
		verdict = fmt.Sprintf("NOT PROVEN: failed %v", refuted)
	case len(aborted) > 0:
		verdict = fmt.Sprintf("ABORTED: cancelled with obligations unfinished %v", aborted)
	}
	fmt.Fprintf(&b, "policy %s over %s\n", r.Policy, r.Universe)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %s\n", res)
	}
	fmt.Fprintf(&b, "  verdict: %s", verdict)
	return b.String()
}
