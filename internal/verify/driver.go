package verify

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// This file is the sharded verification driver. Every obligation's
// quantifier ("for all machines in the universe") is split into
// shardTotal() disjoint slices via statespace.Universe.EnumerateShard;
// the slices run on a worker pool and their per-shard Results merge
// back into one deterministic Result.
//
// Two properties make the parallel reports byte-identical run to run
// and across parallelism levels:
//
//   - The shard count depends only on the machine (GOMAXPROCS, floored
//     at minShards), never on the configured worker count, so every
//     -parallel level checks exactly the same slices.
//   - A refuted shard records the global enumeration rank of its
//     witness, and the merge keeps the lowest-ranked one — the same
//     witness a sequential scan of the whole universe would have found
//     first. Shards never cancel each other: each runs to its own first
//     witness or to exhaustion, so the merged counters are equal at
//     every parallelism level (including Sequential) at the price of a
//     fuller sweep on refuted policies.

// minShards keeps the partition real on small machines: even at
// GOMAXPROCS=1 the driver exercises genuine multi-shard merges, and a
// later -parallel 8 run on bigger hardware still has slices to spread.
const minShards = 8

// shardTotal is the per-obligation shard count: GOMAXPROCS, floored at
// minShards. It is deliberately independent of Config.Parallelism (see
// the file comment).
func shardTotal() int {
	if n := runtime.GOMAXPROCS(0); n > minShards {
		return n
	}
	return minShards
}

// shard identifies one slice of the universe partition.
type shard struct {
	index, total int
}

// enumerate walks the shard's slice of u, handing fn each machine with
// its global enumeration rank.
func (s shard) enumerate(u statespace.Universe, fn func(rank int, m *sched.Machine) bool) bool {
	return u.EnumerateShardRank(s.index, s.total, fn)
}

// refute records a refutation found at the given global enumeration
// rank. The merge keeps the witness with the lowest rank, i.e. the
// first one in Enumerate order.
func (r *Result) refute(rank int, witness string) {
	r.Passed = false
	r.Witness = witness
	r.order = rank
}

// shardCheck dispatches one (obligation, shard) task to its checker,
// containing panics: shard tasks run on pool goroutines, where an
// uncaught panic (a crashing checker or policy) would kill the whole
// process — in the daemon, taking every other job with it. A panicking
// shard instead becomes an aborted shard result, which the merge
// propagates as an ABORTED obligation (never cached, so the next
// submission re-runs it).
func shardCheck(ctx context.Context, id ObligationID, f Factory, u statespace.Universe, maxRounds int, sh shard) (res Result) {
	defer func() {
		if p := recover(); p != nil {
			res = Result{
				ID:      id,
				Aborted: true,
				Witness: fmt.Sprintf("aborted: checker panic: %v", p),
			}
		}
	}()
	return rawShardCheck(ctx, id, f, u, maxRounds, sh)
}

// rawShardCheck is the uncontained dispatch. The fault obligations are
// the only consumers of the universe's fault dimension; for the
// steady-state obligations MaxFaults is zeroed, so their verdicts,
// counters and witnesses on a fault-extended universe stay byte-identical
// to the healthy universe's.
func rawShardCheck(ctx context.Context, id ObligationID, f Factory, u statespace.Universe, maxRounds int, sh shard) Result {
	switch id {
	case ObNoTaskLost:
		return checkNoTaskLostShard(ctx, f, u, maxRounds, sh)
	case ObDegradedWastedCores:
		return checkDegradedWastedCoresShard(ctx, f, u, maxRounds, sh)
	}
	u.MaxFaults = 0
	switch id {
	case ObLemma1:
		return checkLemma1Shard(ctx, f, u, sh)
	case ObStealSoundness:
		return checkStealSoundnessShard(ctx, f, u, sh)
	case ObPotentialDecrease:
		return checkPotentialDecreaseShard(ctx, f, u, sh)
	case ObFailureImpliesSucc:
		return checkFailureImpliesSuccessShard(ctx, f, u, sh)
	case ObWorkConservSeq:
		return checkWorkConservationSequentialShard(ctx, f, u, maxRounds, sh)
	case ObWorkConservConc:
		return checkGameShard(ctx, ObWorkConservConc, f, u, orderSuccessors, sh)
	case ObChoiceIndependence:
		return checkGameShard(ctx, ObChoiceIndependence, f, u, choiceSuccessors, sh)
	case ObReactivity:
		return checkReactivityShard(ctx, f, u, sh)
	default:
		panic(fmt.Sprintf("verify: unknown obligation %q", id))
	}
}

// mergeResults folds per-shard results into the obligation's Result:
// counters sum, bounds max, and the verdict follows the report's
// precedence — a conclusive refutation (lowest witness rank wins)
// outranks cancellation, which outranks a pass.
func mergeResults(id ObligationID, parts []Result) Result {
	merged := Result{ID: id, Passed: true}
	refutedRank := -1
	refutedWitness := ""
	abortWitness := ""
	for _, p := range parts {
		merged.StatesChecked += p.StatesChecked
		merged.SchedulesChecked += p.SchedulesChecked
		if p.Bound > merged.Bound {
			merged.Bound = p.Bound
		}
		switch {
		case p.Aborted:
			if abortWitness == "" {
				abortWitness = p.Witness
			}
		case !p.Passed:
			if refutedRank < 0 || p.order < refutedRank {
				refutedRank = p.order
				refutedWitness = p.Witness
			}
		}
	}
	switch {
	case refutedRank >= 0:
		merged.Passed = false
		merged.Witness = refutedWitness
		merged.order = refutedRank
	case abortWitness != "":
		merged.Passed = false
		merged.Aborted = true
		merged.Witness = abortWitness
	}
	return merged
}

// RunObligation checks a single obligation under cfg and returns its
// merged Result — the per-obligation entry point the incremental
// verification service (internal/service) memoizes. It is PolicyContext
// restricted to one obligation: the same shard partition, the same
// deterministic merge, so the Result for an obligation is byte-for-byte
// the entry PolicyContext would put in a full report. cfg.Obligations is
// ignored; cfg.Sequential and cfg.Parallelism govern the shard fan-out
// exactly as in PolicyContext. Panics on unknown obligations, like
// PolicyContext.
func RunObligation(ctx context.Context, id ObligationID, f Factory, cfg Config) Result {
	if !KnownObligation(id) {
		panic(fmt.Sprintf("verify: unknown obligation %q", id))
	}
	u := cfg.Universe
	if u.Cores == 0 {
		u = DefaultUniverse()
	}
	total := shardTotal()
	parts := make([]Result, total)
	if cfg.Sequential {
		for s := range parts {
			parts[s] = shardCheck(ctx, id, f, u, cfg.MaxRounds, shard{s, total})
		}
		return mergeResults(id, parts)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	forEachTask(total, workers, func(s int) {
		parts[s] = shardCheck(ctx, id, f, u, cfg.MaxRounds, shard{s, total})
	})
	return mergeResults(id, parts)
}

// runObligation runs one obligation's full shard fan-out on a pool of
// GOMAXPROCS workers and merges. The standalone Check* entry points
// route through here — so they call the factory concurrently; see
// Factory — while the suite driver (PolicyContext) instead shares one
// pool across all selected obligations.
func runObligation(ctx context.Context, id ObligationID, f Factory, u statespace.Universe, maxRounds int) Result {
	return RunObligation(ctx, id, f, Config{Universe: u, MaxRounds: maxRounds})
}

// forEachTask runs fn(i) for i in [0, n) with at most `workers`
// concurrent calls (a semaphore over eagerly spawned goroutines — the
// one worker-pool implementation every parallel driver path shares).
// Each index is handed to exactly one goroutine, so fn needs no locking
// for per-index state. workers=1 serializes the calls (they still hop
// goroutines, but the semaphore orders them happens-before).
func forEachTask(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
