package verify

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/statespace"
)

// Config parameterizes a verification run.
type Config struct {
	// Universe is the bounded state space to quantify over.
	Universe statespace.Universe
	// Obligations selects which obligations to check; nil means all.
	Obligations []ObligationID
	// MaxRounds caps sequential convergence loops (safety valve for
	// non-converging policies). Zero means 1000.
	MaxRounds int
	// Sequential forces the obligations to run one after another on the
	// calling goroutine instead of in parallel — for deterministic
	// profiling and debugging.
	Sequential bool
}

// DefaultUniverse is the bounded universe used when a Config leaves it
// zero: 3 cores, up to 3 threads per core and 5 in total, including
// unscheduled states — it contains every machine discussed in the paper
// (the 0/1/2 counterexample, the two-thieves conflict) while keeping the
// adversarial game graph small enough for exhaustive exploration.
func DefaultUniverse() statespace.Universe {
	return statespace.Universe{
		Cores:              3,
		MaxPerCore:         3,
		MaxTotal:           5,
		IncludeUnscheduled: true,
	}
}

// AllObligations lists every obligation in report order.
func AllObligations() []ObligationID {
	return []ObligationID{
		ObLemma1,
		ObStealSoundness,
		ObPotentialDecrease,
		ObFailureImpliesSucc,
		ObWorkConservSeq,
		ObWorkConservConc,
		ObChoiceIndependence,
		ObReactivity,
	}
}

// Policy verifies the policy produced by f against the paper's proof
// obligations over the configured bounded universe and returns the full
// report. This is the library's analogue of running the paper's Leon
// pipeline on a DSL policy.
//
// Obligations run sequentially on the calling goroutine, preserving this
// entry point's original contract (f is never called concurrently); use
// PolicyContext for the parallel, cancellable variant.
func Policy(name string, f Factory, cfg Config) *Report {
	cfg.Sequential = true
	rep, _ := PolicyContext(context.Background(), name, f, cfg)
	return rep
}

// PolicyContext is Policy with cancellation and parallelism: the selected
// obligations run concurrently (one goroutine each — a real speedup on
// the 8-obligation suite, whose game-graph checks dominate), and the
// whole run aborts early when ctx is cancelled. Because obligations run
// concurrently, f must be safe for concurrent calls; every registered
// and DSL-compiled factory is, since each call constructs a fresh
// policy.
//
// On cancellation the returned report is partial — obligations cut short
// are marked failed with an "aborted" witness — and the returned error
// is ctx.Err(). A nil error means every selected obligation ran to
// completion (even if ctx was cancelled just after the suite finished).
func PolicyContext(ctx context.Context, name string, f Factory, cfg Config) (*Report, error) {
	u := cfg.Universe
	if u.Cores == 0 {
		u = DefaultUniverse()
	}
	obligations := cfg.Obligations
	if obligations == nil {
		obligations = AllObligations()
	}
	for _, id := range obligations {
		if !KnownObligation(id) {
			panic(fmt.Sprintf("verify: unknown obligation %q", id))
		}
	}
	rep := &Report{
		Policy: name,
		Universe: fmt.Sprintf("universe{cores:%d maxPerCore:%d maxTotal:%d weights:%v unscheduled:%v groups:%v}",
			u.Cores, u.MaxPerCore, u.MaxTotal, u.Weights, u.IncludeUnscheduled, u.Groups),
	}
	rep.Results = make([]Result, len(obligations))
	if cfg.Sequential {
		for i, id := range obligations {
			rep.Results[i] = checkObligation(ctx, id, f, u, cfg.MaxRounds)
		}
		return rep, rep.abortErr(ctx)
	}
	var wg sync.WaitGroup
	for i, id := range obligations {
		wg.Add(1)
		go func(i int, id ObligationID) {
			defer wg.Done()
			rep.Results[i] = checkObligation(ctx, id, f, u, cfg.MaxRounds)
		}(i, id)
	}
	wg.Wait()
	return rep, rep.abortErr(ctx)
}

// abortErr returns ctx's error iff cancellation actually cut an
// obligation short; a suite that completed just before cancellation is
// a full result and reports no error.
func (r *Report) abortErr(ctx context.Context) error {
	if len(r.Aborted()) == 0 {
		return nil
	}
	return ctx.Err()
}

// KnownObligation reports whether id names a checkable obligation.
func KnownObligation(id ObligationID) bool {
	for _, known := range AllObligations() {
		if id == known {
			return true
		}
	}
	return false
}

// checkObligation dispatches one obligation to its checker. The
// checkers mark genuinely cut-short results Aborted themselves; a
// refutation found in the final instant before cancellation remains a
// conclusive FAIL with its witness.
func checkObligation(ctx context.Context, id ObligationID, f Factory, u statespace.Universe, maxRounds int) Result {
	switch id {
	case ObLemma1:
		return CheckLemma1(ctx, f, u)
	case ObStealSoundness:
		return CheckStealSoundness(ctx, f, u)
	case ObPotentialDecrease:
		return CheckPotentialDecrease(ctx, f, u)
	case ObFailureImpliesSucc:
		return CheckFailureImpliesSuccess(ctx, f, u)
	case ObWorkConservSeq:
		return CheckWorkConservationSequential(ctx, f, u, maxRounds)
	case ObWorkConservConc:
		return CheckWorkConservationConcurrent(ctx, f, u)
	case ObChoiceIndependence:
		return CheckChoiceIndependence(ctx, f, u)
	case ObReactivity:
		return CheckReactivity(ctx, f, u)
	default:
		panic(fmt.Sprintf("verify: unknown obligation %q", id))
	}
}

// aborted reports whether ctx is done and, if so, marks res as aborted:
// not passed, with the cancellation as the witness. Checks poll it
// every 64 enumerated states (ctx.Err takes a mutex, and the parallel
// obligations would otherwise contend on it in their hottest loop), so
// cancellation latency is a few dozen states.
func aborted(ctx context.Context, res *Result) bool {
	if ctx.Err() == nil {
		return false
	}
	res.Passed = false
	res.Aborted = true
	res.Witness = "aborted: " + ctx.Err().Error()
	return true
}
