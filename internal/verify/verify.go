package verify

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/statespace"
)

// Version identifies the checker's semantics for content-addressed
// memoization: it is one ingredient of every schedverifyd cache key, so
// cached verdicts can never be replayed across incompatible checkers.
// Bump it whenever any obligation's verdicts, counters, bounds or
// witness text can change — shard-merge changes included, since reports
// are defined to be byte-identical across parallelism levels.
const Version = "optsched-verify/4"

// Config parameterizes a verification run.
type Config struct {
	// Universe is the bounded state space to quantify over.
	Universe statespace.Universe
	// Obligations selects which obligations to check; nil means all.
	Obligations []ObligationID
	// MaxRounds caps sequential convergence loops (safety valve for
	// non-converging policies). Zero means 1000.
	MaxRounds int
	// Sequential forces the obligations (and their shards) to run one
	// after another on the calling goroutine instead of on the worker
	// pool — for deterministic profiling, debugging, and callers whose
	// factories are not safe for concurrent calls. The universe is
	// partitioned into exactly the same shards either way, so a
	// Sequential run's verdicts, counters and witnesses are identical
	// to every parallel run's.
	Sequential bool
	// Parallelism is the worker-pool size shared by all selected
	// obligations: at most this many shard checks run concurrently.
	// Zero means GOMAXPROCS. Ignored when Sequential is set. The level
	// only changes wall-clock time, never results — see Sequential.
	Parallelism int
}

// DefaultUniverse is the bounded universe used when a Config leaves it
// zero: 3 cores, up to 3 threads per core and 5 in total, including
// unscheduled states — it contains every machine discussed in the paper
// (the 0/1/2 counterexample, the two-thieves conflict) while keeping the
// adversarial game graph small enough for exhaustive exploration.
func DefaultUniverse() statespace.Universe {
	return statespace.Universe{
		Cores:              3,
		MaxPerCore:         3,
		MaxTotal:           5,
		IncludeUnscheduled: true,
	}
}

// AllObligations lists every obligation in report order.
func AllObligations() []ObligationID {
	return []ObligationID{
		ObLemma1,
		ObStealSoundness,
		ObPotentialDecrease,
		ObFailureImpliesSucc,
		ObWorkConservSeq,
		ObWorkConservConc,
		ObChoiceIndependence,
		ObReactivity,
		ObNoTaskLost,
		ObDegradedWastedCores,
	}
}

// Policy verifies the policy produced by f against the paper's proof
// obligations over the configured bounded universe and returns the full
// report. This is the library's analogue of running the paper's Leon
// pipeline on a DSL policy.
//
// Obligations run sequentially on the calling goroutine, preserving this
// entry point's original contract (f is never called concurrently); use
// PolicyContext for the parallel, cancellable variant.
func Policy(name string, f Factory, cfg Config) *Report {
	cfg.Sequential = true
	rep, _ := PolicyContext(context.Background(), name, f, cfg)
	return rep
}

// PolicyContext is Policy with cancellation and parallelism. Each
// selected obligation's universe is partitioned into shardTotal()
// disjoint slices (statespace.Universe.EnumerateShard), and all
// (obligation, shard) tasks drain through one worker pool of
// cfg.Parallelism goroutines — so a single expensive obligation
// saturates every worker instead of hogging one goroutine while the
// other seven finish early. Because shard checks run concurrently, f
// must be safe for concurrent calls; every registered and DSL-compiled
// factory is, since each call constructs a fresh policy.
//
// The parallelism level never changes the report: the shard partition is
// fixed per machine, every shard runs to its own first witness or to
// exhaustion, and merging keeps the witness a sequential whole-universe
// scan would find first. Verdicts, counters and witnesses are
// byte-identical from Sequential through any Parallelism.
//
// On cancellation the returned report is partial — obligations cut short
// are marked failed with an "aborted" witness — and the returned error
// is ctx.Err(). A nil error means every selected obligation ran to
// completion (even if ctx was cancelled just after the suite finished).
func PolicyContext(ctx context.Context, name string, f Factory, cfg Config) (*Report, error) {
	u := cfg.Universe
	if u.Cores == 0 {
		u = DefaultUniverse()
	}
	obligations := cfg.Obligations
	if obligations == nil {
		obligations = AllObligations()
	}
	for _, id := range obligations {
		if !KnownObligation(id) {
			panic(fmt.Sprintf("verify: unknown obligation %q", id))
		}
	}
	rep := &Report{
		Policy:   name,
		Universe: u.String(),
	}
	rep.Results = make([]Result, len(obligations))
	total := shardTotal()
	if cfg.Sequential {
		for i, id := range obligations {
			parts := make([]Result, total)
			for s := range parts {
				parts[s] = shardCheck(ctx, id, f, u, cfg.MaxRounds, shard{s, total})
			}
			rep.Results[i] = mergeResults(id, parts)
		}
		return rep, rep.abortErr(ctx)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The shared pool: all (obligation, shard) tasks flattened onto one
	// bounded worker set, so a single expensive obligation saturates
	// every worker once the cheap ones drain.
	parts := make([][]Result, len(obligations))
	for i := range obligations {
		parts[i] = make([]Result, total)
	}
	forEachTask(len(obligations)*total, workers, func(idx int) {
		i, s := idx/total, idx%total
		parts[i][s] = shardCheck(ctx, obligations[i], f, u, cfg.MaxRounds, shard{s, total})
	})
	for i, id := range obligations {
		rep.Results[i] = mergeResults(id, parts[i])
	}
	return rep, rep.abortErr(ctx)
}

// abortErr returns ctx's error iff cancellation actually cut an
// obligation short; a suite that completed just before cancellation is
// a full result and reports no error.
func (r *Report) abortErr(ctx context.Context) error {
	if len(r.Aborted()) == 0 {
		return nil
	}
	return ctx.Err()
}

// KnownObligation reports whether id names a checkable obligation.
func KnownObligation(id ObligationID) bool {
	for _, known := range AllObligations() {
		if id == known {
			return true
		}
	}
	return false
}

// aborted reports whether ctx is done and, if so, marks res as aborted:
// not passed, with the cancellation as the witness. Checks poll it
// every 64 enumerated states *and* every 64 adversarial schedules
// (ctx.Err takes a mutex, and concurrent shard checks would otherwise
// contend on it in their hottest loops) — the schedule-level poll
// matters because one state fans out to NumCores()! orders, which would
// otherwise multiply cancellation latency by that factor.
func aborted(ctx context.Context, res *Result) bool {
	if ctx.Err() == nil {
		return false
	}
	res.Passed = false
	res.Aborted = true
	res.Witness = "aborted: " + ctx.Err().Error()
	return true
}
