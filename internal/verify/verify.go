package verify

import (
	"fmt"

	"repro/internal/statespace"
)

// Config parameterizes a verification run.
type Config struct {
	// Universe is the bounded state space to quantify over.
	Universe statespace.Universe
	// Obligations selects which obligations to check; nil means all.
	Obligations []ObligationID
	// MaxRounds caps sequential convergence loops (safety valve for
	// non-converging policies). Zero means 1000.
	MaxRounds int
}

// DefaultUniverse is the bounded universe used when a Config leaves it
// zero: 3 cores, up to 3 threads per core and 5 in total, including
// unscheduled states — it contains every machine discussed in the paper
// (the 0/1/2 counterexample, the two-thieves conflict) while keeping the
// adversarial game graph small enough for exhaustive exploration.
func DefaultUniverse() statespace.Universe {
	return statespace.Universe{
		Cores:              3,
		MaxPerCore:         3,
		MaxTotal:           5,
		IncludeUnscheduled: true,
	}
}

// AllObligations lists every obligation in report order.
func AllObligations() []ObligationID {
	return []ObligationID{
		ObLemma1,
		ObStealSoundness,
		ObPotentialDecrease,
		ObFailureImpliesSucc,
		ObWorkConservSeq,
		ObWorkConservConc,
		ObChoiceIndependence,
		ObReactivity,
	}
}

// Policy verifies the policy produced by f against the paper's proof
// obligations over the configured bounded universe and returns the full
// report. This is the library's analogue of running the paper's Leon
// pipeline on a DSL policy.
func Policy(name string, f Factory, cfg Config) *Report {
	u := cfg.Universe
	if u.Cores == 0 {
		u = DefaultUniverse()
	}
	obligations := cfg.Obligations
	if obligations == nil {
		obligations = AllObligations()
	}
	rep := &Report{
		Policy: name,
		Universe: fmt.Sprintf("universe{cores:%d maxPerCore:%d maxTotal:%d weights:%v unscheduled:%v groups:%v}",
			u.Cores, u.MaxPerCore, u.MaxTotal, u.Weights, u.IncludeUnscheduled, u.Groups),
	}
	for _, id := range obligations {
		var r Result
		switch id {
		case ObLemma1:
			r = CheckLemma1(f, u)
		case ObStealSoundness:
			r = CheckStealSoundness(f, u)
		case ObPotentialDecrease:
			r = CheckPotentialDecrease(f, u)
		case ObFailureImpliesSucc:
			r = CheckFailureImpliesSuccess(f, u)
		case ObWorkConservSeq:
			r = CheckWorkConservationSequential(f, u, cfg.MaxRounds)
		case ObWorkConservConc:
			r = CheckWorkConservationConcurrent(f, u)
		case ObChoiceIndependence:
			r = CheckChoiceIndependence(f, u)
		case ObReactivity:
			r = CheckReactivity(f, u)
		default:
			panic(fmt.Sprintf("verify: unknown obligation %q", id))
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}
