package verify

import (
	"encoding/json"
	"fmt"
)

// This file defines the deterministic JSON encoding of verification
// reports — the one wire format shared by `schedverify -json`, the
// schedverifyd daemon and the optsched.VerifyClient, so CLI output and
// service responses are byte-diffable. Determinism comes for free from
// encoding/json over plain structs (fields emit in declaration order)
// plus the omitempty tags on Result's conditional fields; nothing here
// may switch to map-backed or reflection-ordered encodings.

// ReportJSON renders r in the canonical indented JSON encoding. Two
// reports with equal contents always produce identical bytes, so a
// memoized report replayed from the result cache is byte-identical to
// the cold run that produced it.
func ReportJSON(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReportFromJSON decodes a report encoded by ReportJSON (or the compact
// form embedded in schedverifyd responses). It rejects trailing garbage
// and unknown obligation IDs, so a client cannot silently accept a
// response from an incompatible server.
func ReportFromJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("verify: bad report JSON: %w", err)
	}
	for _, res := range r.Results {
		if !KnownObligation(res.ID) {
			return nil, fmt.Errorf("verify: report names unknown obligation %q", res.ID)
		}
	}
	return &r, nil
}
