package verify

import (
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// This file checks the fail-stop fault model: the two obligations that
// make graceful degradation a verified property rather than a hope.
// They quantify over the universe's fault dimension — every machine is
// enumerated under every valid fault script of up to MaxFaults events
// (statespace.Universe.MaxFaults) — and replay each script
// deterministically: event i is applied at round boundary i (a fail
// invokes the policy's rescue rule on the orphans it creates, a revive
// brings the core's stranded tasks back), with one sequential round
// between boundaries so the surviving cores keep balancing while the
// faults land. Because every prefix of an enumerated script is itself an
// enumerated script, "recovered after the last event" over all scripts
// covers recovery after *any* event.

// CheckNoTaskLost checks that no task is ever lost to a core failure:
// every task orphaned by a fail-stop event is back on an online core —
// re-homed by the policy's rescue rule or recovered by the core's
// scripted revival — within maxRounds rounds of the failure. A policy
// with no rescue rule fails this on any script that fails a non-empty
// core and never revives it.
func CheckNoTaskLost(ctx context.Context, f Factory, u statespace.Universe, maxRounds int) Result {
	return runObligation(ctx, ObNoTaskLost, f, u, maxRounds)
}

func checkNoTaskLostShard(ctx context.Context, f Factory, u statespace.Universe, maxRounds int, sh shard) Result {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	res := Result{ID: ObNoTaskLost, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		if len(m.Faults) == 0 {
			return true // no faults, no orphans: vacuously safe
		}
		start := m.Loads()
		// orphanedAt[id] is the round at which task id became an orphan;
		// orphanCore[id] the offline core holding it. In the model a task
		// leaves an offline core only through rescue (at fail time) or
		// revival, so the maps are maintained exactly at fault events.
		orphanedAt := map[sched.TaskID]int{}
		orphanCore := map[sched.TaskID]int{}
		for i, ev := range m.Faults {
			if ev.Revive {
				m.ReviveCore(ev.Core)
				// Walk the revived core's queue (not the map) for a
				// deterministic first witness: the stranded orphans are
				// exactly the tasks still sitting in its Ready list.
				for _, t := range m.Core(ev.Core).Ready {
					core, ok := orphanCore[t.ID]
					if !ok || core != ev.Core {
						continue
					}
					if delay := i - orphanedAt[t.ID]; delay > maxRounds {
						res.refute(rank, fmt.Sprintf(
							"state %v script %v: task %d orphaned on core %d at round %d not re-homed until round %d (bound %d)",
							start, m.Faults, t.ID, core, orphanedAt[t.ID], i, maxRounds))
						return false
					} else if delay > res.Bound {
						res.Bound = delay
					}
					delete(orphanedAt, t.ID)
					delete(orphanCore, t.ID)
				}
			} else {
				m.FailCore(ev.Core)
				sched.Rescue(f(), m, ev.Core)
				for _, t := range m.Core(ev.Core).Ready {
					orphanedAt[t.ID] = i
					orphanCore[t.ID] = ev.Core
				}
			}
			sched.SequentialRound(f(), m)
		}
		// The script is over: nothing can re-home a still-stranded task,
		// so any survivor is lost for good, not merely late. Walk the
		// machine (not the map) for a deterministic first witness.
		for _, t := range m.Orphans() {
			if core, ok := orphanCore[t.ID]; ok {
				res.refute(rank, fmt.Sprintf(
					"state %v script %v: task %d stranded on failed core %d at round %d is never re-homed (no rescue, no revival)",
					start, m.Faults, t.ID, core, orphanedAt[t.ID]))
				return false
			}
		}
		return true
	})
	return res
}

// CheckDegradedWastedCores checks the wasted-cores invariant of §3.2
// restated over a degraded machine's online cores: after the fault
// script's last event, iterating sequential rounds restores
// Machine.DegradedWorkConserved — no online core idle while an online
// core is overloaded or orphan work sits stranded offline — within
// maxRounds rounds. Counting stranded orphans as waiting work is what
// refutes rescue-less policies here: the survivors may balance perfectly
// among themselves while an idle core ignores work it could adopt.
func CheckDegradedWastedCores(ctx context.Context, f Factory, u statespace.Universe, maxRounds int) Result {
	return runObligation(ctx, ObDegradedWastedCores, f, u, maxRounds)
}

func checkDegradedWastedCoresShard(ctx context.Context, f Factory, u statespace.Universe, maxRounds int, sh shard) Result {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	res := Result{ID: ObDegradedWastedCores, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		if len(m.Faults) == 0 {
			// The healthy invariant is work-conservation-sequential's
			// job; this obligation owns the degraded states only.
			return true
		}
		start := m.Loads()
		for _, ev := range m.Faults {
			if ev.Revive {
				m.ReviveCore(ev.Core)
			} else {
				m.FailCore(ev.Core)
				sched.Rescue(f(), m, ev.Core)
			}
			sched.SequentialRound(f(), m)
		}
		// Recovery phase: from the post-script state, sequential rounds
		// must reach the degraded invariant. Mirrors the wc-seq loop —
		// deterministic rounds, so a repeated state is a livelock and a
		// moveless non-conserved round is stuck.
		seen := make(statespace.Visited)
		seen.Add(m)
		for round := 0; ; round++ {
			if m.DegradedWorkConserved() {
				if round > res.Bound {
					res.Bound = round
				}
				return true
			}
			if round >= maxRounds {
				res.refute(rank, fmt.Sprintf(
					"state %v script %v: degraded invariant not restored after %d rounds", start, m.Faults, maxRounds))
				return false
			}
			rr := sched.SequentialRound(f(), m)
			if rr.TasksMoved() == 0 {
				res.refute(rank, fmt.Sprintf(
					"state %v script %v: stuck at %v with an idle online core and unclaimed work (no steal possible)",
					start, m.Faults, m.Loads()))
				return false
			}
			if !seen.Add(m) {
				res.refute(rank, fmt.Sprintf(
					"state %v script %v: rounds cycle through %v without restoring the degraded invariant",
					start, m.Faults, m.Loads()))
				return false
			}
		}
	})
	return res
}
