package verify

import (
	"bytes"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Policy:   "p",
		Universe: "universe{...}",
		Results: []Result{
			{ID: ObLemma1, Passed: true, StatesChecked: 10},
			{ID: ObWorkConservSeq, Passed: false, Witness: "stuck", StatesChecked: 4, Bound: 1000},
			{ID: ObReactivity, Passed: false, Aborted: true, Witness: "ctx", SchedulesChecked: 3},
		},
	}
	a, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of one report differ")
	}
	back, err := ReportFromJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ReportJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", a, c)
	}
}

func TestReportJSONFromColdRun(t *testing.T) {
	rep := Policy("delta2", delta2Factory, Config{Universe: smallUniverse()})
	data, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReportFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ReportJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("cold-run report not stable under decode/encode:\n%s\nvs\n%s", data, again)
	}
	if back.Passed() != rep.Passed() {
		t.Error("verdict changed across the wire")
	}
}

func TestReportFromJSONRejectsGarbage(t *testing.T) {
	if _, err := ReportFromJSON([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReportFromJSON([]byte(`{"policy":"p","universe":"u","results":[{"id":"lemma99","passed":true}]}`)); err == nil {
		t.Error("unknown obligation ID accepted")
	}
}
