package verify

import (
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// AblationResult reports what breaks when the step-3 re-validation
// (Listing 1 line 12) is removed — experiment E8's ablation.
type AblationResult struct {
	// StatesChecked and SchedulesChecked count the explored space.
	StatesChecked    int
	SchedulesChecked int
	// SoundnessViolations counts (state, order) pairs where the
	// unchecked executor emptied an overloaded victim or otherwise broke
	// steal soundness.
	SoundnessViolations int
	// PotentialViolations counts (state, order) pairs where a round of
	// unchecked steals increased the pairwise imbalance, destroying the
	// bounded-successes argument.
	PotentialViolations int
	// FirstWitness describes the first violation found.
	FirstWitness string
	// Aborted reports that the enumeration was cut short by context
	// cancellation; the counts above cover only the states visited.
	Aborted bool
}

// CheckRevalidationAblation runs every state of the universe through
// every adversarial order twice — once with the safe ConcurrentRound,
// once with UnsafeConcurrentRound — and records the violations only the
// unsafe variant commits. A sound policy must show zero violations in the
// safe half (that is asserted, not counted) and the unsafe half
// demonstrates why the paper's model requires atomic, re-validated
// steals.
func CheckRevalidationAblation(ctx context.Context, f Factory, u statespace.Universe) AblationResult {
	var res AblationResult
	u.Enumerate(func(m *sched.Machine) bool {
		if ctx.Err() != nil {
			res.Aborted = true
			return false
		}
		res.StatesChecked++
		statespace.Permutations(m.NumCores(), func(order []int) bool {
			res.SchedulesChecked++

			safe := m.Clone()
			sched.ConcurrentRound(f(), safe, order)
			if v := roundViolation(f(), m, safe); v != "" {
				panic(fmt.Sprintf("verify: safe executor violated soundness: %s", v))
			}

			unsafe := m.Clone()
			sched.UnsafeConcurrentRound(f(), unsafe, order)
			if v := roundViolation(f(), m, unsafe); v != "" {
				if res.FirstWitness == "" {
					res.FirstWitness = fmt.Sprintf("state %v order %v: %s", m.Loads(), order, v)
				}
				res.SoundnessViolations++
			}
			p := f()
			beginRound(p, m)
			before := sched.PairwiseImbalance(p, m)
			after := sched.PairwiseImbalance(p, unsafe)
			if after > before {
				if res.FirstWitness == "" {
					res.FirstWitness = fmt.Sprintf(
						"state %v order %v: unchecked round raised potential %d -> %d",
						m.Loads(), order, before, after)
				}
				res.PotentialViolations++
			}
			return true
		})
		return true
	})
	return res
}

// roundViolation reports how a round broke soundness: an overloaded core
// of the pre-state ended up idle (its work was stolen to exhaustion), the
// thread population changed, or the machine corrupted.
func roundViolation(p sched.Policy, before, after *sched.Machine) string {
	if after.TotalThreads() != before.TotalThreads() {
		return fmt.Sprintf("thread population %d -> %d", before.TotalThreads(), after.TotalThreads())
	}
	if err := after.Validate(); err != nil {
		return err.Error()
	}
	for i, c := range before.Cores {
		if !c.Idle() && after.Core(i).Idle() {
			return fmt.Sprintf("core %d was drained to idle (had %d threads)", i, c.NThreads())
		}
	}
	return ""
}
