package verify

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// AblationResult reports what breaks when the step-3 re-validation
// (Listing 1 line 12) is removed — experiment E8's ablation.
type AblationResult struct {
	// StatesChecked and SchedulesChecked count the explored space.
	StatesChecked    int
	SchedulesChecked int
	// SoundnessViolations counts (state, order) pairs where the
	// unchecked executor emptied an overloaded victim or otherwise broke
	// steal soundness.
	SoundnessViolations int
	// PotentialViolations counts (state, order) pairs where a round of
	// unchecked steals increased the pairwise imbalance, destroying the
	// bounded-successes argument.
	PotentialViolations int
	// FirstWitness describes the first violation found, in the
	// deterministic whole-universe enumeration order.
	FirstWitness string
	// Aborted reports that the enumeration was cut short by context
	// cancellation; the counts above cover only the states visited.
	Aborted bool

	// order is FirstWitness's global enumeration rank, used to merge
	// per-shard witnesses deterministically (lowest rank wins).
	order int
}

// CheckRevalidationAblation runs every state of the universe through
// every adversarial order twice — once with the safe ConcurrentRound,
// once with UnsafeConcurrentRound — and records the violations only the
// unsafe variant commits. A sound policy must show zero violations in the
// safe half (that is asserted, not counted) and the unsafe half
// demonstrates why the paper's model requires atomic, re-validated
// steals. Like the obligation checks, the sweep is sharded across a
// worker pool (GOMAXPROCS workers); f must be safe for concurrent calls.
func CheckRevalidationAblation(ctx context.Context, f Factory, u statespace.Universe) AblationResult {
	total := shardTotal()
	parts := make([]AblationResult, total)
	forEachTask(total, runtime.GOMAXPROCS(0), func(s int) {
		parts[s] = checkRevalidationAblationShard(ctx, f, u, shard{s, total})
	})
	merged := AblationResult{order: -1}
	for _, p := range parts {
		merged.StatesChecked += p.StatesChecked
		merged.SchedulesChecked += p.SchedulesChecked
		merged.SoundnessViolations += p.SoundnessViolations
		merged.PotentialViolations += p.PotentialViolations
		merged.Aborted = merged.Aborted || p.Aborted
		if p.FirstWitness != "" && (merged.order < 0 || p.order < merged.order) {
			merged.FirstWitness = p.FirstWitness
			merged.order = p.order
		}
	}
	return merged
}

func checkRevalidationAblationShard(ctx context.Context, f Factory, u statespace.Universe, sh shard) AblationResult {
	res := AblationResult{order: -1}
	witness := func(rank int, w string) {
		if res.FirstWitness == "" {
			res.FirstWitness = w
			res.order = rank
		}
	}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if ctx.Err() != nil {
			res.Aborted = true
			return false
		}
		res.StatesChecked++
		statespace.Permutations(m.NumCores(), func(order []int) bool {
			// Poll per schedule, not just per state: each state fans out
			// to NumCores()! orders and each order runs two full rounds.
			if res.SchedulesChecked&63 == 0 && ctx.Err() != nil {
				res.Aborted = true
				return false
			}
			res.SchedulesChecked++

			safe := m.Clone()
			sched.ConcurrentRound(f(), safe, order)
			if v := roundViolation(f(), m, safe); v != "" {
				panic(fmt.Sprintf("verify: safe executor violated soundness: %s", v))
			}

			unsafe := m.Clone()
			sched.UnsafeConcurrentRound(f(), unsafe, order)
			if v := roundViolation(f(), m, unsafe); v != "" {
				witness(rank, fmt.Sprintf("state %v order %v: %s", m.Loads(), order, v))
				res.SoundnessViolations++
			}
			p := f()
			beginRound(p, m)
			before := sched.PairwiseImbalance(p, m)
			after := sched.PairwiseImbalance(p, unsafe)
			if after > before {
				witness(rank, fmt.Sprintf(
					"state %v order %v: unchecked round raised potential %d -> %d",
					m.Loads(), order, before, after))
				res.PotentialViolations++
			}
			return true
		})
		return !res.Aborted
	})
	return res
}

// roundViolation reports how a round broke soundness: an overloaded core
// of the pre-state ended up idle (its work was stolen to exhaustion), the
// thread population changed, or the machine corrupted.
func roundViolation(p sched.Policy, before, after *sched.Machine) string {
	if after.TotalThreads() != before.TotalThreads() {
		return fmt.Sprintf("thread population %d -> %d", before.TotalThreads(), after.TotalThreads())
	}
	if err := after.Validate(); err != nil {
		return err.Error()
	}
	for i, c := range before.Cores {
		if !c.Idle() && after.Core(i).Idle() {
			return fmt.Sprintf("core %d was drained to idle (had %d threads)", i, c.NThreads())
		}
	}
	return ""
}
