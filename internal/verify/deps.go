package verify

// PolicyComponent names one of the four parts of the paper's policy
// abstraction (sched.Policy): the load metric, the step-1 filter, the
// step-2 choice and the step-3 steal sizing. The incremental
// verification service hashes a policy per component, and each
// obligation's cache key covers only the components its checker
// consults — so an edit to one clause of a DSL policy invalidates
// exactly the obligations whose semantics it can change.
type PolicyComponent string

const (
	CompLoad   PolicyComponent = "load"
	CompFilter PolicyComponent = "filter"
	CompChoose PolicyComponent = "choose"
	CompSteal  PolicyComponent = "steal"
	CompRescue PolicyComponent = "rescue"
)

// obligationDeps records which policy components each checker reads.
// The table is audited against the checker implementations, not
// guessed; when a checker changes what it calls, update both.
//
//   - lemma1 evaluates only CanSteal (Overloaded/Idle are machine-state
//     predicates, not policy calls).
//   - steal-soundness runs CanSteal plus the locked Steal, which
//     re-validates the filter and sizes via StealCount.
//   - potential-decrease additionally computes PairwiseImbalance, which
//     is defined over the policy's own Load.
//   - choice-independence quantifies over every filter-passing victim —
//     the policy's Choose is called but its answer is discarded (that is
//     the obligation's whole point), so Choose is not a dependency.
//   - the round-based obligations (failure-implies-success, both
//     work-conservation forms, reactivity) execute full rounds:
//     Select (filter + choose) then Steal (filter + steal count).
//   - the fault obligations (no-task-lost, degraded-wasted-cores) run
//     full rounds between fault events and additionally invoke the
//     policy's rescue rule on every core failure, so they depend on
//     every component but the bare load metric.
//
// Load does not appear in most rows because DSL component hashing is
// closed over load references: a filter that mentions `x.load` embeds
// the load clause in its own canonical form (see dsl.ComponentForm), so
// a load edit flows into every component that can observe it — and only
// those. potential-decrease names CompLoad explicitly because its
// checker calls p.Load directly, whatever the filter references.
var obligationDeps = map[ObligationID][]PolicyComponent{
	ObLemma1:              {CompFilter},
	ObStealSoundness:      {CompFilter, CompSteal},
	ObPotentialDecrease:   {CompLoad, CompFilter, CompSteal},
	ObFailureImpliesSucc:  {CompFilter, CompChoose, CompSteal},
	ObWorkConservSeq:      {CompFilter, CompChoose, CompSteal},
	ObWorkConservConc:     {CompFilter, CompChoose, CompSteal},
	ObChoiceIndependence:  {CompFilter, CompSteal}, //schedlint:allow depsaudit the checker calls Choose only to discard it: the verdict quantifies over all choices, so choose edits cannot change it
	ObReactivity:          {CompFilter, CompChoose, CompSteal},
	ObNoTaskLost:          {CompFilter, CompChoose, CompSteal, CompRescue},
	ObDegradedWastedCores: {CompFilter, CompChoose, CompSteal, CompRescue},
}

// ObligationDeps returns the policy components obligation id's checker
// consults, in a fixed order suitable for hashing. Panics on unknown
// obligations, like the checkers themselves.
func ObligationDeps(id ObligationID) []PolicyComponent {
	deps, ok := obligationDeps[id]
	if !ok {
		panic("verify: unknown obligation " + string(id))
	}
	out := make([]PolicyComponent, len(deps))
	copy(out, deps)
	return out
}

// AllComponents lists every policy component in canonical order.
func AllComponents() []PolicyComponent {
	return []PolicyComponent{CompLoad, CompFilter, CompChoose, CompSteal, CompRescue}
}
