package verify

import "testing"

// TestObligationDepsComplete pins the table's shape by reflection over
// the registered obligations: every obligation has a row, no row is
// stale, and each row lists its components as a subsequence of the
// canonical AllComponents order — the order the memoizer hashes in.
// The semantic direction (do the rows match what the checkers actually
// call?) is the depsaudit analyzer's job; this test guards the
// bookkeeping the analyzer itself relies on.
func TestObligationDepsComplete(t *testing.T) {
	registered := map[ObligationID]bool{}
	for _, id := range AllObligations() {
		registered[id] = true
		deps, ok := obligationDeps[id]
		if !ok {
			t.Errorf("obligation %q has no obligationDeps row", id)
			continue
		}
		if len(deps) == 0 {
			t.Errorf("obligation %q declares no components: every checker consults the policy", id)
		}
	}
	for id := range obligationDeps {
		if !registered[id] {
			t.Errorf("obligationDeps row %q matches no registered obligation", id)
		}
	}

	order := AllComponents()
	rank := map[PolicyComponent]int{}
	for i, c := range order {
		rank[c] = i
	}
	for id, deps := range obligationDeps {
		prev := -1
		for _, c := range deps {
			r, known := rank[c]
			if !known {
				t.Errorf("row %q names unknown component %q", id, c)
				continue
			}
			if r <= prev {
				t.Errorf("row %q lists components out of canonical order: %v (want a subsequence of %v)", id, deps, order)
				break
			}
			prev = r
		}
	}
}

// TestObligationDepsAccessors checks the exported accessors agree with
// the table and defend their copies.
func TestObligationDepsAccessors(t *testing.T) {
	for _, id := range AllObligations() {
		deps := ObligationDeps(id)
		if len(deps) != len(obligationDeps[id]) {
			t.Fatalf("ObligationDeps(%q) length mismatch", id)
		}
		if len(deps) > 0 {
			deps[0] = "mutated"
			if obligationDeps[id][0] == "mutated" {
				t.Fatalf("ObligationDeps(%q) returns the table's own slice", id)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ObligationDeps on an unknown obligation did not panic")
		}
	}()
	ObligationDeps("no-such-obligation")
}
