package verify

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/statespace"
)

// CheckWorkConservationSequential checks the §3.2 definition in the §4.2
// sequential setting: from every state of the universe, iterating
// sequential rounds reaches a work-conserved state within a finite number
// of rounds. Because sequential rounds are deterministic, a repeated
// non-conserved state is a livelock and a moveless non-conserved round is
// a stuck violation. The result's Bound is the worst-case N observed —
// the existential witness of the paper's definition.
func CheckWorkConservationSequential(ctx context.Context, f Factory, u statespace.Universe, maxRounds int) Result {
	return runObligation(ctx, ObWorkConservSeq, f, u, maxRounds)
}

func checkWorkConservationSequentialShard(ctx context.Context, f Factory, u statespace.Universe, maxRounds int, sh shard) Result {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	res := Result{ID: ObWorkConservSeq, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		start := m.Loads()
		seen := make(statespace.Visited)
		seen.Add(m)
		for round := 0; ; round++ {
			if m.WorkConserved() {
				if round > res.Bound {
					res.Bound = round
				}
				return true
			}
			if round >= maxRounds {
				res.refute(rank, fmt.Sprintf("state %v: no convergence after %d rounds", start, maxRounds))
				return false
			}
			rr := sched.SequentialRound(f(), m)
			if rr.TasksMoved() == 0 {
				res.refute(rank, fmt.Sprintf(
					"state %v: stuck at non-conserved %v (no steal possible)", start, m.Loads()))
				return false
			}
			if !seen.Add(m) {
				res.refute(rank, fmt.Sprintf(
					"state %v: sequential rounds cycle through %v without conserving", start, m.Loads()))
				return false
			}
		}
	})
	return res
}

// successorFunc enumerates the adversary's one-round successors of a
// machine state, invoking visit with each resulting state and a label
// describing the adversarial decisions. Enumeration stops early when
// visit returns false; the function reports whether it ran to
// completion.
type successorFunc func(f Factory, m *sched.Machine, visit func(next *sched.Machine, label string) bool) bool

// orderSuccessors gives the adversary control of the steal serialization
// order only — the §4.3 model where the policy's own Choose picks
// victims.
func orderSuccessors(f Factory, m *sched.Machine, visit func(*sched.Machine, string) bool) bool {
	return statespace.Permutations(m.NumCores(), func(order []int) bool {
		next := m.Clone()
		sched.ConcurrentRound(f(), next, order)
		return visit(next, fmt.Sprintf("steal-order %v", order))
	})
}

// choiceSuccessors gives the adversary control of both the victim chosen
// in step 2 (any core that passed the filter) and the steal order —
// checking the paper's claim that the exact choice "does not matter for
// the correctness proof". The candidate sets come from the policy's own
// filter against the round-start snapshot.
func choiceSuccessors(f Factory, m *sched.Machine, visit func(*sched.Machine, string) bool) bool {
	base := sched.SelectAll(f(), m)
	atts := make([]sched.Attempt, len(base))
	var rec func(core int) bool
	rec = func(core int) bool {
		if core == len(base) {
			victims := make([]int, len(atts))
			for i := range atts {
				victims[i] = atts[i].Victim
			}
			return statespace.Permutations(m.NumCores(), func(order []int) bool {
				next := m.Clone()
				sched.ExecuteSteals(f(), next, atts, order)
				return visit(next, fmt.Sprintf("victims %v steal-order %v", victims, order))
			})
		}
		if base[core].Victim < 0 {
			atts[core] = base[core]
			return rec(core + 1)
		}
		for _, victim := range base[core].Candidates {
			atts[core] = base[core]
			atts[core].Victim = victim
			if !rec(core + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// concExplorer performs the adversarial game-graph search: states are
// nodes, with one edge per adversarial decision produced by succ. The
// adversary wins — the policy is not work-conserving — iff it can reach
// a cycle of non-conserved states (including self-loops: rounds that
// change nothing). Otherwise every path reaches conservation and the
// longest path is the worst-case N.
//
// An explorer is shard-local: sharing the memo across shards would need
// locking on the hottest map, and the per-shard memo still collapses the
// game graph under each shard's start states. Cancellation is polled per
// explored node (every 64, matching the enumeration stride); the
// permutation fan-out under a node needs no extra polling because every
// successor edge immediately re-enters explore, which polls.
type concExplorer struct {
	ctx       context.Context
	f         Factory
	succ      successorFunc
	done      func(*sched.Machine) bool // terminal predicate; nil = WorkConserved
	memo      map[string]int            // state key -> worst rounds to terminal
	onPath    map[string]bool
	trace     []traceStep
	violation string
	aborted   bool // violation is a cancellation, not a refutation
	polls     int  // amortizes the ctx check to every 64 explored nodes
	states    int
	schedules int
}

func newExplorer(ctx context.Context, f Factory, succ successorFunc) *concExplorer {
	return &concExplorer{ctx: ctx, f: f, succ: succ, memo: make(map[string]int), onPath: make(map[string]bool)}
}

type traceStep struct {
	key   string
	loads []int
	label string
}

// done is the terminal predicate of the adversarial game; the default
// (nil) is work conservation.
func (e *concExplorer) isDone(m *sched.Machine) bool {
	if e.done != nil {
		return e.done(m)
	}
	return m.WorkConserved()
}

// explore returns the worst-case rounds-to-conservation from m, or false
// if the adversary can prevent conservation (violation is filled in).
func (e *concExplorer) explore(m *sched.Machine) (int, bool) {
	e.polls++
	if e.polls&63 == 0 && e.ctx.Err() != nil {
		e.violation = "aborted: " + e.ctx.Err().Error()
		e.aborted = true
		return 0, false
	}
	key := m.Key()
	if n, ok := e.memo[key]; ok {
		return n, true
	}
	if e.isDone(m) {
		e.memo[key] = 0
		return 0, true
	}
	if e.onPath[key] {
		e.violation = e.describeCycle(m)
		return 0, false
	}
	e.states++
	e.onPath[key] = true
	worst := 0
	ok := e.succ(e.f, m, func(next *sched.Machine, label string) bool {
		e.schedules++
		e.trace = append(e.trace, traceStep{key: key, loads: m.Loads(), label: label})
		n, ok := e.explore(next)
		e.trace = e.trace[:len(e.trace)-1]
		if !ok {
			return false
		}
		if n+1 > worst {
			worst = n + 1
		}
		return true
	})
	delete(e.onPath, key)
	if !ok {
		return 0, false
	}
	e.memo[key] = worst
	return worst, true
}

func (e *concExplorer) describeCycle(repeat *sched.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "adversarial livelock: state %v recurs without conserving; schedule:", repeat.Loads())
	// Print the trace suffix forming the cycle: from the first occurrence
	// of the repeated state to the top of the exploration stack.
	start := 0
	target := repeat.Key()
	for i := range e.trace {
		if e.trace[i].key == target {
			start = i
			break
		}
	}
	for _, step := range e.trace[start:] {
		fmt.Fprintf(&b, " %v --%s-->", step.loads, step.label)
	}
	fmt.Fprintf(&b, " %v", repeat.Loads())
	return b.String()
}

// checkGameShard runs the game-graph exploration over one shard of the
// universe and fills a per-shard Result. The explorer (and its memo) is
// private to the shard; the refutation found from a shard's start state
// is independent of the memo's contents — memoized subtrees are
// violation-free by construction — so the merged witness is the one a
// whole-universe sequential scan finds first.
func checkGameShard(ctx context.Context, id ObligationID, f Factory, u statespace.Universe, succ successorFunc, sh shard) Result {
	res := Result{ID: id, Passed: true}
	e := newExplorer(ctx, f, succ)
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		n, ok := e.explore(m)
		if !ok {
			if e.aborted {
				res.Passed = false
				res.Aborted = true
				res.Witness = fmt.Sprintf("from %v: %s", m.Loads(), e.violation)
			} else {
				res.refute(rank, fmt.Sprintf("from %v: %s", m.Loads(), e.violation))
			}
			return false
		}
		if n > res.Bound {
			res.Bound = n
		}
		return true
	})
	res.SchedulesChecked = e.schedules
	return res
}

// CheckWorkConservationConcurrent checks the §3.2 definition in the full
// optimistic-concurrency setting of §4.3: from every state, under *every*
// adversarial serialization of every round's steals, conservation is
// reached within finitely many rounds. This is the obligation GreedyBuggy
// fails: on the 0/1/2 machine the adversary ping-pongs the spare thread
// between the two non-idle cores forever, and the explorer returns that
// cycle as the witness.
func CheckWorkConservationConcurrent(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObWorkConservConc, f, u, 0)
}

// CheckReactivity checks the third performance property the paper's
// introduction lists as unproven in real systems: reactivity, "a bound
// on the delay to schedule ready threads". Formalized per core: for
// every state, every core idle in it, and every adversarial schedule,
// the core stops being idle (or the machine runs out of overloaded
// cores to take from) within a bounded number of rounds. The result's
// Bound is that worst-case delay in rounds — the paper's missing
// latency limit, made concrete over the bounded universe.
func CheckReactivity(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObReactivity, f, u, 0)
}

func checkReactivityShard(ctx context.Context, f Factory, u statespace.Universe, sh shard) Result {
	res := Result{ID: ObReactivity, Passed: true}
	sh.enumerate(u, func(rank int, m *sched.Machine) bool {
		if res.StatesChecked&63 == 0 && aborted(ctx, &res) {
			return false
		}
		res.StatesChecked++
		for _, target := range m.IdleCores() {
			target := target
			// A fresh explorer per target: the terminal predicate (and
			// thus the memo) depends on the target core.
			e := newExplorer(ctx, f, orderSuccessors)
			e.done = func(s *sched.Machine) bool {
				return !s.Core(target).Idle() || len(s.OverloadedCores()) == 0
			}
			n, ok := e.explore(m)
			res.SchedulesChecked += e.schedules
			if !ok {
				witness := fmt.Sprintf("core %d can starve from %v: %s", target, m.Loads(), e.violation)
				if e.aborted {
					res.Passed = false
					res.Aborted = true
					res.Witness = witness
				} else {
					res.refute(rank, witness)
				}
				return false
			}
			if n > res.Bound {
				res.Bound = n
			}
		}
		return true
	})
	return res
}

// CheckChoiceIndependence checks the paper's central structural claim
// (§3.1): "the exact choice of the core does not matter for the
// correctness proof". The adversary controls the step-2 choice (any
// filter-passing candidate) *and* the steal order; a policy passes iff
// work conservation survives every combination. A policy whose proofs
// secretly rely on its Choose heuristic fails here even if it passes
// CheckWorkConservationConcurrent.
func CheckChoiceIndependence(ctx context.Context, f Factory, u statespace.Universe) Result {
	return runObligation(ctx, ObChoiceIndependence, f, u, 0)
}
