package workload

import "repro/internal/loadgen"

// The open-loop service workload — heavy-tailed request sizes, malleable
// parallel jobs, Poisson or bursty-MAP arrivals — lives in
// internal/loadgen. It satisfies this package's Workload interface
// structurally (loadgen must not import workload, or the sweep runner
// would cycle); this assertion keeps the two packages honest about the
// contract.
var _ Workload = (*loadgen.Service)(nil)

// NewService adapts a loadgen.Service for use anywhere the zoo's
// Workload is expected — e.g. inside a Combined alongside a Pinned hog,
// reproducing the paper's "service traffic vs. rogue thread" mix.
func NewService(svc *loadgen.Service) Workload { return svc }
