package workload

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
)

func newSim(cores int, p string, groups []int) *sim.Simulator {
	pol, err := policy.New(p)
	if err != nil {
		panic(err)
	}
	return sim.New(sim.Config{Cores: cores, Policy: pol, Groups: groups, Seed: 7})
}

func TestBarrierWorkloadCompletes(t *testing.T) {
	s := newSim(4, "delta2", nil)
	w := &Barrier{Threads: 4, Work: 1000, Iterations: 10}
	w.Setup(s)
	st := s.Run(500_000)
	if st.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", st.Completed)
	}
	if w.Generations() != 10 {
		t.Errorf("Generations = %d, want 10", w.Generations())
	}
}

func TestBarrierSpreadBeatsPiledUp(t *testing.T) {
	// With Delta2 the threads spread over 4 cores; with Null they stay
	// on core 0. Iterations in a fixed horizon must differ ~4x. The work
	// size is chosen coprime to the 4000-tick balance period: a multiple
	// would phase-lock the barrier so every round observes an empty
	// runqueue and nothing is ever stealable.
	run := func(pname string) int64 {
		s := newSim(4, pname, nil)
		w := &Barrier{Threads: 4, Work: 1700} // unbounded iterations
		w.Setup(s)
		s.Run(200_000)
		return w.Generations()
	}
	spread, piled := run("delta2"), run("null")
	if spread < 3*piled {
		t.Errorf("spread=%d piled=%d, want ≥3x speedup from balancing", spread, piled)
	}
}

func TestDatabaseWorkloadThroughput(t *testing.T) {
	s := newSim(4, "delta2", nil)
	w := &Database{Requests: 200, Interarrival: 500, Service: 1500,
		BlockProb: 0.3, BlockFor: 700, ArrivalCores: []int{0, 1}}
	w.Setup(s)
	st := s.Run(2_000_000)
	if st.Completed != 200 {
		t.Fatalf("Completed = %d, want 200", st.Completed)
	}
	if st.Latency.Quantile(0.5) < 1500 {
		t.Errorf("p50 = %d, below service time", st.Latency.Quantile(0.5))
	}
}

func TestForkJoin(t *testing.T) {
	s := newSim(4, "delta2", nil)
	w := &ForkJoin{Waves: 3, Width: 8, Work: 2000, Gap: 50_000}
	w.Setup(s)
	st := s.Run(500_000)
	if st.Completed != 24 {
		t.Fatalf("Completed = %d, want 24", st.Completed)
	}
	if st.Steals == 0 {
		t.Error("fork-join should trigger steals")
	}
}

func TestPinnedNeverMigrates(t *testing.T) {
	s := newSim(2, "delta2", nil)
	(&Pinned{Core: 1, Weight: 8192}).Setup(s)
	s.Run(100_000)
	c1 := s.Machine().Core(1)
	if c1.Current == nil || c1.Current.Weight != 8192 {
		t.Error("pinned thread not running on its core")
	}
	if s.Machine().Core(0).NThreads() != 0 {
		t.Error("pinned thread leaked to core 0")
	}
}

func TestBurstyCompletes(t *testing.T) {
	s := newSim(4, "delta2", nil)
	w := &Bursty{Bursts: 5, TasksPerBurst: 6, Work: 1500, Period: 30_000}
	w.Setup(s)
	st := s.Run(500_000)
	if st.Completed != 30 {
		t.Fatalf("Completed = %d, want 30", st.Completed)
	}
}

func TestCombinedAndNames(t *testing.T) {
	c := &Combined{Parts: []Workload{
		&Pinned{Core: 0},
		&Bursty{Bursts: 1, TasksPerBurst: 1, Work: 1, Period: 1},
	}}
	if !strings.Contains(c.Name(), "pinned") || !strings.Contains(c.Name(), "bursty") {
		t.Errorf("Name = %q", c.Name())
	}
	c.Label = "custom"
	if c.Name() != "custom" {
		t.Errorf("Name = %q", c.Name())
	}
	for _, w := range []Workload{
		&Barrier{Threads: 1, Work: 1},
		&Database{Requests: 1, Interarrival: 1, Service: 1},
		&ForkJoin{Waves: 1, Width: 1, Work: 1},
	} {
		if w.Name() == "" {
			t.Error("empty workload name")
		}
	}
}

func TestGroupTrapGroups(t *testing.T) {
	g := GroupTrapGroups(4)
	want := []int{0, 0, 1, 1}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("GroupTrapGroups(4) = %v", g)
		}
	}
	a := AsymmetricGroups(10, 8)
	if a[7] != 0 || a[8] != 1 || a[9] != 1 {
		t.Fatalf("AsymmetricGroups(10, 8) = %v", a)
	}
}

func TestAsymmetricGroupsPanics(t *testing.T) {
	for _, g0 := range []int{0, 4, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AsymmetricGroups(4, %d) did not panic", g0)
				}
			}()
			AsymmetricGroups(4, g0)
		}()
	}
}

func TestServerCountsRequests(t *testing.T) {
	s := newSim(2, "delta2", nil)
	srv := &Server{Workers: 2, Service: 1000, Think: 500}
	srv.Setup(s)
	s.Run(50_000)
	// Each worker cycles in ≈1500 ticks on its own core: ≈33 each.
	if got := srv.Requests(); got < 40 || got > 80 {
		t.Errorf("Requests = %d, want ≈66", got)
	}
}

func TestDatabaseTrapShape(t *testing.T) {
	// The headline E6 comparison: buggy group-average balancing loses
	// ≈25% request throughput vs a weighted work-conserving policy.
	run := func(pname string) (int64, sim.Stats) {
		trap := NewDBTrap()
		s := newSim(trap.Cores(), pname, trap.Groups())
		trap.Setup(s)
		st := s.Run(1_500_000)
		return trap.Server.Requests(), st
	}
	good, goodStats := run("weighted")
	bad, badStats := run("cfs-group-buggy")
	loss := 100 * float64(good-bad) / float64(good)
	t.Logf("db-trap: good=%d bad=%d loss=%.1f%% (paper: up to 25%%)", good, bad, loss)
	if loss < 15 || loss > 45 {
		t.Errorf("throughput loss = %.1f%%, want ≈25%%", loss)
	}
	// The buggy policy leaves core 0 idle-while-overloaded permanently:
	// essentially the whole horizon. The good policy still shows
	// *transient* idleness (its core-0 worker blocks for think time and
	// re-balancing waits for the next round) — that is the legal
	// temporary idleness of §3.2, so the gap is ~2x, not 100x.
	if badStats.WastedCoreTicks < 0.95*1_500_000 {
		t.Errorf("buggy wasted %.0f core-ticks, want ≈ the whole horizon", badStats.WastedCoreTicks)
	}
	if badStats.WastedCoreTicks < 1.8*goodStats.WastedCoreTicks {
		t.Errorf("wasted: buggy=%.0f good=%.0f, want buggy ≥ 1.8x good",
			badStats.WastedCoreTicks, goodStats.WastedCoreTicks)
	}
}

func TestBarrierTrapShape(t *testing.T) {
	// Scientific-app slowdown: buggy balancing confines the 8 barrier
	// threads to group 1's 2 cores (4 per core), slowing iterations
	// many-fold vs the spread placement.
	run := func(pname string) int64 {
		trap := NewBarrierTrap(1700)
		s := newSim(trap.Cores(), pname, trap.Groups())
		trap.Setup(s)
		s.Run(400_000)
		return trap.Barrier.Generations()
	}
	good := run("weighted")
	bad := run("cfs-group-buggy")
	t.Logf("barrier-trap: good=%d bad=%d ratio=%.1fx (paper: many-fold)",
		good, bad, float64(good)/float64(bad))
	if float64(good) < 2.5*float64(bad) {
		t.Errorf("generations: good=%d bad=%d, want ≥2.5x from work conservation", good, bad)
	}
}

func TestWorkloadValidation(t *testing.T) {
	s := newSim(1, "delta2", nil)
	for _, w := range []Workload{
		&Barrier{Threads: 0, Work: 1},
		&Database{Requests: 0, Interarrival: 1, Service: 1},
		&ForkJoin{Waves: 0, Width: 1, Work: 1},
		&Bursty{Bursts: 0, TasksPerBurst: 1, Work: 1, Period: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T with zero size did not panic", w)
				}
			}()
			w.Setup(s)
		}()
	}
}
