// Package workload provides the synthetic workloads used to reproduce
// the paper's §1 motivation numbers (Lozi et al.'s wasted-cores
// scenarios): barrier-synchronized scientific applications, an open-loop
// database-style server with blocking I/O, fork-join batches and bursty
// arrivals. Every generator is deterministic given the simulator's seed.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Workload populates a simulator with tasks and arrival processes.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup schedules the workload's arrivals on the simulator. Must be
	// called before the first Run.
	Setup(s *sim.Simulator)
}

// Barrier is the "scientific application" of the paper's motivation: N
// threads compute for Work ticks, synchronize on a barrier, and repeat.
// One straggler core running two threads doubles every iteration for
// everyone — which is why wasted cores hurt these applications many-fold.
type Barrier struct {
	// Threads is the number of barrier participants.
	Threads int
	// Work is the per-iteration compute time per thread.
	Work int64
	// Iterations bounds the generations (0 = unbounded).
	Iterations int64
	// SpawnCores lists the cores the threads initially land on,
	// round-robin. Empty means core 0 — the worst case the balancer
	// must fix.
	SpawnCores []int

	bar *sim.Barrier
}

// Name implements Workload.
func (w *Barrier) Name() string { return fmt.Sprintf("barrier(n=%d,work=%d)", w.Threads, w.Work) }

// Setup implements Workload.
func (w *Barrier) Setup(s *sim.Simulator) {
	if w.Threads <= 0 {
		panic("workload: Barrier.Threads must be positive")
	}
	cores := w.SpawnCores
	if len(cores) == 0 {
		cores = []int{0}
	}
	w.bar = sim.NewBarrier(w.Threads)
	for i := 0; i < w.Threads; i++ {
		core := cores[i%len(cores)]
		s.SpawnAt(0, core, 1024, sim.BarrierLoop(w.bar, w.Work, w.Iterations))
	}
}

// Generations returns the completed barrier generations — the workload's
// throughput metric (iterations of the scientific application).
func (w *Barrier) Generations() int64 {
	if w.bar == nil {
		return 0
	}
	return w.bar.Generation
}

// Database is an open-loop transactional server: requests arrive with
// exponential inter-arrival times (mean Interarrival) on the cores listed
// in ArrivalCores (the "network softirq" cores), run for Service ticks,
// and with BlockProb block once for BlockFor ticks (a disk or lock wait)
// before finishing. Throughput and p99 latency are the paper's database
// metrics; a non-work-conserving scheduler loses throughput roughly in
// proportion to the wasted cores.
type Database struct {
	// Requests is the total number of requests to generate.
	Requests int
	// Interarrival is the mean inter-arrival gap in ticks.
	Interarrival float64
	// Service is the per-request CPU time.
	Service int64
	// BlockProb is the probability a request blocks once mid-service.
	BlockProb float64
	// BlockFor is the blocking duration.
	BlockFor int64
	// ArrivalCores lists the cores requests arrive on, round-robin.
	ArrivalCores []int
}

// Name implements Workload.
func (w *Database) Name() string {
	return fmt.Sprintf("db(req=%d,ia=%.0f,svc=%d)", w.Requests, w.Interarrival, w.Service)
}

// Setup implements Workload.
func (w *Database) Setup(s *sim.Simulator) {
	if w.Requests <= 0 || w.Interarrival <= 0 || w.Service <= 0 {
		panic("workload: Database needs positive Requests, Interarrival, Service")
	}
	cores := w.ArrivalCores
	if len(cores) == 0 {
		cores = []int{0}
	}
	rng := s.RNG()
	t := s.Clock()
	for i := 0; i < w.Requests; i++ {
		t += rng.ExpTicks(w.Interarrival)
		core := cores[i%len(cores)]
		s.SpawnAt(t, core, 1024, w.requestBehavior(rng))
	}
}

// requestBehavior builds one request's behavior: run half the service,
// maybe block, run the rest.
func (w *Database) requestBehavior(rng *sim.RNG) sim.Behavior {
	blocks := w.BlockProb > 0 && rng.Float64() < w.BlockProb
	phase := 0
	return sim.BehaviorFunc(func(int64, *sim.RNG) sim.Action {
		phase++
		if blocks {
			switch phase {
			case 1:
				return sim.Action{RunFor: w.Service / 2, Then: sim.ThenBlock, BlockFor: w.BlockFor}
			default:
				return sim.Action{RunFor: w.Service - w.Service/2, Then: sim.ThenExit}
			}
		}
		return sim.Action{RunFor: w.Service, Then: sim.ThenExit}
	})
}

// ForkJoin spawns Waves batches of Width tasks; each wave forks on one
// core, runs in parallel (if the balancer spreads it) and the next wave
// starts after a fixed Gap. It models `make -j`-style build bursts.
// For the backend-portable equivalent, see the root package's
// ForkJoinScenario.
type ForkJoin struct {
	// Waves is the number of batches.
	Waves int
	// Width is the tasks per batch.
	Width int
	// Work is each task's CPU time.
	Work int64
	// Gap separates wave start times.
	Gap int64
	// ForkCore is where every task is born.
	ForkCore int
}

// Name implements Workload.
func (w *ForkJoin) Name() string {
	return fmt.Sprintf("forkjoin(waves=%d,width=%d)", w.Waves, w.Width)
}

// Setup implements Workload.
func (w *ForkJoin) Setup(s *sim.Simulator) {
	if w.Waves <= 0 || w.Width <= 0 || w.Work <= 0 {
		panic("workload: ForkJoin needs positive Waves, Width, Work")
	}
	for wave := 0; wave < w.Waves; wave++ {
		t := s.Clock() + int64(wave)*w.Gap
		for i := 0; i < w.Width; i++ {
			s.SpawnAt(t, w.ForkCore, 1024, sim.RunOnce(w.Work))
		}
	}
}

// Pinned is a single long-running heavy thread — the high-load R-style
// process of the Lozi group-imbalance scenario. It occupies its core
// forever and, with a large weight, poisons group load averages.
type Pinned struct {
	// Core is where the thread runs.
	Core int
	// Weight is the thread's load weight (e.g. 8192 for a nice -20-ish
	// hog).
	Weight int64
}

// Name implements Workload.
func (w *Pinned) Name() string { return fmt.Sprintf("pinned(core=%d,w=%d)", w.Core, w.Weight) }

// Setup implements Workload.
func (w *Pinned) Setup(s *sim.Simulator) {
	weight := w.Weight
	if weight <= 0 {
		weight = 8192
	}
	// A huge slice: the thread never yields; since it is always the
	// current task and never queued, no policy can migrate it — the
	// model's equivalent of a pinned thread.
	s.SpawnAt(0, w.Core, weight, sim.RunForever(1<<40))
}

// Combined composes several workloads into one.
type Combined struct {
	// Parts are set up in order.
	Parts []Workload
	// Label overrides the generated name when non-empty.
	Label string
}

// Name implements Workload.
func (w *Combined) Name() string {
	if w.Label != "" {
		return w.Label
	}
	name := "combined("
	for i, p := range w.Parts {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name + ")"
}

// Setup implements Workload.
func (w *Combined) Setup(s *sim.Simulator) {
	for _, p := range w.Parts {
		p.Setup(s)
	}
}
