package workload

import (
	"fmt"

	"repro/internal/sim"
)

// This file defines the canonical §1-motivation scenarios of experiment
// E6, reproducing Lozi et al.'s wasted-cores measurements in simulation.
// Both scenarios place a heavy pinned thread in group 0 so that
// group-average-based balancing (policy.CFSGroupBuggy) starves group 0's
// idle cores while group 1 is overloaded. The hog's large weight models
// the autogroup/cgroup load inflation that made a single R process
// dominate a node's load average in Lozi et al.'s measurements.

// Server is a closed-loop transactional server: Workers threads each loop
// {run Service ticks, block Think ticks}, counting completed requests.
// Closed-loop operation keeps the offered load stable (no unbounded
// backlog), which is what makes throughput loss from wasted cores cleanly
// measurable — the paper's "realistic database workload".
type Server struct {
	// Workers is the number of server threads.
	Workers int
	// Service is the CPU time per request.
	Service int64
	// Think is the blocking time between requests (lock/disk wait).
	Think int64
	// SpawnCores lists where workers are born, round-robin.
	SpawnCores []int

	requests int64
}

// Name implements Workload.
func (w *Server) Name() string {
	return fmt.Sprintf("server(workers=%d,svc=%d,think=%d)", w.Workers, w.Service, w.Think)
}

// Setup implements Workload.
func (w *Server) Setup(s *sim.Simulator) {
	if w.Workers <= 0 || w.Service <= 0 || w.Think < 0 {
		panic("workload: Server needs positive Workers, Service and non-negative Think")
	}
	cores := w.SpawnCores
	if len(cores) == 0 {
		cores = []int{0}
	}
	for i := 0; i < w.Workers; i++ {
		core := cores[i%len(cores)]
		s.SpawnAt(0, core, 1024, w.workerBehavior())
	}
}

func (w *Server) workerBehavior() sim.Behavior {
	return sim.BehaviorFunc(func(int64, *sim.RNG) sim.Action {
		w.requests++
		return sim.Action{RunFor: w.Service, Then: sim.ThenBlock, BlockFor: w.Think}
	})
}

// Requests returns completed (started) request iterations — the
// throughput numerator for E6.
func (w *Server) Requests() int64 { return w.requests }

// AsymmetricGroups assigns the first g0 cores to group 0 and the rest to
// group 1.
func AsymmetricGroups(cores, g0 int) []int {
	if g0 <= 0 || g0 >= cores {
		panic(fmt.Sprintf("workload: AsymmetricGroups(%d, %d)", cores, g0))
	}
	groups := make([]int, cores)
	for i := g0; i < cores; i++ {
		groups[i] = 1
	}
	return groups
}

// GroupTrapGroups returns the symmetric half/half group assignment.
func GroupTrapGroups(cores int) []int { return AsymmetricGroups(cores, cores/2) }

// DBTrap is the database scenario of E6 on a 4-core, two-group machine:
//
//	group 0: core 0 idle, core 1 running the weight-8192 hog;
//	group 1: cores 2-3 hosting 5 closed-loop server workers.
//
// avg(group 0) = 4096 while avg(group 1) ≤ 2560 even with every worker
// runnable, so the group-average filter never lets core 0 steal: it
// idles forever while cores 2-3 run the five workers. A work-conserving
// policy migrates workers to core 0. Expected shape: ≈25% request-
// throughput loss for the buggy policy — the paper's database number.
type DBTrap struct {
	// Server is the measured workload.
	Server *Server

	combined *Combined
}

// NewDBTrap builds the canonical database trap.
func NewDBTrap() *DBTrap {
	srv := &Server{
		Workers:    5,
		Service:    2000,
		Think:      1000,
		SpawnCores: []int{2, 3},
	}
	return &DBTrap{
		Server:   srv,
		combined: &Combined{Label: "db-trap", Parts: []Workload{&Pinned{Core: 1, Weight: 8192}, srv}},
	}
}

// Cores returns the machine width the trap is calibrated for.
func (*DBTrap) Cores() int { return 4 }

// Groups returns the trap's group assignment.
func (*DBTrap) Groups() []int { return GroupTrapGroups(4) }

// Name implements Workload.
func (t *DBTrap) Name() string { return t.combined.Name() }

// Setup implements Workload.
func (t *DBTrap) Setup(s *sim.Simulator) { t.combined.Setup(s) }

// BarrierTrap is the scientific-application scenario of E6 on a 10-core
// machine:
//
//	group 0: cores 0-7, with the weight-65536 hog on core 1;
//	group 1: cores 8-9, where 8 barrier threads are born.
//
// avg(group 0) = 8192 while avg(group 1) ≤ 4096, so the buggy filter
// confines all 8 threads to 2 cores: every barrier generation costs
// 4×Work. A work-conserving policy spreads them over the 9 free cores:
// generations cost Work. Expected shape: ≈3-4× slowdown ("many-fold").
type BarrierTrap struct {
	// Barrier is the measured workload.
	Barrier *Barrier

	combined *Combined
}

// NewBarrierTrap builds the canonical scientific-application trap.
// work is the per-generation compute time; pick one that is not a
// multiple of the balance period to avoid phase-locking artifacts.
func NewBarrierTrap(work int64) *BarrierTrap {
	bar := &Barrier{
		Threads:    8,
		Work:       work,
		SpawnCores: []int{8},
	}
	return &BarrierTrap{
		Barrier:  bar,
		combined: &Combined{Label: "barrier-trap", Parts: []Workload{&Pinned{Core: 1, Weight: 65536}, bar}},
	}
}

// Cores returns the machine width the trap is calibrated for.
func (*BarrierTrap) Cores() int { return 10 }

// Groups returns the trap's group assignment.
func (*BarrierTrap) Groups() []int { return AsymmetricGroups(10, 8) }

// Name implements Workload.
func (t *BarrierTrap) Name() string { return t.combined.Name() }

// Setup implements Workload.
func (t *BarrierTrap) Setup(s *sim.Simulator) { t.combined.Setup(s) }

// Bursty generates square-wave load: bursts of tasks arriving on one
// core, separated by quiet gaps — the pattern that exposes slow
// rebalancing (convergence N) as latency spikes. For the
// backend-portable equivalent, see the root package's BurstyScenario.
type Bursty struct {
	// Bursts is the number of bursts.
	Bursts int
	// TasksPerBurst arrive together on BurstCore.
	TasksPerBurst int
	// Work is each task's CPU time.
	Work int64
	// Period separates burst starts.
	Period int64
	// BurstCore is where bursts land.
	BurstCore int
}

// Name implements Workload.
func (w *Bursty) Name() string { return "bursty" }

// Setup implements Workload.
func (w *Bursty) Setup(s *sim.Simulator) {
	if w.Bursts <= 0 || w.TasksPerBurst <= 0 || w.Work <= 0 {
		panic("workload: Bursty needs positive Bursts, TasksPerBurst, Work")
	}
	for b := 0; b < w.Bursts; b++ {
		t := s.Clock() + int64(b)*w.Period
		for i := 0; i < w.TasksPerBurst; i++ {
			s.SpawnAt(t, w.BurstCore, 1024, sim.RunOnce(w.Work))
		}
	}
}
