package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Time: int64(i), Kind: KindSteal, Core: i})
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Errorf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Time != int64(i) {
			t.Errorf("event %d out of order: %+v", i, e)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Emit(Event{Time: int64(i)})
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 4 {
		t.Errorf("Dropped = %d, want 4", r.Dropped())
	}
	evs := r.Events()
	want := []int64{4, 5, 6}
	for i, e := range evs {
		if e.Time != want[i] {
			t.Errorf("Events[%d].Time = %d, want %d", i, e.Time, want[i])
		}
	}
}

func TestNilRingIsNoop(t *testing.T) {
	var r *Ring
	r.Emit(Event{Kind: KindExit}) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Error("nil ring should be inert")
	}
}

func TestRingPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestFilter(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{Kind: KindSteal, Time: 1})
	r.Emit(Event{Kind: KindStealFail, Time: 2})
	r.Emit(Event{Kind: KindSteal, Time: 3})
	steals := r.Filter(KindSteal)
	if len(steals) != 2 || steals[0].Time != 1 || steals[1].Time != 3 {
		t.Errorf("Filter = %+v", steals)
	}
	if got := r.Filter(KindExit); got != nil {
		t.Errorf("Filter(exit) = %+v", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{Time: 5, Kind: KindWake, Core: 2, Task: 7, Aux: -1})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != (Event{Time: 5, Kind: KindWake, Core: 2, Task: 7, Aux: -1}) {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 3, Kind: KindBlock, Core: 1, Task: 9, Aux: -1}
	s := e.String()
	for _, frag := range []string{"3", "block", "core=1", "task=9"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}
