// Package trace records structured scheduler events into a bounded ring
// buffer with JSON export — the debugging/replay facility of the
// simulator and the concurrent executor. Tracing is designed to be cheap
// enough to leave enabled: one struct copy per event, no allocation once
// the ring is warm, and a nil *Ring is a valid no-op tracer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the simulator and executor.
const (
	KindSpawn     Kind = "spawn"      // task created on a core
	KindStart     Kind = "start"      // task started running
	KindPreempt   Kind = "preempt"    // task preempted by the tick
	KindBlock     Kind = "block"      // task blocked (I/O, barrier)
	KindWake      Kind = "wake"       // task became runnable again
	KindExit      Kind = "exit"       // task finished
	KindSteal     Kind = "steal"      // successful task migration
	KindStealFail Kind = "steal-fail" // failed optimistic steal
	KindRound     Kind = "round"      // balancing round boundary
	KindViolation Kind = "violation"  // idle-while-overloaded observed
	KindFail      Kind = "fail"       // core fail-stopped (aux: tasks rescued)
	KindRevive    Kind = "revive"     // core rejoined via hotplug
)

// Event is one trace record. Fields are int64/strings only so the JSON
// export is stable and greppable.
type Event struct {
	// Time is the virtual (simulator) or wall (executor) timestamp.
	Time int64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Core is the core the event happened on, -1 if machine-wide.
	Core int `json:"core"`
	// Task is the task involved, -1 if none.
	Task int64 `json:"task"`
	// Aux carries the event's second core (steal source) or other small
	// payload; -1 if unused.
	Aux int64 `json:"aux"`
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%d %s core=%d task=%d aux=%d", e.Time, e.Kind, e.Core, e.Task, e.Aux)
}

// Ring is a fixed-capacity event ring buffer. The zero value is unusable;
// use NewRing. A nil *Ring discards events, so callers never need nil
// checks around optional tracing.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRing returns a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: NewRing(%d)", capacity))
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends an event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.dropped++
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Dropped returns how many events were evicted.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// WriteJSON streams the retained events as a JSON array.
func (r *Ring) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Events())
}

// Filter returns the retained events of the given kind, oldest-first.
func (r *Ring) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
