package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"

	"repro/internal/statespace"
	"repro/internal/verify"
)

// Cache keys are content hashes over everything that can change a
// Result and nothing that cannot:
//
//   - the verifier version (verify.Version): checker semantics;
//   - the canonical universe (statespace.Universe.Canonical): the
//     quantification domain, with the MaxTotal=0 shorthand expanded;
//   - the obligation ID;
//   - the canonical compiled form of exactly the policy components the
//     obligation's checker consults (verify.ObligationDeps), each
//     closed over the load clause where referenced (dsl.ComponentForm);
//   - MaxRounds, for the one obligation whose verdict depends on it.
//
// Parallelism, shard counts and worker pools are deliberately absent:
// the sharded driver's reports are byte-identical at every level, which
// is the invariant that makes memoization sound at all.

// obligationKey hashes one (policy, universe, obligation) cell.
func obligationKey(forms map[string]string, u statespace.Universe, id verify.ObligationID, maxRounds int) string {
	h := sha256.New()
	writeField(h, verify.Version)
	writeField(h, u.Canonical())
	writeField(h, string(id))
	for _, comp := range verify.ObligationDeps(id) {
		writeField(h, string(comp))
		writeField(h, forms[string(comp)])
	}
	if id == verify.ObWorkConservSeq || id == verify.ObNoTaskLost || id == verify.ObDegradedWastedCores {
		// The sequential work-conservation search gives up (REFUTED)
		// after MaxRounds rounds, and the fault obligations use the same
		// bound as the re-home/recovery deadline, so for these three the
		// bound is part of the verdict's identity. The other checkers
		// never read it.
		if maxRounds <= 0 {
			maxRounds = 1000
		}
		writeField(h, fmt.Sprintf("maxRounds=%d", maxRounds))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// jobKeyOf identifies a whole submission for coalescing: the report
// header name plus every obligation cell, in request order. Two
// concurrent identical submissions share one job; submissions that
// differ only in display name share cache cells but not jobs, so each
// poller still receives a report headed by its own submission's name.
func jobKeyOf(display string, keys []string) string {
	h := sha256.New()
	writeField(h, display)
	for _, k := range keys {
		writeField(h, k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeField writes a length-unambiguous field (NUL-terminated; every
// hashed string here is NUL-free).
func writeField(h hash.Hash, s string) {
	h.Write([]byte(s))
	h.Write([]byte{0})
}
