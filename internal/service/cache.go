package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/verify"
)

// resultCache is the content-addressed memo of per-obligation verify
// Results. Keys are content hashes (key.go), so entries never go stale
// — a changed policy, universe, obligation or verifier version simply
// hashes elsewhere — and the cache never evicts. Values are final
// merged Results from the deterministic sharded driver; replaying one
// into a report is byte-identical to re-running the checker.
type resultCache struct {
	mu      sync.RWMutex
	entries map[string]verify.Result

	// hits/misses count lookup probes: one per obligation per executed
	// submission (the submit fast-path peeks first so a submission's
	// keys are never double-counted). The stats endpoint exposes them —
	// this is how a client observes that a one-clause edit invalidated
	// exactly the dependent obligations.
	hits   atomic.Int64
	misses atomic.Int64
}

// newResultCache builds the cache, pre-populated with seed — the
// entries the durable store recovered at startup (nil for a cold or
// memory-only service).
func newResultCache(seed map[string]verify.Result) *resultCache {
	entries := make(map[string]verify.Result, len(seed))
	for k, v := range seed {
		entries[k] = v
	}
	return &resultCache{entries: entries}
}

// flush drops every entry and returns how many there were. The hit/miss
// counters are cumulative and survive the flush.
func (c *resultCache) flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[string]verify.Result)
	return n
}

// peekAll reports whether every key is cached, without touching the
// hit/miss accounting.
func (c *resultCache) peekAll(keys []string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, key := range keys {
		if _, ok := c.entries[key]; !ok {
			return false
		}
	}
	return true
}

// lookup returns the memoized result for key, counting the probe as a
// hit or miss.
func (c *resultCache) lookup(key string) (verify.Result, bool) {
	c.mu.RLock()
	res, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// store memoizes a completed result. Aborted results are conclusions
// about the cancellation, not the policy — never memoize them.
func (c *resultCache) store(key string, res verify.Result) {
	if res.Aborted {
		return
	}
	c.mu.Lock()
	c.entries[key] = res
	c.mu.Unlock()
}

func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
