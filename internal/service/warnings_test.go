package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dsl"
)

// A DSL policy with a deliberately shadowed filter disjunct: the right
// side of the || accepts only pairs the left side already accepts, so
// dsl.Analyze reports shadowed-clause. The policy still verifies — the
// linter is advisory, never a gate.
const shadowedSource = `policy shadowed {
    filter = stealee.nthreads > self.nthreads + 1 || stealee.nthreads > self.nthreads + 3
    choose = first
}`

// postVerify submits a request to the HTTP surface, returning the
// status code, the decoded envelope, and the raw body bytes for
// byte-comparison across requests.
func postVerify(t *testing.T, url string, req Request) (int, SubmitResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env SubmitResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decoding envelope: %v\n%s", err, raw)
	}
	return resp.StatusCode, env, raw
}

// pollJSON fetches a poll URL and decodes the envelope.
func pollJSON(t *testing.T, url string) SubmitResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env
}

// assertShadowed checks that the warnings are exactly the linter's
// verdict on shadowedSource: one shadowed-clause finding.
func assertShadowed(t *testing.T, warnings []dsl.Diagnostic, where string) {
	t.Helper()
	if len(warnings) != 1 || warnings[0].Code != "shadowed-clause" {
		t.Fatalf("%s: warnings = %+v, want exactly one shadowed-clause", where, warnings)
	}
}

// Warnings ride along the whole HTTP lifecycle of a source submission:
// the 202 queued envelope, every poll, the done poll, and the cached
// 200 — and identical submissions produce byte-identical envelopes.
func TestWarningsRoundTripHTTP(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := Request{Source: shadowedSource, Obligations: []string{"lemma1"}}

	code, env, _ := postVerify(t, srv.URL, req)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	assertShadowed(t, env.Warnings, "submit envelope")

	// Poll until done; warnings must be present on every poll response,
	// queued, running, or finished.
	if code == http.StatusAccepted {
		deadline := time.Now().Add(60 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			polled := pollJSON(t, srv.URL+env.Poll)
			assertShadowed(t, polled.Warnings, "poll ("+polled.Status+")")
			if polled.Status == "done" {
				if polled.Report == nil {
					t.Fatal("done poll carries no report")
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Resubmission answers from the memo (200 done) and the warnings are
	// recomputed deterministically: byte-identical documents both times.
	code1, env1, raw1 := postVerify(t, srv.URL, req)
	code2, env2, raw2 := postVerify(t, srv.URL, req)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("warm resubmits = %d, %d, want 200", code1, code2)
	}
	if !env1.Cached || !env2.Cached {
		t.Errorf("warm resubmits not served from cache")
	}
	assertShadowed(t, env1.Warnings, "first warm envelope")
	assertShadowed(t, env2.Warnings, "second warm envelope")
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("identical submissions produced different envelopes:\n%s\n%s", raw1, raw2)
	}
}

// Named-policy submissions have no DSL source to lint: the warnings
// field must be absent from the wire document, not an empty array.
func TestWarningsAbsentForNamedPolicies(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := Request{Policy: "delta2", Obligations: []string{"lemma1"}}
	_, env, _ := postVerify(t, srv.URL, req)
	if len(env.Warnings) != 0 {
		t.Fatalf("named policy grew warnings: %+v", env.Warnings)
	}
	if env.Poll != "" {
		deadline := time.Now().Add(60 * time.Second)
		for pollJSON(t, srv.URL+env.Poll).Status != "done" {
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	_, warm, raw := postVerify(t, srv.URL, req)
	if len(warm.Warnings) != 0 {
		t.Fatalf("cached named policy grew warnings: %+v", warm.Warnings)
	}
	if bytes.Contains(raw, []byte(`"warnings"`)) {
		t.Errorf("empty warnings serialized onto the wire:\n%s", raw)
	}
}
