package service

// Chaos and crash-safety tests for the durable daemon: warm restarts,
// torn WAL writes, checker panics, worker stalls, deadline propagation,
// drain lifecycle and admin flushes. CI runs these under the
// TestChaos|TestCrash|TestTorn|TestCheckerPanic|TestDrain|TestFlush
// name filter — keep new chaos tests on those prefixes.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service/faultinject"
	"repro/internal/verify"
)

// fastObligations is a 2-obligation subset that verifies in a few ms on
// the default universe, so restart cycles stay cheap.
var fastObligations = []string{"lemma1", "steal-soundness"}

func newDurable(t *testing.T, dir string, opts ...Option) *Service {
	t.Helper()
	s, err := New(Config{DataDir: dir}, opts...)
	if err != nil {
		t.Fatalf("New(DataDir=%s): %v", dir, err)
	}
	return s
}

func reportJSON(t *testing.T, rep *verify.Report) []byte {
	t.Helper()
	data, err := verify.ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The PR's acceptance bar: a daemon restarted onto a warm -data-dir
// serves a previously verified submission as a cache hit — zero
// obligation re-runs, byte-identical report.
func TestCrashRestartWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	req := Request{Policy: "delta2", Obligations: fastObligations}

	s1 := newDurable(t, dir)
	coldJSON := reportJSON(t, submitWait(t, s1, req))
	s1.Close()

	s2 := newDurable(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.Store == nil || st.Store.RecoveredRecords != len(fastObligations) {
		t.Fatalf("restart recovered %+v, want %d records", st.Store, len(fastObligations))
	}
	rep, job, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		waitDone(t, job)
		t.Fatal("warm restart queued a job instead of serving from the recovered memo")
	}
	if got := s2.Stats().CacheMisses; got != 0 {
		t.Errorf("warm restart ran %d obligations, want 0", got)
	}
	if warm := reportJSON(t, rep); !bytes.Equal(coldJSON, warm) {
		t.Errorf("warm report differs from pre-restart verdict:\npre:\n%s\npost:\n%s", coldJSON, warm)
	}
}

// A torn WAL write (the disk half of kill -9 mid-append) loses exactly
// the torn record: the live service still reports from memory, the
// restarted one re-runs only the lost obligation, and the re-run verdict
// is byte-identical.
func TestTornAppendHealedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Policy: "delta2", Obligations: fastObligations}
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpWALAppend, Kind: faultinject.KindTorn, Bytes: 3, On: 2,
	})

	s1 := newDurable(t, dir, WithFaults(faults))
	coldJSON := reportJSON(t, submitWait(t, s1, req))
	st := s1.Stats().Store
	if st.AppendErrors != 1 || st.TruncatedRecords != 1 || st.Disabled {
		t.Fatalf("torn append not healed in place: %+v", st)
	}
	s1.Close()

	s2 := newDurable(t, dir)
	defer s2.Close()
	if got := s2.Stats().Store.RecoveredRecords; got != 1 {
		t.Fatalf("recovered %d records, want 1 (the torn one lost, its neighbor intact)", got)
	}
	warmJSON := reportJSON(t, submitWait(t, s2, req))
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("report after torn-write recovery differs:\npre:\n%s\npost:\n%s", coldJSON, warmJSON)
	}
	st2 := s2.Stats()
	if st2.CacheHits != 1 || st2.CacheMisses != 1 {
		t.Errorf("recovery re-ran %d obligations (hits=%d), want exactly the lost one",
			st2.CacheMisses, st2.CacheHits)
	}
	if got := st2.Store.Entries; got != len(fastObligations) {
		t.Errorf("store holds %d entries after the healing re-run, want %d", got, len(fastObligations))
	}
}

// A panicking checker must not kill the daemon: the obligation comes
// back ABORTED (and uncached), sibling obligations complete normally,
// and a resubmission re-runs the crashed checker.
func TestCheckerPanicContained(t *testing.T) {
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpChecker, Kind: faultinject.KindPanic, Match: "lemma1", On: 1,
	})
	s := MustNew(Config{}, WithFaults(faults))
	defer s.Close()
	req := Request{Policy: "delta2", Obligations: fastObligations}

	rep := submitWait(t, s, req)
	if len(rep.Results) != 2 {
		t.Fatalf("report has %d results, want 2", len(rep.Results))
	}
	lemma, steal := rep.Results[0], rep.Results[1]
	if !lemma.Aborted || !strings.Contains(lemma.Witness, "checker panic") {
		t.Errorf("panicked obligation reported %+v, want ABORTED with a panic witness", lemma)
	}
	if !steal.Passed || steal.Aborted {
		t.Errorf("sibling obligation disturbed by the panic: %+v", steal)
	}
	st := s.Stats()
	if st.CheckerPanics != 1 {
		t.Errorf("CheckerPanics = %d, want 1", st.CheckerPanics)
	}
	if st.CacheEntries != 1 {
		t.Errorf("aborted result was cached: %d entries, want 1", st.CacheEntries)
	}

	// The fault was one-shot: resubmitting re-runs lemma1 cleanly.
	rep2 := submitWait(t, s, req)
	if !rep2.Passed() {
		t.Errorf("resubmission after the panic did not verify cleanly:\n%s", rep2)
	}
	if got := s.Stats().CacheEntries; got != 2 {
		t.Errorf("cache has %d entries after the clean re-run, want 2", got)
	}
}

// An injected worker stall delays the job without corrupting it.
func TestChaosWorkerStall(t *testing.T) {
	const stall = 60 * time.Millisecond
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpWorker, Kind: faultinject.KindStall, Delay: stall,
	})
	s := MustNew(Config{}, WithFaults(faults))
	defer s.Close()

	start := time.Now()
	rep := submitWait(t, s, Request{Policy: "delta2", Obligations: []string{"lemma1"}})
	if took := time.Since(start); took < stall {
		t.Errorf("stalled job finished in %v, want >= %v", took, stall)
	}
	if !rep.Passed() {
		t.Errorf("stalled job report:\n%s", rep)
	}
	if faults.Fired()["worker:stall"] != 1 {
		t.Errorf("Fired() = %v, want one worker:stall", faults.Fired())
	}
}

// A client-propagated deadline (Request.timeout_ms) bounds the job even
// after the submit round-trip returned: the job cancels itself and
// nothing half-finished is cached.
func TestChaosDeadlinePropagation(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	req := slowRequest()
	req.TimeoutMs = 1

	rep, job, err := s.Submit(req)
	if err != nil || rep != nil {
		t.Fatalf("Submit: rep=%v err=%v, want a queued job", rep, err)
	}
	rep2, errMsg := waitDone(t, job)
	if rep2 != nil || !strings.Contains(errMsg, "cancelled") {
		t.Fatalf("deadline-bounded job finished with report=%v err=%q, want cancellation", rep2, errMsg)
	}
	st := s.Stats()
	// Obligations that completed before the deadline are legitimately
	// cached (they are valid results); the suite as a whole must not be.
	if st.JobsCancelled != 1 || st.CacheEntries >= len(verify.AllObligations()) {
		t.Errorf("after deadline cancel: %d cancelled, %d cached, want 1 cancelled and a partial cache",
			st.JobsCancelled, st.CacheEntries)
	}
}

// Drain semantics: /readyz flips to 503 and submissions bounce with
// ErrDraining, while polls keep answering and in-flight jobs run to
// completion within the drain budget.
func TestDrainLifecycle(t *testing.T) {
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpWorker, Kind: faultinject.KindStall, Delay: 100 * time.Millisecond,
	})
	s := MustNew(Config{Workers: 1}, WithFaults(faults))
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	statusOf := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := statusOf("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", got)
	}

	_, job, err := s.Submit(Request{Policy: "delta2", Obligations: []string{"lemma1"}})
	if err != nil || job == nil {
		t.Fatalf("Submit: %v", err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never flipped readiness")
		}
		time.Sleep(time.Millisecond)
	}

	if got := statusOf("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", got)
	}
	if got := statusOf("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200 (liveness is not readiness)", got)
	}
	if _, _, err := s.Submit(Request{Policy: "null"}); err != ErrDraining {
		t.Errorf("submit during drain returned %v, want ErrDraining", err)
	}
	// Polls keep working so clients can collect reports mid-drain.
	if got := statusOf("/v1/jobs/" + job.ID()); got != http.StatusOK {
		t.Errorf("poll during drain = %d, want 200", got)
	}

	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, rep, errMsg := job.Snapshot(); rep == nil {
		t.Errorf("in-flight job did not survive the drain: %s", errMsg)
	}
}

// The admin flush clears the memo from memory AND disk; the next
// submission re-verifies and repopulates both.
func TestFlushCacheMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, dir)
	req := Request{Policy: "delta2", Obligations: fastObligations}
	coldJSON := reportJSON(t, submitWait(t, s, req))

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	httpReq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/cache", nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /v1/cache = %d", resp.StatusCode)
	}
	st := s.Stats()
	if st.CacheEntries != 0 || st.CacheFlushes != 1 || st.Store.Entries != 0 {
		t.Fatalf("flush left state behind: %d entries, %d flushes, %d on disk",
			st.CacheEntries, st.CacheFlushes, st.Store.Entries)
	}

	// Re-verification repopulates memory and disk with the same verdicts.
	if again := reportJSON(t, submitWait(t, s, req)); !bytes.Equal(coldJSON, again) {
		t.Errorf("post-flush re-verification differs:\npre:\n%s\npost:\n%s", coldJSON, again)
	}
	s.Close()
	s2 := newDurable(t, dir)
	defer s2.Close()
	if got := s2.Stats().Store.RecoveredRecords; got != len(fastObligations) {
		t.Errorf("restart after flush+reverify recovered %d records, want %d", got, len(fastObligations))
	}
}
