package service

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/statespace"
	"repro/internal/verify"
)

// waitDone polls a job to its terminal state.
func waitDone(t *testing.T, job *Job) (*verify.Report, string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !job.Done() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", job.ID())
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, rep, errMsg := job.Snapshot()
	return rep, errMsg
}

// submitWait submits and drives the request to a finished report,
// whether it was served from cache or queued.
func submitWait(t *testing.T, s *Service, req Request) *verify.Report {
	t.Helper()
	rep, job, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rep != nil {
		return rep
	}
	rep, errMsg := waitDone(t, job)
	if rep == nil {
		t.Fatalf("job %s cancelled: %s", job.ID(), errMsg)
	}
	return rep
}

// The delta2 DSL in a different surface spelling and under a different
// name — compiled form identical to the registered delta2 spec.
const delta2Source = `# same policy, different spelling
policy mydelta {
    load   = core.nready + core.running
    filter = victim.load() - thief.load() >= 2
    choose = first
}`

func TestNameAndSourceShareCacheEntries(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()

	cold := submitWait(t, s, Request{Policy: "delta2"})
	if !cold.Passed() {
		t.Fatalf("delta2 refuted:\n%s", cold)
	}
	entries := s.Stats().CacheEntries
	if entries != len(verify.AllObligations()) {
		t.Fatalf("cold run cached %d entries, want %d", entries, len(verify.AllObligations()))
	}

	// Equivalent DSL source: every obligation must be a cache hit — no
	// new entries, answered synchronously, report headed by its own name.
	rep, job, err := s.Submit(Request{Source: delta2Source})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		waitDone(t, job)
		t.Fatalf("equivalent DSL source queued a job instead of hitting the cache")
	}
	if got := s.Stats().CacheEntries; got != entries {
		t.Errorf("DSL resubmission grew the cache: %d -> %d entries", entries, got)
	}
	if rep.Policy != "mydelta" {
		t.Errorf("report headed %q, want the submission's own name", rep.Policy)
	}
	if len(rep.Results) != len(cold.Results) {
		t.Fatalf("result count mismatch")
	}
	for i := range rep.Results {
		if rep.Results[i] != cold.Results[i] {
			t.Errorf("result %d differs between name and source submissions:\n %+v\n %+v",
				i, cold.Results[i], rep.Results[i])
		}
	}
}

func TestObligationKeyDistinctions(t *testing.T) {
	forms := map[string]string{"load": "L", "filter": "F", "choose": "C", "steal": "S"}
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 5, IncludeUnscheduled: true}
	base := obligationKey(forms, u, verify.ObLemma1, 1000)

	u2 := u
	u2.Cores = 4
	if obligationKey(forms, u2, verify.ObLemma1, 1000) == base {
		t.Error("changed universe, same key")
	}
	if obligationKey(forms, u, verify.ObStealSoundness, 1000) == base {
		t.Error("different obligation, same key")
	}
	// MaxTotal=0 means Cores*MaxPerCore: both spellings one cell.
	u3 := u
	u3.MaxTotal = 0
	u4 := u
	u4.MaxTotal = u.Cores * u.MaxPerCore
	if obligationKey(forms, u3, verify.ObLemma1, 1000) != obligationKey(forms, u4, verify.ObLemma1, 1000) {
		t.Error("MaxTotal shorthand hashes differently from its expansion")
	}
	// MaxRounds is identity only for the sequential WC search.
	if obligationKey(forms, u, verify.ObWorkConservSeq, 1000) == obligationKey(forms, u, verify.ObWorkConservSeq, 2000) {
		t.Error("maxRounds ignored for work-conservation-sequential")
	}
	if obligationKey(forms, u, verify.ObLemma1, 1000) != obligationKey(forms, u, verify.ObLemma1, 2000) {
		t.Error("maxRounds leaked into a maxRounds-free obligation")
	}
	// Components outside the obligation's dependency set don't matter.
	forms2 := map[string]string{"load": "L", "filter": "F", "choose": "OTHER", "steal": "S"}
	if obligationKey(forms2, u, verify.ObLemma1, 1000) != base {
		t.Error("choose edit invalidated lemma1, which never calls Choose")
	}
	forms3 := map[string]string{"load": "L", "filter": "OTHER", "choose": "C", "steal": "S"}
	if obligationKey(forms3, u, verify.ObLemma1, 1000) == base {
		t.Error("filter edit did not invalidate lemma1")
	}
}

func TestFaultUniverseMemoizesSeparatelyAndReplaysWarm(t *testing.T) {
	// MaxFaults is part of the canonical universe, so a fault-extended
	// run memoizes in its own cells: the healthy run's cache must not
	// answer for it, and its own warm resubmission must be a pure,
	// byte-identical cache hit.
	s := MustNew(Config{})
	defer s.Close()

	healthy := UniverseSpec{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	faulty := healthy
	faulty.MaxFaults = 1

	submitWait(t, s, Request{Policy: "delta2-rescue", Universe: &healthy})
	entries := s.Stats().CacheEntries

	cold := submitWait(t, s, Request{Policy: "delta2-rescue", Universe: &faulty})
	if !cold.Passed() {
		t.Fatalf("delta2-rescue refuted under faults:\n%s", cold)
	}
	st := s.Stats()
	if st.CacheEntries != 2*entries {
		t.Errorf("fault universe shared the healthy cache: %d entries, want %d", st.CacheEntries, 2*entries)
	}

	rep, job, err := s.Submit(Request{Policy: "delta2-rescue", Universe: &faulty})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		waitDone(t, job)
		t.Fatal("warm fault-universe resubmission queued a job instead of hitting the cache")
	}
	coldJSON, err := verify.ReportJSON(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := verify.ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm fault-universe report differs from cold:\n%s\nvs\n%s", coldJSON, warmJSON)
	}

	// The refuted side memoizes its witnesses just the same.
	refuted := submitWait(t, s, Request{Policy: "delta2", Universe: &faulty})
	if refuted.Passed() {
		t.Fatal("delta2 (no rescue rule) passed under faults")
	}
	warmRefuted, job, err := s.Submit(Request{Policy: "delta2", Universe: &faulty})
	if err != nil {
		t.Fatal(err)
	}
	if warmRefuted == nil {
		waitDone(t, job)
		t.Fatal("warm refuted resubmission queued a job")
	}
	a, _ := verify.ReportJSON(refuted)
	b, _ := verify.ReportJSON(warmRefuted)
	if !bytes.Equal(a, b) {
		t.Errorf("warm refuted report differs from cold:\n%s\nvs\n%s", a, b)
	}
}

// A one-clause DSL edit re-runs exactly the obligations whose checkers
// consult that clause — the acceptance criterion, observed through the
// stats endpoint's hit/miss counters.
func TestDeltaInvalidation(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()

	base := `policy p {
    load   = self.nthreads
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = first
}`
	submitWait(t, s, Request{Source: base})
	st0 := s.Stats()
	if st0.CacheMisses != 10 || st0.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/10", st0.CacheHits, st0.CacheMisses)
	}

	// Whitespace/comment edit: zero new work.
	submitWait(t, s, Request{Source: "# cosmetic\n" + base})
	st1 := s.Stats()
	if st1.CacheMisses != st0.CacheMisses || st1.CacheHits != st0.CacheHits+10 {
		t.Errorf("cosmetic edit: hits %d->%d misses %d->%d, want +10 hits, +0 misses",
			st0.CacheHits, st1.CacheHits, st0.CacheMisses, st1.CacheMisses)
	}

	// Steal-clause edit: lemma1 is the only obligation that never looks
	// at steal sizing, so exactly 9 obligations re-run.
	submitWait(t, s, Request{Source: `policy p {
    load   = self.nthreads
    filter = stealee.load - self.load >= 2
    steal  = 2
    choose = first
}`})
	st2 := s.Stats()
	if st2.CacheHits != st1.CacheHits+1 || st2.CacheMisses != st1.CacheMisses+9 {
		t.Errorf("steal edit: +%d hits +%d misses, want +1/+9",
			st2.CacheHits-st1.CacheHits, st2.CacheMisses-st1.CacheMisses)
	}

	// Choose-clause edit (against base): only the six round-executing
	// obligations (the four steady-state ones plus the two fault
	// obligations) consult Choose.
	submitWait(t, s, Request{Source: `policy p {
    load   = self.nthreads
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = max_load
}`})
	st3 := s.Stats()
	if st3.CacheHits != st2.CacheHits+4 || st3.CacheMisses != st2.CacheMisses+6 {
		t.Errorf("choose edit: +%d hits +%d misses, want +4/+6",
			st3.CacheHits-st2.CacheHits, st3.CacheMisses-st2.CacheMisses)
	}
}

// Warm-cache resubmission: byte-identical report, far under the cold
// verification time.
func TestWarmResubmissionByteIdenticalAndFast(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()

	req := Request{Policy: "delta2-gen"}
	coldStart := time.Now()
	coldRep := submitWait(t, s, req)
	coldDur := time.Since(coldStart)
	coldJSON, err := verify.ReportJSON(coldRep)
	if err != nil {
		t.Fatal(err)
	}

	warmDur := time.Duration(1 << 62)
	for i := 0; i < 10; i++ {
		start := time.Now()
		rep, job, err := s.Submit(req)
		if d := time.Since(start); d < warmDur {
			warmDur = d
		}
		if err != nil || rep == nil {
			if job != nil {
				waitDone(t, job)
			}
			t.Fatalf("warm resubmission not served from cache (err=%v)", err)
		}
		warmJSON, err := verify.ReportJSON(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(coldJSON, warmJSON) {
			t.Fatalf("warm report differs from cold:\ncold:\n%s\nwarm:\n%s", coldJSON, warmJSON)
		}
	}
	if warmDur*100 >= coldDur {
		t.Errorf("warm resubmission took %v, not <1%% of cold %v", warmDur, coldDur)
	}
}

// slowRequest occupies a worker long enough to observe queue behavior:
// a 4-core universe's game-graph obligations take hundreds of ms.
func slowRequest() Request {
	return Request{
		Policy:   "weighted",
		Universe: &UniverseSpec{Cores: 4, MaxPerCore: 3, MaxTotal: 6, IncludeUnscheduled: true},
	}
}

func waitState(t *testing.T, job *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _, _ := job.Snapshot()
		if st == want {
			return
		}
		if st == JobDone || st == JobCancelled || time.Now().After(deadline) {
			t.Fatalf("job %s state %s, waiting for %s", job.ID(), st, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoalescingAndBackpressure(t *testing.T) {
	s := MustNew(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// Occupy the single worker.
	_, blocker, err := s.Submit(slowRequest())
	if err != nil || blocker == nil {
		t.Fatalf("blocker submit: rep-from-cache or err=%v", err)
	}
	waitState(t, blocker, JobRunning)

	// Two identical submissions coalesce into one queued job.
	_, j1, err := s.Submit(Request{Policy: "delta2"})
	if err != nil {
		t.Fatal(err)
	}
	_, j2, err := s.Submit(Request{Policy: "delta2"})
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Errorf("identical concurrent submissions got distinct jobs %s and %s", j1.ID(), j2.ID())
	}
	if got := s.Stats().JobsCoalesced; got != 1 {
		t.Errorf("JobsCoalesced = %d, want 1", got)
	}

	// The queue (depth 1) now holds the delta2 job: a distinct
	// submission must bounce with ErrQueueFull.
	if _, _, err := s.Submit(Request{Policy: "null"}); err != ErrQueueFull {
		t.Errorf("overflow submit returned %v, want ErrQueueFull", err)
	}

	// Cancel the blocker; the queued job then completes.
	blocker.Cancel()
	if rep, errMsg := waitDone(t, blocker); rep != nil || errMsg == "" {
		t.Errorf("cancelled blocker: report=%v err=%q", rep, errMsg)
	}
	if rep, _ := waitDone(t, j1); rep == nil || !rep.Passed() {
		t.Errorf("queued delta2 job did not complete cleanly")
	}

	// The cancelled job left no cache entries and no coalescing index:
	// resubmitting it queues a fresh job.
	_, fresh, err := s.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	if fresh == nil || fresh == blocker {
		t.Fatalf("resubmission after cancel did not create a fresh job")
	}
	fresh.Cancel()
	waitDone(t, fresh)
}

func TestStatsLatencyAccounting(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	submitWait(t, s, Request{Policy: "delta2", Obligations: []string{"lemma1", "steal-soundness"}})
	st := s.Stats()
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", st.CacheEntries)
	}
	for _, id := range []string{"lemma1", "steal-soundness"} {
		o := st.Obligations[id]
		if o.Runs != 1 || o.TotalNs <= 0 || o.MeanNs <= 0 || o.MaxNs < o.MeanNs {
			t.Errorf("obligation %s stats %+v not accounted", id, o)
		}
	}
	if _, ok := st.Obligations["reactivity"]; ok {
		t.Error("unrequested obligation has latency stats")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := MustNew(Config{})
	defer s.Close()
	bad := []Request{
		{},                                   // no policy at all
		{Policy: "delta2", Source: "policy"}, // both sources
		{Policy: "nope"},                     // unknown name
		{Source: "policy x {"},               // broken DSL
		{Policy: "delta2", Obligations: []string{"bogus"}},            // unknown obligation
		{Policy: "delta2", Obligations: []string{"lemma1", "lemma1"}}, // duplicate
		{Policy: "delta2", Universe: &UniverseSpec{Cores: -1}},        // bad universe
	}
	for i, req := range bad {
		if _, _, err := s.Submit(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}
