package service

import (
	"testing"
)

// benchRequests is a mixed submission stream: proved, refuted and
// baseline registry policies plus a DSL-source submission that shares
// cache entries with a registered spec.
func benchRequests() []Request {
	return []Request{
		{Policy: "delta2"},
		{Policy: "greedy-buggy"},
		{Policy: "weighted"},
		{Policy: "null"},
		{Policy: "delta2-gen"},
		{Source: delta2Source}, // pure cache traffic after the delta2 entry exists
	}
}

func runAll(b *testing.B, s *Service, reqs []Request) {
	b.Helper()
	for _, req := range reqs {
		rep, job, err := s.Submit(req)
		if err != nil {
			b.Fatalf("Submit: %v", err)
		}
		if rep != nil {
			continue
		}
		for !job.Done() {
		}
		if _, rep, errMsg := job.Snapshot(); rep == nil {
			b.Fatalf("job %s cancelled: %s", job.ID(), errMsg)
		}
	}
}

// BenchmarkVerifydColdMixed measures the mixed stream against an empty
// cache: every obligation of every policy runs on the sharded driver.
func BenchmarkVerifydColdMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := MustNew(Config{})
		b.StartTimer()
		runAll(b, s, benchRequests())
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkVerifydWarmMixed measures the same stream against a warmed
// cache: every submission is answered from the memo on the Submit call.
// The cold/warm ratio is the service's headline speedup; the acceptance
// bar is warm < 1% of cold.
func BenchmarkVerifydWarmMixed(b *testing.B) {
	s := MustNew(Config{})
	defer s.Close()
	runAll(b, s, benchRequests())
	start := s.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll(b, s, benchRequests())
	}
	b.StopTimer()
	if misses := s.Stats().CacheMisses - start.CacheMisses; misses != 0 {
		b.Fatalf("warm stream missed the cache %d times", misses)
	}
}
