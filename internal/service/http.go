package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dsl"
	"repro/internal/verify"
)

// HTTP/JSON surface of the daemon:
//
//	POST   /v1/verify     submit a Request; 200 done (cache), 202 queued,
//	                      400 bad request, 429 queue full (+ Retry-After),
//	                      503 draining or closed
//	GET    /v1/jobs/{id}  poll a job; includes the report when done
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/stats      Stats snapshot (cache, queue, durable store)
//	DELETE /v1/cache      admin flush of the memo, memory and disk
//	GET    /healthz       liveness (the process is up)
//	GET    /readyz        readiness (submissions accepted); 503 while
//	                      draining — polls still work then, so clients
//	                      collect finished reports during shutdown
//
// Submit and poll responses share the SubmitResponse envelope. The
// embedded report is the deterministic verify.ReportJSON encoding — the
// same bytes `schedverify -json` prints — re-compacted by the envelope
// encoder; fetch it from the envelope's `report` field for
// byte-comparison across requests.

// SubmitResponse is the envelope of submit and poll responses.
type SubmitResponse struct {
	// Status is "done", "queued", "running" or "cancelled".
	Status string `json:"status"`
	// Cached is true when a submit was answered entirely from the memo
	// without queueing a job.
	Cached bool `json:"cached,omitempty"`
	// JobID and Poll identify the job to poll when Status is not "done".
	JobID string `json:"job_id,omitempty"`
	Poll  string `json:"poll,omitempty"`
	// Passed summarizes the report verdict when Status is "done".
	Passed *bool `json:"passed,omitempty"`
	// Error carries the cancellation or failure message.
	Error string `json:"error,omitempty"`
	// Report is the verify.ReportJSON document when Status is "done".
	Report json.RawMessage `json:"report,omitempty"`
	// Warnings are the DSL semantic linter's findings for source
	// submissions (dsl.Analyze): advisory only — they never block
	// verification, never affect the verdict or the cache key, and are
	// emitted in deterministic order on both submit and poll responses.
	Warnings []dsl.Diagnostic `json:"warnings,omitempty"`
}

// Handler returns the daemon's HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("DELETE /v1/cache", s.handleCacheFlush)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "verifier_version": verify.Version})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	rep, job, warnings, err := s.submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter/time.Second)+1))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case rep != nil:
		writeJSON(w, http.StatusOK, doneResponse(rep, true, warnings))
	default:
		state, _, _ := job.Snapshot()
		writeJSON(w, http.StatusAccepted, SubmitResponse{
			Status:   string(state),
			JobID:    job.ID(),
			Poll:     "/v1/jobs/" + job.ID(),
			Warnings: warnings,
		})
	}
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	state, rep, errMsg := job.Snapshot()
	resp := SubmitResponse{Status: string(state), JobID: job.ID(), Error: errMsg, Warnings: job.sub.warnings}
	if state == JobDone {
		resp = doneResponse(rep, false, job.sub.warnings)
		resp.JobID = job.ID()
	} else if state != JobCancelled {
		resp.Poll = "/v1/jobs/" + job.ID()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	state, _, _ := job.Snapshot()
	writeJSON(w, http.StatusAccepted, SubmitResponse{Status: string(state), JobID: job.ID()})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleCacheFlush(w http.ResponseWriter, _ *http.Request) {
	removed, err := s.FlushCache()
	if err != nil {
		// The in-memory flush already happened; report the disk half.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"flushed": removed, "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"flushed": removed})
}

// doneResponse wraps a finished report in the envelope.
func doneResponse(rep *verify.Report, cached bool, warnings []dsl.Diagnostic) SubmitResponse {
	passed := rep.Passed()
	data, err := verify.ReportJSON(rep)
	if err != nil {
		// Unreachable: Report marshals from plain structs.
		data = []byte(fmt.Sprintf("%q", err.Error()))
	}
	return SubmitResponse{Status: "done", Cached: cached, Passed: &passed, Report: data, Warnings: warnings}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
