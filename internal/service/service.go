// Package service is the incremental verification service behind
// cmd/schedverifyd: a long-running daemon that keeps machine-checked
// scheduler verdicts hot and re-verifies only what a delta invalidates.
//
// Clients submit a policy (DSL source or registered policy.Spec name)
// plus a bounded universe and receive either a memoized verdict — a
// verify.Report byte-identical to what a cold run would print — or a
// queued job handle to poll. Results are memoized per (policy
// components, universe, obligation, verifier version) under content
// hashes (see key.go), so a one-clause DSL edit re-runs only the
// obligations whose checkers consult that clause, not all eight.
//
// The execution layer is the existing sharded worker-pool driver
// (verify.RunObligation): per-job context cancellation, deterministic
// shard merges, reports independent of parallelism level — which is
// exactly what makes memoized per-obligation Results safe to splice
// into fresh reports.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsl"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/service/faultinject"
	"repro/internal/service/store"
	"repro/internal/statespace"
	"repro/internal/verify"
)

// Config parameterizes a Service.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; a full queue
	// makes Submit fail with ErrQueueFull (HTTP 429 + Retry-After).
	// Zero means 64.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Zero means
	// 2 — each job already fans its obligation shards out over
	// Parallelism goroutines, so a few job slots saturate a machine.
	Workers int
	// Parallelism is the per-job verify worker-pool size (see
	// verify.Config.Parallelism). Zero means GOMAXPROCS. The level never
	// changes results, so it is not part of any cache key.
	Parallelism int
	// MaxRounds caps the sequential work-conservation search (see
	// verify.Config.MaxRounds). Zero means 1000. It can change that
	// obligation's verdict, so it is part of that obligation's cache key.
	MaxRounds int
	// RetryAfter is the backoff advertised to clients when the queue is
	// full. Zero means 1s.
	RetryAfter time.Duration
	// DataDir enables the durable memo store: memoized results are
	// WAL-appended under this directory and recovered at New, so a warm
	// restart replays byte-identical verdicts with zero obligation
	// re-runs (see internal/service/store). Empty keeps the memo
	// in-memory only.
	DataDir string
	// CompactEvery is the WAL record count between snapshot compactions
	// (only meaningful with DataDir). Zero means 256.
	CompactEvery int
}

// Option tunes a Service beyond Config — the knobs that carry live
// objects rather than plain settings.
type Option func(*Service)

// WithFaults arms the chaos-testing fault-injection rule set: injected
// disk failures, torn WAL writes, checker panics and worker stalls fire
// at the service's and store's fault points (see faultinject). The
// daemon surfaces this as the hidden -faults flag.
func WithFaults(f *faultinject.Set) Option {
	return func(s *Service) { s.faults = f }
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// the HTTP layer maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// ErrDraining is returned by Submit while the service drains toward
// shutdown; the HTTP layer maps it to 503, and /readyz reports it.
var ErrDraining = errors.New("service: draining")

// maxRetainedJobs bounds the finished-job history a long-running daemon
// keeps for polling; the oldest finished jobs are evicted beyond it.
const maxRetainedJobs = 1024

// Service is the incremental verifier. Create with New, serve over HTTP
// via Handler, stop with Close.
type Service struct {
	cfg    Config
	cache  *resultCache
	store  *store.Store // nil without Config.DataDir
	faults *faultinject.Set

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	seq       int64
	jobs      map[string]*Job
	byKey     map[string]*Job // jobKey -> live (queued/running) job, for coalescing
	doneOrder []string        // finished job ids, oldest first (retention ring)

	draining atomic.Bool
	pending  atomic.Int64 // queued + running jobs (what Drain waits out)

	jobsSubmitted   atomic.Int64
	jobsCoalesced   atomic.Int64
	jobsCompleted   atomic.Int64
	jobsCancelled   atomic.Int64
	servedFromCache atomic.Int64
	checkerPanics   atomic.Int64
	cacheFlushes    atomic.Int64

	obMu    sync.Mutex
	obStats map[verify.ObligationID]*obAgg
}

// obAgg accumulates per-obligation verification latency (cache misses
// only — hits never run the checker).
type obAgg struct {
	runs    int64
	totalNs int64
	maxNs   int64
}

// New starts a Service with cfg.Workers job executors. With
// Config.DataDir set it first recovers the durable memo store —
// corruption there never fails New (bad tails are truncated, see
// internal/service/store); only real I/O errors do.
func New(cfg Config, opts ...Option) (*Service, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		byKey:   make(map[string]*Job),
		obStats: make(map[verify.ObligationID]*obAgg),
	}
	for _, opt := range opts {
		opt(s)
	}
	var seed map[string]verify.Result
	if cfg.DataDir != "" {
		st, entries, err := store.Open(cfg.DataDir, store.Options{
			CompactEvery: cfg.CompactEvery,
			Faults:       s.faults,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		seed = entries
	}
	s.cache = newResultCache(seed)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s, nil
}

// MustNew is New for callers whose Config cannot fail (no DataDir) —
// the in-process embedding path.
func MustNew(cfg Config, opts ...Option) *Service {
	s, err := New(cfg, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Ready reports whether the service accepts new submissions (it stops
// during drain and after Close); /readyz serves this, distinct from
// /healthz liveness.
func (s *Service) Ready() bool {
	if s.draining.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Drain flips the service to not-ready (new submissions fail with
// ErrDraining, /readyz goes 503) and waits for every queued and running
// job to reach a terminal state, or for ctx to expire — the graceful
// half of shutdown. Poll handlers keep working throughout, so clients
// can still collect finished reports. Call Close afterwards to cancel
// whatever outlived the deadline.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close cancels every running job, rejects further submissions, waits
// for the workers to drain and closes the durable store.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.draining.Store(true)
	s.cancel()
	close(s.queue)
	s.wg.Wait()
	if s.store != nil {
		s.store.Close()
	}
}

// submission is a resolved, validated request: a concrete factory plus
// the content-hash keys of every requested obligation.
type submission struct {
	display     string // report header name
	factory     verify.Factory
	universe    statespace.Universe
	obligations []verify.ObligationID
	keys        []string // parallel to obligations
	jobKey      string
	timeout     time.Duration // client-propagated deadline; 0 = none
	// warnings are the DSL linter's findings for source submissions:
	// advisory only, echoed in submit and poll responses, never part of
	// the content identity (they restate the policy, not the verdict).
	warnings []dsl.Diagnostic
}

// resolve validates a request and computes its content identity.
func (s *Service) resolve(req Request) (*submission, error) {
	sub := &submission{}
	switch {
	case req.Policy != "" && req.Source != "":
		return nil, fmt.Errorf("service: request carries both a policy name and DSL source")
	case req.Policy != "":
		spec, ok := policy.Lookup(req.Policy)
		if !ok {
			return nil, fmt.Errorf("service: unknown policy %q (known: %v)", req.Policy, policy.Names())
		}
		forms, err := spec.ComponentForms()
		if err != nil {
			return nil, err
		}
		sub.display = spec.Name
		sub.factory = func() sched.Policy { return spec.New(nil) }
		sub.keys, sub.obligations, err = s.keysFor(req, forms)
		if err != nil {
			return nil, err
		}
	case req.Source != "":
		ast, err := dsl.Parse(req.Source)
		if err != nil {
			return nil, err
		}
		sub.display = ast.Name
		sub.factory = func() sched.Policy { return dsl.Compile(ast) }
		sub.keys, sub.obligations, err = s.keysFor(req, dsl.ComponentForms(ast))
		if err != nil {
			return nil, err
		}
		sub.warnings = dsl.Analyze(ast, dsl.AnalyzeOptions{MaxFaults: req.universe().MaxFaults})
	default:
		return nil, fmt.Errorf("service: request needs a policy name or DSL source")
	}
	sub.universe = req.universe()
	sub.jobKey = jobKeyOf(sub.display, sub.keys)
	if req.TimeoutMs < 0 {
		return nil, fmt.Errorf("service: negative timeout_ms %d", req.TimeoutMs)
	}
	sub.timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	return sub, nil
}

// keysFor resolves the requested obligations and their content keys.
func (s *Service) keysFor(req Request, forms map[string]string) ([]string, []verify.ObligationID, error) {
	obligations := verify.AllObligations()
	if len(req.Obligations) > 0 {
		obligations = make([]verify.ObligationID, len(req.Obligations))
		seen := make(map[verify.ObligationID]bool, len(req.Obligations))
		for i, name := range req.Obligations {
			id := verify.ObligationID(name)
			if !verify.KnownObligation(id) {
				return nil, nil, fmt.Errorf("service: unknown obligation %q (known: %v)", name, verify.AllObligations())
			}
			if seen[id] {
				return nil, nil, fmt.Errorf("service: duplicate obligation %q", name)
			}
			seen[id] = true
			obligations[i] = id
		}
	}
	u := req.universe()
	if err := u.Validate(); err != nil {
		return nil, nil, err
	}
	keys := make([]string, len(obligations))
	for i, id := range obligations {
		keys[i] = obligationKey(forms, u, id, s.cfg.MaxRounds)
	}
	return keys, obligations, nil
}

// Submit resolves and either answers from the cache, coalesces onto an
// identical in-flight job, or enqueues a new job. Exactly one of the
// returns is non-nil on success: a report (every obligation memoized —
// byte-identical to a cold run) or a job to poll. A full queue returns
// ErrQueueFull.
func (s *Service) Submit(req Request) (*verify.Report, *Job, error) {
	rep, job, _, err := s.submit(req)
	return rep, job, err
}

// submit is Submit plus the resolved submission's advisory linter
// warnings — the HTTP layer threads them into response envelopes.
func (s *Service) submit(req Request) (*verify.Report, *Job, []dsl.Diagnostic, error) {
	sub, err := s.resolve(req)
	if err != nil {
		return nil, nil, nil, err
	}

	// Fast path: every obligation memoized. Peek first so the hit/miss
	// accounting counts each submission's keys exactly once.
	if s.cache.peekAll(sub.keys) {
		results := make([]verify.Result, len(sub.obligations))
		complete := true
		for i, key := range sub.keys {
			res, ok := s.cache.lookup(key)
			if !ok {
				// Unreachable: the cache never evicts. Fall through to a
				// job rather than fabricating a result.
				complete = false
				break
			}
			results[i] = res
		}
		if complete {
			s.servedFromCache.Add(1)
			return sub.report(results), nil, sub.warnings, nil
		}
	}
	rep, job, err := s.enqueue(sub)
	return rep, job, sub.warnings, err
}

// enqueue coalesces onto a live identical job or queues a new one.
func (s *Service) enqueue(sub *submission) (*verify.Report, *Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	if s.draining.Load() {
		return nil, nil, ErrDraining
	}
	if live, ok := s.byKey[sub.jobKey]; ok {
		s.jobsCoalesced.Add(1)
		return nil, live, nil
	}
	s.seq++
	// A client-propagated deadline bounds the job even after the submit
	// round-trip has returned 202. Coalesced later submissions inherit
	// the first submission's deadline (the job is shared; cache entries
	// are written either way).
	var ctx context.Context
	var cancel context.CancelFunc
	if sub.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.ctx, sub.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.ctx)
	}
	job := &Job{
		id:        fmt.Sprintf("j-%d", s.seq),
		sub:       sub,
		ctx:       ctx,
		cancelFn:  cancel,
		state:     JobQueued,
		submitted: time.Now(), //schedlint:allow determinism job lifecycle timestamps are operational metadata, not report content
	}
	select {
	case s.queue <- job:
	default:
		cancel()
		return nil, nil, ErrQueueFull
	}
	s.jobs[job.id] = job
	s.byKey[sub.jobKey] = job
	s.jobsSubmitted.Add(1)
	s.pending.Add(1)
	return nil, job, nil
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// RetryAfter is the backoff the HTTP layer advertises on ErrQueueFull.
func (s *Service) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// runJob executes one job on a worker: memoized obligations splice in
// from the cache, the rest run on the sharded driver and are stored —
// in memory and, with a durable store, WAL-appended before the job can
// report them.
func (s *Service) runJob(job *Job) {
	job.mu.Lock()
	if job.ctx.Err() != nil {
		job.mu.Unlock()
		s.finish(job, nil, "cancelled before start: "+job.ctx.Err().Error())
		return
	}
	job.state = JobRunning
	job.started = time.Now() //schedlint:allow determinism job lifecycle timestamps are operational metadata, not report content
	job.mu.Unlock()

	s.faults.Check(faultinject.OpWorker, "") // chaos: injected worker stall

	sub := job.sub
	cfg := verify.Config{
		Universe:    sub.universe,
		MaxRounds:   s.cfg.MaxRounds,
		Parallelism: s.cfg.Parallelism,
	}
	results := make([]verify.Result, len(sub.obligations))
	for i, id := range sub.obligations {
		if res, ok := s.cache.lookup(sub.keys[i]); ok {
			results[i] = res
			continue
		}
		start := time.Now() //schedlint:allow determinism latency measurement feeds Stats, not the verification report
		res := s.runChecker(job.ctx, id, sub.factory, cfg)
		if res.Aborted {
			if job.ctx.Err() != nil {
				s.finish(job, nil, "cancelled: "+res.Witness)
				return
			}
			// Aborted without cancellation means the checker panicked: the
			// worker survived it, the result says so, and it is never
			// cached — the next submission re-runs the checker.
			results[i] = res
			continue
		}
		s.recordLatency(id, time.Since(start)) //schedlint:allow determinism latency measurement feeds Stats, not the verification report
		s.cache.store(sub.keys[i], res)
		s.persist(sub.keys[i], res)
		results[i] = res
	}
	s.finish(job, sub.report(results), "")
}

// runChecker runs one obligation with panic containment: a crashing
// checker becomes an ABORTED (never-cached) result instead of killing
// the daemon. The sharded driver contains panics on its own worker
// goroutines the same way (see verify.RunObligation); this recover
// catches the fault-injection hook and any panic on the job goroutine
// itself.
func (s *Service) runChecker(ctx context.Context, id verify.ObligationID, f verify.Factory, cfg verify.Config) (res verify.Result) {
	defer func() {
		if p := recover(); p != nil {
			s.checkerPanics.Add(1)
			res = verify.Result{
				ID:      id,
				Aborted: true,
				Witness: fmt.Sprintf("aborted: checker panic: %v", p),
			}
		}
	}()
	s.faults.Check(faultinject.OpChecker, string(id)) // chaos: injected checker panic
	res = verify.RunObligation(ctx, id, f, cfg)
	if res.Aborted && ctx.Err() == nil {
		s.checkerPanics.Add(1) // shard-level panic contained by the driver
	}
	return res
}

// persist write-through appends a freshly computed result to the
// durable store. Disk failure degrades, never blocks: the in-memory
// cache still serves the entry, and the store's append-error counters
// surface the loss via /v1/stats.
func (s *Service) persist(key string, res verify.Result) {
	if s.store == nil || res.Aborted {
		return
	}
	s.store.Append(key, res) // errors are counted in store stats
}

// FlushCache is the admin flush behind DELETE /v1/cache: it drops every
// memoized result from memory and, with a durable store, from disk.
// In-flight jobs are unaffected (their results re-populate the memo).
func (s *Service) FlushCache() (int, error) {
	removed := s.cache.flush()
	s.cacheFlushes.Add(1)
	if s.store != nil {
		return removed, s.store.Flush()
	}
	return removed, nil
}

// finish moves a job to its terminal state and updates the indexes.
func (s *Service) finish(job *Job, rep *verify.Report, errMsg string) {
	job.mu.Lock()
	job.finished = time.Now() //schedlint:allow determinism job lifecycle timestamps are operational metadata, not report content
	if rep != nil {
		job.state = JobDone
		job.report = rep
	} else {
		job.state = JobCancelled
		job.errMsg = errMsg
	}
	job.mu.Unlock()
	if rep != nil {
		s.jobsCompleted.Add(1)
	} else {
		s.jobsCancelled.Add(1)
	}

	s.mu.Lock()
	if s.byKey[job.sub.jobKey] == job {
		delete(s.byKey, job.sub.jobKey)
	}
	s.doneOrder = append(s.doneOrder, job.id)
	for len(s.doneOrder) > maxRetainedJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
	s.pending.Add(-1)
}

func (s *Service) recordLatency(id verify.ObligationID, d time.Duration) {
	s.obMu.Lock()
	defer s.obMu.Unlock()
	agg := s.obStats[id]
	if agg == nil {
		agg = &obAgg{}
		s.obStats[id] = agg
	}
	agg.runs++
	agg.totalNs += int64(d)
	if int64(d) > agg.maxNs {
		agg.maxNs = int64(d)
	}
}

// report assembles the submission's verify.Report from per-obligation
// results, in the submission's obligation order. Because every Result
// came from the same deterministic sharded driver, the assembled report
// is byte-identical (under verify.ReportJSON) to a cold PolicyContext
// run of the same submission.
func (sub *submission) report(results []verify.Result) *verify.Report {
	return &verify.Report{
		Policy:   sub.display,
		Universe: sub.universe.String(),
		Results:  results,
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		VerifierVersion: verify.Version,
		CacheHits:       s.cache.hits.Load(),
		CacheMisses:     s.cache.misses.Load(),
		CacheEntries:    s.cache.len(),
		QueueDepth:      len(s.queue),
		QueueCapacity:   s.cfg.QueueDepth,
		JobsSubmitted:   s.jobsSubmitted.Load(),
		JobsCoalesced:   s.jobsCoalesced.Load(),
		JobsCompleted:   s.jobsCompleted.Load(),
		JobsCancelled:   s.jobsCancelled.Load(),
		ServedFromCache: s.servedFromCache.Load(),
		CheckerPanics:   s.checkerPanics.Load(),
		CacheFlushes:    s.cacheFlushes.Load(),
		Draining:        s.draining.Load(),
		Obligations:     make(map[string]ObligationStats),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	s.obMu.Lock()
	defer s.obMu.Unlock()
	for id, agg := range s.obStats {
		o := ObligationStats{Runs: agg.runs, TotalNs: agg.totalNs, MaxNs: agg.maxNs}
		if agg.runs > 0 {
			o.MeanNs = agg.totalNs / agg.runs
		}
		st.Obligations[string(id)] = o
	}
	return st
}
