package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/service/faultinject"
	"repro/internal/verify"
)

// sampleResults exercises every exported Result field the wire format
// must preserve, including witness text with framing-hostile bytes.
func sampleResults() []struct {
	key string
	res verify.Result
} {
	return []struct {
		key string
		res verify.Result
	}{
		{"k-pass", verify.Result{ID: verify.ObLemma1, Passed: true, StatesChecked: 1234}},
		{"k-refuted", verify.Result{
			ID: verify.ObWorkConservConc, Passed: false,
			Witness:       "state [2 0 0] schedule (1<-0, 2<-0) \"quoted\" \x00-free ✓",
			StatesChecked: 99, SchedulesChecked: 777,
		}},
		{"k-bound", verify.Result{ID: verify.ObWorkConservSeq, Passed: true, StatesChecked: 5, Bound: 7}},
		{"k-sched", verify.Result{ID: verify.ObReactivity, Passed: true, StatesChecked: 42, SchedulesChecked: 13}},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, map[string]verify.Result) {
	t.Helper()
	s, entries, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, entries
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, entries := mustOpen(t, dir, Options{})
	if len(entries) != 0 {
		t.Fatalf("fresh store recovered %d entries", len(entries))
	}
	want := map[string]verify.Result{}
	for _, rec := range sampleResults() {
		if err := s.Append(rec.key, rec.res); err != nil {
			t.Fatalf("Append(%s): %v", rec.key, err)
		}
		want[rec.key] = rec.res
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, got := mustOpen(t, dir, Options{})
	defer s2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered entries differ:\n got %+v\nwant %+v", got, want)
	}
	st := s2.Stats()
	if st.RecoveredRecords != len(want) || st.WALRecords != len(want) {
		t.Errorf("stats after reopen: %+v, want %d recovered WAL records", st, len(want))
	}
	if st.TruncatedRecords != 0 || st.TruncatedBytes != 0 {
		t.Errorf("clean reopen counted truncations: %+v", st)
	}
}

// The crash-recovery property at the heart of the PR: for EVERY prefix
// truncation of a valid WAL — every possible torn final write or
// kill -9 mid-append — the store reopens cleanly and serves exactly the
// fully-committed records, byte-identical, never a partial one.
func TestCrashRecoveryPrefixProperty(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	// offsets[i] is the committed WAL length after i records.
	offsets := []int64{s.Stats().WALBytes}
	var keys []string
	var results []verify.Result
	for _, rec := range sampleResults() {
		if err := s.Append(rec.key, rec.res); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, s.Stats().WALBytes)
		keys = append(keys, rec.key)
		results = append(results, rec.res)
	}
	s.Close()
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != offsets[len(offsets)-1] {
		t.Fatalf("WAL is %d bytes, committed offset says %d", len(wal), offsets[len(offsets)-1])
	}

	for cut := 0; cut <= len(wal); cut++ {
		// How many records are fully committed within the first `cut` bytes?
		committed := 0
		for committed+1 < len(offsets) && offsets[committed+1] <= int64(cut) {
			committed++
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, got, err := Open(crashDir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		if len(got) != committed {
			t.Fatalf("cut=%d: recovered %d entries, want %d", cut, len(got), committed)
		}
		for i := 0; i < committed; i++ {
			if res, ok := got[keys[i]]; !ok || !reflect.DeepEqual(res, results[i]) {
				t.Fatalf("cut=%d: entry %s differs: %+v vs %+v", cut, keys[i], res, results[i])
			}
		}
		// The recovered store must accept new appends and survive a
		// second reopen with the same committed view plus the new record.
		extra := verify.Result{ID: verify.ObStealSoundness, Passed: true, StatesChecked: cut}
		if err := s2.Append("k-extra", extra); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s2.Close()
		s3, again, err := Open(crashDir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if len(again) != committed+1 || !reflect.DeepEqual(again["k-extra"], extra) {
			t.Fatalf("cut=%d: after recovery+append, reopen sees %d entries", cut, len(again))
		}
		s3.Close()
	}
}

func TestCompactionSnapshotsAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactEvery: 3})
	for _, rec := range sampleResults()[:3] {
		if err := s.Append(rec.key, rec.res); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WALRecords != 0 || st.SnapshotEntries != 3 || st.LastCompaction == "" {
		t.Fatalf("after threshold: %+v, want compacted snapshot of 3 and empty WAL", st)
	}
	// One more append lands in the fresh WAL tail.
	last := sampleResults()[3]
	if err := s.Append(last.key, last.res); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, got := mustOpen(t, dir, Options{CompactEvery: 3})
	defer s2.Close()
	if len(got) != 4 {
		t.Fatalf("recovered %d entries from snapshot+WAL, want 4", len(got))
	}
	st2 := s2.Stats()
	if st2.SnapshotEntries != 3 || st2.WALRecords != 1 || st2.RecoveredRecords != 4 {
		t.Errorf("reopen stats %+v, want 3 snapshot + 1 WAL", st2)
	}
}

func TestVerifierVersionMismatchDiscardsWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append("k", verify.Result{ID: verify.ObLemma1, Passed: true}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Flip a byte inside the header's version string: the WAL now claims
	// a different verifier, whose keys can never match current ones.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, got := mustOpen(t, dir, Options{})
	defer s2.Close()
	if len(got) != 0 {
		t.Fatalf("version-mismatched WAL replayed %d entries", len(got))
	}
	st := s2.Stats()
	if st.TruncatedRecords != 1 || st.TruncatedBytes != int64(len(data)) {
		t.Errorf("discard not accounted: %+v", st)
	}
	// The WAL must have been reinitialized with the current version.
	if err := s2.Append("k", verify.Result{ID: verify.ObLemma1, Passed: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactEvery: 2})
	for _, rec := range sampleResults()[:2] {
		s.Append(rec.key, rec.res)
	}
	s.Append(sampleResults()[2].key, sampleResults()[2].res) // WAL tail
	s.Close()
	snap := filepath.Join(dir, snapshotName)
	if err := os.WriteFile(snap, []byte(`{"magic":"svsnap","entr`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, got := mustOpen(t, dir, Options{})
	defer s2.Close()
	// The snapshot's 2 entries are gone (corrupt), the WAL-tail entry
	// survives; recovery is clean either way.
	if len(got) != 1 {
		t.Fatalf("recovered %d entries, want 1 (WAL tail only)", len(got))
	}
	if s2.Stats().TruncatedRecords == 0 {
		t.Error("snapshot corruption not accounted as truncation")
	}
}

func TestFlushDropsDiskState(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactEvery: 2})
	for _, rec := range sampleResults() {
		s.Append(rec.key, rec.res)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 || st.WALRecords != 0 || st.Flushes != 1 {
		t.Errorf("post-flush stats %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); !os.IsNotExist(err) {
		t.Error("snapshot survived the flush")
	}
	s.Close()
	s2, got := mustOpen(t, dir, Options{})
	defer s2.Close()
	if len(got) != 0 {
		t.Fatalf("flushed store recovered %d entries", len(got))
	}
}

func TestTornAppendHealsWAL(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.New(faultinject.Rule{
		Op: faultinject.OpWALAppend, Kind: faultinject.KindTorn, Bytes: 5, On: 2,
	})
	s, _ := mustOpen(t, dir, Options{Faults: faults})
	recs := sampleResults()
	if err := s.Append(recs[0].key, recs[0].res); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(recs[1].key, recs[1].res); err == nil {
		t.Fatal("torn append reported success")
	}
	if err := s.Append(recs[2].key, recs[2].res); err != nil {
		t.Fatalf("append after healed tear: %v", err)
	}
	st := s.Stats()
	if st.AppendErrors != 1 || st.TruncatedRecords != 1 {
		t.Errorf("tear not accounted: %+v", st)
	}
	s.Close()

	s2, got := mustOpen(t, dir, Options{})
	defer s2.Close()
	if len(got) != 2 {
		t.Fatalf("recovered %d entries, want 2 (torn record lost, neighbors intact)", len(got))
	}
	if !reflect.DeepEqual(got[recs[0].key], recs[0].res) || !reflect.DeepEqual(got[recs[2].key], recs[2].res) {
		t.Error("surviving entries corrupted by the healed tear")
	}
	if s2.Stats().TruncatedRecords != 0 {
		t.Error("healed WAL still has a corrupt tail")
	}
}

func TestUnhealableWALDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	faults := faultinject.New(
		faultinject.Rule{Op: faultinject.OpWALAppend, Kind: faultinject.KindFail, On: 1},
		faultinject.Rule{Op: faultinject.OpWALTruncate, Kind: faultinject.KindFail, On: 1},
	)
	s, _ := mustOpen(t, dir, Options{Faults: faults})
	defer s.Close()
	if err := s.Append("a", verify.Result{ID: verify.ObLemma1}); err == nil {
		t.Fatal("injected append failure reported success")
	}
	if err := s.Append("b", verify.Result{ID: verify.ObLemma1}); !errors.Is(err, ErrDisabled) {
		t.Fatalf("store not disabled after unhealable WAL: %v", err)
	}
	if st := s.Stats(); !st.Disabled || st.AppendErrors != 2 {
		t.Errorf("degraded mode not reported: %+v", st)
	}
}

func TestFrameCRCGuardsPayload(t *testing.T) {
	frame, err := encodeFrame("k", verify.Result{ID: verify.ObLemma1, Passed: true, StatesChecked: 9})
	if err != nil {
		t.Fatal(err)
	}
	data := append(header(), frame...)
	if _, _, _, ok := decodeFrame(data, int64(len(header()))); !ok {
		t.Fatal("pristine frame rejected")
	}
	for i := 8; i < len(frame); i++ { // corrupt each payload byte in turn
		mut := append(header(), bytes.Clone(frame)...)
		mut[len(header())+i] ^= 0x01
		if _, _, _, ok := decodeFrame(mut, int64(len(header()))); ok {
			t.Fatalf("payload corruption at byte %d went undetected", i)
		}
	}
}
