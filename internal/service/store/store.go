// Package store is the schedverifyd daemon's durable memo: a
// disk-backed copy of the content-addressed (cache-key -> verify.Result)
// map that survives crashes and restarts, so a warm daemon replays
// byte-identical verdicts with zero obligation re-runs.
//
// Layout under the data directory:
//
//	wal.log        append-only log of committed results. A fixed header
//	               (magic + verifier version) followed by CRC-framed
//	               records; every append is fsynced before it counts.
//	snapshot.json  periodic compaction of the full entry map, written to
//	               a temp file and atomically renamed into place.
//
// Crash safety is truncation-based: a record is committed iff its full
// frame (length, CRC, payload) is on disk. Recovery loads the snapshot,
// replays WAL frames until the first bad one (short frame, CRC
// mismatch, undecodable payload) and truncates the file there — a torn
// final write costs exactly the uncommitted record, never the store.
// A WAL or snapshot written by a different verifier version is
// discarded wholesale: its content-hash keys can never match current
// submissions, so replaying it would only leak dead entries.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/service/faultinject"
	"repro/internal/verify"
)

// magic opens every WAL file; bump the trailing digits on incompatible
// frame-format changes.
const magic = "SVWAL001"

// maxRecordLen rejects absurd frame lengths during recovery, so a few
// corrupted length bytes cannot make replay attempt a gigabyte read.
const maxRecordLen = 16 << 20

const (
	walName      = "wal.log"
	snapshotName = "snapshot.json"
)

// defaultCompactEvery is the WAL record count that triggers a
// compaction when Options.CompactEvery is zero.
const defaultCompactEvery = 256

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrDisabled is returned by Append after an unrecoverable WAL error
// put the store into memory-only degraded mode.
var ErrDisabled = errors.New("store: WAL disabled after unrecoverable write error")

// Options parameterizes Open.
type Options struct {
	// CompactEvery is the number of WAL appends between snapshot
	// compactions. Zero means 256.
	CompactEvery int
	// Faults optionally injects disk failures at the store's write
	// points (chaos testing). Nil injects nothing.
	Faults *faultinject.Set
}

// Stats is a snapshot of the store's durability counters.
type Stats struct {
	// Entries is the number of live memoized results.
	Entries int `json:"entries"`
	// WALRecords / WALBytes describe the live WAL tail (records since
	// the last compaction; bytes include the header).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// SnapshotEntries is the entry count of the last written or loaded
	// snapshot.
	SnapshotEntries int `json:"snapshot_entries"`
	// LastCompaction is the wall-clock time of the last successful
	// compaction in this process, RFC3339; empty before the first.
	LastCompaction string `json:"last_compaction,omitempty"`
	// RecoveredRecords counts entries restored at Open (snapshot entries
	// plus replayed WAL records).
	RecoveredRecords int `json:"recovered_records"`
	// TruncatedRecords counts discarded records: corrupt tails dropped
	// at Open (one per corruption event — the garbage region's own
	// record count is unknowable) plus failed appends healed by
	// truncating the WAL back to its pre-append offset.
	TruncatedRecords int `json:"truncated_records"`
	// TruncatedBytes is the total byte count removed by those
	// truncations.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// AppendErrors counts Append calls that failed to reach disk (the
	// in-memory cache still served them).
	AppendErrors int64 `json:"append_errors"`
	// CompactErrors counts failed compactions (the WAL keeps growing;
	// durability is unaffected).
	CompactErrors int64 `json:"compact_errors,omitempty"`
	// Flushes counts administrative cache flushes.
	Flushes int64 `json:"flushes,omitempty"`
	// Disabled reports that the WAL hit an unrecoverable error and the
	// store degraded to memory-only mode.
	Disabled bool `json:"disabled,omitempty"`
}

// record is the WAL/snapshot wire form of one memo entry.
type record struct {
	Key    string        `json:"key"`
	Result verify.Result `json:"result"`
}

// snapshotFile is the compacted on-disk form of the whole map.
type snapshotFile struct {
	Magic           string   `json:"magic"`
	VerifierVersion string   `json:"verifier_version"`
	Entries         []record `json:"entries"`
}

// Store is the durable memo. All methods are safe for concurrent use.
type Store struct {
	dir          string
	compactEvery int
	faults       *faultinject.Set

	mu       sync.Mutex
	wal      *os.File
	walOff   int64 // committed end of the WAL (frames below are intact)
	entries  map[string]verify.Result
	disabled bool
	stats    Stats
	lastComp time.Time
}

// Open recovers the store in dir (created if missing) and returns it
// together with a copy of the recovered entries. Corruption never makes
// Open fail — bad tails are truncated, incompatible files discarded —
// only real I/O errors (unwritable directory, unreadable files) do.
func Open(dir string, opts Options) (*Store, map[string]verify.Result, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = defaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          dir,
		compactEvery: opts.CompactEvery,
		faults:       opts.Faults,
		entries:      make(map[string]verify.Result),
	}
	s.loadSnapshot()
	if err := s.openWAL(); err != nil {
		return nil, nil, err
	}
	s.stats.RecoveredRecords = s.stats.SnapshotEntries + s.stats.WALRecords
	out := make(map[string]verify.Result, len(s.entries))
	for k, v := range s.entries {
		out[k] = v
	}
	return s, out, nil
}

// loadSnapshot merges the snapshot file into the entry map, ignoring a
// missing, undecodable or version-mismatched snapshot (counted as a
// truncation event — the entries it held are gone).
func (s *Store) loadSnapshot() {
	path := filepath.Join(s.dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		return // no snapshot yet (or unreadable: the WAL is still authoritative)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil ||
		snap.Magic != magic || snap.VerifierVersion != verify.Version {
		s.stats.TruncatedRecords++
		s.stats.TruncatedBytes += int64(len(data))
		return
	}
	for _, rec := range snap.Entries {
		s.entries[rec.Key] = rec.Result
	}
	s.stats.SnapshotEntries = len(snap.Entries)
}

// header renders the WAL file header: magic, then the verifier version
// as a u32-length-prefixed string.
func header() []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(verify.Version)))
	b.Write(lenBuf[:])
	b.WriteString(verify.Version)
	return b.Bytes()
}

// openWAL opens (or creates) the WAL, replays its committed frames into
// the entry map, and truncates at the first bad one.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	hdr := header()
	if !bytes.HasPrefix(data, hdr) {
		// Empty file: initialize. Anything else (corrupt header or a
		// different verifier version) is undecodable or unreachable by
		// current keys — discard it wholesale.
		if len(data) > 0 {
			s.stats.TruncatedRecords++
			s.stats.TruncatedBytes += int64(len(data))
		}
		if err := s.resetWAL(); err != nil {
			f.Close()
			return err
		}
		return nil
	}
	off := int64(len(hdr))
	for {
		key, res, next, ok := decodeFrame(data, off)
		if !ok {
			break
		}
		s.entries[key] = res
		s.stats.WALRecords++
		off = next
	}
	if off < int64(len(data)) {
		// Torn or corrupt tail: keep the committed prefix only.
		s.stats.TruncatedRecords++
		s.stats.TruncatedBytes += int64(len(data)) - off
		if err := f.Truncate(off); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating corrupt WAL tail: %w", err)
		}
	}
	s.walOff = off
	s.stats.WALBytes = off
	return nil
}

// resetWAL rewrites the WAL as just a header.
func (s *Store) resetWAL() error {
	hdr := header()
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walOff = int64(len(hdr))
	s.stats.WALBytes = s.walOff
	s.stats.WALRecords = 0
	return nil
}

// decodeFrame decodes one frame at off; ok is false at a clean EOF or
// the first sign of corruption (the caller truncates there either way).
func decodeFrame(data []byte, off int64) (key string, res verify.Result, next int64, ok bool) {
	if off+8 > int64(len(data)) {
		return "", verify.Result{}, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxRecordLen || off+8+n > int64(len(data)) {
		return "", verify.Result{}, 0, false
	}
	payload := data[off+8 : off+8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return "", verify.Result{}, 0, false
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
		return "", verify.Result{}, 0, false
	}
	return rec.Key, rec.Result, off + 8 + n, true
}

// encodeFrame renders one committed record's frame.
func encodeFrame(key string, res verify.Result) ([]byte, error) {
	payload, err := json.Marshal(record{Key: key, Result: res})
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// Append commits one memo entry: frame written, fsynced, then counted.
// A failed or torn write is healed by truncating the WAL back to its
// pre-append offset — the entry is lost from disk (the caller's
// in-memory cache still serves it) but the WAL stays recoverable. If
// even the healing truncate fails, the store degrades to memory-only
// mode (ErrDisabled from then on).
func (s *Store) Append(key string, res verify.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		s.stats.AppendErrors++
		return ErrDisabled
	}
	frame, err := encodeFrame(key, res)
	if err != nil {
		s.stats.AppendErrors++
		return fmt.Errorf("store: encoding record: %w", err)
	}
	if err := s.writeFrame(frame); err != nil {
		s.stats.AppendErrors++
		s.heal()
		return fmt.Errorf("store: appending record: %w", err)
	}
	s.walOff += int64(len(frame))
	s.stats.WALBytes = s.walOff
	s.stats.WALRecords++
	s.entries[key] = res
	if s.stats.WALRecords >= s.compactEvery {
		if err := s.compactLocked(); err != nil {
			s.stats.CompactErrors++
		}
	}
	return nil
}

// writeFrame writes and fsyncs one frame at the committed offset,
// honoring injected disk faults (outright failures and torn writes).
func (s *Store) writeFrame(frame []byte) error {
	d := s.faults.Check(faultinject.OpWALAppend, "")
	if d.Err != nil {
		if d.TornBytes > 0 {
			n := d.TornBytes
			if n > len(frame) {
				n = len(frame)
			}
			s.wal.WriteAt(frame[:n], s.walOff)
			s.wal.Sync()
		}
		return d.Err
	}
	if _, err := s.wal.WriteAt(frame, s.walOff); err != nil {
		return err
	}
	return s.wal.Sync()
}

// heal truncates the WAL back to the last committed offset after a
// failed append; an unhealable WAL disables the write path.
func (s *Store) heal() {
	s.stats.TruncatedRecords++
	if d := s.faults.Check(faultinject.OpWALTruncate, ""); d.Err != nil {
		s.disabled = true
		s.stats.Disabled = true
		return
	}
	if err := s.wal.Truncate(s.walOff); err != nil {
		s.disabled = true
		s.stats.Disabled = true
		return
	}
	s.wal.Sync()
}

// Compact snapshots the full entry map and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	snap := snapshotFile{
		Magic:           magic,
		VerifierVersion: verify.Version,
		Entries:         make([]record, 0, len(s.entries)),
	}
	//schedlint:allow determinism the collected entries are sorted by key on the next line, so iteration order never reaches the snapshot bytes
	for k, v := range s.entries {
		snap.Entries = append(snap.Entries, record{Key: k, Result: v})
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Key < snap.Entries[j].Key })
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	final := filepath.Join(s.dir, snapshotName)
	if d := s.faults.Check(faultinject.OpSnapshotWrite, ""); d.Err != nil {
		return fmt.Errorf("store: writing snapshot: %w", d.Err)
	}
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if d := s.faults.Check(faultinject.OpSnapshotRename, ""); d.Err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming snapshot: %w", d.Err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming snapshot: %w", err)
	}
	syncDir(s.dir)
	// The snapshot now holds everything; a crash between the rename and
	// this truncate only replays WAL records that overwrite identical
	// snapshot entries.
	if !s.disabled {
		if err := s.resetWAL(); err != nil {
			s.stats.CompactErrors++
		}
	}
	s.stats.SnapshotEntries = len(snap.Entries)
	s.lastComp = time.Now() //schedlint:allow determinism compaction timestamp is operational telemetry, never part of a cached verdict
	s.stats.LastCompaction = s.lastComp.UTC().Format(time.RFC3339)
	return nil
}

// Flush drops every entry, on disk and in the store's own map: the WAL
// resets to a bare header and the snapshot is removed. The admin cache
// flush (DELETE /v1/cache) lands here.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]verify.Result)
	s.stats.Flushes++
	s.stats.SnapshotEntries = 0
	if err := os.Remove(filepath.Join(s.dir, snapshotName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: removing snapshot: %w", err)
	}
	if s.disabled {
		return nil
	}
	return s.resetWAL()
}

// Close syncs and closes the WAL. The store stays fully recoverable
// whether or not Close ever runs — that is the point.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	s.wal.Sync()
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Stats returns a snapshot of the durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// writeFileSync writes data and fsyncs before closing, so a rename
// never publishes a file whose bytes are still in flight.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives a power
// cut; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
