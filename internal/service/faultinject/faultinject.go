// Package faultinject is the chaos-testing harness behind schedverifyd's
// hidden -faults flag and the service's WithFaults option: a rule set
// that injects failures at named fault points — disk write errors and
// torn (partial) WAL writes in the durable store, checker panics and
// artificial stalls in the verification workers, and fail-stop core
// kills in the work-stealing executor (internal/engine).
//
// Production code consults a *Set at each fault point via Check; a nil
// Set is inert and costs one nil comparison, so the hooks stay in the
// production build permanently. Rules fire deterministically on the
// n-th matching occurrence (or on every occurrence), which is what lets
// the chaos tests script exact kill-mid-write/restart sequences.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op names a fault point.
type Op string

const (
	// OpWALAppend fires around each WAL record write (store.Append).
	OpWALAppend Op = "wal-append"
	// OpWALTruncate fires around the WAL heal-truncate after a failed
	// append; failing it drives the store into memory-only degraded mode.
	OpWALTruncate Op = "wal-truncate"
	// OpSnapshotWrite / OpSnapshotRename fire around the two compaction
	// steps.
	OpSnapshotWrite  Op = "snapshot-write"
	OpSnapshotRename Op = "snapshot-rename"
	// OpChecker fires before each obligation checker run; its arg is the
	// obligation ID, so a rule can target one checker.
	OpChecker Op = "checker"
	// OpWorker fires when a job worker picks up a job.
	OpWorker Op = "worker"
	// OpCoreKill fires in each executor worker's run loop (see
	// internal/engine); its arg is the worker ID. A fail directive
	// fail-stops that worker, so probabilistic rules drive chaos-style
	// core kills.
	OpCoreKill Op = "core-kill"
)

// Kind is what happens when a rule fires.
type Kind string

const (
	// KindFail makes the operation return ErrInjected without side
	// effects.
	KindFail Kind = "fail"
	// KindTorn makes a write persist only the first Rule.Bytes bytes and
	// then fail — a torn write, the disk half of kill -9 mid-append.
	KindTorn Kind = "torn"
	// KindPanic panics at the fault point (exercises the workers' panic
	// recovery).
	KindPanic Kind = "panic"
	// KindStall sleeps Rule.Delay at the fault point.
	KindStall Kind = "stall"
)

// ErrInjected is the error every failing fault surfaces.
var ErrInjected = errors.New("faultinject: injected failure")

// Rule arms one fault.
type Rule struct {
	Op   Op
	Kind Kind
	// Match filters by the fault point's argument (e.g. an obligation
	// ID for OpChecker); empty matches every argument.
	Match string
	// Bytes is the torn-write prefix length (KindTorn).
	Bytes int
	// Delay is the stall duration (KindStall).
	Delay time.Duration
	// On makes the rule fire only on the On-th matching occurrence
	// (1-based). Zero fires on every occurrence.
	On int
	// Prob, when in (0, 1], makes the rule probabilistic: every matching
	// occurrence fires independently with this probability, drawn from a
	// per-rule deterministic xorshift stream — the same seed always
	// yields the same fire pattern, so probabilistic chaos runs stay
	// reproducible. A probabilistic rule ignores On.
	Prob float64
	// Seed seeds the probabilistic stream; zero selects a fixed default.
	Seed int64
}

// Directive tells a fault point what to do: Err non-nil means fail the
// operation, after persisting TornBytes bytes (zero for a clean
// failure). The zero Directive means proceed normally.
type Directive struct {
	Err       error
	TornBytes int
}

// Set is an armed collection of rules. Safe for concurrent use; nil is
// valid and inert.
type Set struct {
	mu    sync.Mutex
	rules []*ruleState
	fired map[string]int64
}

type ruleState struct {
	Rule
	seen int
	rng  uint64 // probabilistic-mode xorshift state, lazily seeded
}

// roll advances the rule's deterministic stream and reports whether
// this occurrence fires. The caller holds Set.mu.
func (r *ruleState) roll() bool {
	if r.rng == 0 {
		r.rng = uint64(r.Seed)
		if r.rng == 0 {
			r.rng = 0x9E3779B97F4A7C15 // golden-ratio default seed
		}
	}
	x := r.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.rng = x
	// Top 53 bits as a uniform fraction in [0, 1).
	return float64(x>>11)/(1<<53) < r.Prob
}

// New arms a rule set.
func New(rules ...Rule) *Set {
	s := &Set{fired: make(map[string]int64)}
	for _, r := range rules {
		s.rules = append(s.rules, &ruleState{Rule: r})
	}
	return s
}

// Check consults the set at a fault point. KindPanic rules panic here
// and KindStall rules sleep here; KindFail and KindTorn come back as a
// Directive for the caller to apply (only the caller knows how to tear
// its own write). At most one rule fires per call (first armed match
// wins).
func (s *Set) Check(op Op, arg string) Directive {
	if s == nil {
		return Directive{}
	}
	s.mu.Lock()
	var hit *ruleState
	for _, r := range s.rules {
		if r.Op != op || (r.Match != "" && r.Match != arg) {
			continue
		}
		if r.Prob > 0 {
			if r.roll() {
				hit = r
				break
			}
			continue
		}
		r.seen++
		if r.On == 0 || r.seen == r.On {
			hit = r
			break
		}
	}
	if hit != nil {
		s.fired[string(op)+":"+string(hit.Kind)]++
	}
	s.mu.Unlock()
	if hit == nil {
		return Directive{}
	}
	switch hit.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s(%s)", op, arg))
	case KindStall:
		time.Sleep(hit.Delay)
		return Directive{}
	case KindTorn:
		return Directive{Err: ErrInjected, TornBytes: hit.Bytes}
	default: // KindFail
		return Directive{Err: ErrInjected}
	}
}

// Fired returns how often each (op, kind) pair has fired.
func (s *Set) Fired() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.fired))
	for k, v := range s.fired {
		out[k] = v
	}
	return out
}

var knownOps = []Op{OpWALAppend, OpWALTruncate, OpSnapshotWrite, OpSnapshotRename, OpChecker, OpWorker, OpCoreKill}

// Parse builds a Set from the -faults flag's comma-separated spec.
// Each element is op:kind[=arg][@n] or, probabilistically,
// op:kind[=arg]%p[@seed]:
//
//	wal-append:fail@3          fail the 3rd WAL append
//	wal-append:torn=5@2        2nd append persists 5 bytes, then fails
//	checker:panic=lemma1       panic every lemma1 checker run
//	worker:stall=200ms         stall every job pickup 200ms
//	snapshot-rename:fail       fail every snapshot rename
//	core-kill:fail%0.01@42     kill ~1% of worker loop turns, seed 42
//
// The kind argument is the torn byte count (torn), the stall duration
// (stall), or the fault point's match filter (fail, panic). With %p
// present (p in (0, 1]) each matching occurrence fires independently
// with probability p from a deterministic per-rule stream, and the @n
// suffix is the stream's seed rather than an occurrence count. An
// empty spec yields an inert empty set.
func Parse(spec string) (*Set, error) {
	s := New()
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, elem := range strings.Split(spec, ",") {
		rule, err := parseRule(strings.TrimSpace(elem))
		if err != nil {
			return nil, err
		}
		s.rules = append(s.rules, &ruleState{Rule: rule})
	}
	return s, nil
}

func parseRule(elem string) (Rule, error) {
	var r Rule
	body := elem
	suffix := ""
	if at := strings.LastIndex(body, "@"); at >= 0 {
		suffix = body[at+1:]
		body = body[:at]
	}
	if pct := strings.LastIndex(body, "%"); pct >= 0 {
		p, err := strconv.ParseFloat(body[pct+1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return r, fmt.Errorf("faultinject: bad probability in %q (want %%p with 0 < p <= 1)", elem)
		}
		r.Prob = p
		body = body[:pct]
		if suffix != "" {
			seed, err := strconv.ParseInt(suffix, 10, 64)
			if err != nil {
				return r, fmt.Errorf("faultinject: bad seed in %q (a probabilistic rule's @n is its stream seed)", elem)
			}
			r.Seed = seed
		}
	} else if suffix != "" {
		n, err := strconv.Atoi(suffix)
		if err != nil || n < 1 {
			return r, fmt.Errorf("faultinject: bad occurrence in %q (want @n with n >= 1)", elem)
		}
		r.On = n
	}
	opStr, rest, ok := strings.Cut(body, ":")
	if !ok {
		return r, fmt.Errorf("faultinject: %q is not op:kind[=arg][@n]", elem)
	}
	r.Op = Op(opStr)
	known := false
	for _, op := range knownOps {
		if r.Op == op {
			known = true
		}
	}
	if !known {
		return r, fmt.Errorf("faultinject: unknown fault point %q (known: %v)", opStr, knownOps)
	}
	kindStr, arg, _ := strings.Cut(rest, "=")
	r.Kind = Kind(kindStr)
	switch r.Kind {
	case KindFail, KindPanic:
		r.Match = arg
	case KindTorn:
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return r, fmt.Errorf("faultinject: bad torn byte count in %q", elem)
		}
		r.Bytes = n
	case KindStall:
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return r, fmt.Errorf("faultinject: bad stall duration in %q", elem)
		}
		r.Delay = d
	default:
		return r, fmt.Errorf("faultinject: unknown kind %q in %q (known: fail, torn, panic, stall)", kindStr, elem)
	}
	return r, nil
}
