package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if d := s.Check(OpWALAppend, ""); d.Err != nil || d.TornBytes != 0 {
		t.Errorf("nil set returned %+v", d)
	}
	if f := s.Fired(); f != nil {
		t.Errorf("nil set Fired() = %v", f)
	}
}

func TestOccurrenceCounting(t *testing.T) {
	s := New(Rule{Op: OpWALAppend, Kind: KindFail, On: 3})
	for i := 1; i <= 5; i++ {
		d := s.Check(OpWALAppend, "")
		if (d.Err != nil) != (i == 3) {
			t.Errorf("occurrence %d: err=%v, want fire only on 3rd", i, d.Err)
		}
	}
	if s.Fired()["wal-append:fail"] != 1 {
		t.Errorf("Fired() = %v, want one wal-append:fail", s.Fired())
	}
}

func TestEveryOccurrenceAndMatchFilter(t *testing.T) {
	s := New(Rule{Op: OpChecker, Kind: KindFail, Match: "lemma1"})
	if d := s.Check(OpChecker, "reactivity"); d.Err != nil {
		t.Error("rule fired on non-matching arg")
	}
	for i := 0; i < 3; i++ {
		if d := s.Check(OpChecker, "lemma1"); !errors.Is(d.Err, ErrInjected) {
			t.Errorf("matching arg occurrence %d did not fire: %v", i, d.Err)
		}
	}
	if d := s.Check(OpWALAppend, "lemma1"); d.Err != nil {
		t.Error("rule fired on wrong op")
	}
}

func TestTornDirective(t *testing.T) {
	s := New(Rule{Op: OpWALAppend, Kind: KindTorn, Bytes: 7})
	d := s.Check(OpWALAppend, "")
	if !errors.Is(d.Err, ErrInjected) || d.TornBytes != 7 {
		t.Errorf("torn directive = %+v", d)
	}
}

func TestPanicKindPanicsInCheck(t *testing.T) {
	s := New(Rule{Op: OpChecker, Kind: KindPanic, Match: "lemma1"})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "injected panic at checker(lemma1)") {
			t.Errorf("recover() = %v", r)
		}
	}()
	s.Check(OpChecker, "lemma1")
	t.Fatal("Check returned instead of panicking")
}

func TestStallKindSleeps(t *testing.T) {
	s := New(Rule{Op: OpWorker, Kind: KindStall, Delay: 30 * time.Millisecond})
	start := time.Now()
	if d := s.Check(OpWorker, ""); d.Err != nil {
		t.Errorf("stall returned error %v", d.Err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("stall slept only %v", took)
	}
}

func TestParseGrammar(t *testing.T) {
	s, err := Parse(" wal-append:fail@3, wal-append:torn=5@2 ,checker:panic=lemma1,worker:stall=200ms,snapshot-rename:fail")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpWALAppend, Kind: KindFail, On: 3},
		{Op: OpWALAppend, Kind: KindTorn, Bytes: 5, On: 2},
		{Op: OpChecker, Kind: KindPanic, Match: "lemma1"},
		{Op: OpWorker, Kind: KindStall, Delay: 200 * time.Millisecond},
		{Op: OpSnapshotRename, Kind: KindFail},
	}
	if len(s.rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(s.rules), len(want))
	}
	for i, w := range want {
		if s.rules[i].Rule != w {
			t.Errorf("rule %d = %+v, want %+v", i, s.rules[i].Rule, w)
		}
	}
}

func TestParseEmptySpecIsInert(t *testing.T) {
	s, err := Parse("   ")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Check(OpWALAppend, ""); d.Err != nil {
		t.Errorf("empty spec injected %v", d.Err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nonsense",                // no kind
		"frobnicate:fail",         // unknown op
		"wal-append:explode",      // unknown kind
		"wal-append:fail@0",       // occurrence must be >= 1
		"wal-append:fail@x",       // non-numeric occurrence
		"wal-append:torn=banana",  // bad byte count
		"wal-append:torn=-1",      // negative byte count
		"worker:stall=fast",       // bad duration
		"worker:stall=-1s",        // negative duration
		"wal-append:fail,,",       // empty element
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}
