package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if d := s.Check(OpWALAppend, ""); d.Err != nil || d.TornBytes != 0 {
		t.Errorf("nil set returned %+v", d)
	}
	if f := s.Fired(); f != nil {
		t.Errorf("nil set Fired() = %v", f)
	}
}

func TestOccurrenceCounting(t *testing.T) {
	s := New(Rule{Op: OpWALAppend, Kind: KindFail, On: 3})
	for i := 1; i <= 5; i++ {
		d := s.Check(OpWALAppend, "")
		if (d.Err != nil) != (i == 3) {
			t.Errorf("occurrence %d: err=%v, want fire only on 3rd", i, d.Err)
		}
	}
	if s.Fired()["wal-append:fail"] != 1 {
		t.Errorf("Fired() = %v, want one wal-append:fail", s.Fired())
	}
}

func TestEveryOccurrenceAndMatchFilter(t *testing.T) {
	s := New(Rule{Op: OpChecker, Kind: KindFail, Match: "lemma1"})
	if d := s.Check(OpChecker, "reactivity"); d.Err != nil {
		t.Error("rule fired on non-matching arg")
	}
	for i := 0; i < 3; i++ {
		if d := s.Check(OpChecker, "lemma1"); !errors.Is(d.Err, ErrInjected) {
			t.Errorf("matching arg occurrence %d did not fire: %v", i, d.Err)
		}
	}
	if d := s.Check(OpWALAppend, "lemma1"); d.Err != nil {
		t.Error("rule fired on wrong op")
	}
}

func TestTornDirective(t *testing.T) {
	s := New(Rule{Op: OpWALAppend, Kind: KindTorn, Bytes: 7})
	d := s.Check(OpWALAppend, "")
	if !errors.Is(d.Err, ErrInjected) || d.TornBytes != 7 {
		t.Errorf("torn directive = %+v", d)
	}
}

func TestPanicKindPanicsInCheck(t *testing.T) {
	s := New(Rule{Op: OpChecker, Kind: KindPanic, Match: "lemma1"})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "injected panic at checker(lemma1)") {
			t.Errorf("recover() = %v", r)
		}
	}()
	s.Check(OpChecker, "lemma1")
	t.Fatal("Check returned instead of panicking")
}

func TestStallKindSleeps(t *testing.T) {
	s := New(Rule{Op: OpWorker, Kind: KindStall, Delay: 30 * time.Millisecond})
	start := time.Now()
	if d := s.Check(OpWorker, ""); d.Err != nil {
		t.Errorf("stall returned error %v", d.Err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("stall slept only %v", took)
	}
}

func TestParseGrammar(t *testing.T) {
	s, err := Parse(" wal-append:fail@3, wal-append:torn=5@2 ,checker:panic=lemma1,worker:stall=200ms,snapshot-rename:fail")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpWALAppend, Kind: KindFail, On: 3},
		{Op: OpWALAppend, Kind: KindTorn, Bytes: 5, On: 2},
		{Op: OpChecker, Kind: KindPanic, Match: "lemma1"},
		{Op: OpWorker, Kind: KindStall, Delay: 200 * time.Millisecond},
		{Op: OpSnapshotRename, Kind: KindFail},
	}
	if len(s.rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(s.rules), len(want))
	}
	for i, w := range want {
		if s.rules[i].Rule != w {
			t.Errorf("rule %d = %+v, want %+v", i, s.rules[i].Rule, w)
		}
	}
}

func TestParseEmptySpecIsInert(t *testing.T) {
	s, err := Parse("   ")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Check(OpWALAppend, ""); d.Err != nil {
		t.Errorf("empty spec injected %v", d.Err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nonsense",               // no kind
		"frobnicate:fail",        // unknown op
		"wal-append:explode",     // unknown kind
		"wal-append:fail@0",      // occurrence must be >= 1
		"wal-append:fail@x",      // non-numeric occurrence
		"wal-append:torn=banana", // bad byte count
		"wal-append:torn=-1",     // negative byte count
		"worker:stall=fast",      // bad duration
		"worker:stall=-1s",       // negative duration
		"wal-append:fail,,",      // empty element
		"wal-append:fail%0",      // probability must be in (0,1]
		"wal-append:fail%1.5",    // probability above 1
		"wal-append:fail%-0.1",   // negative probability
		"wal-append:fail%banana", // non-numeric probability
		"wal-append:fail%0.5@x",  // non-numeric seed
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseProbabilisticGrammar(t *testing.T) {
	s, err := Parse("core-kill:fail%0.01@42, worker:stall=5ms%0.5, checker:fail=lemma1%1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpCoreKill, Kind: KindFail, Prob: 0.01, Seed: 42},
		{Op: OpWorker, Kind: KindStall, Delay: 5 * time.Millisecond, Prob: 0.5},
		{Op: OpChecker, Kind: KindFail, Match: "lemma1", Prob: 1},
	}
	if len(s.rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(s.rules), len(want))
	}
	for i, w := range want {
		if s.rules[i].Rule != w {
			t.Errorf("rule %d = %+v, want %+v", i, s.rules[i].Rule, w)
		}
	}
}

func TestProbabilisticDeterministicPerSeed(t *testing.T) {
	// Same seed, same stream: two sets built from the same spec fire on
	// exactly the same Check sequence positions.
	pattern := func() []bool {
		s := New(Rule{Op: OpWorker, Kind: KindFail, Prob: 0.3, Seed: 7})
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Check(OpWorker, "").Err != nil
		}
		return out
	}
	a, b := pattern(), pattern()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire pattern diverged at check %d with identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.3 fired %d/%d times — stream is degenerate", fired, len(a))
	}

	// A different seed must give a different pattern (overwhelmingly).
	s := New(Rule{Op: OpWorker, Kind: KindFail, Prob: 0.3, Seed: 8})
	same := true
	for i := range a {
		if (s.Check(OpWorker, "").Err != nil) != a[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 200-check fire patterns")
	}
}

func TestProbabilisticRateRoughlyHonored(t *testing.T) {
	const n = 4000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		s := New(Rule{Op: OpWorker, Kind: KindFail, Prob: p, Seed: 1})
		fired := 0
		for i := 0; i < n; i++ {
			if s.Check(OpWorker, "").Err != nil {
				fired++
			}
		}
		got := float64(fired) / n
		if got < p-0.05 || got > p+0.05 {
			t.Errorf("p=%.1f fired at rate %.3f over %d checks", p, got, n)
		}
	}
}

func TestProbabilisticAlwaysFiresAtOne(t *testing.T) {
	s := New(Rule{Op: OpCoreKill, Kind: KindFail, Prob: 1})
	for i := 0; i < 50; i++ {
		if d := s.Check(OpCoreKill, "3"); !errors.Is(d.Err, ErrInjected) {
			t.Fatalf("p=1 rule did not fire on check %d", i)
		}
	}
	if s.Fired()["core-kill:fail"] != 50 {
		t.Errorf("Fired() = %v, want 50 core-kill:fail", s.Fired())
	}
}
