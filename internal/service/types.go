package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/service/store"
	"repro/internal/statespace"
	"repro/internal/verify"
)

// Request is one verification submission: a policy given either by
// registered name or as DSL source, a bounded universe (nil selects the
// verifier's default 3-core/5-thread universe), and an optional
// obligation subset (nil means all).
type Request struct {
	// Policy names a registered policy.Spec (mutually exclusive with
	// Source).
	Policy string `json:"policy,omitempty"`
	// Source is DSL policy source (mutually exclusive with Policy).
	Source string `json:"source,omitempty"`
	// Universe bounds the state space; nil means the default universe.
	Universe *UniverseSpec `json:"universe,omitempty"`
	// Obligations restricts the checked obligations; nil means all.
	Obligations []string `json:"obligations,omitempty"`
	// TimeoutMs propagates the client's request deadline: a queued job
	// is cancelled this many milliseconds after submission even though
	// the submit round-trip already returned. Zero means no deadline.
	// Deliberately not part of any cache or coalescing key.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// universe resolves the request's universe, defaulting like the
// verifier does.
func (r Request) universe() statespace.Universe {
	if r.Universe == nil {
		return verify.DefaultUniverse()
	}
	return r.Universe.Universe()
}

// UniverseSpec is the wire form of statespace.Universe.
type UniverseSpec struct {
	Cores              int     `json:"cores"`
	MaxPerCore         int     `json:"max_per_core"`
	MaxTotal           int     `json:"max_total,omitempty"`
	Weights            []int64 `json:"weights,omitempty"`
	IncludeUnscheduled bool    `json:"include_unscheduled"`
	Groups             []int   `json:"groups,omitempty"`
	MaxFaults          int     `json:"max_faults,omitempty"`
}

// Universe converts the wire form.
func (u UniverseSpec) Universe() statespace.Universe {
	return statespace.Universe{
		Cores:              u.Cores,
		MaxPerCore:         u.MaxPerCore,
		MaxTotal:           u.MaxTotal,
		Weights:            u.Weights,
		IncludeUnscheduled: u.IncludeUnscheduled,
		Groups:             u.Groups,
		MaxFaults:          u.MaxFaults,
	}
}

// UniverseSpecOf converts a statespace.Universe to its wire form.
func UniverseSpecOf(u statespace.Universe) UniverseSpec {
	return UniverseSpec{
		Cores:              u.Cores,
		MaxPerCore:         u.MaxPerCore,
		MaxTotal:           u.MaxTotal,
		Weights:            u.Weights,
		IncludeUnscheduled: u.IncludeUnscheduled,
		Groups:             u.Groups,
		MaxFaults:          u.MaxFaults,
	}
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobCancelled JobState = "cancelled"
)

// Job is one queued or executed verification. Handles stay pollable
// after completion (up to the retention bound).
type Job struct {
	id       string
	sub      *submission
	ctx      context.Context
	cancelFn func()

	mu        sync.Mutex
	state     JobState
	report    *verify.Report
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the job's handle.
func (j *Job) ID() string { return j.id }

// Cancel aborts the job: queued jobs never run, running jobs stop at
// the driver's next cancellation poll. Idempotent.
func (j *Job) Cancel() { j.cancelFn() }

// Snapshot returns the job's current state, its report (non-nil only
// when done) and its error message (non-empty only when cancelled).
func (j *Job) Snapshot() (JobState, *verify.Report, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.report, j.errMsg
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool {
	st, _, _ := j.Snapshot()
	return st == JobDone || st == JobCancelled
}

// Stats is the /v1/stats snapshot.
type Stats struct {
	VerifierVersion string `json:"verifier_version"`
	CacheHits       int64  `json:"cache_hits"`
	CacheMisses     int64  `json:"cache_misses"`
	CacheEntries    int    `json:"cache_entries"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity"`
	JobsSubmitted   int64  `json:"jobs_submitted"`
	JobsCoalesced   int64  `json:"jobs_coalesced"`
	JobsCompleted   int64  `json:"jobs_completed"`
	JobsCancelled   int64  `json:"jobs_cancelled"`
	ServedFromCache int64  `json:"served_from_cache"`
	// CheckerPanics counts obligation checkers that crashed and were
	// contained as ABORTED (never-cached) results.
	CheckerPanics int64 `json:"checker_panics,omitempty"`
	// CacheFlushes counts DELETE /v1/cache admin flushes.
	CacheFlushes int64 `json:"cache_flushes,omitempty"`
	// Draining reports the graceful-shutdown window: submissions are
	// rejected while finished jobs stay pollable.
	Draining bool `json:"draining,omitempty"`
	// Store carries the durable memo store's counters (WAL length,
	// snapshot size, recovery/truncation/append-error counts); nil when
	// the service runs memory-only.
	Store *store.Stats `json:"store,omitempty"`
	// Obligations maps obligation ID to verification latency over cache
	// misses (hits never run the checker).
	//schedlint:allow determinism Stats is an admin diagnostic document, not a cached report; sorted-key map rendering is fine here
	Obligations map[string]ObligationStats `json:"obligations"`
}

// ObligationStats is per-obligation checker latency.
type ObligationStats struct {
	Runs    int64 `json:"runs"`
	TotalNs int64 `json:"total_ns"`
	MeanNs  int64 `json:"mean_ns"`
	MaxNs   int64 `json:"max_ns"`
}
