// Package metrics provides the measurement primitives used by the
// simulator and benchmark harness: counters, time-weighted gauges,
// log-linear latency histograms, and the work-conservation violation
// tracker that quantifies "wasted cores" (idle time accumulated while
// other cores were overloaded — the §1 motivation metric).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d)", delta))
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// TimeWeighted accumulates the time integral of a step function — e.g.
// "number of idle cores" weighted by how long each value held.
type TimeWeighted struct {
	lastT    int64
	lastV    float64
	integral float64
	started  bool
}

// Observe records that the tracked value became v at time t (monotonic).
func (w *TimeWeighted) Observe(t int64, v float64) {
	if w.started {
		if t < w.lastT {
			panic(fmt.Sprintf("metrics: TimeWeighted time went backwards: %d -> %d", w.lastT, t))
		}
		w.integral += float64(t-w.lastT) * w.lastV
	}
	w.lastT, w.lastV, w.started = t, v, true
}

// IntegralAt closes the integral at time t and returns ∫v dt.
func (w *TimeWeighted) IntegralAt(t int64) float64 {
	if !w.started {
		return 0
	}
	return w.integral + float64(t-w.lastT)*w.lastV
}

// MeanAt returns the time-weighted mean value over [start of observation, t].
func (w *TimeWeighted) MeanAt(t int64, startT int64) float64 {
	if t <= startT {
		return 0
	}
	return w.IntegralAt(t) / float64(t-startT)
}

// Histogram is a log-linear histogram (HdrHistogram-style buckets): each
// power-of-two range is split into subBuckets linear buckets, giving a
// bounded relative error with O(1) record cost and no allocation after
// construction.
type Histogram struct {
	subBuckets int
	counts     []int64
	total      int64
	sum        float64
	min, max   int64
}

// NewHistogram returns a histogram with the given sub-bucket resolution
// (16 gives ≈6% relative error; 32 gives ≈3%).
func NewHistogram(subBuckets int) *Histogram {
	if subBuckets < 2 {
		panic(fmt.Sprintf("metrics: NewHistogram(%d)", subBuckets))
	}
	return &Histogram{
		subBuckets: subBuckets,
		counts:     make([]int64, 64*subBuckets),
		min:        math.MaxInt64,
		max:        -1,
	}
}

// bucketIndex maps a non-negative value to its bucket.
func (h *Histogram) bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < int64(h.subBuckets) {
		return int(v)
	}
	exp := 63 - leadingZeros(uint64(v))
	shift := exp - log2int(h.subBuckets)
	sub := int(v >> uint(shift) & int64(h.subBuckets-1))
	return (exp-log2int(h.subBuckets)+1)*h.subBuckets + sub
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := h.bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds every observation of o into h. The two histograms must
// share a sub-bucket resolution (bucket boundaries are a function of
// subBuckets alone, so equal-resolution histograms are bucket-compatible
// by construction). Merging is exact at the bucket level: Merge(h1, h2)
// holds the same counts — and therefore the same quantile estimates — as
// one histogram that recorded the concatenation of both sample streams.
// This is what lets per-shard or per-load-point latency histograms be
// combined into a sweep-wide distribution without re-recording.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.subBuckets != h.subBuckets {
		panic(fmt.Sprintf("metrics: Merge of %d-sub-bucket histogram into %d", o.subBuckets, h.subBuckets))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// SubBuckets returns the histogram's per-power-of-two resolution; two
// histograms are mergeable iff it matches.
func (h *Histogram) SubBuckets() int { return h.subBuckets }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the extreme observations (0 and -1 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or -1 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound of the q-quantile (0 ≤ q ≤ 1) using the
// bucket upper edges, the convention of HdrHistogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			return h.bucketUpper(idx)
		}
	}
	return h.max
}

// bucketUpper returns the largest value mapping into bucket idx.
func (h *Histogram) bucketUpper(idx int) int64 {
	if idx < h.subBuckets {
		return int64(idx)
	}
	tier := idx/h.subBuckets - 1
	sub := idx % h.subBuckets
	base := int64(h.subBuckets) << uint(tier)
	width := int64(1) << uint(tier)
	return base + int64(sub+1)*width - 1
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "hist(empty)"
	}
	return fmt.Sprintf("hist(n=%d mean=%.1f p50=%d p99=%d max=%d)",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Table is a minimal fixed-width table formatter for paper-style output
// shared by the benchmark harness and the CLI tools.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRows sorts the table's rows by the given column, lexicographically.
func (t *Table) SortRows(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		var a, b string
		if col < len(t.rows[i]) {
			a = t.rows[i][col]
		}
		if col < len(t.rows[j]) {
			b = t.rows[j][col]
		}
		return a < b
	})
}
