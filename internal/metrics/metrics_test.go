package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 2)  // value 2 during [0,10)
	w.Observe(10, 5) // value 5 during [10,20)
	if got := w.IntegralAt(20); got != 2*10+5*10 {
		t.Errorf("IntegralAt(20) = %v, want 70", got)
	}
	if got := w.MeanAt(20, 0); got != 3.5 {
		t.Errorf("MeanAt = %v, want 3.5", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.IntegralAt(100) != 0 {
		t.Error("empty integral should be 0")
	}
	if w.MeanAt(0, 0) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Observe(10, 1)
	w.Observe(5, 1)
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(16)
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("Mean = %v, want 50.5", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45 || p50 > 56 {
		t.Errorf("p50 = %d, want ≈50 (log-linear error bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 92 || p99 > 108 {
		t.Errorf("p99 = %d, want ≈99", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != -1 {
		t.Error("empty histogram misbehaves")
	}
	if h.String() != "hist(empty)" {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(16)
	h.Record(-5)
	if h.Min() != 0 {
		t.Errorf("Min = %d, want 0 (clamped)", h.Min())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(16)
	h.Record(42)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 not clamped")
	}
}

func TestHistogramPanicsOnTinySubBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1) did not panic")
		}
	}()
	NewHistogram(1)
}

// Property: quantile estimates stay within the log-linear relative error
// bound (1/subBuckets per tier ⇒ ≤ 2/subBuckets overall) against exact
// order statistics.
func TestHistogramQuantileAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram(32)
		var vals []int64
		n := 200 + rng.Intn(800)
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(1_000_000))
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(q*float64(n)) - 1
			if rank < 0 {
				rank = 0
			}
			exact := vals[rank]
			est := h.Quantile(q)
			if exact == 0 {
				continue
			}
			rel := float64(est-exact) / float64(exact)
			if rel < -0.10 || rel > 0.15 {
				t.Errorf("trial %d q=%.2f: exact=%d est=%d rel=%.3f", trial, q, exact, est, rel)
			}
		}
	}
}

// Property: bucketUpper is monotone and bucketIndex(bucketUpper(i)) == i.
func TestHistogramBucketRoundTrip(t *testing.T) {
	h := NewHistogram(16)
	f := func(raw uint32) bool {
		v := int64(raw)
		idx := h.bucketIndex(v)
		upper := h.bucketUpper(idx)
		return upper >= v && h.bucketIndex(upper) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViolationTracker(t *testing.T) {
	v := NewViolationTracker(0)
	// [0,10): 2 idle cores, overloaded exists -> 20 wasted core-ticks.
	v.Observe(0, 2, true)
	// [10,20): idle but nothing overloaded -> legal idleness.
	v.Observe(10, 2, false)
	// [20,30): violation again (1 idle).
	v.Observe(20, 1, true)
	v.Observe(30, 0, false)
	if got := v.WastedCoreSeconds(30); got != 2*10+1*10 {
		t.Errorf("WastedCoreSeconds = %v, want 30", got)
	}
	if got := v.IdleCoreSeconds(30); got != 2*10+2*10+1*10 {
		t.Errorf("IdleCoreSeconds = %v, want 50", got)
	}
	if v.Episodes() != 2 {
		t.Errorf("Episodes = %d, want 2", v.Episodes())
	}
	s := v.Summary(30, 4)
	if !strings.Contains(s, "2 violation episodes") {
		t.Errorf("Summary = %q", s)
	}
}

func TestViolationTrackerNoTime(t *testing.T) {
	v := NewViolationTracker(5)
	if s := v.Summary(5, 2); !strings.Contains(s, "no time") {
		t.Errorf("Summary = %q", s)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("policy", "N", "wasted%")
	tb.AddRow("delta2", "3", "0.0")
	tb.AddRow("cfs-buggy", "∞", "25.1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Overflowing cells are dropped.
	tb2 := NewTable("a")
	tb2.AddRow("1", "2")
	if strings.Contains(tb2.String(), "2") {
		t.Error("overflow cell not dropped")
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("b", "2")
	tb.AddRow("a", "1")
	tb.SortRows(0)
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("rows not sorted:\n%s", out)
	}
}
