package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 2)  // value 2 during [0,10)
	w.Observe(10, 5) // value 5 during [10,20)
	if got := w.IntegralAt(20); got != 2*10+5*10 {
		t.Errorf("IntegralAt(20) = %v, want 70", got)
	}
	if got := w.MeanAt(20, 0); got != 3.5 {
		t.Errorf("MeanAt = %v, want 3.5", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.IntegralAt(100) != 0 {
		t.Error("empty integral should be 0")
	}
	if w.MeanAt(0, 0) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	var w TimeWeighted
	w.Observe(10, 1)
	w.Observe(5, 1)
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(16)
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("Mean = %v, want 50.5", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45 || p50 > 56 {
		t.Errorf("p50 = %d, want ≈50 (log-linear error bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 92 || p99 > 108 {
		t.Errorf("p99 = %d, want ≈99", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != -1 {
		t.Error("empty histogram misbehaves")
	}
	if h.String() != "hist(empty)" {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(16)
	h.Record(-5)
	if h.Min() != 0 {
		t.Errorf("Min = %d, want 0 (clamped)", h.Min())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram(16)
	h.Record(42)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 not clamped")
	}
}

func TestHistogramPanicsOnTinySubBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1) did not panic")
		}
	}()
	NewHistogram(1)
}

// Property: quantile estimates stay within the log-linear relative error
// bound (1/subBuckets per tier ⇒ ≤ 2/subBuckets overall) against exact
// order statistics.
func TestHistogramQuantileAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram(32)
		var vals []int64
		n := 200 + rng.Intn(800)
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(1_000_000))
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			rank := int(q*float64(n)) - 1
			if rank < 0 {
				rank = 0
			}
			exact := vals[rank]
			est := h.Quantile(q)
			if exact == 0 {
				continue
			}
			rel := float64(est-exact) / float64(exact)
			if rel < -0.10 || rel > 0.15 {
				t.Errorf("trial %d q=%.2f: exact=%d est=%d rel=%.3f", trial, q, exact, est, rel)
			}
		}
	}
}

// Property: against an exact sorted-slice oracle, Quantile is bracketed
// by the log-linear design bound: with the ceil-rank upper-edge
// convention, exact ≤ estimate ≤ exact + exact/subBuckets (bucket width
// never exceeds lower-edge/subBuckets). This is the bound the tail-
// latency reports rely on for p50/p99/p999.
func TestHistogramQuantileOracleBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		sub := []int{16, 32, 64}[trial%3]
		h := NewHistogram(sub)
		n := 1 + rng.Intn(5000)
		vals := make([]int64, n)
		for i := range vals {
			// Mix scales so every tier is exercised, including the exact
			// sub-subBuckets range.
			switch i % 3 {
			case 0:
				vals[i] = int64(rng.Intn(sub))
			case 1:
				vals[i] = int64(rng.Intn(100_000))
			default:
				vals[i] = int64(rng.Intn(1 << 40))
			}
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(mathCeil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			est := h.Quantile(q)
			if est < exact {
				t.Fatalf("trial %d sub=%d q=%g: estimate %d below exact %d", trial, sub, q, est, exact)
			}
			if bound := exact + exact/int64(sub); est > bound {
				t.Fatalf("trial %d sub=%d q=%g: estimate %d above bound %d (exact %d)", trial, sub, q, est, bound, exact)
			}
		}
	}
}

func mathCeil(x float64) float64 {
	i := float64(int64(x))
	if i < x {
		return i + 1
	}
	return i
}

// Property: Merge(h1, h2) is indistinguishable — counts, sum, extremes
// and every quantile — from one histogram that recorded the concatenation
// of both sample streams.
func TestHistogramMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		h1, h2, all := NewHistogram(32), NewHistogram(32), NewHistogram(32)
		for i := 0; i < 400+rng.Intn(600); i++ {
			v := int64(rng.Intn(1 << 30))
			h1.Record(v)
			all.Record(v)
		}
		for i := 0; i < rng.Intn(500); i++ { // h2 may be much smaller, even empty
			v := int64(rng.Intn(1000))
			h2.Record(v)
			all.Record(v)
		}
		h1.Merge(h2)
		if h1.Count() != all.Count() || h1.Mean() != all.Mean() ||
			h1.Min() != all.Min() || h1.Max() != all.Max() {
			t.Fatalf("trial %d: merged summary %s != concatenated %s", trial, h1, all)
		}
		for q := 0.0; q <= 1.0; q += 0.01 {
			if h1.Quantile(q) != all.Quantile(q) {
				t.Fatalf("trial %d: merged Quantile(%.2f) = %d, concatenated %d",
					trial, q, h1.Quantile(q), all.Quantile(q))
			}
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram(16)
	h.Record(7)
	h.Merge(nil)
	h.Merge(NewHistogram(16)) // empty: no-op, must not disturb min/max
	if h.Count() != 1 || h.Min() != 7 || h.Max() != 7 {
		t.Errorf("merge of nil/empty disturbed state: %s", h)
	}
	empty := NewHistogram(16)
	empty.Merge(h)
	if empty.Count() != 1 || empty.Min() != 7 || empty.Max() != 7 {
		t.Errorf("merge into empty lost state: %s", empty)
	}
}

func TestHistogramMergeResolutionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge across resolutions did not panic")
		}
	}()
	a, b := NewHistogram(16), NewHistogram(32)
	b.Record(1)
	a.Merge(b)
}

// Property: bucketUpper is monotone and bucketIndex(bucketUpper(i)) == i.
func TestHistogramBucketRoundTrip(t *testing.T) {
	h := NewHistogram(16)
	f := func(raw uint32) bool {
		v := int64(raw)
		idx := h.bucketIndex(v)
		upper := h.bucketUpper(idx)
		return upper >= v && h.bucketIndex(upper) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViolationTracker(t *testing.T) {
	v := NewViolationTracker(0)
	// [0,10): 2 idle cores, overloaded exists -> 20 wasted core-ticks.
	v.Observe(0, 2, true)
	// [10,20): idle but nothing overloaded -> legal idleness.
	v.Observe(10, 2, false)
	// [20,30): violation again (1 idle).
	v.Observe(20, 1, true)
	v.Observe(30, 0, false)
	if got := v.WastedCoreSeconds(30); got != 2*10+1*10 {
		t.Errorf("WastedCoreSeconds = %v, want 30", got)
	}
	if got := v.IdleCoreSeconds(30); got != 2*10+2*10+1*10 {
		t.Errorf("IdleCoreSeconds = %v, want 50", got)
	}
	if v.Episodes() != 2 {
		t.Errorf("Episodes = %d, want 2", v.Episodes())
	}
	s := v.Summary(30, 4)
	if !strings.Contains(s, "2 violation episodes") {
		t.Errorf("Summary = %q", s)
	}
}

func TestViolationTrackerLongestEpisode(t *testing.T) {
	v := NewViolationTracker(0)
	v.Observe(0, 1, true)   // episode 1: [0,10) -> 10
	v.Observe(10, 0, false) // closed
	v.Observe(40, 2, true)  // episode 2: opens at 40
	if got := v.LongestEpisodeAt(45); got != 10 {
		t.Errorf("LongestEpisodeAt(45) = %d, want 10 (open episode shorter)", got)
	}
	if got := v.LongestEpisodeAt(90); got != 50 {
		t.Errorf("LongestEpisodeAt(90) = %d, want 50 (open episode counts through t)", got)
	}
	v.Observe(100, 0, false) // episode 2 closed at 60 ticks
	if got := v.LongestEpisodeAt(500); got != 60 {
		t.Errorf("LongestEpisodeAt(500) = %d, want 60", got)
	}
	if v.Episodes() != 2 {
		t.Errorf("Episodes = %d, want 2", v.Episodes())
	}
}

func TestViolationTrackerNoTime(t *testing.T) {
	v := NewViolationTracker(5)
	if s := v.Summary(5, 2); !strings.Contains(s, "no time") {
		t.Errorf("Summary = %q", s)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("policy", "N", "wasted%")
	tb.AddRow("delta2", "3", "0.0")
	tb.AddRow("cfs-buggy", "∞", "25.1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Overflowing cells are dropped.
	tb2 := NewTable("a")
	tb2.AddRow("1", "2")
	if strings.Contains(tb2.String(), "2") {
		t.Error("overflow cell not dropped")
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow("b", "2")
	tb.AddRow("a", "1")
	tb.SortRows(0)
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("rows not sorted:\n%s", out)
	}
}
