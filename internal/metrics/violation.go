package metrics

import "fmt"

// ViolationTracker quantifies work-conservation violations over a
// simulation: the time integral of "cores idle while at least one core is
// overloaded". This is the paper's §1 "wasted cores" quantity — the CPU
// capacity thrown away by a non-work-conserving scheduler.
type ViolationTracker struct {
	idleWhileOver TimeWeighted
	idle          TimeWeighted
	startT        int64
	lastViolating bool
	episodes      int64
	episodeStart  int64
	longest       int64
}

// NewViolationTracker starts tracking at time t.
func NewViolationTracker(t int64) *ViolationTracker {
	v := &ViolationTracker{startT: t}
	v.idleWhileOver.Observe(t, 0)
	v.idle.Observe(t, 0)
	return v
}

// Observe records the machine occupancy at time t: the number of idle
// cores and whether any core is overloaded.
func (v *ViolationTracker) Observe(t int64, idleCores int, anyOverloaded bool) {
	violating := idleCores > 0 && anyOverloaded
	wasted := 0
	if violating {
		wasted = idleCores
	}
	v.idleWhileOver.Observe(t, float64(wasted))
	v.idle.Observe(t, float64(idleCores))
	if violating && !v.lastViolating {
		v.episodes++
		v.episodeStart = t
	}
	if !violating && v.lastViolating {
		if d := t - v.episodeStart; d > v.longest {
			v.longest = d
		}
	}
	v.lastViolating = violating
}

// WastedCoreSeconds returns ∫(idle cores while overloaded exists) dt up
// to time t, in the caller's time unit.
func (v *ViolationTracker) WastedCoreSeconds(t int64) float64 {
	return v.idleWhileOver.IntegralAt(t)
}

// IdleCoreSeconds returns total idle core-time (violating or not).
func (v *ViolationTracker) IdleCoreSeconds(t int64) float64 {
	return v.idle.IntegralAt(t)
}

// Episodes counts distinct violation intervals (transitions into the
// violating state). Transient violations are legal per §3.2 — it is
// persistence that matters, visible as few long episodes vs many short
// ones.
func (v *ViolationTracker) Episodes() int64 { return v.episodes }

// LongestEpisodeAt returns the duration of the longest violation episode
// observed up to time t, counting a still-open episode as running through
// t. Episode length is the §3.2 persistence measure: the same wasted
// core-time is far worse as one long starvation interval than as many
// transient blips, and it is episode length that correlates with tail
// (p99+) latency inflation in the open-loop sweeps.
func (v *ViolationTracker) LongestEpisodeAt(t int64) int64 {
	longest := v.longest
	if v.lastViolating {
		if d := t - v.episodeStart; d > longest {
			longest = d
		}
	}
	return longest
}

// Summary renders the tracker state at time t over n cores.
func (v *ViolationTracker) Summary(t int64, cores int) string {
	span := float64(t - v.startT)
	if span <= 0 {
		return "violations: no time elapsed"
	}
	wasted := v.WastedCoreSeconds(t)
	return fmt.Sprintf("wasted %.0f core-ticks (%.1f%% of capacity) across %d violation episodes",
		wasted, 100*wasted/(span*float64(cores)), v.episodes)
}
