package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// smallSweep is a sweep sized for test runtime: 4 cores, short horizon,
// two load points.
func smallSweep() SweepConfig {
	return SweepConfig{
		Policies:     []string{"delta2", "null"},
		Loads:        []float64{0.6, 0.9},
		Cores:        4,
		Groups:       2,
		Horizon:      150_000,
		Seed:         11,
		ArrivalCores: 1,
	}
}

// Acceptance criterion: fixed seed ⇒ byte-identical report JSON.
func TestRunSweepByteIdenticalForFixedSeed(t *testing.T) {
	run := func() []byte {
		rep, err := RunSweep(context.Background(), smallSweep())
		if err != nil {
			t.Fatalf("RunSweep: %v", err)
		}
		data, err := ReportJSON(rep)
		if err != nil {
			t.Fatalf("ReportJSON: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("same config, different report bytes:\n%s\n---\n%s", a, b)
	}
}

func TestRunSweepSeedChangesReport(t *testing.T) {
	cfg := smallSweep()
	repA, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	cfg.Seed = 12
	repB, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	a, _ := ReportJSON(repA)
	b, _ := ReportJSON(repB)
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical reports")
	}
}

func TestReportRoundTripAndShape(t *testing.T) {
	cfg := smallSweep()
	rep, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	data, err := ReportJSON(rep)
	if err != nil {
		t.Fatalf("ReportJSON: %v", err)
	}
	got, err := ReportFromJSON(data)
	if err != nil {
		t.Fatalf("ReportFromJSON rejected our own report: %v", err)
	}
	if len(got.Policies) != len(cfg.Policies) {
		t.Fatalf("round-trip lost policies: %d of %d", len(got.Policies), len(cfg.Policies))
	}
	for _, c := range got.Policies {
		for _, pt := range c.Points {
			if pt.JobsArrived == 0 {
				t.Errorf("%s at load %v: no jobs arrived", c.Policy, pt.Load)
			}
			if pt.Latency.Count == 0 {
				t.Errorf("%s at load %v: no latency samples", c.Policy, pt.Load)
			}
			if pt.Latency.P50 > pt.Latency.P99 || pt.Latency.P99 > pt.Latency.P999 {
				t.Errorf("%s at load %v: quantiles not monotone: %+v", c.Policy, pt.Load, pt.Latency)
			}
			if pt.OfferedUtil < pt.Load*0.5 || pt.OfferedUtil > pt.Load*1.5 {
				t.Errorf("%s: offered utilization %v far from target %v", c.Policy, pt.OfferedUtil, pt.Load)
			}
		}
		if c.Overall.Count != c.Points[0].Latency.Count+c.Points[1].Latency.Count {
			t.Errorf("%s: overall count %d != sum of point counts", c.Policy, c.Overall.Count)
		}
	}
}

// The report is the workload's verdict: a policy that never balances
// must show inflated tails and wasted cores versus delta2 when arrivals
// land on a single core.
func TestSweepSeparatesBalancingFromNull(t *testing.T) {
	rep, err := RunSweep(context.Background(), smallSweep())
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	byName := map[string]PolicyCurve{}
	for _, c := range rep.Policies {
		byName[c.Policy] = c
	}
	d2 := byName["delta2"].Points[1] // load 0.9
	null := byName["null"].Points[1]
	if null.Latency.P99 <= d2.Latency.P99 {
		t.Errorf("null p99 %d not above delta2 p99 %d at load 0.9", null.Latency.P99, d2.Latency.P99)
	}
	// delta2 itself wastes cores between balance rounds at this skew, so
	// the separation is an additive gap, not a ratio.
	if null.WastedPct < d2.WastedPct+10 {
		t.Errorf("null wasted %.2f%% not well above delta2 wasted %.2f%%", null.WastedPct, d2.WastedPct)
	}
	if d2.Steals == 0 {
		t.Error("delta2 reported zero steals under single-core arrival skew")
	}
}

func TestReportFromJSONRejectsMalformed(t *testing.T) {
	rep, err := RunSweep(context.Background(), smallSweep())
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	mutate := map[string]func(r *Report){
		"bad version":    func(r *Report) { r.Version = ReportVersion + 1 },
		"bad workload":   func(r *Report) { r.Workload = "batch" },
		"unknown policy": func(r *Report) { r.Policies[0].Policy = "no-such-policy" },
		"missing point":  func(r *Report) { r.Policies[0].Points = r.Policies[0].Points[:1] },
		"load mismatch":  func(r *Report) { r.Policies[0].Points[0].Load = 0.42 },
		"empty policies": func(r *Report) { r.Policies = nil },
	}
	for name, f := range mutate {
		orig, _ := ReportJSON(rep)
		broken, err := ReportFromJSON(orig)
		if err != nil {
			t.Fatalf("baseline report invalid: %v", err)
		}
		f(broken)
		data, _ := ReportJSON(broken)
		if _, err := ReportFromJSON(data); err == nil {
			t.Errorf("%s: ReportFromJSON accepted a malformed report", name)
		}
	}
	if _, err := ReportFromJSON([]byte("{not json")); err == nil {
		t.Error("ReportFromJSON accepted non-JSON input")
	}
}

func TestRunSweepValidation(t *testing.T) {
	cases := map[string]func(c *SweepConfig){
		"no policies":      func(c *SweepConfig) { c.Policies = nil },
		"unknown policy":   func(c *SweepConfig) { c.Policies = []string{"bogus"} },
		"no loads":         func(c *SweepConfig) { c.Loads = nil },
		"load too high":    func(c *SweepConfig) { c.Loads = []float64{0.6, 1.2} },
		"loads descending": func(c *SweepConfig) { c.Loads = []float64{0.9, 0.6} },
		"bad arrival":      func(c *SweepConfig) { c.Arrival = "uniform" },
		"bad dist":         func(c *SweepConfig) { c.Dist = "normal" },
		"too many arrival cores": func(c *SweepConfig) {
			c.ArrivalCores = 99
		},
	}
	for name, f := range cases {
		cfg := smallSweep()
		f(&cfg)
		if _, err := RunSweep(context.Background(), cfg); err == nil {
			t.Errorf("%s: RunSweep accepted an invalid config", name)
		} else if strings.Contains(err.Error(), "context") {
			t.Errorf("%s: got a context error, want a validation error: %v", name, err)
		}
	}
}

// Satellite: cancellation propagates into the running sweep — a
// cancelled context stops the event loop mid-point and the partial
// report built so far comes back with the error.
func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallSweep()
	cfg.Horizon = 50_000_000 // would take far too long if cancellation leaked
	rep, err := RunSweep(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if rep == nil {
		t.Fatal("cancelled sweep returned nil partial report")
	}
	if len(rep.Policies) != 0 {
		t.Errorf("first point was cancelled, yet %d complete curves came back", len(rep.Policies))
	}
}
