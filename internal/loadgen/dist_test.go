package loadgen

import (
	"testing"

	"repro/internal/sim"
)

func sampleMean(d ServiceDist, seed uint64, n int) float64 {
	rng := sim.NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	return sum / float64(n)
}

// Property (satellite): empirical service means match the analytic
// truncated-Pareto expectation, including the α = 1 logarithmic branch.
func TestBoundedParetoMeanMatchesAnalytic(t *testing.T) {
	cases := []struct {
		alpha float64
		l, h  int64
	}{
		{1.5, 1_000, 1_000_000},
		{1.1, 500, 2_000_000},
		{1.0, 1_000, 100_000},
		{2.5, 100, 50_000},
	}
	for _, c := range cases {
		d := NewBoundedPareto(c.alpha, c.l, c.h)
		want := d.Mean()
		got := sampleMean(d, 77, 500_000)
		if rel := (got - want) / want; rel < -0.03 || rel > 0.03 {
			t.Errorf("%s: empirical mean %v vs analytic %v (rel %.3f)", d.Name(), got, want, rel)
		}
	}
}

func TestBoundedParetoSamplesStayInRange(t *testing.T) {
	d := NewBoundedPareto(1.5, 1_000, 1_000_000)
	rng := sim.NewRNG(3)
	sawTail := false
	for i := 0; i < 200_000; i++ {
		v := d.Sample(rng)
		if v < 1_000 || v > 1_000_000 {
			t.Fatalf("sample %d outside [1000, 1000000]", v)
		}
		if v > 100_000 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("200k samples never exceeded 100k ticks — tail looks truncated")
	}
}

func TestExponentialMeanMatchesAnalytic(t *testing.T) {
	d := NewExponential(3_000)
	got := sampleMean(d, 13, 200_000)
	if rel := (got - 3_000) / 3_000; rel < -0.02 || rel > 0.02 {
		t.Errorf("exp: empirical mean %v (rel %.3f)", got, rel)
	}
}

func TestDistConstructorsPanicOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"exp-zero":          func() { NewExponential(0) },
		"pareto-zero-alpha": func() { NewBoundedPareto(0, 1, 10) },
		"pareto-l-zero":     func() { NewBoundedPareto(1.5, 0, 10) },
		"pareto-h-below-l":  func() { NewBoundedPareto(1.5, 10, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
