package loadgen

import (
	"fmt"
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
)

func testService(horizon int64) *Service {
	return &Service{
		Arrivals:     NewPoisson(2_000),
		Work:         NewBoundedPareto(1.5, 1_000, 100_000),
		Malleable:    MalleableSpec{ParallelFraction: 0.5, MaxWidth: 3, SpeedupExponent: 0.9},
		Horizon:      horizon,
		ArrivalCores: []int{0, 1},
	}
}

// One seed fixes the whole run: arrivals, work, widths, completions.
func TestServiceDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		svc := testService(300_000)
		s := sim.New(sim.Config{Cores: 4, Policy: policy.NewDelta2(), Seed: 7})
		svc.Setup(s)
		st := s.Run(450_000)
		return fmt.Sprintf("arrived=%d done=%d offered=%d lat=%s steals=%d",
			svc.Arrived(), svc.Completed(), svc.OfferedCoreTicks(), svc.Latency(), st.Steals)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different runs:\n%s\n%s", a, b)
	}
}

// With a post-horizon drain and moderate load, every job finishes and
// every completion is one latency sample.
func TestServiceJobsDrainAndLatencyCounts(t *testing.T) {
	svc := testService(200_000)
	s := sim.New(sim.Config{Cores: 4, Policy: policy.NewDelta2(), Seed: 3})
	svc.Setup(s)
	s.Run(2_000_000) // generous drain
	if svc.Arrived() == 0 {
		t.Fatal("no jobs arrived")
	}
	if svc.Completed() != svc.Arrived() {
		t.Errorf("completed %d of %d after full drain", svc.Completed(), svc.Arrived())
	}
	if svc.Latency().Count() != svc.Completed() {
		t.Errorf("latency samples %d, completions %d", svc.Latency().Count(), svc.Completed())
	}
	if svc.Latency().Min() < 1_000/3 {
		t.Errorf("min job latency %d below any possible task share", svc.Latency().Min())
	}
}

// constDist is a fixed-work distribution for exact-accounting tests.
type constDist struct{ v int64 }

func (c constDist) Name() string          { return "const" }
func (c constDist) Sample(*sim.RNG) int64 { return c.v }
func (c constDist) Mean() float64         { return float64(c.v) }

// A parallel job must not complete before its slowest sibling: with one
// core, every width-2 job's two 5000-tick halves serialize, so no
// sojourn can be below the job's total work of 10,000 ticks.
func TestServiceParallelJobCompletesAtLastTask(t *testing.T) {
	svc := &Service{
		Arrivals:  NewPoisson(100_000),
		Work:      constDist{10_000},
		Malleable: MalleableSpec{ParallelFraction: 1, MaxWidth: 2, SpeedupExponent: 1},
		Horizon:   2_000_000,
	}
	s := sim.New(sim.Config{Cores: 1, Policy: policy.NewNull(), Seed: 5})
	svc.Setup(s)
	s.Run(40_000_000)
	if svc.Completed() == 0 {
		t.Fatal("no jobs completed")
	}
	if svc.Completed() != svc.Arrived() {
		t.Fatalf("only %d of %d jobs drained", svc.Completed(), svc.Arrived())
	}
	if got := svc.Latency().Min(); got < 10_000 {
		t.Errorf("min sojourn %d below the job's serialized work of 10000", got)
	}
}

// The analytic CPU-inflation model used for rate targeting matches what
// Setup actually offers: at a given target load the empirically offered
// utilization lands within a few percent.
func TestServiceOfferedUtilizationMatchesTarget(t *testing.T) {
	for _, load := range []float64{0.6, 0.9} {
		const cores = 8
		m := MalleableSpec{ParallelFraction: 0.25, MaxWidth: 4, SpeedupExponent: 0.85}
		dist := NewBoundedPareto(1.5, 1_000, 200_000)
		meanGap := m.ExpectedCPU(dist.Mean()) / (load * cores)
		svc := &Service{
			Arrivals:     NewPoisson(meanGap),
			Work:         dist,
			Malleable:    m,
			Horizon:      20_000_000,
			ArrivalCores: []int{0, 1},
		}
		s := sim.New(sim.Config{Cores: cores, Policy: policy.NewDelta2(), Seed: 17})
		svc.Setup(s)
		got := svc.OfferedUtilization(cores)
		if rel := (got - load) / load; rel < -0.06 || rel > 0.06 {
			t.Errorf("load %.2f: offered utilization %.4f (rel %.3f)", load, got, rel)
		}
	}
}

func TestServiceSetupPanicsOnBadConfig(t *testing.T) {
	for name, svc := range map[string]*Service{
		"nil-arrivals": {Work: NewExponential(10), Horizon: 100},
		"nil-work":     {Arrivals: NewPoisson(10), Horizon: 100},
		"no-horizon":   {Arrivals: NewPoisson(10), Work: NewExponential(10)},
		"bad-malleable": {Arrivals: NewPoisson(10), Work: NewExponential(10), Horizon: 100,
			Malleable: MalleableSpec{ParallelFraction: 0.5}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			svc.Setup(sim.New(sim.Config{Cores: 2, Policy: policy.NewNull()}))
		}()
	}
}
