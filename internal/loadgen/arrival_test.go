package loadgen

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// gaps draws n interarrival gaps from a fresh process built by mk,
// against a fresh RNG with the given seed.
func gaps(mk func() ArrivalProcess, seed uint64, n int) []int64 {
	rng := sim.NewRNG(seed)
	p := mk()
	out := make([]int64, n)
	for i := range out {
		out[i] = p.Next(rng)
	}
	return out
}

// Property (satellite): for a fixed seed the generated arrival sequence
// is byte-identical across runs — the foundation of reproducible sweeps.
func TestArrivalsByteIdenticalForFixedSeed(t *testing.T) {
	makers := map[string]func() ArrivalProcess{
		"poisson": func() ArrivalProcess { return NewPoisson(700) },
		"map":     func() ArrivalProcess { return NewBurstyMAP(700, 8, 50_000) },
	}
	for name, mk := range makers {
		a := fmt.Sprint(gaps(mk, 42, 10_000))
		b := fmt.Sprint(gaps(mk, 42, 10_000))
		if a != b {
			t.Errorf("%s: same seed produced different gap sequences", name)
		}
		c := fmt.Sprint(gaps(mk, 43, 10_000))
		if a == c {
			t.Errorf("%s: different seeds produced identical gap sequences", name)
		}
	}
}

func mean(vs []int64) float64 {
	var sum float64
	for _, v := range vs {
		sum += float64(v)
	}
	return sum / float64(len(vs))
}

// Property (satellite): the empirical mean interarrival gap matches the
// analytic rate within tolerance.
func TestPoissonMeanMatchesAnalytic(t *testing.T) {
	for _, want := range []float64{50, 700, 12_345} {
		got := mean(gaps(func() ArrivalProcess { return NewPoisson(want) }, 9, 200_000))
		if rel := (got - want) / want; rel < -0.02 || rel > 0.02 {
			t.Errorf("poisson(mean=%v): empirical mean %v (rel %.3f)", want, got, rel)
		}
	}
}

func TestBurstyMAPMeanMatchesAnalytic(t *testing.T) {
	for _, want := range []float64{200, 1500} {
		p := func() ArrivalProcess { return NewBurstyMAP(want, 8, 50_000) }
		got := mean(gaps(p, 9, 500_000))
		if rel := (got - want) / want; rel < -0.05 || rel > 0.05 {
			t.Errorf("map(mean=%v): empirical mean %v (rel %.3f)", want, got, rel)
		}
	}
}

// The MAP must actually modulate: windowed arrival counts must be far
// over-dispersed relative to Poisson (index of dispersion ≈ 1 for
// Poisson, ≫ 1 for a two-state MMPP with an 8× rate ratio).
func TestBurstyMAPOverdispersed(t *testing.T) {
	const meanGap, window = 1000.0, 25_000
	dispersion := func(vs []int64) float64 {
		counts := map[int64]float64{}
		var t int64
		for _, g := range vs {
			t += g
			counts[t/window]++
		}
		n := float64(t/window + 1)
		var m float64
		for _, c := range counts {
			m += c
		}
		m /= n
		var v float64
		for w := int64(0); w <= t/window; w++ {
			d := counts[w] - m
			v += d * d
		}
		return v / n / m
	}
	mapD := dispersion(gaps(func() ArrivalProcess { return NewBurstyMAP(meanGap, 8, 50_000) }, 5, 100_000))
	poiD := dispersion(gaps(func() ArrivalProcess { return NewPoisson(meanGap) }, 5, 100_000))
	if poiD > 2 {
		t.Errorf("poisson dispersion index %v, want ≈ 1", poiD)
	}
	if mapD < 3*poiD || mapD < 3 {
		t.Errorf("MAP dispersion index %v vs poisson %v — not bursty enough", mapD, poiD)
	}
}

func TestArrivalConstructorsPanicOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"poisson-zero":     func() { NewPoisson(0) },
		"map-zero-mean":    func() { NewBurstyMAP(0, 8, 1000) },
		"map-burstiness-1": func() { NewBurstyMAP(100, 1, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
