package loadgen

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ServiceDist samples per-job total work (CPU ticks). Like the arrival
// processes, implementations draw only from the RNG handed to Sample.
type ServiceDist interface {
	// Name identifies the distribution in reports.
	Name() string
	// Sample returns one job's total work in ticks, always ≥ 1.
	Sample(rng *sim.RNG) int64
	// Mean returns the analytic expected work in ticks.
	Mean() float64
}

// Exponential is the light-tailed baseline: exponentially distributed
// work with a fixed mean (the G = M case).
type Exponential struct {
	mean float64
}

// NewExponential returns an exponential service distribution with the
// given mean work in ticks.
func NewExponential(mean float64) *Exponential {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		panic(fmt.Sprintf("loadgen: NewExponential(%v)", mean))
	}
	return &Exponential{mean: mean}
}

// Name implements ServiceDist.
func (e *Exponential) Name() string { return fmt.Sprintf("exp(mean=%g)", e.mean) }

// Sample implements ServiceDist.
func (e *Exponential) Sample(rng *sim.RNG) int64 { return rng.ExpTicks(e.mean) }

// Mean implements ServiceDist.
func (e *Exponential) Mean() float64 { return e.mean }

// BoundedPareto is the heavy-tailed service law: density ∝ x^(−α−1) on
// [L, H]. With α ≤ 2 the variance is dominated by the truncation bound
// H, which is what makes p99/p999 diverge from the mean — most jobs are
// tiny, a rare few are H/L times larger, and a scheduler that strands
// an elephant behind a wasted core inflates the whole tail.
type BoundedPareto struct {
	alpha float64
	l, h  float64
}

// NewBoundedPareto returns a bounded Pareto distribution with shape
// alpha on [l, h] ticks.
func NewBoundedPareto(alpha float64, l, h int64) *BoundedPareto {
	if alpha <= 0 || math.IsNaN(alpha) || l < 1 || h <= l {
		panic(fmt.Sprintf("loadgen: NewBoundedPareto(%v, %d, %d)", alpha, l, h))
	}
	return &BoundedPareto{alpha: alpha, l: float64(l), h: float64(h)}
}

// Name implements ServiceDist.
func (p *BoundedPareto) Name() string {
	return fmt.Sprintf("bpareto(alpha=%g,min=%.0f,max=%.0f)", p.alpha, p.l, p.h)
}

// Sample implements ServiceDist by inverse-CDF: F(x) = (1 − (L/x)^α) /
// (1 − (L/H)^α), inverted over a uniform u.
func (p *BoundedPareto) Sample(rng *sim.RNG) int64 {
	u := rng.Float64()
	x := p.l * math.Pow(1-u*(1-math.Pow(p.l/p.h, p.alpha)), -1/p.alpha)
	// Discretize; the clamps guard floating-point spill at u→1.
	d := int64(x)
	if d < int64(p.l) {
		d = int64(p.l)
	}
	if d > int64(p.h) {
		d = int64(p.h)
	}
	return d
}

// Mean implements ServiceDist with the closed form of the truncated
// first moment (the α = 1 branch is the logarithmic limit).
func (p *BoundedPareto) Mean() float64 {
	if p.alpha == 1 {
		return p.l / (1 - p.l/p.h) * math.Log(p.h/p.l)
	}
	la := math.Pow(p.l, p.alpha)
	norm := 1 - math.Pow(p.l/p.h, p.alpha)
	return p.alpha * la / (norm * (p.alpha - 1)) *
		(math.Pow(p.l, 1-p.alpha) - math.Pow(p.h, 1-p.alpha))
}
