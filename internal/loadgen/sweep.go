package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ReportVersion is bumped whenever the sweep semantics or the report
// schema change incompatibly.
const ReportVersion = 1

// SweepConfig parameterizes one tail-latency load sweep: the registered
// policies to compare and the workload shape shared by every (policy,
// load) point. The zero value of every field selects a documented
// default, so SweepConfig{Policies: ..., Loads: ...} is a complete
// experiment.
type SweepConfig struct {
	// Policies names registered policies, compared in the given order.
	Policies []string
	// Loads are the target utilizations in (0, 0.99], ascending.
	Loads []float64
	// Cores is the machine width (default 8).
	Cores int
	// Groups splits the cores into that many contiguous scheduling
	// groups (default 2; 1 disables grouping).
	Groups int
	// Horizon is the arrival window in ticks (default 2,000,000); each
	// point then drains for another Horizon/2 so tail samples are not
	// censored at the cut.
	Horizon int64
	// Seed fixes every sample of the whole sweep (default 1). Each
	// (policy, load) point derives its own stream, so reordering
	// policies or loads never perturbs other points.
	Seed uint64
	// Arrival picks the arrival process: "poisson" (default) or "map".
	Arrival string
	// Burstiness is the burst/calm rate ratio for "map" (default 8).
	Burstiness float64
	// BurstDwell is the expected sojourn per MAP state in ticks
	// (default 50,000).
	BurstDwell float64
	// Dist picks the service law: "pareto" (default) or "exp".
	Dist string
	// Alpha is the bounded-Pareto shape (default 1.5).
	Alpha float64
	// MinWork/MaxWork bound the Pareto work range in ticks (defaults
	// 1,000 and 1,000,000).
	MinWork, MaxWork int64
	// MeanWork is the exponential mean for "exp" (default 3,000).
	MeanWork float64
	// Malleable shapes the parallel-job mixture (default: 25% parallel,
	// widths 2–4, speedup exponent 0.85; MaxWidth 1 forces sequential).
	Malleable MalleableSpec
	// ArrivalCores is how many leading cores receive arrivals (default
	// Cores/4, min 1) — the skew that makes balancing matter.
	ArrivalCores int
	// IdleBalance enables the simulator's idle balancing.
	IdleBalance bool
}

// withDefaults returns cfg with every zero field resolved.
func (cfg SweepConfig) withDefaults() SweepConfig {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 2_000_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	if cfg.Burstiness == 0 {
		cfg.Burstiness = 8
	}
	if cfg.BurstDwell == 0 {
		cfg.BurstDwell = 50_000
	}
	if cfg.Dist == "" {
		cfg.Dist = "pareto"
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.5
	}
	if cfg.MinWork == 0 {
		cfg.MinWork = 1_000
	}
	if cfg.MaxWork == 0 {
		cfg.MaxWork = 1_000_000
	}
	if cfg.MeanWork == 0 {
		cfg.MeanWork = 3_000
	}
	if cfg.Malleable == (MalleableSpec{}) {
		cfg.Malleable = MalleableSpec{ParallelFraction: 0.25, MaxWidth: 4, SpeedupExponent: 0.85}
	}
	if cfg.ArrivalCores == 0 {
		cfg.ArrivalCores = cfg.Cores / 4
		if cfg.ArrivalCores < 1 {
			cfg.ArrivalCores = 1
		}
	}
	return cfg
}

// validate rejects structurally bad configs with an error (configs come
// from flags — they are input, not code).
func (cfg SweepConfig) validate() error {
	if len(cfg.Policies) == 0 {
		return fmt.Errorf("loadgen: sweep needs at least one policy")
	}
	for _, name := range cfg.Policies {
		if _, ok := policy.Lookup(name); !ok {
			return fmt.Errorf("loadgen: unknown policy %q (known: %v)", name, policy.Names())
		}
	}
	if len(cfg.Loads) == 0 {
		return fmt.Errorf("loadgen: sweep needs at least one load point")
	}
	prev := 0.0
	for _, l := range cfg.Loads {
		if l <= 0 || l > 0.99 || math.IsNaN(l) {
			return fmt.Errorf("loadgen: load %v outside (0, 0.99]", l)
		}
		if l <= prev {
			return fmt.Errorf("loadgen: loads must be strictly ascending, got %v after %v", l, prev)
		}
		prev = l
	}
	if cfg.Cores < 1 || cfg.ArrivalCores < 1 || cfg.ArrivalCores > cfg.Cores {
		return fmt.Errorf("loadgen: %d arrival cores on a %d-core machine", cfg.ArrivalCores, cfg.Cores)
	}
	if cfg.Groups < 1 || cfg.Groups > cfg.Cores {
		return fmt.Errorf("loadgen: %d groups over %d cores", cfg.Groups, cfg.Cores)
	}
	if cfg.Horizon < 1 {
		return fmt.Errorf("loadgen: horizon %d", cfg.Horizon)
	}
	switch cfg.Arrival {
	case "poisson", "map":
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q (want poisson or map)", cfg.Arrival)
	}
	switch cfg.Dist {
	case "pareto", "exp":
	default:
		return fmt.Errorf("loadgen: unknown service distribution %q (want pareto or exp)", cfg.Dist)
	}
	return nil
}

// serviceDist builds a fresh service distribution per the config.
func (cfg SweepConfig) serviceDist() ServiceDist {
	if cfg.Dist == "exp" {
		return NewExponential(cfg.MeanWork)
	}
	return NewBoundedPareto(cfg.Alpha, cfg.MinWork, cfg.MaxWork)
}

// arrivalProcess builds a fresh arrival process with the given mean gap.
func (cfg SweepConfig) arrivalProcess(meanGap float64) ArrivalProcess {
	if cfg.Arrival == "map" {
		return NewBurstyMAP(meanGap, cfg.Burstiness, cfg.BurstDwell)
	}
	return NewPoisson(meanGap)
}

// groups returns the contiguous-block group assignment, or nil when
// grouping is disabled.
func (cfg SweepConfig) groups() []int {
	if cfg.Groups <= 1 {
		return nil
	}
	g := make([]int, cfg.Cores)
	for i := range g {
		g[i] = i * cfg.Groups / cfg.Cores
	}
	return g
}

// DefaultLoads is the canonical 60–95% sweep in 5-point steps.
func DefaultLoads() []float64 {
	var loads []float64
	for m := 60; m <= 95; m += 5 {
		loads = append(loads, float64(m)/100)
	}
	return loads
}

// Quantiles summarizes one latency distribution. P-fields use the
// histogram's upper-edge convention (≤ 1/32 relative error).
type Quantiles struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Point is one (policy, load) measurement. Latency covers completed
// jobs (arrival → last task's work completion); the wasted-cores fields
// are integrated over the loaded window only (not the drain), so they
// correlate 1:1 with the load target.
type Point struct {
	Load              float64   `json:"load"`
	OfferedUtil       float64   `json:"offered_util"`
	JobsArrived       int64     `json:"jobs_arrived"`
	JobsCompleted     int64     `json:"jobs_completed"`
	Latency           Quantiles `json:"latency"`
	WaitP99           int64     `json:"wait_p99"`
	Steals            int64     `json:"steals"`
	StealFails        int64     `json:"steal_fails"`
	WastedCoreTicks   float64   `json:"wasted_core_ticks"`
	WastedPct         float64   `json:"wasted_pct"`
	ViolationEpisodes int64     `json:"violation_episodes"`
	LongestViolation  int64     `json:"longest_violation_ticks"`
}

// PolicyCurve is one policy's load curve plus the merged distribution
// over every point (the whole-sweep tail).
type PolicyCurve struct {
	Policy  string    `json:"policy"`
	Points  []Point   `json:"points"`
	Overall Quantiles `json:"overall"`
}

// Report is the sweep result. Field order is the wire format: like
// verify.ReportJSON it encodes via plain structs in declaration order,
// so equal contents yield identical bytes — nothing here may move to
// map-backed or reflection-ordered encodings.
type Report struct {
	Version      int           `json:"version"`
	Workload     string        `json:"workload"`
	Seed         uint64        `json:"seed"`
	Cores        int           `json:"cores"`
	Groups       int           `json:"groups"`
	ArrivalCores int           `json:"arrival_cores"`
	Horizon      int64         `json:"horizon"`
	Arrival      string        `json:"arrival"`
	Service      string        `json:"service"`
	Malleable    string        `json:"malleable"`
	Loads        []float64     `json:"loads"`
	Policies     []PolicyCurve `json:"policies"`
}

// ReportJSON renders r in the canonical indented encoding: fixed seed in,
// identical bytes out.
func ReportJSON(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReportFromJSON decodes and validates a sweep report: schema version,
// workload kind, registered policy names, and per-curve point counts
// matching the load grid. CI's bench leg uses it to fail on malformed
// reports.
func ReportFromJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: bad report JSON: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("loadgen: report version %d, want %d", r.Version, ReportVersion)
	}
	if r.Workload != "service" {
		return nil, fmt.Errorf("loadgen: report workload %q, want service", r.Workload)
	}
	if len(r.Policies) == 0 || len(r.Loads) == 0 {
		return nil, fmt.Errorf("loadgen: report has no policies or no loads")
	}
	for _, c := range r.Policies {
		if _, ok := policy.Lookup(c.Policy); !ok {
			return nil, fmt.Errorf("loadgen: report names unknown policy %q", c.Policy)
		}
		if len(c.Points) != len(r.Loads) {
			return nil, fmt.Errorf("loadgen: policy %q has %d points for %d loads",
				c.Policy, len(c.Points), len(r.Loads))
		}
		for i, pt := range c.Points {
			if pt.Load != r.Loads[i] {
				return nil, fmt.Errorf("loadgen: policy %q point %d at load %v, grid says %v",
					c.Policy, i, pt.Load, r.Loads[i])
			}
		}
	}
	return &r, nil
}

// RunSweep measures every (policy, load) point of the configured sweep.
// Cancellation propagates into the event loop of the running simulation
// (not just between points); on cancellation the partial report built so
// far is returned alongside ctx's error.
func RunSweep(ctx context.Context, cfg SweepConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dist := cfg.serviceDist()
	rep := &Report{
		Version:      ReportVersion,
		Workload:     "service",
		Seed:         cfg.Seed,
		Cores:        cfg.Cores,
		Groups:       cfg.Groups,
		ArrivalCores: cfg.ArrivalCores,
		Horizon:      cfg.Horizon,
		Arrival:      cfg.arrivalProcess(1).Name(),
		Service:      dist.Name(),
		Malleable:    cfg.Malleable.String(),
		Loads:        cfg.Loads,
	}
	for pi, name := range cfg.Policies {
		curve := PolicyCurve{Policy: name}
		overall := newLatencyHistogram()
		for li, load := range cfg.Loads {
			pt, svc, err := cfg.runPoint(ctx, name, load, pointSeed(cfg.Seed, uint64(pi), uint64(li)))
			if err != nil {
				return rep, err
			}
			overall.Merge(svc.Latency())
			curve.Points = append(curve.Points, pt)
		}
		curve.Overall = quantilesOf(overall)
		rep.Policies = append(rep.Policies, curve)
	}
	return rep, nil
}

// runPoint runs one (policy, load) simulation: a loaded window of
// Horizon ticks, then a half-horizon drain so jobs in flight at the cut
// can finish (uncensored tails). Wasted-core accounting is snapshotted
// at the cut.
func (cfg SweepConfig) runPoint(ctx context.Context, name string, load float64, seed uint64) (Point, *Service, error) {
	p, err := policy.New(name)
	if err != nil {
		return Point{}, nil, err
	}
	dist := cfg.serviceDist()
	meanGap := cfg.Malleable.ExpectedCPU(dist.Mean()) / (load * float64(cfg.Cores))
	arrivalCores := make([]int, cfg.ArrivalCores)
	for i := range arrivalCores {
		arrivalCores[i] = i
	}
	svc := &Service{
		Arrivals:     cfg.arrivalProcess(meanGap),
		Work:         dist,
		Malleable:    cfg.Malleable,
		Horizon:      cfg.Horizon,
		ArrivalCores: arrivalCores,
	}
	s := sim.New(sim.Config{
		Cores:       cfg.Cores,
		Policy:      p,
		Groups:      cfg.groups(),
		Seed:        seed,
		IdleBalance: cfg.IdleBalance,
	})
	svc.Setup(s)
	loaded, err := s.RunContext(ctx, cfg.Horizon)
	if err != nil {
		return Point{}, nil, err
	}
	if _, err := s.RunContext(ctx, cfg.Horizon+cfg.Horizon/2); err != nil {
		return Point{}, nil, err
	}
	return Point{
		Load:              load,
		OfferedUtil:       svc.OfferedUtilization(cfg.Cores),
		JobsArrived:       svc.Arrived(),
		JobsCompleted:     svc.Completed(),
		Latency:           quantilesOf(svc.Latency()),
		WaitP99:           loaded.WaitTime.Quantile(0.99),
		Steals:            loaded.Steals,
		StealFails:        loaded.StealFails,
		WastedCoreTicks:   loaded.WastedCoreTicks,
		WastedPct:         loaded.WastedPct,
		ViolationEpisodes: loaded.ViolationEpisodes,
		LongestViolation:  loaded.LongestViolationTicks,
	}, svc, nil
}

// newLatencyHistogram matches the resolution the Service workload
// records at, so per-point histograms merge into the overall curve.
func newLatencyHistogram() *metrics.Histogram { return metrics.NewHistogram(32) }

// quantilesOf summarizes a latency histogram.
func quantilesOf(h *metrics.Histogram) Quantiles {
	if h == nil || h.Count() == 0 {
		return Quantiles{Max: -1}
	}
	return Quantiles{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// pointSeed derives the per-(policy, load) RNG seed from the sweep seed
// by splitmix64-style mixing, so every point gets an independent stream
// that is stable under re-ordering of the grid.
func pointSeed(seed, pi, li uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(pi+1) + 0xBF58476D1CE4E5B9*(li+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}
