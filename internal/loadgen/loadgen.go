// Package loadgen is the open-loop load-generation subsystem: seedable
// arrival processes (Poisson and a bursty Markov-modulated process),
// heavy-tailed and exponential service-time distributions, and malleable
// parallel jobs with per-job speedup curves s(k). It exists to answer
// the question the closed-loop workload zoo cannot: what does a
// balancing policy do to *tail* latency at 60–95% utilization, where
// the paper's wasted-cores bugs turn transient imbalance into long
// queueing episodes.
//
// Everything is deterministic given a seed: all randomness flows through
// the simulator's RNG (one xorshift64* stream per run), and all sampling
// happens at Setup time, so a fixed seed yields byte-identical arrival
// sequences, service times and sweep reports. The arrival/service model
// and the malleable-job speedup framing follow "Towards Optimality in
// Parallel Job Scheduling" (Berg, Dorsman, Harchol-Balter).
package loadgen

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalProcess generates open-loop interarrival gaps. Implementations
// consume randomness only from the RNG passed to Next, so a fresh
// process replayed against an equally-seeded RNG reproduces the exact
// gap sequence.
type ArrivalProcess interface {
	// Name identifies the process in reports.
	Name() string
	// Next returns the gap to the next arrival, always ≥ 1 tick.
	Next(rng *sim.RNG) int64
	// MeanGap returns the analytic long-run mean interarrival gap in
	// ticks (total elapsed time over arrivals, which for the modulated
	// process is the harmonic — not arithmetic — mix of its states).
	MeanGap() float64
}

// Poisson is the memoryless arrival process: exponential interarrival
// gaps with a fixed mean. It is the M in the M/G/k framing of the
// service workload.
type Poisson struct {
	meanGap float64
}

// NewPoisson returns a Poisson process with the given mean interarrival
// gap in ticks.
func NewPoisson(meanGap float64) *Poisson {
	if meanGap <= 0 || math.IsNaN(meanGap) || math.IsInf(meanGap, 0) {
		panic(fmt.Sprintf("loadgen: NewPoisson(%v)", meanGap))
	}
	return &Poisson{meanGap: meanGap}
}

// Name implements ArrivalProcess.
func (p *Poisson) Name() string { return "poisson" }

// Next implements ArrivalProcess.
func (p *Poisson) Next(rng *sim.RNG) int64 { return rng.ExpTicks(p.meanGap) }

// MeanGap implements ArrivalProcess.
func (p *Poisson) MeanGap() float64 { return p.meanGap }

// BurstyMAP is a two-state Markov-modulated arrival process: a calm
// state emitting Poisson arrivals at a low rate and a burst state
// emitting them Burstiness times faster, with geometrically distributed
// sojourns of equal expected duration (Dwell ticks) in each state. It
// models the on/off traffic that exposes slow rebalancing: within a
// burst the arrival cores overload faster than a periodic balance round
// can drain them, so tail latency separates policies that look identical
// under smooth Poisson load.
//
// State switches happen at arrival epochs (a Markovian arrival process
// of order 2): after each arrival the process flips state with
// probability gap/Dwell, making the expected time per sojourn Dwell in
// both states and the long-run time split 50/50. The calm gap is chosen
// so the long-run mean gap equals the requested meanGap exactly:
// arrivals per cycle = Dwell/calm + Dwell/burst over 2·Dwell of time,
// hence calm = meanGap·(1+Burstiness)/2.
type BurstyMAP struct {
	calmGap, burstGap float64
	dwell             float64
	meanGap           float64
	burstiness        float64
	inBurst           bool
}

// NewBurstyMAP returns a bursty process with the given long-run mean
// interarrival gap, burst-to-calm rate ratio (> 1) and expected sojourn
// duration per state in ticks. Dwell is clamped up to the calm gap so
// switch probabilities stay ≤ 1.
func NewBurstyMAP(meanGap, burstiness, dwell float64) *BurstyMAP {
	if meanGap <= 0 || math.IsNaN(meanGap) || math.IsInf(meanGap, 0) {
		panic(fmt.Sprintf("loadgen: NewBurstyMAP mean gap %v", meanGap))
	}
	if burstiness <= 1 {
		panic(fmt.Sprintf("loadgen: NewBurstyMAP burstiness %v (want > 1)", burstiness))
	}
	calm := meanGap * (1 + burstiness) / 2
	if dwell < calm {
		dwell = calm
	}
	return &BurstyMAP{
		calmGap:    calm,
		burstGap:   calm / burstiness,
		dwell:      dwell,
		meanGap:    meanGap,
		burstiness: burstiness,
	}
}

// Name implements ArrivalProcess.
func (b *BurstyMAP) Name() string {
	return fmt.Sprintf("map(burst=%g,dwell=%g)", b.burstiness, b.dwell)
}

// Next implements ArrivalProcess.
func (b *BurstyMAP) Next(rng *sim.RNG) int64 {
	gap := b.calmGap
	if b.inBurst {
		gap = b.burstGap
	}
	d := rng.ExpTicks(gap)
	if rng.Float64() < float64(d)/b.dwell {
		b.inBurst = !b.inBurst
	}
	return d
}

// MeanGap implements ArrivalProcess.
func (b *BurstyMAP) MeanGap() float64 { return b.meanGap }
