package loadgen

import (
	"fmt"
	"math"
)

// MalleableSpec describes the parallel structure of the job population:
// with probability ParallelFraction a job is malleable and runs as k
// parallel tasks (k uniform on [2, MaxWidth]); the rest are sequential.
// A malleable job of total work W on k cores finishes after W/s(k)
// ticks of wall-clock compute per task, where the speedup curve
//
//	s(k) = k^SpeedupExponent
//
// is the concave family of Berg et al.: exponent 1 is embarrassingly
// parallel (EQUI's favorite), smaller exponents waste cycles on
// coordination — the job occupies k·W/s(k) ≥ W core-ticks, which is the
// overhead an optimal allocation policy must weigh against finishing
// elephants sooner. The zero value means "all sequential".
type MalleableSpec struct {
	// ParallelFraction is the probability a job is parallel, in [0, 1].
	ParallelFraction float64
	// MaxWidth is the largest task count of a parallel job (≥ 2 when
	// ParallelFraction > 0).
	MaxWidth int
	// SpeedupExponent is the exponent of s(k) = k^e, in (0, 1].
	SpeedupExponent float64
}

// validate panics on a structurally invalid spec — specs are code, not
// input.
func (m MalleableSpec) validate() {
	if m.ParallelFraction < 0 || m.ParallelFraction > 1 || math.IsNaN(m.ParallelFraction) {
		panic(fmt.Sprintf("loadgen: ParallelFraction %v", m.ParallelFraction))
	}
	if m.ParallelFraction == 0 {
		return
	}
	if m.MaxWidth < 2 {
		panic(fmt.Sprintf("loadgen: MaxWidth %d with parallel jobs (want ≥ 2)", m.MaxWidth))
	}
	if m.SpeedupExponent <= 0 || m.SpeedupExponent > 1 {
		panic(fmt.Sprintf("loadgen: SpeedupExponent %v (want in (0, 1])", m.SpeedupExponent))
	}
}

// Speedup returns s(k) for this spec (s(1) = 1 always).
func (m MalleableSpec) Speedup(k int) float64 {
	if k <= 1 {
		return 1
	}
	return math.Pow(float64(k), m.SpeedupExponent)
}

// String renders the spec for report headers.
func (m MalleableSpec) String() string {
	if m.ParallelFraction == 0 {
		return "sequential"
	}
	return fmt.Sprintf("p=%g,kmax=%d,sigma=%g", m.ParallelFraction, m.MaxWidth, m.SpeedupExponent)
}

// ExpectedCPU returns the expected core-ticks one job occupies, given
// the mean total work: the width mixture of k·(W/s(k) + slack), where
// slack accounts for the simulator's one-tick completion observation
// per task plus the expected discretization half-tick. This is the
// quantity that converts a target utilization into an arrival rate.
func (m MalleableSpec) ExpectedCPU(meanWork float64) float64 {
	const slack = 1.5
	seq := meanWork + slack
	if m.ParallelFraction == 0 {
		return seq
	}
	widths := float64(m.MaxWidth - 1)
	var par float64
	for k := 2; k <= m.MaxWidth; k++ {
		par += (float64(k)*(meanWork/m.Speedup(k)) + float64(k)*slack) / widths
	}
	return (1-m.ParallelFraction)*seq + m.ParallelFraction*par
}
