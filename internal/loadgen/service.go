package loadgen

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Service is the open-loop service workload: jobs arrive on the
// ArrivalCores (the "network softirq" cores) according to Arrivals,
// carry Work-distributed total work, and — when malleable — fork into k
// parallel tasks shaped by the speedup curve. Arrivals do not wait for
// completions: at high load the backlog is unbounded, which is exactly
// what makes p99/p999 honest (a closed loop self-throttles and hides
// queueing collapse).
//
// Service satisfies the workload zoo's Workload interface. Every sample
// is drawn at Setup time from the simulator's seeded RNG, so one seed
// fixes the complete arrival/work/width sequence.
type Service struct {
	// Arrivals generates interarrival gaps. Required.
	Arrivals ArrivalProcess
	// Work samples per-job total work. Required.
	Work ServiceDist
	// Malleable shapes the parallel-job mixture (zero = all sequential).
	Malleable MalleableSpec
	// Horizon bounds arrival generation: jobs arrive in (start, Horizon).
	// Required.
	Horizon int64
	// ArrivalCores lists the cores job tasks are born on, round-robin
	// across tasks. Empty means core 0 — the fully skewed case.
	ArrivalCores []int
	// Weight is the task load weight (default 1024).
	Weight int64

	arrived   int64
	completed int64
	offered   int64
	latency   *metrics.Histogram
}

// job tracks one (possibly parallel) job's completion.
type job struct {
	arrival   int64
	remaining int
}

// Name implements the zoo's Workload interface.
func (w *Service) Name() string {
	return fmt.Sprintf("service(%s/%s/%s)", w.Arrivals.Name(), w.Work.Name(), w.Malleable)
}

// Setup implements the zoo's Workload interface: it pre-samples every
// arrival up to the horizon and schedules the jobs' tasks.
func (w *Service) Setup(s *sim.Simulator) {
	if w.Arrivals == nil || w.Work == nil {
		panic("loadgen: Service needs Arrivals and Work")
	}
	if w.Horizon <= s.Clock() {
		panic(fmt.Sprintf("loadgen: Service.Horizon %d not beyond clock %d", w.Horizon, s.Clock()))
	}
	w.Malleable.validate()
	cores := w.ArrivalCores
	if len(cores) == 0 {
		cores = []int{0}
	}
	weight := w.Weight
	if weight <= 0 {
		weight = 1024
	}
	if w.latency == nil {
		w.latency = metrics.NewHistogram(32)
	}
	rng := s.RNG()
	t := s.Clock()
	rr := 0
	for {
		t += w.Arrivals.Next(rng)
		if t >= w.Horizon {
			return
		}
		work := w.Work.Sample(rng)
		k := 1
		if w.Malleable.ParallelFraction > 0 && rng.Float64() < w.Malleable.ParallelFraction {
			k = 2 + rng.Intn(w.Malleable.MaxWidth-1)
		}
		perTask := int64(math.Ceil(float64(work) / w.Malleable.Speedup(k)))
		if perTask < 1 {
			perTask = 1
		}
		j := &job{arrival: t, remaining: k}
		w.arrived++
		w.offered += int64(k) * (perTask + 1)
		for i := 0; i < k; i++ {
			s.SpawnAt(t, cores[rr%len(cores)], weight, w.jobTask(j, perTask))
			rr++
		}
	}
}

// jobTask builds one task of a job: compute the task's share, then (at
// the exact completion instant, observed via the yield transition) close
// out the job if this was its last piece, and exit on a final one-tick
// stub. The stub is the price of observing completion time exactly; it
// is accounted for in both the offered-work counter and
// MalleableSpec.ExpectedCPU.
func (w *Service) jobTask(j *job, run int64) sim.Behavior {
	phase := 0
	return sim.BehaviorFunc(func(now int64, _ *sim.RNG) sim.Action {
		if phase == 0 {
			phase = 1
			return sim.Action{RunFor: run, Then: sim.ThenYield}
		}
		if phase == 1 {
			phase = 2
			j.remaining--
			if j.remaining == 0 {
				w.completed++
				w.latency.Record(now - j.arrival)
			}
		}
		return sim.Action{RunFor: 1, Then: sim.ThenExit}
	})
}

// Arrived returns the number of jobs generated.
func (w *Service) Arrived() int64 { return w.arrived }

// Completed returns the number of jobs whose every task finished.
func (w *Service) Completed() int64 { return w.completed }

// Latency returns the job sojourn-time distribution (arrival → last
// task's work completion) over completed jobs. Nil before Setup.
func (w *Service) Latency() *metrics.Histogram { return w.latency }

// OfferedCoreTicks returns the total core-ticks of work generated,
// including parallelization overhead and the per-task completion stubs.
func (w *Service) OfferedCoreTicks() int64 { return w.offered }

// OfferedUtilization returns offered work as a fraction of the
// machine's capacity over the horizon — the empirical ρ the sweep
// reports next to the target load.
func (w *Service) OfferedUtilization(cores int) float64 {
	if cores <= 0 || w.Horizon <= 0 {
		return 0
	}
	return float64(w.offered) / (float64(cores) * float64(w.Horizon))
}
