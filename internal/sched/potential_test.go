package sched

import (
	"testing"
	"testing/quick"
)

func TestPairwiseImbalance(t *testing.T) {
	p := delta2()
	cases := []struct {
		loads []int
		want  int64
	}{
		{[]int{1, 1, 1}, 0},
		{[]int{0, 2}, 4},     // |0-2| + |2-0|
		{[]int{0, 1, 2}, 8},  // pairs (0,1)=1,(0,2)=2,(1,2)=1 each twice
		{[]int{3}, 0},        // single core
		{[]int{0, 0, 4}, 16}, // (0,4)+(0,4) = 8, twice
	}
	for _, tc := range cases {
		m := MachineFromLoads(tc.loads...)
		if got := PairwiseImbalance(p, m); got != tc.want {
			t.Errorf("PairwiseImbalance(%v) = %d, want %d", tc.loads, got, tc.want)
		}
	}
}

func TestMaxMinImbalance(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 3, 1)
	if got := MaxMinImbalance(p, m); got != 3 {
		t.Errorf("MaxMinImbalance = %d, want 3", got)
	}
	balanced := MachineFromLoads(2, 2)
	if got := MaxMinImbalance(p, balanced); got != 0 {
		t.Errorf("MaxMinImbalance = %d, want 0", got)
	}
}

func TestStealDecreasesPotentialLocal(t *testing.T) {
	cases := []struct {
		thief, victim, moved int64
		want                 bool
	}{
		{0, 2, 1, true},  // 0/2 -> 1/1: diff 2 -> 0
		{0, 3, 1, true},  // 0/3 -> 1/2: diff 3 -> 1
		{1, 2, 1, false}, // 1/2 -> 2/1: diff 1 -> 1, ping-pong!
		{0, 2, 2, false}, // 0/2 -> 2/0: full swap, diff unchanged
		{0, 4, 2, true},  // 0/4 -> 2/2
		{2, 2, 1, false}, // balanced, stealing makes it worse
		{0, 2, 0, false}, // nothing moved
		{0, 1, 1, false}, // 0/1 -> 1/0: swap
	}
	for _, tc := range cases {
		if got := StealDecreasesPotential(tc.thief, tc.victim, tc.moved); got != tc.want {
			t.Errorf("StealDecreasesPotential(%d,%d,%d) = %v, want %v",
				tc.thief, tc.victim, tc.moved, got, tc.want)
		}
	}
}

func TestDelta2StealStrictlyDecreasesGlobalPotential(t *testing.T) {
	// §4.3's second proof obligation: every successful Delta2 steal
	// strictly decreases the pairwise imbalance. Spot-check a trajectory.
	p := delta2()
	m := MachineFromLoads(0, 5, 1, 3)
	prev := PairwiseImbalance(p, m)
	for i := 0; i < 20; i++ {
		res := SequentialRound(p, m)
		if res.TasksMoved() == 0 {
			break
		}
		cur := PairwiseImbalance(p, m)
		if cur >= prev {
			t.Fatalf("round %d: potential %d -> %d did not decrease", i, prev, cur)
		}
		prev = cur
	}
	if !m.WorkConserved() {
		t.Errorf("machine not work-conserved at fixpoint: %v", m.Loads())
	}
}

func TestGreedyBuggyStealDoesNotDecreasePotential(t *testing.T) {
	// The §4.3 counterexample: a greedy steal between loads 1 and 2 keeps
	// the potential constant, which is why the livelock exists.
	if StealDecreasesPotential(1, 2, 1) {
		t.Error("the ping-pong steal must not decrease the potential")
	}
}

func TestPotentialBound(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 4)
	// d = 8; minimum drop per steal with unit tasks is 2... but for a
	// two-core machine each steal moves the pair 2 closer twice = drop 4.
	bound := PotentialBound(p, m, 2)
	if bound != 4 {
		t.Errorf("PotentialBound = %d, want 4", bound)
	}
	// Count actual steals to fixpoint; must be <= bound.
	steals := 0
	for i := 0; i < 20; i++ {
		res := SequentialRound(p, m)
		steals += res.Successes()
		if res.TasksMoved() == 0 {
			break
		}
	}
	if int64(steals) > bound {
		t.Errorf("observed %d steals, potential bound %d", steals, bound)
	}
}

func TestPotentialBoundPanicsOnZeroDrop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PotentialBound with zero drop did not panic")
		}
	}()
	PotentialBound(delta2(), MachineFromLoads(1), 0)
}

// Property: the pairwise imbalance is zero iff all loads are equal, and is
// always non-negative and even (each pair counted twice).
func TestPairwiseImbalanceProperty(t *testing.T) {
	p := delta2()
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		loads := make([]int, len(raw))
		allEq := true
		for i, r := range raw {
			loads[i] = int(r % 5)
			if loads[i] != loads[0] {
				allEq = false
			}
		}
		m := MachineFromLoads(loads...)
		d := PairwiseImbalance(p, m)
		if d < 0 || d%2 != 0 {
			return false
		}
		return (d == 0) == allEq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a single-task steal between cores whose loads differ by >= 2
// (the Delta2 condition) always satisfies the local decrease criterion —
// the exact inductive step of the paper's bounded-successes proof.
func TestDelta2LocalDecreaseProperty(t *testing.T) {
	f := func(thief, victim uint8) bool {
		tl, vl := int64(thief%16), int64(victim%16)
		if vl-tl < 2 {
			return true // filter would reject; nothing to prove
		}
		return StealDecreasesPotential(tl, vl, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: global pairwise imbalance never increases across a concurrent
// Delta2 round, for any rotation order.
func TestConcurrentRoundPotentialMonotone(t *testing.T) {
	p := delta2()
	f := func(raw []uint8, rot uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 5)
		}
		m := MachineFromLoads(loads...)
		before := PairwiseImbalance(p, m)
		n := len(loads)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + int(rot)) % n
		}
		ConcurrentRound(p, m, order)
		return PairwiseImbalance(p, m) <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
