package sched

import (
	"fmt"
	"strings"
)

// Core is the scheduling state of one CPU: the task currently running (if
// any) and the runqueue of ready tasks, exactly the `Core` case class of
// Listing 1 in the paper. Node and Group carry topology information used
// only by step-2 heuristics and hierarchical policies.
//
// Core is a plain value-semantics model object: the verification code
// clones and mutates machines freely. Synchronization for the concurrent
// executors lives in the round executors and in internal/engine, not here.
type Core struct {
	// ID is the core's index within its machine, in [0, n).
	ID int
	// Node is the NUMA node this core belongs to (0 for flat machines).
	Node int
	// Group is the scheduling group for hierarchical balancing
	// (§5 of the paper). 0 for flat machines.
	Group int
	// Current is the task currently running, or nil if none.
	Current *Task
	// Ready is the runqueue: tasks waiting to run on this core.
	Ready []*Task
	// Offline marks a fail-stopped core: it executes nothing, steals
	// nothing and is never chosen as a victim. Tasks still sitting on an
	// offline core are orphans (see Machine.Orphans) until a rescue or a
	// revive re-homes them. The zero value (online) keeps every healthy
	// machine byte-identical to the pre-fault model.
	Offline bool
}

// NewCore returns an empty core with the given ID on node/group 0.
func NewCore(id int) *Core {
	return &Core{ID: id}
}

// NThreads is the total number of threads owned by the core, counting the
// current task — the `load()` of Listing 1 for unweighted policies.
func (c *Core) NThreads() int {
	n := len(c.Ready)
	if c.Current != nil {
		n++
	}
	return n
}

// WeightSum is the total weight of all threads owned by the core, counting
// the current task. Weighted policies balance this quantity.
func (c *Core) WeightSum() int64 {
	var w int64
	if c.Current != nil {
		w += c.Current.Weight
	}
	for _, t := range c.Ready {
		w += t.Weight
	}
	return w
}

// Idle reports whether the core has no current task and an empty runqueue
// (§3.1: "a core that has no current thread and no thread in its
// runqueue").
func (c *Core) Idle() bool {
	return c.Current == nil && len(c.Ready) == 0
}

// Overloaded reports whether the core owns two or more threads, counting
// the current one (§3.1: "a core that has two or more threads, including
// the current thread").
func (c *Core) Overloaded() bool {
	return c.NThreads() >= 2
}

// Clone returns a deep copy of the core.
func (c *Core) Clone() *Core {
	nc := &Core{ID: c.ID, Node: c.Node, Group: c.Group, Current: c.Current.Clone(), Offline: c.Offline}
	if len(c.Ready) > 0 {
		nc.Ready = make([]*Task, len(c.Ready))
		for i, t := range c.Ready {
			nc.Ready[i] = t.Clone()
		}
	}
	return nc
}

// Push appends a task to the tail of the runqueue.
func (c *Core) Push(t *Task) {
	if t == nil {
		panic("sched: Push(nil) on core " + fmt.Sprint(c.ID))
	}
	c.Ready = append(c.Ready, t)
}

// Pop removes and returns the task at the head of the runqueue, or nil if
// the runqueue is empty.
func (c *Core) Pop() *Task {
	if len(c.Ready) == 0 {
		return nil
	}
	t := c.Ready[0]
	copy(c.Ready, c.Ready[1:])
	c.Ready[len(c.Ready)-1] = nil
	c.Ready = c.Ready[:len(c.Ready)-1]
	return t
}

// PopTail removes and returns the task at the tail of the runqueue, or nil
// if the runqueue is empty. Stealing takes from the tail, matching the
// common deque discipline of work-stealing runtimes.
func (c *Core) PopTail() *Task {
	if len(c.Ready) == 0 {
		return nil
	}
	t := c.Ready[len(c.Ready)-1]
	c.Ready[len(c.Ready)-1] = nil
	c.Ready = c.Ready[:len(c.Ready)-1]
	return t
}

// Remove removes the task with the given ID from the runqueue and returns
// it, or nil if the task is not queued. The current task cannot be removed
// this way: migrating a running thread is outside the paper's model.
func (c *Core) Remove(id TaskID) *Task {
	for i, t := range c.Ready {
		if t.ID == id {
			c.Ready = append(c.Ready[:i], c.Ready[i+1:]...)
			return t
		}
	}
	return nil
}

// ScheduleLocal promotes the head of the runqueue to Current if the core
// is not running anything. It returns the newly scheduled task, or nil if
// nothing changed. This models the core's local scheduler picking work; it
// does not change NThreads or WeightSum, hence never affects the
// work-conservation predicates.
func (c *Core) ScheduleLocal() *Task {
	if c.Current != nil || len(c.Ready) == 0 {
		return nil
	}
	c.Current = c.Pop()
	return c.Current
}

// String renders the core as e.g. "c2[run:task(5) rq:3]".
func (c *Core) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%d[", c.ID)
	if c.Offline {
		b.WriteString("off ")
	}
	if c.Current != nil {
		fmt.Fprintf(&b, "run:%v ", c.Current)
	} else {
		b.WriteString("run:- ")
	}
	fmt.Fprintf(&b, "rq:%d]", len(c.Ready))
	return b.String()
}
