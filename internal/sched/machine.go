package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Machine is the global scheduler state: one Core per CPU. The verifier
// treats machines as values (clone, mutate, compare); the simulator and
// the concurrent executor wrap a Machine with synchronization.
type Machine struct {
	Cores []*Core

	// Faults is an optional fail-stop fault script attached by the
	// state-space enumerator: event i fires at round boundary i. The
	// round executors never consult it — the verifier's degraded-mode
	// checkers (and the backends' fault schedules) apply the events
	// explicitly via FailCore/ReviveCore.
	Faults []FaultEvent

	nextID TaskID // next fresh task ID for Spawn
}

// FaultEvent is one fail-stop hotplug event: core Core goes offline
// (Revive=false) or comes back online (Revive=true).
type FaultEvent struct {
	Core   int
	Revive bool
}

// String renders the event as e.g. "fail(2)" or "revive(0)".
func (e FaultEvent) String() string {
	if e.Revive {
		return fmt.Sprintf("revive(%d)", e.Core)
	}
	return fmt.Sprintf("fail(%d)", e.Core)
}

// NewMachine returns a machine with n empty cores on a flat topology.
func NewMachine(n int) *Machine {
	if n <= 0 {
		panic(fmt.Sprintf("sched: machine needs at least one core, got %d", n))
	}
	m := &Machine{Cores: make([]*Core, n)}
	for i := range m.Cores {
		m.Cores[i] = NewCore(i)
	}
	return m
}

// MachineFromLoads builds a machine where core i owns loads[i] unit-weight
// threads. If a core owns at least one thread, one of them is its current
// task and the rest sit in the runqueue — the convention used throughout
// the paper's examples (e.g. the 0/1/2 counterexample machine of §4.3).
func MachineFromLoads(loads ...int) *Machine {
	m := NewMachine(len(loads))
	for i, n := range loads {
		if n < 0 {
			panic(fmt.Sprintf("sched: negative load %d for core %d", n, i))
		}
		for j := 0; j < n; j++ {
			t := NewTask(m.nextID)
			m.nextID++
			if j == 0 {
				m.Cores[i].Current = t
			} else {
				m.Cores[i].Push(t)
			}
		}
	}
	return m
}

// CoreSpec describes one core's state for MachineFromSpec: whether a task
// is running and the weights of the queued tasks. It lets tests and the
// exhaustive checker build every corner-case state, including cores that
// have ready tasks but nothing running (e.g. just after the current task
// exited).
type CoreSpec struct {
	// Running is the weight of the current task, or 0 for none.
	Running int64
	// Queued holds the weights of the runqueue tasks, head first.
	Queued []int64
}

// MachineFromSpec builds a machine from explicit per-core specs.
func MachineFromSpec(specs ...CoreSpec) *Machine {
	m := NewMachine(len(specs))
	for i, s := range specs {
		if s.Running > 0 {
			m.Cores[i].Current = NewWeightedTask(m.nextID, s.Running)
			m.nextID++
		}
		for _, w := range s.Queued {
			m.Cores[i].Push(NewWeightedTask(m.nextID, w))
			m.nextID++
		}
	}
	return m
}

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.Cores) }

// Core returns the core with the given ID.
func (m *Machine) Core(id int) *Core { return m.Cores[id] }

// Spawn creates a fresh task with the given weight and pushes it on core
// id's runqueue, returning the task.
func (m *Machine) Spawn(id int, weight int64) *Task {
	t := NewWeightedTask(m.nextID, weight)
	m.nextID++
	m.Cores[id].Push(t)
	return t
}

// TotalThreads counts every thread on the machine.
func (m *Machine) TotalThreads() int {
	n := 0
	for _, c := range m.Cores {
		n += c.NThreads()
	}
	return n
}

// TotalWeight sums every thread weight on the machine.
func (m *Machine) TotalWeight() int64 {
	var w int64
	for _, c := range m.Cores {
		w += c.WeightSum()
	}
	return w
}

// IdleCores returns the IDs of all idle cores.
func (m *Machine) IdleCores() []int {
	var ids []int
	for _, c := range m.Cores {
		if c.Idle() {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// OverloadedCores returns the IDs of all overloaded cores.
func (m *Machine) OverloadedCores() []int {
	var ids []int
	for _, c := range m.Cores {
		if c.Overloaded() {
			ids = append(ids, c.ID)
		}
	}
	return ids
}

// WorkConserved reports whether the machine currently satisfies the
// work-conservation predicate of §3.2: no core is idle while another core
// is overloaded. Offline cores are outside the predicate — they neither
// waste capacity by idling nor count as overloaded suppliers (their
// stranded work is the degraded predicate's concern; see
// DegradedWorkConserved). The scheduler-level property (existence of a
// finite N of rounds after which this holds) is checked by
// internal/verify.
func (m *Machine) WorkConserved() bool {
	idle, over := false, false
	for _, c := range m.Cores {
		if c.Offline {
			continue
		}
		if c.Idle() {
			idle = true
		}
		if c.Overloaded() {
			over = true
		}
		if idle && over {
			return false
		}
	}
	return true
}

// DegradedWorkConserved is the wasted-cores invariant restated over the
// online cores of a degraded machine: no online core may idle while
// either an online core is overloaded or any task sits stranded on an
// offline core. Counting orphans as waiting work is what separates a
// rescue-capable policy from one that merely balances the survivors.
// On a fully-online machine it coincides with WorkConserved.
func (m *Machine) DegradedWorkConserved() bool {
	idle, work := false, false
	for _, c := range m.Cores {
		if c.Offline {
			if c.NThreads() > 0 {
				work = true
			}
			continue
		}
		if c.Idle() {
			idle = true
		}
		if c.Overloaded() {
			work = true
		}
		if idle && work {
			return false
		}
	}
	return true
}

// FailCore fail-stops the core: it goes offline and its current task (if
// any) is demoted to the runqueue, so every thread it owned becomes an
// orphan awaiting rescue or revival. Failing an already-offline core is
// a no-op.
func (m *Machine) FailCore(id int) {
	c := m.Cores[id]
	if c.Offline {
		return
	}
	c.Offline = true
	if c.Current != nil {
		// Head of the queue: the interrupted task restarts first on
		// revival, and rescues drain from the tail like steals do.
		c.Ready = append([]*Task{c.Current}, c.Ready...)
		c.Current = nil
	}
}

// ReviveCore brings a failed core back online (hotplug add). Its
// stranded tasks become ordinary runnable work again. Reviving an online
// core is a no-op.
func (m *Machine) ReviveCore(id int) {
	m.Cores[id].Offline = false
}

// OnlineCores counts the cores currently online.
func (m *Machine) OnlineCores() int {
	n := 0
	for _, c := range m.Cores {
		if !c.Offline {
			n++
		}
	}
	return n
}

// Orphans returns the tasks stranded on offline cores, in core order.
func (m *Machine) Orphans() []*Task {
	var ts []*Task
	for _, c := range m.Cores {
		if !c.Offline {
			continue
		}
		if c.Current != nil {
			ts = append(ts, c.Current)
		}
		ts = append(ts, c.Ready...)
	}
	return ts
}

// Clone returns a deep copy of the machine. The fault script is shared
// (it is immutable once attached).
func (m *Machine) Clone() *Machine {
	nm := &Machine{Cores: make([]*Core, len(m.Cores)), Faults: m.Faults, nextID: m.nextID}
	for i, c := range m.Cores {
		nm.Cores[i] = c.Clone()
	}
	return nm
}

// Key returns a canonical encoding of the machine state for state-space
// hashing. Tasks are interchangeable up to weight, so each core is encoded
// as its current-task weight (0 if none) plus the sorted multiset of
// queued weights; offline cores carry a '!' prefix (healthy machines
// encode byte-identically to the pre-fault model). Core identity is
// preserved: policies may treat cores asymmetrically (NUMA, groups), so
// states that differ only by a core permutation are distinct keys.
func (m *Machine) Key() string {
	var b strings.Builder
	for i, c := range m.Cores {
		if i > 0 {
			b.WriteByte('|')
		}
		if c.Offline {
			b.WriteByte('!')
		}
		if c.Current != nil {
			fmt.Fprintf(&b, "%d", c.Current.Weight)
		} else {
			b.WriteByte('0')
		}
		b.WriteByte(':')
		ws := make([]int64, len(c.Ready))
		for j, t := range c.Ready {
			ws[j] = t.Weight
		}
		sort.Slice(ws, func(a, z int) bool { return ws[a] < ws[z] })
		for j, w := range ws {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", w)
		}
	}
	return b.String()
}

// Loads returns the per-core thread counts, mostly for tests and
// diagnostics.
func (m *Machine) Loads() []int {
	ls := make([]int, len(m.Cores))
	for i, c := range m.Cores {
		ls[i] = c.NThreads()
	}
	return ls
}

// String renders the machine as its per-core thread counts, e.g.
// "[0 1 2]".
func (m *Machine) String() string {
	return fmt.Sprint(m.Loads())
}

// Validate checks structural invariants: no nil tasks, no duplicate task
// IDs across the machine, positive weights. It returns an error describing
// the first violation, or nil. The round executors preserve these
// invariants; tests and the verifier call Validate after every transition.
func (m *Machine) Validate() error {
	seen := make(map[TaskID]int, m.TotalThreads())
	check := func(t *Task, core int, where string) error {
		if t.Weight <= 0 {
			return fmt.Errorf("sched: core %d %s task %d has non-positive weight %d", core, where, t.ID, t.Weight)
		}
		if prev, dup := seen[t.ID]; dup {
			return fmt.Errorf("sched: task %d appears on core %d and core %d", t.ID, prev, core)
		}
		seen[t.ID] = core
		return nil
	}
	for _, c := range m.Cores {
		if c.Current != nil {
			if err := check(c.Current, c.ID, "current"); err != nil {
				return err
			}
		}
		for _, t := range c.Ready {
			if t == nil {
				return fmt.Errorf("sched: core %d has a nil task in its runqueue", c.ID)
			}
			if err := check(t, c.ID, "queued"); err != nil {
				return err
			}
		}
	}
	return nil
}
