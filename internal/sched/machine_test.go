package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMachineFromLoads(t *testing.T) {
	m := MachineFromLoads(0, 1, 2)
	if m.NumCores() != 3 {
		t.Fatalf("NumCores = %d, want 3", m.NumCores())
	}
	if got := m.Loads(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Loads = %v, want [0 1 2]", got)
	}
	// Convention: the first thread of a loaded core is its current task.
	if m.Core(1).Current == nil || len(m.Core(1).Ready) != 0 {
		t.Errorf("core 1: current=%v ready=%d", m.Core(1).Current, len(m.Core(1).Ready))
	}
	if m.Core(2).Current == nil || len(m.Core(2).Ready) != 1 {
		t.Errorf("core 2: current=%v ready=%d", m.Core(2).Current, len(m.Core(2).Ready))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMachineFromLoadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative load did not panic")
		}
	}()
	MachineFromLoads(1, -1)
}

func TestNewMachinePanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMachine(0) did not panic")
		}
	}()
	NewMachine(0)
}

func TestMachineFromSpec(t *testing.T) {
	m := MachineFromSpec(
		CoreSpec{Running: 1024, Queued: []int64{512, 256}},
		CoreSpec{},
		CoreSpec{Queued: []int64{1024}},
	)
	if got := m.Core(0).WeightSum(); got != 1792 {
		t.Errorf("core 0 WeightSum = %d, want 1792", got)
	}
	if !m.Core(1).Idle() {
		t.Error("core 1 should be idle")
	}
	// Core 2 has a queued task but nothing running: not idle.
	if m.Core(2).Idle() {
		t.Error("core 2 should not be idle")
	}
	if m.Core(2).Current != nil {
		t.Error("core 2 should have no current task")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMachineSpawn(t *testing.T) {
	m := NewMachine(2)
	t1 := m.Spawn(0, 100)
	t2 := m.Spawn(1, 200)
	if t1.ID == t2.ID {
		t.Error("Spawn reused a task ID")
	}
	if m.TotalThreads() != 2 {
		t.Errorf("TotalThreads = %d, want 2", m.TotalThreads())
	}
	if m.TotalWeight() != 300 {
		t.Errorf("TotalWeight = %d, want 300", m.TotalWeight())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMachineIdleOverloadedSets(t *testing.T) {
	m := MachineFromLoads(0, 1, 2, 0, 5)
	idle := m.IdleCores()
	if len(idle) != 2 || idle[0] != 0 || idle[1] != 3 {
		t.Errorf("IdleCores = %v, want [0 3]", idle)
	}
	over := m.OverloadedCores()
	if len(over) != 2 || over[0] != 2 || over[1] != 4 {
		t.Errorf("OverloadedCores = %v, want [2 4]", over)
	}
}

func TestMachineWorkConserved(t *testing.T) {
	cases := []struct {
		loads []int
		want  bool
	}{
		{[]int{0, 0, 0}, true},   // all idle, nothing to run
		{[]int{1, 1, 1}, true},   // balanced
		{[]int{0, 1, 1}, true},   // idle core but nobody overloaded
		{[]int{0, 2, 1}, false},  // idle + overloaded: violation
		{[]int{2, 2, 2}, true},   // overloaded but nobody idle
		{[]int{0, 0, 10}, false}, // gross violation
		{[]int{1}, true},         // single core is always conserved
	}
	for _, tc := range cases {
		m := MachineFromLoads(tc.loads...)
		if got := m.WorkConserved(); got != tc.want {
			t.Errorf("WorkConserved(%v) = %v, want %v", tc.loads, got, tc.want)
		}
	}
}

func TestMachineCloneIndependence(t *testing.T) {
	m := MachineFromLoads(2, 0)
	c := m.Clone()
	if c.Key() != m.Key() {
		t.Fatalf("clone key mismatch: %q vs %q", c.Key(), m.Key())
	}
	// Steal on the clone must not affect the original.
	task := c.Core(0).PopTail()
	c.Core(1).Push(task)
	if m.Core(0).NThreads() != 2 || m.Core(1).NThreads() != 0 {
		t.Error("mutating clone changed original machine")
	}
	// Spawn on clone must not collide with original IDs.
	c.Spawn(1, 1)
	if err := c.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestMachineKeyDistinguishesStates(t *testing.T) {
	a := MachineFromLoads(0, 2)
	b := MachineFromLoads(2, 0)
	if a.Key() == b.Key() {
		t.Error("Key should distinguish which core holds the load")
	}
	// A running task and a queued task are different states.
	c := MachineFromSpec(CoreSpec{Running: 1024}, CoreSpec{})
	d := MachineFromSpec(CoreSpec{Queued: []int64{1024}}, CoreSpec{})
	if c.Key() == d.Key() {
		t.Error("Key should distinguish running from queued")
	}
}

func TestMachineKeyCanonicalizesQueueOrder(t *testing.T) {
	a := MachineFromSpec(CoreSpec{Running: 1, Queued: []int64{1, 2}})
	b := MachineFromSpec(CoreSpec{Running: 1, Queued: []int64{2, 1}})
	if a.Key() != b.Key() {
		t.Errorf("Key should canonicalize queue order: %q vs %q", a.Key(), b.Key())
	}
}

func TestMachineValidateCatchesDuplicates(t *testing.T) {
	m := NewMachine(2)
	shared := NewTask(1)
	m.Core(0).Push(shared)
	m.Core(1).Push(shared)
	if err := m.Validate(); err == nil {
		t.Error("Validate should reject a task present on two cores")
	}
	m2 := NewMachine(1)
	m2.Core(0).Push(NewTask(1))
	m2.Core(0).Ready[0].Weight = 0
	if err := m2.Validate(); err == nil {
		t.Error("Validate should reject non-positive weights")
	}
	m3 := NewMachine(1)
	m3.Core(0).Ready = append(m3.Core(0).Ready, nil)
	if err := m3.Validate(); err == nil {
		t.Error("Validate should reject nil queued tasks")
	}
}

func TestMachineString(t *testing.T) {
	m := MachineFromLoads(0, 1, 2)
	if got := m.String(); got != "[0 1 2]" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(m.Key(), "|") {
		t.Errorf("Key should separate cores: %q", m.Key())
	}
}

// Property: Clone always produces a machine with an identical key and a
// valid structure, for arbitrary load vectors.
func TestMachineClonePropertyQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 5)
		}
		m := MachineFromLoads(loads...)
		c := m.Clone()
		return c.Key() == m.Key() && c.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TotalThreads is invariant under ScheduleLocal on every core.
func TestMachineScheduleLocalInvariant(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		specs := make([]CoreSpec, len(raw))
		for i, r := range raw {
			specs[i] = CoreSpec{Queued: make([]int64, int(r%4))}
			for j := range specs[i].Queued {
				specs[i].Queued[j] = 1
			}
		}
		m := MachineFromSpec(specs...)
		before := m.TotalThreads()
		for _, c := range m.Cores {
			c.ScheduleLocal()
		}
		return m.TotalThreads() == before && m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
