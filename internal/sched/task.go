// Package sched implements the scheduler model of "Towards Proving
// Optimistic Multicore Schedulers" (Lepers et al., HotOS 2017).
//
// The model mirrors §3.1 of the paper: a machine is a set of cores, each
// with an optional current task and a runqueue of ready tasks. Cores only
// run tasks from their own runqueue; a periodic load-balancing round lets
// each core migrate ("steal") tasks from other cores. A round decomposes
// into the paper's three steps:
//
//  1. Filter — a lock-free, read-only pass that keeps only stealable cores.
//  2. Choose — pick one core among the stealable ones. All placement
//     heuristics (NUMA, cache locality, ...) live here and are irrelevant
//     to the work-conservation proof.
//  3. Steal — performed with both runqueues locked; the filter predicate is
//     re-validated because the selection made in steps 1-2 is optimistic
//     and may be stale.
//
// The package provides both a sequential round executor (§4.2, operations
// do not overlap) and a concurrent one (§4.3, selections are stale and
// steals serialize in an adversary-chosen order), plus the predicates and
// potential functions used by the proofs in internal/verify.
package sched

import "fmt"

// TaskID uniquely identifies a task within a Machine.
type TaskID int64

// DefaultWeight is the load weight of a task with default "niceness",
// following the Linux convention of 1024 for a nice-0 task. The simple
// Delta2 balancer (Listing 1 of the paper) ignores weights; the Weighted
// balancer balances the sum of weights.
const DefaultWeight = 1024

// Task is a schedulable entity. In the verification model a task is fully
// described by its identity and weight; the simulator (internal/sim)
// attaches execution state separately so that the verified model stays
// minimal.
type Task struct {
	// ID identifies the task. IDs are unique within a machine.
	ID TaskID
	// Weight is the task's share of CPU, used by weighted policies.
	// Must be > 0. DefaultWeight for a default task.
	Weight int64
	// NodeHint is the NUMA node the task prefers, or -1 for no
	// preference. Only step-2 (Choose) heuristics look at it, so it
	// never affects work-conservation proofs.
	NodeHint int
}

// NewTask returns a task with the default weight and no NUMA preference.
func NewTask(id TaskID) *Task {
	return &Task{ID: id, Weight: DefaultWeight, NodeHint: -1}
}

// NewWeightedTask returns a task with the given weight.
func NewWeightedTask(id TaskID, weight int64) *Task {
	if weight <= 0 {
		panic(fmt.Sprintf("sched: task %d weight must be positive, got %d", id, weight))
	}
	return &Task{ID: id, Weight: weight, NodeHint: -1}
}

// Clone returns an independent copy of the task.
func (t *Task) Clone() *Task {
	if t == nil {
		return nil
	}
	c := *t
	return &c
}

// String implements fmt.Stringer.
func (t *Task) String() string {
	if t == nil {
		return "task(nil)"
	}
	if t.Weight == DefaultWeight {
		return fmt.Sprintf("task(%d)", t.ID)
	}
	return fmt.Sprintf("task(%d,w=%d)", t.ID, t.Weight)
}
