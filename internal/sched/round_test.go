package sched

import (
	"testing"
	"testing/quick"
)

// delta2 is Listing 1's balancer, defined locally to keep the sched
// package independent of internal/policy (which imports sched).
func delta2() Policy {
	load := func(c *Core) int64 { return int64(c.NThreads()) }
	return &FuncPolicy{
		PolicyName: "delta2-test",
		LoadFn:     load,
		FilterFn: func(thief, stealee *Core) bool {
			return load(stealee)-load(thief) >= 2
		},
	}
}

// greedyBuggy is the §4.3 counterexample filter: steal from anyone with
// two or more threads, regardless of own load.
func greedyBuggy() Policy {
	load := func(c *Core) int64 { return int64(c.NThreads()) }
	return &FuncPolicy{
		PolicyName: "greedy-buggy-test",
		LoadFn:     load,
		FilterFn: func(_, stealee *Core) bool {
			return load(stealee) >= 2
		},
	}
}

func TestSelectFiltersAndChooses(t *testing.T) {
	m := MachineFromLoads(0, 1, 3, 4)
	att := Select(delta2(), m, 0)
	if att.Victim < 0 {
		t.Fatalf("expected a victim, got %+v", att)
	}
	// Cores 2 (load 3) and 3 (load 4) pass the filter; ChooseFirst picks 2.
	if len(att.Candidates) != 2 || att.Candidates[0] != 2 || att.Candidates[1] != 3 {
		t.Errorf("Candidates = %v, want [2 3]", att.Candidates)
	}
	if att.Victim != 2 {
		t.Errorf("Victim = %d, want 2", att.Victim)
	}
}

func TestSelectNoCandidate(t *testing.T) {
	m := MachineFromLoads(1, 1, 1)
	att := Select(delta2(), m, 0)
	if att.Reason != FailNoCandidate || att.Victim != -1 {
		t.Errorf("attempt = %+v, want no-candidate", att)
	}
}

func TestSelectNeverPicksSelf(t *testing.T) {
	m := MachineFromLoads(5, 0)
	att := Select(greedyBuggy(), m, 0)
	for _, c := range att.Candidates {
		if c == 0 {
			t.Error("core selected itself as a steal candidate")
		}
	}
}

func TestSelectIsReadOnly(t *testing.T) {
	m := MachineFromLoads(0, 3)
	key := m.Key()
	Select(delta2(), m, 0)
	if m.Key() != key {
		t.Error("Select mutated the machine")
	}
}

func TestSelectPanicsOnEscapingChoose(t *testing.T) {
	rogue := &FuncPolicy{
		PolicyName: "rogue",
		LoadFn:     func(c *Core) int64 { return int64(c.NThreads()) },
		FilterFn:   func(thief, stealee *Core) bool { return stealee.NThreads() >= 2 },
		ChooseFn: func(thief *Core, _ []*Core) *Core {
			return thief // not among candidates: contract violation
		},
	}
	m := MachineFromLoads(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("Choose escaping its candidate set did not panic")
		}
	}()
	Select(rogue, m, 0)
}

func TestStealMovesOneTask(t *testing.T) {
	m := MachineFromLoads(0, 3)
	p := delta2()
	att := Select(p, m, 0)
	Steal(p, m, &att)
	if !att.Succeeded() || att.Moved != 1 {
		t.Fatalf("attempt = %+v, want one task moved", att)
	}
	if got := m.Loads(); got[0] != 1 || got[1] != 2 {
		t.Errorf("Loads = %v, want [1 2]", got)
	}
	if len(att.MovedTasks) != 1 {
		t.Errorf("MovedTasks = %v", att.MovedTasks)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate after steal: %v", err)
	}
}

func TestStealRevalidationFailure(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 3)
	att := Select(p, m, 0)
	// Simulate a concurrent steal draining the victim before our steal.
	victim := m.Core(att.Victim)
	for victim.NThreads() > 1 {
		victim.PopTail()
	}
	Steal(p, m, &att)
	if att.Reason != FailRevalidation {
		t.Errorf("Reason = %v, want revalidation-failed", att.Reason)
	}
	if att.Moved != 0 {
		t.Errorf("Moved = %d, want 0", att.Moved)
	}
}

func TestStealNeverTakesCurrentTask(t *testing.T) {
	// Victim runs one task and queues one: only the queued one can move.
	m := MachineFromLoads(0, 2)
	p := delta2()
	runningID := m.Core(1).Current.ID
	att := Select(p, m, 0)
	Steal(p, m, &att)
	if !att.Succeeded() {
		t.Fatalf("steal failed: %+v", att)
	}
	if m.Core(1).Current == nil || m.Core(1).Current.ID != runningID {
		t.Error("steal disturbed the victim's current task")
	}
}

func TestStealEmptyVictimReported(t *testing.T) {
	// A filter that passes a core whose only thread is running: the steal
	// finds nothing stealable and must report FailEmptyVictim, not panic.
	bad := &FuncPolicy{
		PolicyName: "steal-running",
		LoadFn:     func(c *Core) int64 { return int64(c.NThreads()) },
		FilterFn:   func(thief, stealee *Core) bool { return stealee.NThreads() >= 1 && thief.NThreads() == 0 },
	}
	m := MachineFromLoads(0, 1)
	att := Select(bad, m, 0)
	Steal(bad, m, &att)
	if att.Reason != FailEmptyVictim {
		t.Errorf("Reason = %v, want empty-victim", att.Reason)
	}
}

func TestStealClampsCount(t *testing.T) {
	greedyCount := &FuncPolicy{
		PolicyName: "greedy-count",
		LoadFn:     func(c *Core) int64 { return int64(c.NThreads()) },
		FilterFn:   func(thief, stealee *Core) bool { return stealee.NThreads()-thief.NThreads() >= 2 },
		CountFn:    func(_, _ *Core) int { return 100 },
	}
	m := MachineFromLoads(0, 3)
	att := Select(greedyCount, m, 0)
	Steal(greedyCount, m, &att)
	if att.Moved != 2 { // only 2 queued tasks exist
		t.Errorf("Moved = %d, want 2 (clamped)", att.Moved)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestStealNonPositiveCountIsFailure(t *testing.T) {
	zeroCount := &FuncPolicy{
		PolicyName: "zero-count",
		LoadFn:     func(c *Core) int64 { return int64(c.NThreads()) },
		FilterFn:   func(thief, stealee *Core) bool { return stealee.NThreads()-thief.NThreads() >= 2 },
		CountFn:    func(_, _ *Core) int { return 0 },
	}
	m := MachineFromLoads(0, 2)
	att := Select(zeroCount, m, 0)
	Steal(zeroCount, m, &att)
	if att.Succeeded() {
		t.Error("zero-count steal should not succeed")
	}
}

func TestSequentialRoundBalances(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 4)
	rounds := 0
	for !m.WorkConserved() {
		res := SequentialRound(p, m)
		rounds++
		if res.TasksMoved() == 0 {
			t.Fatalf("stuck at %v after %d rounds", m.Loads(), rounds)
		}
		if rounds > 10 {
			t.Fatalf("no convergence after %d rounds: %v", rounds, m.Loads())
		}
	}
	if got := m.Loads(); got[0]+got[1] != 4 {
		t.Errorf("threads not conserved: %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSequentialRoundNoFailures(t *testing.T) {
	// §4.2: in the sequential setting, selections are never stale, so no
	// attempt can fail re-validation.
	p := delta2()
	m := MachineFromLoads(0, 5, 0, 3, 1)
	for i := 0; i < 10; i++ {
		res := SequentialRound(p, m)
		for _, att := range res.Attempts {
			if att.Reason == FailRevalidation {
				t.Fatalf("sequential round produced a stale failure: %+v", att)
			}
		}
	}
}

func TestConcurrentRoundConflict(t *testing.T) {
	// The paper's conflict scenario: two idle cores both select the same
	// overloaded core holding exactly one stealable task; whoever steals
	// second must fail re-validation and the failure must be explained by
	// the predecessor's success.
	p := delta2()
	m := MachineFromLoads(0, 0, 2)
	res := ConcurrentRound(p, m, []int{0, 1, 2})
	succ, fail := 0, 0
	for _, att := range res.Attempts {
		switch {
		case att.Succeeded():
			succ++
		case att.Reason == FailRevalidation:
			fail++
			if !att.PredecessorSuccess {
				t.Errorf("failed attempt %+v lacks a predecessor success", att)
			}
		}
	}
	if succ != 1 || fail != 1 {
		t.Errorf("successes=%d failures=%d, want 1/1", succ, fail)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConcurrentRoundOrderMatters(t *testing.T) {
	p := delta2()
	for _, order := range [][]int{{0, 1, 2}, {1, 0, 2}, {2, 0, 1}, {2, 1, 0}} {
		m := MachineFromLoads(0, 0, 2)
		ConcurrentRound(p, m, order)
		// Whatever the order, exactly one task moves and the machine
		// stays valid and conserved in total.
		if m.TotalThreads() != 2 {
			t.Errorf("order %v: threads not conserved: %v", order, m.Loads())
		}
		if err := m.Validate(); err != nil {
			t.Errorf("order %v: %v", order, err)
		}
	}
}

func TestConcurrentRoundBadOrderPanics(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 2)
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}, {0, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v did not panic", order)
				}
			}()
			ConcurrentRound(p, m.Clone(), order)
		}()
	}
}

func TestIdentityOrder(t *testing.T) {
	o := IdentityOrder(4)
	for i, v := range o {
		if v != i {
			t.Fatalf("IdentityOrder[%d] = %d", i, v)
		}
	}
}

func TestFailureReasonString(t *testing.T) {
	cases := map[FailureReason]string{
		FailNone:          "ok",
		FailNoCandidate:   "no-candidate",
		FailRevalidation:  "revalidation-failed",
		FailEmptyVictim:   "empty-victim",
		FailureReason(42): "FailureReason(42)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestRoundResultCounters(t *testing.T) {
	res := RoundResult{Attempts: []Attempt{
		{Reason: FailNone, Moved: 2},
		{Reason: FailRevalidation},
		{Reason: FailNoCandidate},
		{Reason: FailEmptyVictim},
		{Reason: FailNone, Moved: 1},
	}}
	if got := res.Successes(); got != 2 {
		t.Errorf("Successes = %d, want 2", got)
	}
	if got := res.Failures(); got != 2 {
		t.Errorf("Failures = %d, want 2", got)
	}
	if got := res.TasksMoved(); got != 3 {
		t.Errorf("TasksMoved = %d, want 3", got)
	}
}

// Property: rounds conserve the thread population and structural validity
// for arbitrary initial load vectors, in both execution modes.
func TestRoundConservationProperty(t *testing.T) {
	p := delta2()
	f := func(raw []uint8, seqMode bool) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		loads := make([]int, len(raw))
		total := 0
		for i, r := range raw {
			loads[i] = int(r % 5)
			total += loads[i]
		}
		m := MachineFromLoads(loads...)
		if seqMode {
			SequentialRound(p, m)
		} else {
			ConcurrentRound(p, m, IdentityOrder(len(loads)))
		}
		return m.TotalThreads() == total && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every revalidation failure in a concurrent round is explained
// by a predecessor success (the §4.3 failure⇒success obligation) for the
// sound Delta2 filter.
func TestFailureImpliesSuccessProperty(t *testing.T) {
	p := delta2()
	f := func(raw []uint8, seed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 4)
		}
		m := MachineFromLoads(loads...)
		// Derive a permutation from the seed by rotation.
		n := len(loads)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + int(seed)) % n
		}
		res := ConcurrentRound(p, m, order)
		for _, att := range res.Attempts {
			if att.Reason == FailRevalidation && !att.PredecessorSuccess {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
