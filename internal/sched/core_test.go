package sched

import (
	"testing"
	"testing/quick"
)

func TestTaskNew(t *testing.T) {
	task := NewTask(7)
	if task.ID != 7 {
		t.Errorf("ID = %d, want 7", task.ID)
	}
	if task.Weight != DefaultWeight {
		t.Errorf("Weight = %d, want %d", task.Weight, DefaultWeight)
	}
	if task.NodeHint != -1 {
		t.Errorf("NodeHint = %d, want -1", task.NodeHint)
	}
}

func TestTaskNewWeighted(t *testing.T) {
	task := NewWeightedTask(3, 2048)
	if task.Weight != 2048 {
		t.Errorf("Weight = %d, want 2048", task.Weight)
	}
}

func TestTaskNewWeightedRejectsNonPositive(t *testing.T) {
	for _, w := range []int64{0, -1, -1024} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeightedTask(1, %d) did not panic", w)
				}
			}()
			NewWeightedTask(1, w)
		}()
	}
}

func TestTaskClone(t *testing.T) {
	orig := NewWeightedTask(1, 512)
	c := orig.Clone()
	if c == orig {
		t.Fatal("Clone returned the same pointer")
	}
	c.Weight = 99
	if orig.Weight != 512 {
		t.Errorf("mutating clone changed original: %d", orig.Weight)
	}
	var nilTask *Task
	if nilTask.Clone() != nil {
		t.Error("Clone of nil task should be nil")
	}
}

func TestTaskString(t *testing.T) {
	if got := NewTask(5).String(); got != "task(5)" {
		t.Errorf("String = %q", got)
	}
	if got := NewWeightedTask(5, 2).String(); got != "task(5,w=2)" {
		t.Errorf("String = %q", got)
	}
	var nilTask *Task
	if got := nilTask.String(); got != "task(nil)" {
		t.Errorf("nil String = %q", got)
	}
}

func TestCoreIdleOverloaded(t *testing.T) {
	cases := []struct {
		name       string
		current    bool
		ready      int
		idle, over bool
	}{
		{"empty", false, 0, true, false},
		{"running-only", true, 0, false, false},
		{"queued-only-1", false, 1, false, false},
		{"queued-only-2", false, 2, false, true},
		{"running-plus-1", true, 1, false, true},
		{"running-plus-3", true, 3, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCore(0)
			id := TaskID(0)
			if tc.current {
				c.Current = NewTask(id)
				id++
			}
			for i := 0; i < tc.ready; i++ {
				c.Push(NewTask(id))
				id++
			}
			if got := c.Idle(); got != tc.idle {
				t.Errorf("Idle = %v, want %v", got, tc.idle)
			}
			if got := c.Overloaded(); got != tc.over {
				t.Errorf("Overloaded = %v, want %v", got, tc.over)
			}
		})
	}
}

func TestCoreNThreadsAndWeightSum(t *testing.T) {
	c := NewCore(1)
	if c.NThreads() != 0 || c.WeightSum() != 0 {
		t.Fatalf("empty core: NThreads=%d WeightSum=%d", c.NThreads(), c.WeightSum())
	}
	c.Current = NewWeightedTask(0, 100)
	c.Push(NewWeightedTask(1, 10))
	c.Push(NewWeightedTask(2, 1))
	if got := c.NThreads(); got != 3 {
		t.Errorf("NThreads = %d, want 3", got)
	}
	if got := c.WeightSum(); got != 111 {
		t.Errorf("WeightSum = %d, want 111", got)
	}
}

func TestCorePushPopFIFO(t *testing.T) {
	c := NewCore(0)
	for i := 0; i < 5; i++ {
		c.Push(NewTask(TaskID(i)))
	}
	for i := 0; i < 5; i++ {
		got := c.Pop()
		if got == nil || got.ID != TaskID(i) {
			t.Fatalf("Pop %d = %v, want task(%d)", i, got, i)
		}
	}
	if c.Pop() != nil {
		t.Error("Pop on empty runqueue should return nil")
	}
}

func TestCorePopTailLIFO(t *testing.T) {
	c := NewCore(0)
	for i := 0; i < 3; i++ {
		c.Push(NewTask(TaskID(i)))
	}
	for i := 2; i >= 0; i-- {
		got := c.PopTail()
		if got == nil || got.ID != TaskID(i) {
			t.Fatalf("PopTail = %v, want task(%d)", got, i)
		}
	}
	if c.PopTail() != nil {
		t.Error("PopTail on empty runqueue should return nil")
	}
}

func TestCorePushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Push(nil) did not panic")
		}
	}()
	NewCore(0).Push(nil)
}

func TestCoreRemove(t *testing.T) {
	c := NewCore(0)
	for i := 0; i < 4; i++ {
		c.Push(NewTask(TaskID(i)))
	}
	got := c.Remove(2)
	if got == nil || got.ID != 2 {
		t.Fatalf("Remove(2) = %v", got)
	}
	if len(c.Ready) != 3 {
		t.Fatalf("len(Ready) = %d, want 3", len(c.Ready))
	}
	for _, rem := range c.Ready {
		if rem.ID == 2 {
			t.Error("task 2 still in runqueue after Remove")
		}
	}
	if c.Remove(99) != nil {
		t.Error("Remove of absent task should return nil")
	}
	c.Current = NewTask(50)
	if c.Remove(50) != nil {
		t.Error("Remove must not take the current task")
	}
}

func TestCoreScheduleLocal(t *testing.T) {
	c := NewCore(0)
	if c.ScheduleLocal() != nil {
		t.Error("ScheduleLocal on empty core should do nothing")
	}
	c.Push(NewTask(1))
	c.Push(NewTask(2))
	before := c.NThreads()
	got := c.ScheduleLocal()
	if got == nil || got.ID != 1 {
		t.Fatalf("ScheduleLocal = %v, want head task(1)", got)
	}
	if c.Current != got {
		t.Error("ScheduleLocal did not install the task as Current")
	}
	if c.NThreads() != before {
		t.Errorf("ScheduleLocal changed NThreads: %d -> %d", before, c.NThreads())
	}
	if c.ScheduleLocal() != nil {
		t.Error("ScheduleLocal with a Current should do nothing")
	}
}

func TestCoreClone(t *testing.T) {
	c := NewCore(3)
	c.Node, c.Group = 1, 2
	c.Current = NewTask(0)
	c.Push(NewTask(1))
	cl := c.Clone()
	if cl.ID != 3 || cl.Node != 1 || cl.Group != 2 {
		t.Errorf("clone metadata mismatch: %+v", cl)
	}
	cl.Push(NewTask(9))
	cl.Current.Weight = 1
	if len(c.Ready) != 1 {
		t.Error("mutating clone's runqueue affected original")
	}
	if c.Current.Weight != DefaultWeight {
		t.Error("mutating clone's current task affected original")
	}
	empty := NewCore(0).Clone()
	if empty.Current != nil || len(empty.Ready) != 0 {
		t.Error("clone of empty core is not empty")
	}
}

func TestCoreString(t *testing.T) {
	c := NewCore(2)
	if got := c.String(); got != "c2[run:- rq:0]" {
		t.Errorf("String = %q", got)
	}
	c.Current = NewTask(5)
	c.Push(NewTask(6))
	if got := c.String(); got != "c2[run:task(5) rq:1]" {
		t.Errorf("String = %q", got)
	}
}

// Property: for any sequence of pushes, popping everything preserves FIFO
// order and leaves the queue empty.
func TestCoreQueueProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		c := NewCore(0)
		for i := range ids {
			c.Push(NewTask(TaskID(i)))
		}
		for i := range ids {
			got := c.Pop()
			if got == nil || got.ID != TaskID(i) {
				return false
			}
		}
		return len(c.Ready) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Idle and Overloaded are mutually exclusive, and a core is
// overloaded iff NThreads >= 2.
func TestCorePredicateProperty(t *testing.T) {
	f := func(hasCurrent bool, nReady uint8) bool {
		c := NewCore(0)
		if hasCurrent {
			c.Current = NewTask(1000)
		}
		n := int(nReady % 8)
		for i := 0; i < n; i++ {
			c.Push(NewTask(TaskID(i)))
		}
		if c.Idle() && c.Overloaded() {
			return false
		}
		return c.Overloaded() == (c.NThreads() >= 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
