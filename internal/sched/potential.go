package sched

// This file implements the potential-function machinery of §4.3: the
// "absolute load difference"
//
//	d(c1,...,cn) = Σᵢ Σⱼ |load(cᵢ) − load(cⱼ)|
//
// The paper's convergence argument: if every successful steal strictly
// decreases d, then — since d ≥ 0 and steals change it by integral
// amounts — the number of successful steals is bounded, and combined with
// failure⇒success, so is the number of failures.

// PairwiseImbalance computes d under the policy's load metric. Both (i,j)
// and (j,i) are summed, as in the paper's double summation, so every
// unordered pair contributes twice.
func PairwiseImbalance(p Policy, m *Machine) int64 {
	loads := make([]int64, m.NumCores())
	for i, c := range m.Cores {
		loads[i] = p.Load(c)
	}
	var d int64
	for i := range loads {
		for j := range loads {
			diff := loads[i] - loads[j]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
	}
	return d
}

// MaxMinImbalance computes the alternative potential max(load) − min(load),
// used by the ablation bench to compare convergence-bound tightness
// against the paper's pairwise sum.
func MaxMinImbalance(p Policy, m *Machine) int64 {
	if m.NumCores() == 0 {
		return 0
	}
	lo := p.Load(m.Cores[0])
	hi := lo
	for _, c := range m.Cores[1:] {
		l := p.Load(c)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi - lo
}

// StealDecreasesPotential reports whether migrating `moved` units of load
// from victim to thief strictly decreases the pairwise imbalance, given
// the pre-steal loads. It implements the paper's local criterion: the
// stealCore function must reduce the absolute load difference between the
// initiating core and the core stolen from.
//
// It exists as a pure function of the two loads so the verifier can check
// it over the whole bounded load space without materializing machines.
func StealDecreasesPotential(thiefLoad, victimLoad, moved int64) bool {
	if moved <= 0 {
		return false
	}
	before := victimLoad - thiefLoad
	if before < 0 {
		before = -before
	}
	after := (victimLoad - moved) - (thiefLoad + moved)
	if after < 0 {
		after = -after
	}
	return after < before
}

// PotentialBound returns an upper bound on the number of successful steals
// a policy can perform from the given state, derived from the potential
// argument: every successful steal decreases d by at least minDrop, so at
// most d/minDrop steals can happen. minDrop must be positive; for
// unit-weight tasks and single-task steals the minimum drop of the
// pairwise sum is 2 (the thief/victim pair contributes twice).
func PotentialBound(p Policy, m *Machine, minDrop int64) int64 {
	if minDrop <= 0 {
		panic("sched: PotentialBound requires a positive minimum drop")
	}
	return PairwiseImbalance(p, m) / minDrop
}
