package sched

import "fmt"

// Policy is the paper's scheduling-policy abstraction, decomposed into the
// three steps of Figure 1 plus a user-defined load metric (Listing 1):
//
//	Load      — the `load()` function: how loaded a core is.
//	CanSteal  — step 1, the filter: may thief steal from stealee?
//	Choose    — step 2: pick one core among the filtered candidates.
//	StealCount— step 3 sizing: how many tasks to migrate per steal.
//
// The separation is what makes the proofs tractable: work-conservation
// obligations constrain only Load, CanSteal and StealCount; Choose may
// implement arbitrary heuristics (NUMA, cache locality, ...) as long as it
// returns one of the candidates it was given, which the executors enforce
// (mirroring Listing 1's `ensuring(res => cores.contains(res))`).
//
// Implementations must be pure with respect to the machine state: the
// selection phase of a balancing round is lock-free and read-only (§3.1),
// so a Policy must not mutate the cores it inspects. The executors hand
// policies cloned snapshots in the concurrent mode, so a mutating policy
// cannot corrupt the machine, but it would invalidate its own proofs.
type Policy interface {
	// Name identifies the policy in reports and traces.
	Name() string

	// Load returns the policy's load metric for a core. For the simple
	// balancer of Listing 1 this is the thread count; for the weighted
	// balancer it is the weight sum.
	Load(c *Core) int64

	// CanSteal is the step-1 filter: whether thief may steal from
	// stealee, based only on the two cores' observable state. It is
	// evaluated lock-free during selection and re-validated under locks
	// at the start of the steal (Listing 1 line 12).
	CanSteal(thief, stealee *Core) bool

	// Choose is the step-2 choice among the cores that passed the
	// filter. candidates is never empty. The returned core must be one
	// of the candidates; the executors verify this and panic otherwise,
	// since a policy violating it has broken its proof obligations.
	Choose(thief *Core, candidates []*Core) *Core

	// StealCount returns how many tasks thief should take from stealee
	// in one steal operation. The executors clamp the result to the
	// number of stealable (queued) tasks; returning a count that would
	// empty an overloaded stealee is a soundness violation detected by
	// internal/verify.
	StealCount(thief, stealee *Core) int
}

// RoundObserver is an optional Policy extension for policies whose filter
// depends on machine-wide statistics (e.g. per-group load sums for
// hierarchical balancing, §5). BeginRound is invoked with the view the
// subsequent selection runs against — the live machine in sequential mode,
// the stale snapshot in concurrent mode — so cached statistics have
// exactly the staleness the optimistic model prescribes. Implementations
// must treat the view as read-only.
type RoundObserver interface {
	BeginRound(view *Machine)
}

// Rescuer is an optional Policy extension for policies that react to
// fail-stop core faults: when a core goes offline, RescueTarget picks
// the online core that should adopt one of the orphaned tasks. It is
// invoked once per orphan (candidates is never empty and never contains
// the failed core); the returned core must be one of the candidates, or
// nil to leave the task stranded until the core revives. Policies
// without this extension ignore orphans entirely — the behavior the
// no-task-lost obligation exists to refute.
type Rescuer interface {
	RescueTarget(failed *Core, task *Task, candidates []*Core) *Core
}

// Rescue applies a policy's rescue rule to every task stranded on the
// given failed core: each orphan the policy re-homes is appended to its
// target's runqueue (in orphan order — interrupted task first, then the
// queue head-first). It returns the number of tasks re-homed. Policies
// that are not Rescuers (or machines with no online core) rescue
// nothing.
func Rescue(p Policy, m *Machine, failedCore int) int {
	r, ok := p.(Rescuer)
	if !ok {
		return 0
	}
	failed := m.Core(failedCore)
	if !failed.Offline {
		return 0
	}
	var online []*Core
	for _, c := range m.Cores {
		if !c.Offline {
			online = append(online, c)
		}
	}
	if len(online) == 0 {
		return 0
	}
	moved := 0
	// Drain head-first so FailCore's ordering (interrupted task first)
	// is the rescue order too.
	for len(failed.Ready) > 0 {
		t := failed.Ready[0]
		target := r.RescueTarget(failed, t, online)
		if target == nil {
			break
		}
		found := false
		for _, c := range online {
			if c == target {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sched: policy %q RescueTarget returned core %d, not among online candidates",
				p.Name(), target.ID))
		}
		failed.Pop()
		target.Push(t)
		moved++
	}
	return moved
}

// TaskPicker is an optional Policy extension for policies that must steal
// specific tasks rather than whatever sits at the runqueue tail (e.g. the
// weighted balancer, which picks a task small enough to strictly decrease
// the load imbalance). PickTasks returns the IDs of queued tasks on
// stealee to migrate; returning an empty slice fails the steal. Every
// returned ID must be queued (not running) on stealee.
type TaskPicker interface {
	PickTasks(thief, stealee *Core) []TaskID
}

// ChooseFunc is a standalone step-2 heuristic. Policies built from
// separable parts (e.g. DSL-compiled policies, or the composition helpers
// below) use it to swap placement heuristics without touching the filter,
// which is exactly the paper's argument for why heuristics are proof-free.
type ChooseFunc func(thief *Core, candidates []*Core) *Core

// ChooseFirst picks the candidate with the lowest core ID. It is the
// deterministic default used by the verifier, making counterexample traces
// reproducible.
func ChooseFirst(_ *Core, candidates []*Core) *Core {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.ID < best.ID {
			best = c
		}
	}
	return best
}

// ChooseMaxLoad returns a ChooseFunc that picks the most loaded candidate
// according to the given load metric, breaking ties by lowest core ID.
// This mirrors CFS's preference for stealing from the busiest queue.
func ChooseMaxLoad(load func(*Core) int64) ChooseFunc {
	return func(_ *Core, candidates []*Core) *Core {
		best := candidates[0]
		bestLoad := load(best)
		for _, c := range candidates[1:] {
			l := load(c)
			if l > bestLoad || (l == bestLoad && c.ID < best.ID) {
				best, bestLoad = c, l
			}
		}
		return best
	}
}

// ChooseNearest returns a ChooseFunc preferring candidates on the thief's
// NUMA node, then falling back to the most loaded candidate. distance
// reports the topological distance between two cores; smaller is closer.
// Because it only reorders candidates, it inherits the filter's proof.
func ChooseNearest(distance func(a, b *Core) int, load func(*Core) int64) ChooseFunc {
	return func(thief *Core, candidates []*Core) *Core {
		best := candidates[0]
		bestDist := distance(thief, best)
		bestLoad := load(best)
		for _, c := range candidates[1:] {
			d, l := distance(thief, c), load(c)
			switch {
			case d < bestDist:
				best, bestDist, bestLoad = c, d, l
			case d == bestDist && l > bestLoad:
				best, bestLoad = c, l
			case d == bestDist && l == bestLoad && c.ID < best.ID:
				best = c
			}
		}
		return best
	}
}

// FuncPolicy assembles a Policy from its parts. It is the bridge used by
// the DSL compiler and by tests that build one-off policies.
type FuncPolicy struct {
	PolicyName string
	LoadFn     func(*Core) int64
	FilterFn   func(thief, stealee *Core) bool
	ChooseFn   ChooseFunc
	CountFn    func(thief, stealee *Core) int
	// RescueFn, when non-nil, makes the policy a Rescuer: it picks the
	// online core that adopts an orphan of a failed core.
	RescueFn func(failed *Core, task *Task, candidates []*Core) *Core
}

// Name implements Policy.
func (p *FuncPolicy) Name() string { return p.PolicyName }

// Load implements Policy.
func (p *FuncPolicy) Load(c *Core) int64 { return p.LoadFn(c) }

// CanSteal implements Policy.
func (p *FuncPolicy) CanSteal(thief, stealee *Core) bool { return p.FilterFn(thief, stealee) }

// Choose implements Policy. It falls back to ChooseFirst when no choice
// function was provided.
func (p *FuncPolicy) Choose(thief *Core, candidates []*Core) *Core {
	if p.ChooseFn == nil {
		return ChooseFirst(thief, candidates)
	}
	return p.ChooseFn(thief, candidates)
}

// StealCount implements Policy. It falls back to stealing one task when no
// count function was provided, matching Listing 1's stealOneThread.
func (p *FuncPolicy) StealCount(thief, stealee *Core) int {
	if p.CountFn == nil {
		return 1
	}
	return p.CountFn(thief, stealee)
}

// RescueTarget implements Rescuer. Without a RescueFn the policy leaves
// orphans stranded (returns nil), which is the semantics of a policy
// with no rescue rule.
func (p *FuncPolicy) RescueTarget(failed *Core, task *Task, candidates []*Core) *Core {
	if p.RescueFn == nil {
		return nil
	}
	return p.RescueFn(failed, task, candidates)
}
