package sched

import (
	"testing"
	"testing/quick"
)

// Tests for the SelectAll/ExecuteSteals decomposition that backs both
// ConcurrentRound and the verifier's choice adversary.

func TestSelectAllMatchesPerCoreSelect(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 1, 3, 5)
	atts := SelectAll(p, m)
	if len(atts) != 4 {
		t.Fatalf("attempts = %d", len(atts))
	}
	for id := range m.Cores {
		want := Select(p, m, id)
		got := atts[id]
		if got.Thief != want.Thief || got.Victim != want.Victim {
			t.Errorf("core %d: SelectAll %+v vs Select %+v", id, got, want)
		}
	}
}

func TestSelectAllIsSnapshotted(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 3)
	key := m.Key()
	SelectAll(p, m)
	if m.Key() != key {
		t.Error("SelectAll mutated the machine")
	}
}

func TestExecuteStealsDoesNotMutateAttempts(t *testing.T) {
	p := delta2()
	m := MachineFromLoads(0, 0, 3)
	atts := SelectAll(p, m)
	before := make([]Attempt, len(atts))
	copy(before, atts)
	ExecuteSteals(p, m, atts, IdentityOrder(3))
	for i := range atts {
		if atts[i].Moved != before[i].Moved || atts[i].Reason != before[i].Reason {
			t.Errorf("attempt %d mutated: %+v -> %+v", i, before[i], atts[i])
		}
	}
}

func TestExecuteStealsWithOverriddenVictim(t *testing.T) {
	// The choice adversary's move: override the victim with another
	// filter-passing candidate and execute.
	p := delta2()
	m := MachineFromLoads(0, 3, 3)
	atts := SelectAll(p, m)
	if atts[0].Victim != 1 {
		t.Fatalf("default victim = %d", atts[0].Victim)
	}
	atts[0].Victim = 2 // the other candidate
	rr := ExecuteSteals(p, m, atts, IdentityOrder(3))
	found := false
	for _, att := range rr.Attempts {
		if att.Thief == 0 && att.Succeeded() && att.Victim == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("overridden steal did not execute: %+v", rr.Attempts)
	}
	if got := m.Loads(); got[2] != 2 {
		t.Errorf("Loads = %v, want core 2 drained to 2", got)
	}
}

// Property: ConcurrentRound is exactly SelectAll followed by
// ExecuteSteals — the decomposition must not change semantics.
func TestConcurrentRoundDecompositionProperty(t *testing.T) {
	p := delta2()
	f := func(raw []uint8, rot uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 5)
		}
		n := len(loads)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + int(rot)) % n
		}
		m1 := MachineFromLoads(loads...)
		m2 := MachineFromLoads(loads...)
		ConcurrentRound(p, m1, order)
		ExecuteSteals(p, m2, SelectAll(p, m2), order)
		return m1.Key() == m2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the weighted (TaskPicker) policy also conserves threads and
// validity across concurrent rounds — the picker path through Steal.
func TestPickerRoundConservationProperty(t *testing.T) {
	picker := &pickerPolicy{}
	f := func(raw []uint8, rot uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 4 {
			raw = raw[:4]
		}
		specs := make([]CoreSpec, len(raw))
		total := 0
		for i, r := range raw {
			n := int(r % 4)
			total += n
			for j := 0; j < n; j++ {
				specs[i].Queued = append(specs[i].Queued, int64(1+(i+j)%3))
			}
		}
		m := MachineFromSpec(specs...)
		n := len(raw)
		order := make([]int, n)
		for i := range order {
			order[i] = (i + int(rot)) % n
		}
		ConcurrentRound(picker, m, order)
		return m.TotalThreads() == total && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// pickerPolicy is a minimal TaskPicker: weighted gap filter, picks the
// smallest queued task strictly below the gap.
type pickerPolicy struct{}

func (*pickerPolicy) Name() string               { return "picker-test" }
func (*pickerPolicy) Load(c *Core) int64         { return c.WeightSum() }
func (*pickerPolicy) StealCount(_, _ *Core) int  { return 1 }
func (p *pickerPolicy) CanSteal(t, s *Core) bool { return p.pick(t, s) != nil }
func (p *pickerPolicy) Choose(t *Core, cands []*Core) *Core {
	return ChooseFirst(t, cands)
}
func (p *pickerPolicy) PickTasks(t, s *Core) []TaskID {
	task := p.pick(t, s)
	if task == nil {
		return nil
	}
	return []TaskID{task.ID}
}
func (p *pickerPolicy) pick(t, s *Core) *Task {
	gap := s.WeightSum() - t.WeightSum()
	var best *Task
	for _, task := range s.Ready {
		if task.Weight >= gap {
			continue
		}
		if best == nil || task.Weight < best.Weight {
			best = task
		}
	}
	return best
}
