package sched

import "fmt"

// FailureReason classifies why a steal attempt did not move any task.
type FailureReason int

const (
	// FailNone means the attempt succeeded.
	FailNone FailureReason = iota
	// FailNoCandidate means the filter kept no core during selection, so
	// the core did not attempt a steal this round.
	FailNoCandidate
	// FailRevalidation means the filter held during the lock-free
	// selection but no longer held under locks (Listing 1 line 12): the
	// optimistic decision was stale. The paper's "failed work-stealing
	// attempt".
	FailRevalidation
	// FailEmptyVictim means the filter still held but the victim had no
	// queued task to take (its only thread is running). A sound policy's
	// filter never passes such a core; the executor reports rather than
	// panics so the verifier can flag the policy.
	FailEmptyVictim
)

// String implements fmt.Stringer.
func (r FailureReason) String() string {
	switch r {
	case FailNone:
		return "ok"
	case FailNoCandidate:
		return "no-candidate"
	case FailRevalidation:
		return "revalidation-failed"
	case FailEmptyVictim:
		return "empty-victim"
	default:
		return fmt.Sprintf("FailureReason(%d)", int(r))
	}
}

// Attempt records one core's participation in a balancing round: what it
// selected during the lock-free phase and what happened when it tried to
// steal. The verifier uses these records to check the failure⇒success
// lemma of §4.3.
type Attempt struct {
	// Thief is the core that ran the round.
	Thief int
	// Victim is the core chosen in step 2, or -1 if the filter kept no
	// candidate.
	Victim int
	// Candidates are the core IDs that passed the step-1 filter at
	// selection time.
	Candidates []int
	// Moved is the number of tasks actually migrated in step 3.
	Moved int
	// MovedTasks are the IDs of the migrated tasks.
	MovedTasks []TaskID
	// Reason classifies the outcome.
	Reason FailureReason
	// PredecessorSuccess reports, for a FailRevalidation attempt,
	// whether an earlier steal in the same round succeeded against this
	// attempt's victim or thief — the event that invalidated the
	// optimistic selection. Always false for other outcomes.
	PredecessorSuccess bool
}

// Succeeded reports whether the attempt moved at least one task.
func (a *Attempt) Succeeded() bool { return a.Reason == FailNone && a.Moved > 0 }

// RoundResult aggregates the attempts of one balancing round.
type RoundResult struct {
	Attempts []Attempt
}

// Successes counts attempts that moved at least one task.
func (r *RoundResult) Successes() int {
	n := 0
	for i := range r.Attempts {
		if r.Attempts[i].Succeeded() {
			n++
		}
	}
	return n
}

// Failures counts attempts that selected a victim but failed to steal.
func (r *RoundResult) Failures() int {
	n := 0
	for i := range r.Attempts {
		switch r.Attempts[i].Reason {
		case FailRevalidation, FailEmptyVictim:
			n++
		}
	}
	return n
}

// TasksMoved counts migrated tasks across all attempts.
func (r *RoundResult) TasksMoved() int {
	n := 0
	for i := range r.Attempts {
		n += r.Attempts[i].Moved
	}
	return n
}

// Select runs steps 1 and 2 for thief against the given view of the
// machine: filter every other core, then choose among the survivors. The
// view may be a stale snapshot (concurrent mode) or the live machine
// (sequential mode); Select never mutates it. It returns the attempt with
// Victim, Candidates and, when nothing is stealable, FailNoCandidate.
func Select(p Policy, view *Machine, thiefID int) Attempt {
	if obs, ok := p.(RoundObserver); ok {
		obs.BeginRound(view)
	}
	thief := view.Core(thiefID)
	att := Attempt{Thief: thiefID, Victim: -1}
	if thief.Offline {
		// A fail-stopped core runs nothing, including the balancer.
		att.Reason = FailNoCandidate
		return att
	}
	var candidates []*Core
	for _, c := range view.Cores {
		if c.ID == thiefID || c.Offline {
			// Offline cores are not victims: their runqueues are
			// unreachable until a rescue or revive re-homes the work.
			continue
		}
		if p.CanSteal(thief, c) {
			candidates = append(candidates, c)
			att.Candidates = append(att.Candidates, c.ID)
		}
	}
	if len(candidates) == 0 {
		att.Reason = FailNoCandidate
		return att
	}
	chosen := p.Choose(thief, candidates)
	if chosen == nil {
		panic(fmt.Sprintf("sched: policy %q Choose returned nil", p.Name()))
	}
	found := false
	for _, c := range candidates {
		if c == chosen {
			found = true
			break
		}
	}
	if !found {
		// Listing 1's `ensuring(res => cores.contains(res))`: a Choose
		// that escapes its candidate set has broken the contract the
		// proofs rely on.
		panic(fmt.Sprintf("sched: policy %q Choose returned core %d, not among candidates %v",
			p.Name(), chosen.ID, att.Candidates))
	}
	att.Victim = chosen.ID
	return att
}

// Steal runs step 3 for a previously selected attempt against the live
// machine: with both runqueues (conceptually) locked, re-validate the
// filter and migrate tasks. It mutates m and fills in the attempt's
// outcome fields. Stealing only takes queued tasks, never the victim's
// current task (a running thread cannot be migrated in this model).
func Steal(p Policy, m *Machine, att *Attempt) {
	if att.Victim < 0 {
		return
	}
	thief := m.Core(att.Thief)
	victim := m.Core(att.Victim)
	// A core that fail-stopped since selection can neither steal nor be
	// stolen from — the stale decision dies at re-validation, like any
	// other invalidated optimistic selection.
	if thief.Offline || victim.Offline {
		att.Reason = FailRevalidation
		return
	}
	// Listing 1 line 12: the optimistic selection must be re-validated
	// under locks, because another core may have stolen from the victim
	// (or handed work to the thief) since the lock-free phase.
	if !p.CanSteal(thief, victim) {
		att.Reason = FailRevalidation
		return
	}
	if picker, ok := p.(TaskPicker); ok {
		stealPicked(picker, thief, victim, att)
		return
	}
	want := p.StealCount(thief, victim)
	if want <= 0 {
		att.Reason = FailRevalidation
		return
	}
	if len(victim.Ready) == 0 {
		att.Reason = FailEmptyVictim
		return
	}
	if want > len(victim.Ready) {
		want = len(victim.Ready)
	}
	for i := 0; i < want; i++ {
		t := victim.PopTail()
		thief.Push(t)
		att.MovedTasks = append(att.MovedTasks, t.ID)
	}
	att.Moved = want
	att.Reason = FailNone
}

// stealPicked migrates the specific tasks chosen by a TaskPicker policy.
func stealPicked(picker TaskPicker, thief, victim *Core, att *Attempt) {
	ids := picker.PickTasks(thief, victim)
	if len(ids) == 0 {
		att.Reason = FailRevalidation
		return
	}
	if len(victim.Ready) == 0 {
		att.Reason = FailEmptyVictim
		return
	}
	for _, id := range ids {
		t := victim.Remove(id)
		if t == nil {
			// The picker named a task that is not queued on the victim:
			// a policy bug the verifier must see, not a crash.
			att.Reason = FailEmptyVictim
			return
		}
		thief.Push(t)
		att.MovedTasks = append(att.MovedTasks, t.ID)
		att.Moved++
	}
	att.Reason = FailNone
}

// SequentialRound executes one balancing round in the simplified setting
// of §4.2: each core performs all three steps in isolation, in core-ID
// order, observing the live machine. Steals cannot fail by staleness in
// this mode (the selection is never stale), which is what makes the
// sequential lemmas provable in isolation.
func SequentialRound(p Policy, m *Machine) RoundResult {
	res := RoundResult{Attempts: make([]Attempt, 0, m.NumCores())}
	for id := 0; id < m.NumCores(); id++ {
		att := Select(p, m, id)
		Steal(p, m, &att)
		res.Attempts = append(res.Attempts, att)
	}
	return res
}

// SelectAll runs the lock-free selection phase for every core against a
// shared snapshot of the machine — the maximal-staleness model of §3.1
// where all cores decide "simultaneously". It returns one attempt per
// core, indexed by core ID.
func SelectAll(p Policy, m *Machine) []Attempt {
	snapshot := m.Clone()
	atts := make([]Attempt, m.NumCores())
	for id := 0; id < m.NumCores(); id++ {
		atts[id] = Select(p, snapshot, id)
	}
	return atts
}

// ExecuteSteals runs the stealing phase for pre-selected attempts: the
// steals serialize in the given order (the adversary's lock-acquisition
// order), each re-validating its filter under locks against the live
// machine. The attempts slice is not modified; outcomes are returned in
// execution order.
func ExecuteSteals(p Policy, m *Machine, atts []Attempt, order []int) RoundResult {
	if err := checkOrder(order, m.NumCores()); err != nil {
		panic(err)
	}
	res := RoundResult{Attempts: make([]Attempt, 0, m.NumCores())}
	for _, id := range order {
		att := atts[id]
		Steal(p, m, &att)
		if att.Reason == FailRevalidation || att.Reason == FailEmptyVictim {
			att.PredecessorSuccess = priorSuccessTouched(res.Attempts, att.Victim, att.Thief)
		}
		res.Attempts = append(res.Attempts, att)
	}
	return res
}

// ConcurrentRound executes one balancing round in the optimistic
// concurrent setting of §3.1/§4.3: lock-free selection against the
// round-start snapshot (SelectAll), then steals serialized in the given
// adversarial order with re-validation (ExecuteSteals).
func ConcurrentRound(p Policy, m *Machine, order []int) RoundResult {
	return ExecuteSteals(p, m, SelectAll(p, m), order)
}

// UnsafeConcurrentRound is ConcurrentRound with the step-3 re-validation
// removed (Listing 1 line 12 deleted): each core steals based purely on
// its stale selection. It exists only for the E8 ablation, demonstrating
// why the re-check is load-bearing — without it a steal can empty an
// overloaded victim or even drain a core another thief already drained,
// violating steal soundness. The executor still refuses to move a task
// that no longer exists (that would corrupt the machine rather than model
// a scheduler bug), reporting FailEmptyVictim instead.
func UnsafeConcurrentRound(p Policy, m *Machine, order []int) RoundResult {
	if err := checkOrder(order, m.NumCores()); err != nil {
		panic(err)
	}
	snapshot := m.Clone()
	atts := make([]Attempt, m.NumCores())
	for id := 0; id < m.NumCores(); id++ {
		atts[id] = Select(p, snapshot, id)
	}
	res := RoundResult{Attempts: make([]Attempt, 0, m.NumCores())}
	for _, id := range order {
		att := atts[id]
		if att.Victim >= 0 {
			thief := m.Core(att.Thief)
			victim := m.Core(att.Victim)
			// No re-validation: honor the stale decision blindly.
			want := p.StealCount(thief, victim)
			if picker, ok := p.(TaskPicker); ok {
				// Stale pick too: compute against the snapshot.
				ids := picker.PickTasks(snapshot.Core(att.Thief), snapshot.Core(att.Victim))
				want = len(ids)
			}
			if want > len(victim.Ready) {
				want = len(victim.Ready)
			}
			if want <= 0 {
				att.Reason = FailEmptyVictim
			} else {
				for i := 0; i < want; i++ {
					t := victim.PopTail()
					thief.Push(t)
					att.MovedTasks = append(att.MovedTasks, t.ID)
				}
				att.Moved = want
				att.Reason = FailNone
			}
		}
		res.Attempts = append(res.Attempts, att)
	}
	return res
}

// priorSuccessTouched reports whether any already-executed successful
// steal involved core victim or core thief (as either side). Only steals
// mutate runqueues during a round, so a failed re-validation must be
// explained by such a predecessor — the first proof obligation of §4.3.
func priorSuccessTouched(done []Attempt, victim, thief int) bool {
	for i := range done {
		a := &done[i]
		if !a.Succeeded() {
			continue
		}
		if a.Victim == victim || a.Thief == victim || a.Victim == thief || a.Thief == thief {
			return true
		}
	}
	return false
}

func checkOrder(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("sched: order has %d entries for %d cores", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n {
			return fmt.Errorf("sched: order contains invalid core ID %d", id)
		}
		if seen[id] {
			return fmt.Errorf("sched: order contains core ID %d twice", id)
		}
		seen[id] = true
	}
	return nil
}

// IdentityOrder returns the order [0, 1, ..., n-1].
func IdentityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}
