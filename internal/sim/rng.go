package sim

// RNG is a deterministic xorshift64* pseudo-random generator. The
// simulator is fully deterministic given a seed, which is what makes the
// E6 experiments reproducible without math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant; xorshift has a zero fixpoint).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpTicks returns an exponentially distributed duration with the given
// mean, rounded up to at least 1 tick — the inter-arrival law of the
// open-loop database workload.
func (r *RNG) ExpTicks(mean float64) int64 {
	// Inverse-CDF sampling; ln via the stdlib-free approximation is not
	// worth it — math.Log is allowed (stdlib).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := int64(-mean * ln(u))
	if d < 1 {
		d = 1
	}
	return d
}

// ln is a thin wrapper so the only math import sits in one place.
func ln(x float64) float64 { return mathLog(x) }

// Perm fills out with a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		j := r.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}
