package sim

import (
	"fmt"

	"repro/internal/metrics"
)

// Stats is the measurement snapshot returned by Run.
type Stats struct {
	// Duration is the simulated horizon in ticks.
	Duration int64
	// Completed counts tasks that exited.
	Completed int64
	// Throughput is completions per 1000 ticks.
	Throughput float64
	// Latency is the arrival→exit distribution of completed tasks.
	Latency *metrics.Histogram
	// WaitTime is the ready→running distribution (scheduling delay).
	WaitTime *metrics.Histogram
	// Steals counts migrated tasks; StealFails counts failed optimistic
	// attempts; Rounds counts balancing rounds; Preemptions counts
	// quantum preemptions.
	Steals, StealFails, Rounds, Preemptions int64
	// WastedCoreTicks integrates idle core-time while another core was
	// overloaded — the §1 "wasted cores" quantity.
	WastedCoreTicks float64
	// IdleCoreTicks integrates all idle core-time.
	IdleCoreTicks float64
	// WastedPct is WastedCoreTicks as a percentage of total capacity.
	WastedPct float64
	// ViolationEpisodes counts distinct idle-while-overloaded intervals.
	ViolationEpisodes int64
	// LongestViolationTicks is the longest single violation episode —
	// the persistence measure that correlates with tail-latency
	// inflation (one long starvation interval hurts p99 far more than
	// the same wasted time as transient blips).
	LongestViolationTicks int64
	// Faults counts applied fault events (failures and revivals);
	// Rescued counts orphans re-homed by the policy's rescue rule at
	// failure time; Orphaned counts tasks still stranded on offline
	// cores at snapshot time.
	Faults, Rescued, Orphaned int64
}

// snapshot assembles the Stats for the current clock.
func (s *Simulator) snapshot() Stats {
	st := Stats{
		Duration:              s.clock,
		Completed:             s.completions.Value(),
		Latency:               s.latency,
		WaitTime:              s.waitTime,
		Steals:                s.steals.Value(),
		StealFails:            s.stealFails.Value(),
		Rounds:                s.rounds.Value(),
		Preemptions:           s.preemptions.Value(),
		WastedCoreTicks:       s.violations.WastedCoreSeconds(s.clock),
		IdleCoreTicks:         s.violations.IdleCoreSeconds(s.clock),
		ViolationEpisodes:     s.violations.Episodes(),
		LongestViolationTicks: s.violations.LongestEpisodeAt(s.clock),
		Faults:                s.faults.Value(),
		Rescued:               s.rescued.Value(),
		Orphaned:              int64(len(s.m.Orphans())),
	}
	if s.clock > 0 {
		st.Throughput = float64(st.Completed) * 1000 / float64(s.clock)
		st.WastedPct = 100 * st.WastedCoreTicks / (float64(s.clock) * float64(s.cfg.Cores))
	}
	return st
}

// String renders the headline numbers.
func (st Stats) String() string {
	return fmt.Sprintf(
		"t=%d completed=%d tput=%.2f/ktick p50=%d p99=%d steals=%d fails=%d wasted=%.1f%% episodes=%d",
		st.Duration, st.Completed, st.Throughput,
		st.Latency.Quantile(0.5), st.Latency.Quantile(0.99),
		st.Steals, st.StealFails, st.WastedPct, st.ViolationEpisodes)
}
