package sim

import "fmt"

// ThenKind is what a task does after finishing a run slice.
type ThenKind int8

const (
	// ThenExit terminates the task.
	ThenExit ThenKind = iota
	// ThenBlock suspends the task for Action.BlockFor ticks (I/O, sleep).
	ThenBlock
	// ThenYield requeues the task behind its core's other ready tasks.
	ThenYield
	// ThenBarrier joins Action.Barrier; the task blocks until the
	// barrier's membership count is reached, which releases everyone.
	ThenBarrier
)

// Action is one step of a task's life: compute for RunFor ticks, then
// transition.
type Action struct {
	// RunFor is the CPU time consumed before the transition, ≥ 1.
	RunFor int64
	// Then is the transition.
	Then ThenKind
	// BlockFor is the suspension length for ThenBlock.
	BlockFor int64
	// Barrier is the rendezvous for ThenBarrier.
	Barrier *Barrier
}

// Behavior generates a task's actions. Next is called when the previous
// action's run completes (and once at task start); the returned action's
// RunFor is clamped to ≥ 1.
type Behavior interface {
	Next(now int64, rng *RNG) Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(now int64, rng *RNG) Action

// Next implements Behavior.
func (f BehaviorFunc) Next(now int64, rng *RNG) Action { return f(now, rng) }

// RunOnce returns a behavior that computes for d ticks and exits — a
// batch job or one database request's service time.
func RunOnce(d int64) Behavior {
	return BehaviorFunc(func(int64, *RNG) Action {
		return Action{RunFor: d, Then: ThenExit}
	})
}

// RunForever returns a behavior that never finishes — the paper's
// "scientific application" spinner or a polling thread. Its long slices
// are still preempted at the quantum, so it shares its core fairly.
func RunForever(slice int64) Behavior {
	return BehaviorFunc(func(int64, *RNG) Action {
		return Action{RunFor: slice, Then: ThenYield}
	})
}

// RunBlockLoop returns a behavior alternating compute and blocking —
// a thread handling I/O-bound requests: run `serve`, block `wait`,
// repeat `iters` times (0 = forever), then exit.
func RunBlockLoop(serve, wait int64, iters int) Behavior {
	n := 0
	return BehaviorFunc(func(int64, *RNG) Action {
		n++
		if iters > 0 && n > iters {
			return Action{RunFor: 1, Then: ThenExit}
		}
		return Action{RunFor: serve, Then: ThenBlock, BlockFor: wait}
	})
}

// Barrier is a cyclic rendezvous for ThenBarrier actions: when Need tasks
// have arrived, all of them are released and the generation counter
// increments. It reproduces the synchronization pattern of the paper's
// barrier-based scientific applications, where one straggler core stalls
// every participant.
type Barrier struct {
	// Need is the number of participants per generation.
	Need int
	// Generation counts completed rendezvous.
	Generation int64

	waiting []int64 // blocked task IDs
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("sim: NewBarrier(%d)", n))
	}
	return &Barrier{Need: n}
}

// BarrierLoop returns a behavior computing `work` ticks then joining b,
// for iters generations (0 = forever), then exiting.
func BarrierLoop(b *Barrier, work int64, iters int64) Behavior {
	var done int64
	return BehaviorFunc(func(int64, *RNG) Action {
		if iters > 0 && done >= iters {
			return Action{RunFor: 1, Then: ThenExit}
		}
		done++
		return Action{RunFor: work, Then: ThenBarrier, Barrier: b}
	})
}
