package sim

import (
	"testing"

	"repro/internal/policy"
)

// The paper's proofs assume no thread enters or leaves the runqueues
// ("changes in the runqueues could perpetually prevent the load
// balancing rounds from stealing threads", §4). These tests probe that
// excluded dynamic case empirically: under continuous churn — arrivals,
// exits, blocking, waking — a sound policy keeps every violation
// transient (bounded episodes, bounded wasted fraction), while the
// machine invariants hold at every checkpoint.

// churnWorkload drives sustained arrival/exit churn onto one core.
func churnWorkload(s *Simulator, tasks int, horizon int64) {
	rng := NewRNG(99)
	for i := 0; i < tasks; i++ {
		at := rng.Int63n(horizon / 2)
		service := 500 + rng.Int63n(4000)
		if rng.Float64() < 0.3 {
			s.SpawnAt(at, 0, 1024, RunBlockLoop(service, 1000+rng.Int63n(2000), 2+rng.Intn(3)))
		} else {
			s.SpawnAt(at, 0, 1024, RunOnce(service))
		}
	}
}

func TestChurnViolationsAreTransient(t *testing.T) {
	const horizon = 600_000
	s := newSim(4)
	churnWorkload(s, 150, horizon)
	st := s.Run(horizon)
	if st.Completed != 150 {
		t.Fatalf("Completed = %d, want 150", st.Completed)
	}
	// Violations happen (arrivals land on busy cores between rounds)
	// and their cost is structural to *periodic* balancing: each episode
	// lasts at most one 4000-tick period before a round clears it. The
	// wasted fraction therefore stays bounded — ~15% here, all of it
	// inter-round latency, against >25% for no balancing at all (next
	// test). Tightening this is the "reactivity" property the paper
	// lists as future work.
	if st.ViolationEpisodes == 0 {
		t.Error("churn produced no violation episodes — workload too tame to test anything")
	}
	if st.WastedPct > 20 {
		t.Errorf("wasted %.1f%% of capacity under churn; delta2 should keep violations transient", st.WastedPct)
	}
	if err := s.Machine().Validate(); err != nil {
		t.Error(err)
	}
}

func TestChurnNullPolicyAccumulatesWaste(t *testing.T) {
	const horizon = 600_000
	cfg := func(c *Config) { c.Policy = policy.NewNull() }
	s := newSim(4, cfg)
	churnWorkload(s, 150, horizon)
	st := s.Run(horizon)
	// Everything runs on core 0: three cores idle while it is
	// overloaded for most of the busy period.
	if st.WastedPct < 15 {
		t.Errorf("null policy wasted only %.1f%% under churn; expected heavy waste", st.WastedPct)
	}
}

func TestChurnEpisodesBoundedByRounds(t *testing.T) {
	// Every violation episode under delta2 must be cleared by a
	// balancing round: no episode survives longer than ~one period plus
	// the round's own effect. We verify indirectly: with the balance
	// period doubled, waste roughly scales up too.
	run := func(period int64) float64 {
		s := newSim(4, func(c *Config) { c.BalancePeriod = period })
		churnWorkload(s, 150, 600_000)
		st := s.Run(600_000)
		return st.WastedCoreTicks
	}
	fast, slow := run(2000), run(16_000)
	if slow <= fast {
		t.Errorf("wasted ticks: period=2000 -> %.0f, period=16000 -> %.0f; slower rounds should waste more",
			fast, slow)
	}
}

func TestIdleBalanceCutsWaste(t *testing.T) {
	// The reactivity ablation: idle balancing removes most inter-round
	// waste under churn without touching the policy or its proofs.
	run := func(idle bool) Stats {
		s := newSim(4, func(c *Config) { c.IdleBalance = idle })
		churnWorkload(s, 150, 600_000)
		return s.Run(600_000)
	}
	periodic, reactive := run(false), run(true)
	t.Logf("wasted%%: periodic-only=%.1f with-idle-balance=%.1f",
		periodic.WastedPct, reactive.WastedPct)
	// Idle balancing fires on the busy->idle transition; waste from work
	// arriving while a core was *already* idle remains until the next
	// periodic round (fixing that needs wakeup placement, a different
	// mechanism). Expect a substantial but not total cut: ≥25%.
	if reactive.WastedPct >= 0.75*periodic.WastedPct {
		t.Errorf("idle balance should cut waste by ≥25%%: %.1f%% -> %.1f%%",
			periodic.WastedPct, reactive.WastedPct)
	}
	if reactive.Completed != periodic.Completed {
		t.Errorf("completions differ: %d vs %d", periodic.Completed, reactive.Completed)
	}
}

func TestIdleBalanceStealsImmediately(t *testing.T) {
	// Idle balance triggers on the busy->idle transition: core 1
	// finishes a short task at t≈100 and must immediately steal from
	// core 0 instead of waiting for the periodic round at t=4000.
	s := newSim(2, func(c *Config) { c.IdleBalance = true })
	s.SpawnAt(0, 0, 1024, RunOnce(50_000))
	s.SpawnAt(0, 0, 1024, RunOnce(50_000))
	s.SpawnAt(0, 1, 1024, RunOnce(100))
	st := s.Run(1_000) // well before the first periodic round
	if st.Steals == 0 {
		t.Error("idle balance did not steal before the first periodic round")
	}
	if s.Machine().Core(1).Idle() {
		t.Error("core 1 still idle despite idle balancing")
	}
}

func TestChurnDeterministicUnderSeed(t *testing.T) {
	run := func() Stats {
		s := newSim(4)
		churnWorkload(s, 80, 300_000)
		return s.Run(300_000)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Steals != b.Steals || a.WastedCoreTicks != b.WastedCoreTicks {
		t.Errorf("churn run not deterministic:\n%v\n%v", a, b)
	}
}

func TestMidRunSpawnsIntegrate(t *testing.T) {
	// Run, then inject more load mid-flight, then run again: resumable
	// simulation with late arrivals.
	s := newSim(2)
	s.SpawnAt(0, 0, 1024, RunOnce(20_000))
	s.Run(10_000)
	s.SpawnAt(s.Clock()+100, 0, 1024, RunOnce(20_000))
	s.SpawnAt(s.Clock()+200, 1, 1024, RunOnce(5_000))
	st := s.Run(200_000)
	if st.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", st.Completed)
	}
	if err := s.Machine().Validate(); err != nil {
		t.Error(err)
	}
}
