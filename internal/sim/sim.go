// Package sim is a deterministic discrete-event simulator of a multicore
// machine driven by the paper's scheduler model: per-core runqueues,
// round-robin preemption within a core, task lifecycle
// (spawn/run/block/wake/exit), and periodic load-balancing rounds
// executing the three-step Filter/Choose/Steal protocol — by default in
// the optimistic concurrent mode (stale selections, serialized steals in
// a random order).
//
// The simulator substitutes for the paper's Linux testbed: it is where
// the §1 motivation experiments (wasted cores under the CFS group-
// imbalance bug) are reproduced, with virtual time standing in for
// wall-clock time. One tick is conventionally 1µs, making the default
// 4000-tick balance period the paper's 4ms CFS interval.
package sim

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
)

// RoundMode selects how balancing rounds execute.
type RoundMode int8

const (
	// RoundConcurrent runs rounds optimistically: all cores select
	// against the round-start snapshot, steals serialize in a random
	// order (the default; matches §3.1).
	RoundConcurrent RoundMode = iota
	// RoundSequential runs rounds in the §4.2 no-overlap mode.
	RoundSequential
)

// Config parameterizes a simulation.
type Config struct {
	// Cores is the machine width. Required.
	Cores int
	// Policy is the balancing policy. Required.
	Policy sched.Policy
	// Groups optionally assigns cores to scheduling groups (NUMA nodes).
	Groups []int
	// BalancePeriod is the tick interval between rounds (default 4000).
	BalancePeriod int64
	// Quantum is the preemption timeslice (default 1000).
	Quantum int64
	// Mode selects concurrent (default) or sequential rounds.
	Mode RoundMode
	// Seed drives the deterministic RNG (default 1).
	Seed uint64
	// Ring, when non-nil, receives trace events.
	Ring *trace.Ring
	// IdleBalance makes a core that runs out of work immediately attempt
	// one three-step steal instead of waiting for the next periodic
	// round — CFS's idle balancing, and the lever for the "reactivity"
	// property the paper leaves as future work. Work conservation does
	// not depend on it; the inter-round wasted time does.
	IdleBalance bool
}

// Simulator is the discrete-event engine. Create with New, populate with
// SpawnAt, drive with Run.
type Simulator struct {
	cfg    Config
	m      *sched.Machine
	rng    *RNG
	clock  int64
	seq    uint64
	q      eventQueue
	tasks  map[int64]*taskState
	parked map[int64]*sched.Task // blocked tasks, off every runqueue
	spawn  []spawnDesc

	// measurement
	completions metrics.Counter
	preemptions metrics.Counter
	steals      metrics.Counter
	stealFails  metrics.Counter
	rounds      metrics.Counter
	faults      metrics.Counter
	rescued     metrics.Counter
	latency     *metrics.Histogram
	waitTime    *metrics.Histogram
	violations  *metrics.ViolationTracker
}

type taskStatus int8

const (
	statusPending taskStatus = iota
	statusReady
	statusRunning
	statusBlocked
	statusExited
)

type taskState struct {
	id         int64
	behavior   Behavior
	status     taskStatus
	action     Action
	remaining  int64
	sliceStart int64
	runSeq     uint64
	lastCore   int
	arrival    int64
	readySince int64
}

type spawnDesc struct {
	core     int
	weight   int64
	behavior Behavior
}

// New builds a simulator. Panics on invalid configuration — a config is
// code, not input.
func New(cfg Config) *Simulator {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("sim: %d cores", cfg.Cores))
	}
	if cfg.Policy == nil {
		panic("sim: nil policy")
	}
	if cfg.BalancePeriod <= 0 {
		cfg.BalancePeriod = 4000
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Groups != nil && len(cfg.Groups) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d group assignments for %d cores", len(cfg.Groups), cfg.Cores))
	}
	s := &Simulator{
		cfg:        cfg,
		m:          sched.NewMachine(cfg.Cores),
		rng:        NewRNG(cfg.Seed),
		tasks:      make(map[int64]*taskState),
		parked:     make(map[int64]*sched.Task),
		latency:    metrics.NewHistogram(32),
		waitTime:   metrics.NewHistogram(32),
		violations: metrics.NewViolationTracker(0),
	}
	for id, g := range cfg.Groups {
		s.m.Core(id).Group = g
		s.m.Core(id).Node = g
	}
	s.post(&event{time: cfg.BalancePeriod, kind: evBalance})
	return s
}

// Machine exposes the simulated machine for inspection (tests, metrics).
// Callers must not mutate it.
func (s *Simulator) Machine() *sched.Machine { return s.m }

// Clock returns the current virtual time.
func (s *Simulator) Clock() int64 { return s.clock }

// RNG returns the simulation's deterministic random stream, shared with
// workload generators so a single seed fixes the whole run.
func (s *Simulator) RNG() *RNG { return s.rng }

// SpawnAt schedules a task arrival: at time t, a task with the given
// weight and behavior appears on core's runqueue.
func (s *Simulator) SpawnAt(t int64, core int, weight int64, b Behavior) {
	if core < 0 || core >= s.cfg.Cores {
		panic(fmt.Sprintf("sim: SpawnAt on core %d of %d", core, s.cfg.Cores))
	}
	if b == nil {
		panic("sim: SpawnAt with nil behavior")
	}
	if t < s.clock {
		panic(fmt.Sprintf("sim: SpawnAt(%d) in the past (clock %d)", t, s.clock))
	}
	s.spawn = append(s.spawn, spawnDesc{core: core, weight: weight, behavior: b})
	s.post(&event{time: t, kind: evSpawn, core: core, spawnID: len(s.spawn) - 1})
}

// FailAt schedules a fail-stop fault: at time t, the core goes offline.
// Whatever it was running is preempted (the task keeps its unfinished
// work) and joins the core's runqueue; the queue is then re-homed
// through the policy's rescue rule when it has one, or stranded on the
// offline core until a ReviveAt.
func (s *Simulator) FailAt(t int64, core int) {
	if core < 0 || core >= s.cfg.Cores {
		panic(fmt.Sprintf("sim: FailAt on core %d of %d", core, s.cfg.Cores))
	}
	if t < s.clock {
		panic(fmt.Sprintf("sim: FailAt(%d) in the past (clock %d)", t, s.clock))
	}
	s.post(&event{time: t, kind: evFail, core: core})
}

// ReviveAt schedules a hotplug recovery: at time t, the core rejoins
// and resumes running whatever is still queued on it.
func (s *Simulator) ReviveAt(t int64, core int) {
	if core < 0 || core >= s.cfg.Cores {
		panic(fmt.Sprintf("sim: ReviveAt on core %d of %d", core, s.cfg.Cores))
	}
	if t < s.clock {
		panic(fmt.Sprintf("sim: ReviveAt(%d) in the past (clock %d)", t, s.clock))
	}
	s.post(&event{time: t, kind: evRevive, core: core})
}

func (s *Simulator) post(e *event) {
	s.seq++
	e.seq = s.seq
	s.q.push(e)
}

func (s *Simulator) emit(kind trace.Kind, core int, task int64, aux int64) {
	s.cfg.Ring.Emit(trace.Event{Time: s.clock, Kind: kind, Core: core, Task: task, Aux: aux})
}

// Run processes events until the virtual clock reaches `until`, then
// returns the accumulated statistics. Run may be called repeatedly with
// increasing horizons.
func (s *Simulator) Run(until int64) Stats {
	st, _ := s.RunContext(context.Background(), until)
	return st
}

// RunContext is Run with cooperative cancellation: the event loop
// checks ctx every 256 events and stops early — without advancing the
// clock to the horizon or emitting an artificial final observation —
// returning the statistics at the stop point alongside ctx's error.
func (s *Simulator) RunContext(ctx context.Context, until int64) (Stats, error) {
	for n := 0; s.q.peekTime() <= until; n++ {
		if n%256 == 0 && ctx.Err() != nil {
			return s.snapshot(), ctx.Err()
		}
		e := s.q.pop()
		s.clock = e.time
		switch e.kind {
		case evSpawn:
			s.handleSpawn(e)
		case evSliceEnd:
			s.handleSliceEnd(e)
		case evWake:
			s.handleWake(e)
		case evBalance:
			s.handleBalance()
		case evFail:
			s.handleFail(e)
		case evRevive:
			s.handleRevive(e)
		}
		s.observe()
	}
	s.clock = until
	s.observe()
	return s.snapshot(), nil
}

// observe feeds the violation tracker with the current occupancy.
func (s *Simulator) observe() {
	idle := 0
	over := false
	for _, c := range s.m.Cores {
		if c.Offline {
			// An offline core is not idle capacity, but work stranded on
			// it makes every online idle core a violation.
			if c.NThreads() > 0 {
				over = true
			}
			continue
		}
		if c.Idle() {
			idle++
		}
		if c.Overloaded() {
			over = true
		}
	}
	if idle > 0 && over {
		s.emit(trace.KindViolation, -1, -1, int64(idle))
	}
	s.violations.Observe(s.clock, idle, over)
}

func (s *Simulator) handleSpawn(e *event) {
	d := s.spawn[e.spawnID]
	task := s.m.Spawn(d.core, d.weight)
	ts := &taskState{
		id:         int64(task.ID),
		behavior:   d.behavior,
		status:     statusReady,
		lastCore:   d.core,
		arrival:    s.clock,
		readySince: s.clock,
	}
	s.nextAction(ts)
	s.tasks[ts.id] = ts
	s.emit(trace.KindSpawn, d.core, ts.id, -1)
	s.startIfIdle(d.core)
}

// nextAction pulls the next action from the behavior and arms remaining.
func (s *Simulator) nextAction(ts *taskState) {
	ts.action = ts.behavior.Next(s.clock, s.rng)
	if ts.action.RunFor < 1 {
		ts.action.RunFor = 1
	}
	ts.remaining = ts.action.RunFor
}

// startIfIdle promotes a ready task if the core runs nothing, and arms
// its slice event. With IdleBalance, a core with nothing to promote
// first tries one immediate steal.
func (s *Simulator) startIfIdle(core int) {
	c := s.m.Core(core)
	if c.Offline || c.Current != nil {
		return
	}
	if len(c.Ready) == 0 && s.cfg.IdleBalance {
		s.idleBalance(core)
	}
	if c.Current != nil || len(c.Ready) == 0 {
		return
	}
	t := c.ScheduleLocal()
	ts := s.tasks[int64(t.ID)]
	ts.status = statusRunning
	ts.lastCore = core
	s.waitTime.Record(s.clock - ts.readySince)
	s.emit(trace.KindStart, core, ts.id, -1)
	s.armSlice(core, ts)
}

// armSlice schedules the end of the current run slice: the sooner of the
// action finishing and the preemption quantum.
func (s *Simulator) armSlice(core int, ts *taskState) {
	slice := ts.remaining
	if slice > s.cfg.Quantum {
		slice = s.cfg.Quantum
	}
	ts.sliceStart = s.clock
	ts.runSeq++
	s.post(&event{time: s.clock + slice, kind: evSliceEnd, core: core, task: ts.id, runSeq: ts.runSeq})
}

func (s *Simulator) handleSliceEnd(e *event) {
	ts, ok := s.tasks[e.task]
	if !ok || ts.runSeq != e.runSeq || ts.status != statusRunning {
		return // stale slice: the task blocked, exited or was rescheduled
	}
	core := s.m.Core(e.core)
	if core.Current == nil || int64(core.Current.ID) != ts.id {
		return // defensive: the core runs something else now
	}
	ts.remaining -= s.clock - ts.sliceStart
	if ts.remaining > 0 {
		// Quantum expiry mid-action: preempt if someone waits.
		if len(core.Ready) > 0 {
			s.preempt(core, ts)
		} else {
			s.armSlice(e.core, ts)
		}
		return
	}
	s.transition(core, ts)
}

func (s *Simulator) preempt(core *sched.Core, ts *taskState) {
	s.preemptions.Inc()
	s.emit(trace.KindPreempt, core.ID, ts.id, -1)
	t := core.Current
	core.Current = nil
	core.Push(t)
	ts.status = statusReady
	ts.readySince = s.clock
	s.startIfIdle(core.ID)
}

// transition applies the task's post-run action.
func (s *Simulator) transition(core *sched.Core, ts *taskState) {
	switch ts.action.Then {
	case ThenExit:
		core.Current = nil
		delete(s.tasks, ts.id)
		ts.status = statusExited
		s.completions.Inc()
		s.latency.Record(s.clock - ts.arrival)
		s.emit(trace.KindExit, core.ID, ts.id, -1)
		s.startIfIdle(core.ID)
	case ThenBlock:
		s.parked[ts.id] = core.Current
		core.Current = nil
		ts.status = statusBlocked
		s.emit(trace.KindBlock, core.ID, ts.id, ts.action.BlockFor)
		s.post(&event{time: s.clock + ts.action.BlockFor, kind: evWake, task: ts.id})
		s.startIfIdle(core.ID)
	case ThenYield:
		s.nextAction(ts)
		if len(core.Ready) > 0 {
			s.preempt(core, ts)
		} else {
			s.armSlice(core.ID, ts)
		}
	case ThenBarrier:
		b := ts.action.Barrier
		if b == nil {
			panic(fmt.Sprintf("sim: task %d hit ThenBarrier without a barrier", ts.id))
		}
		if len(b.waiting)+1 >= b.Need {
			// Last arrival: release the generation and keep running.
			b.Generation++
			for _, id := range b.waiting {
				s.post(&event{time: s.clock, kind: evWake, task: id})
			}
			b.waiting = b.waiting[:0]
			s.nextAction(ts)
			s.armSlice(core.ID, ts)
		} else {
			b.waiting = append(b.waiting, ts.id)
			s.parked[ts.id] = core.Current
			core.Current = nil
			ts.status = statusBlocked
			s.emit(trace.KindBlock, core.ID, ts.id, -1)
			s.startIfIdle(core.ID)
		}
	default:
		panic(fmt.Sprintf("sim: unknown transition %d", ts.action.Then))
	}
}

func (s *Simulator) handleWake(e *event) {
	ts, ok := s.tasks[e.task]
	if !ok || ts.status != statusBlocked {
		return
	}
	core := ts.lastCore // wake where the task last ran (cache locality)
	if s.m.Core(core).Offline {
		// The task's home core fail-stopped while it was blocked: wake
		// on the lowest-ID online core instead of stranding it.
		for id := 0; id < s.cfg.Cores; id++ {
			if !s.m.Core(id).Offline {
				core = id
				break
			}
		}
		ts.lastCore = core
	}
	ts.status = statusReady
	ts.readySince = s.clock
	s.nextAction(ts)
	s.m.Core(core).Push(s.findTask(ts.id))
	s.emit(trace.KindWake, core, ts.id, -1)
	s.startIfIdle(core)
}

// findTask locates the sched.Task object for a blocked task. Blocked
// tasks are off every runqueue, so the simulator parks them in a side
// map; see block/unblock bookkeeping below.
func (s *Simulator) findTask(id int64) *sched.Task {
	if t, ok := s.parked[id]; ok {
		delete(s.parked, id)
		return t
	}
	panic(fmt.Sprintf("sim: task %d not parked", id))
}

// idleBalance runs one immediate three-step steal attempt on behalf of a
// newly idle core (selection against the live machine: nothing is stale,
// exactly the §4.2 isolated case, so the attempt cannot fail spuriously).
func (s *Simulator) idleBalance(core int) {
	att := sched.Select(s.cfg.Policy, s.m, core)
	if att.Victim < 0 {
		return
	}
	sched.Steal(s.cfg.Policy, s.m, &att)
	if att.Succeeded() {
		s.steals.Add(int64(att.Moved))
		s.emit(trace.KindSteal, att.Thief, int64(att.MovedTasks[0]), int64(att.Victim))
		for _, id := range att.MovedTasks {
			s.tasks[int64(id)].lastCore = att.Thief
		}
	} else {
		s.stealFails.Inc()
	}
}

// handleFail fail-stops a core. The running task is preempted by the
// fault — its pending evSliceEnd goes stale through the status check,
// and it keeps whatever work its interrupted slice left unfinished —
// then the whole queue is offered to the policy's rescue rule. Without
// one the tasks stay stranded on the offline core (the runtime shadow
// of a no-task-lost refutation) until a revive.
func (s *Simulator) handleFail(e *event) {
	c := s.m.Core(e.core)
	if c.Offline {
		return
	}
	s.faults.Inc()
	if cur := c.Current; cur != nil {
		ts := s.tasks[int64(cur.ID)]
		ts.remaining -= s.clock - ts.sliceStart
		if ts.remaining < 1 {
			ts.remaining = 1
		}
		ts.status = statusReady
		ts.readySince = s.clock
	}
	s.m.FailCore(e.core)
	orphans := make(map[int64]bool, len(c.Ready))
	for _, t := range c.Ready {
		orphans[int64(t.ID)] = true
	}
	moved := sched.Rescue(s.cfg.Policy, s.m, e.core)
	s.emit(trace.KindFail, e.core, -1, int64(moved))
	if moved == 0 {
		return
	}
	s.rescued.Add(int64(moved))
	for _, oc := range s.m.Cores {
		if oc.Offline {
			continue
		}
		for _, t := range oc.Ready {
			if orphans[int64(t.ID)] {
				s.tasks[int64(t.ID)].lastCore = oc.ID
			}
		}
		s.startIfIdle(oc.ID)
	}
}

// handleRevive brings an offline core back. Tasks stranded on it become
// runnable again immediately.
func (s *Simulator) handleRevive(e *event) {
	c := s.m.Core(e.core)
	if !c.Offline {
		return
	}
	s.faults.Inc()
	s.m.ReviveCore(e.core)
	s.emit(trace.KindRevive, e.core, -1, int64(len(c.Ready)))
	s.startIfIdle(e.core)
}

func (s *Simulator) handleBalance() {
	s.rounds.Inc()
	var rr sched.RoundResult
	if s.cfg.Mode == RoundSequential {
		rr = sched.SequentialRound(s.cfg.Policy, s.m)
	} else {
		rr = sched.ConcurrentRound(s.cfg.Policy, s.m, s.rng.Perm(s.cfg.Cores))
	}
	for i := range rr.Attempts {
		att := &rr.Attempts[i]
		switch {
		case att.Succeeded():
			s.steals.Add(int64(att.Moved))
			s.emit(trace.KindSteal, att.Thief, int64(att.MovedTasks[0]), int64(att.Victim))
			for _, id := range att.MovedTasks {
				s.tasks[int64(id)].lastCore = att.Thief
			}
		case att.Reason == sched.FailRevalidation || att.Reason == sched.FailEmptyVictim:
			s.stealFails.Inc()
			s.emit(trace.KindStealFail, att.Thief, -1, int64(att.Victim))
		}
	}
	for id := 0; id < s.cfg.Cores; id++ {
		s.startIfIdle(id)
	}
	s.emit(trace.KindRound, -1, -1, int64(rr.TasksMoved()))
	s.post(&event{time: s.clock + s.cfg.BalancePeriod, kind: evBalance})
}
