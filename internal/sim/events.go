package sim

import (
	"container/heap"
	"math"
)

// mathLog avoids importing math in two files.
func mathLog(x float64) float64 { return math.Log(x) }

// eventKind discriminates simulator events.
type eventKind int8

const (
	// evSliceEnd fires when a core's current task exhausts its run slice
	// (action completion or preemption quantum).
	evSliceEnd eventKind = iota
	// evWake fires when a blocked task becomes runnable.
	evWake
	// evSpawn fires when a new task arrives.
	evSpawn
	// evBalance fires a load-balancing round.
	evBalance
	// evFail fail-stops a core (see Simulator.FailAt).
	evFail
	// evRevive brings an offline core back (see Simulator.ReviveAt).
	evRevive
)

// event is one scheduled simulator event. seq breaks time ties
// deterministically (FIFO among same-time events).
type event struct {
	time int64
	seq  uint64
	kind eventKind

	core    int    // evSliceEnd: the core; evSpawn: arrival core; evFail/evRevive: the core
	task    int64  // evSliceEnd/evWake/evSpawn: the task
	runSeq  uint64 // evSliceEnd: validity token (stale slices are ignored)
	spawnID int    // evSpawn: index into pending spawn descriptors
}

// eventQueue is a min-heap on (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// push schedules e on the queue.
func (q *eventQueue) push(e *event) { heap.Push(q, e) }

// pop removes and returns the earliest event, or nil when empty.
func (q *eventQueue) pop() *event {
	if len(*q) == 0 {
		return nil
	}
	return heap.Pop(q).(*event)
}

// peekTime returns the earliest event time, or math.MaxInt64 when empty.
func (q eventQueue) peekTime() int64 {
	if len(q) == 0 {
		return math.MaxInt64
	}
	return q[0].time
}
