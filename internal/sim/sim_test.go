package sim

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

func newSim(cores int, opts ...func(*Config)) *Simulator {
	cfg := Config{Cores: cores, Policy: policy.NewDelta2(), Seed: 42}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	s := newSim(1)
	s.SpawnAt(0, 0, 1024, RunOnce(5000))
	st := s.Run(100_000)
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", st.Completed)
	}
	// Latency should be the service time: arrived at 0, no contention.
	if got := st.Latency.Max(); got < 5000 || got > 5600 {
		t.Errorf("latency = %d, want ≈5000", got)
	}
	if !s.Machine().Core(0).Idle() {
		t.Error("core should be idle after completion")
	}
}

func TestTwoTasksShareOneCore(t *testing.T) {
	s := newSim(1)
	s.SpawnAt(0, 0, 1024, RunOnce(10_000))
	s.SpawnAt(0, 0, 1024, RunOnce(10_000))
	st := s.Run(50_000)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	if st.Preemptions == 0 {
		t.Error("expected quantum preemptions between two tasks")
	}
	// Round-robin: both finish near 20k, not one at 10k/one at 20k only
	// if FIFO-without-preemption. The second to finish is at ≈20k.
	if max := st.Latency.Max(); max < 19_000 || max > 22_000 {
		t.Errorf("max latency = %d, want ≈20000", max)
	}
}

func TestBalancingRescuesIdleCore(t *testing.T) {
	s := newSim(2)
	// Two long tasks arrive on core 0; core 1 idle. The first balance
	// round (t=4000) must migrate one.
	s.SpawnAt(0, 0, 1024, RunOnce(50_000))
	s.SpawnAt(0, 0, 1024, RunOnce(50_000))
	st := s.Run(200_000)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	if st.Steals == 0 {
		t.Error("no steal happened")
	}
	// With balancing, both tasks run in parallel after t=4000 and finish
	// around 54k; without, the last would finish at 100k.
	if max := st.Latency.Max(); max > 60_000 {
		t.Errorf("max latency = %d, want < 60000 (parallel execution)", max)
	}
	// Wasted time: core 1 idle while core 0 overloaded for the first
	// 4000 ticks only.
	if st.WastedCoreTicks < 3000 || st.WastedCoreTicks > 5000 {
		t.Errorf("WastedCoreTicks = %.0f, want ≈4000", st.WastedCoreTicks)
	}
}

func TestNullPolicyWastesCores(t *testing.T) {
	cfg := func(c *Config) { c.Policy = policy.NewNull() }
	s := newSim(2, cfg)
	s.SpawnAt(0, 0, 1024, RunOnce(40_000))
	s.SpawnAt(0, 0, 1024, RunOnce(40_000))
	st := s.Run(100_000)
	if st.Steals != 0 {
		t.Error("null policy stole")
	}
	// Core 1 idle while core 0 overloaded for the whole 80k execution.
	if st.WastedCoreTicks < 75_000 {
		t.Errorf("WastedCoreTicks = %.0f, want ≈80000", st.WastedCoreTicks)
	}
	if st.ViolationEpisodes == 0 {
		t.Error("no violation episodes recorded")
	}
}

func TestBlockAndWake(t *testing.T) {
	s := newSim(1)
	// Serve 1000, block 5000, serve 1000, ... 3 iterations then exit.
	s.SpawnAt(0, 0, 1024, RunBlockLoop(1000, 5000, 3))
	st := s.Run(100_000)
	if st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", st.Completed)
	}
	// Total: 3*(1000+5000) + 1 final tick ≈ 18001.
	if max := st.Latency.Max(); max < 17_000 || max > 20_000 {
		t.Errorf("latency = %d, want ≈18000", max)
	}
}

func TestWakeGoesToLastCore(t *testing.T) {
	s := newSim(2)
	s.SpawnAt(0, 1, 1024, RunBlockLoop(500, 2000, 2))
	s.Run(20_000)
	// The task ran on core 1, blocked, woke: it must have returned to
	// core 1 (no steals should have been needed).
	ring := trace.NewRing(64)
	s2 := New(Config{Cores: 2, Policy: policy.NewDelta2(), Ring: ring, Seed: 1})
	s2.SpawnAt(0, 1, 1024, RunBlockLoop(500, 2000, 2))
	s2.Run(20_000)
	for _, e := range ring.Filter(trace.KindWake) {
		if e.Core != 1 {
			t.Errorf("wake on core %d, want 1", e.Core)
		}
	}
}

func TestBarrierSynchronization(t *testing.T) {
	s := newSim(2)
	b := NewBarrier(2)
	// Two tasks on two cores, 5 generations of 1000-tick work.
	s.SpawnAt(0, 0, 1024, BarrierLoop(b, 1000, 5))
	s.SpawnAt(0, 1, 1024, BarrierLoop(b, 1000, 5))
	st := s.Run(50_000)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	if b.Generation != 5 {
		t.Errorf("Generation = %d, want 5", b.Generation)
	}
	// Parallel: 5 iterations of ~1000 ticks each ≈ 5000+.
	if max := st.Latency.Max(); max > 8000 {
		t.Errorf("latency = %d, want ≈5000 (parallel barriers)", max)
	}
}

func TestBarrierStragglerSlowsEveryone(t *testing.T) {
	// 2 barrier tasks pinned by placement to ONE core (no balancing via
	// null policy): every generation costs 2x the work.
	cfg := func(c *Config) { c.Policy = policy.NewNull() }
	s := newSim(2, cfg)
	b := NewBarrier(2)
	s.SpawnAt(0, 0, 1024, BarrierLoop(b, 1000, 5))
	s.SpawnAt(0, 0, 1024, BarrierLoop(b, 1000, 5))
	st := s.Run(50_000)
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	if max := st.Latency.Max(); max < 9_000 {
		t.Errorf("latency = %d, want ≈10000 (serialized barriers)", max)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		s := newSim(4)
		for i := 0; i < 16; i++ {
			s.SpawnAt(int64(i*100), i%4, 1024, RunOnce(3000+int64(i)*113))
		}
		return s.Run(100_000)
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Steals != b.Steals ||
		a.WastedCoreTicks != b.WastedCoreTicks ||
		a.Latency.Mean() != b.Latency.Mean() {
		t.Errorf("same seed, different results:\n%v\n%v", a, b)
	}
}

func TestSequentialVsConcurrentMode(t *testing.T) {
	for _, mode := range []RoundMode{RoundSequential, RoundConcurrent} {
		s := newSim(4, func(c *Config) { c.Mode = mode })
		for i := 0; i < 8; i++ {
			s.SpawnAt(0, 0, 1024, RunOnce(20_000))
		}
		st := s.Run(200_000)
		if st.Completed != 8 {
			t.Errorf("mode %d: Completed = %d, want 8", mode, st.Completed)
		}
		if st.Steals == 0 {
			t.Errorf("mode %d: no steals", mode)
		}
	}
}

func TestStealFailuresHappenUnderContention(t *testing.T) {
	// Many idle cores fighting over one overloaded core's few tasks in
	// concurrent mode must produce some failed optimistic attempts.
	s := newSim(8)
	for i := 0; i < 10; i++ {
		s.SpawnAt(0, 0, 1024, RunOnce(100_000))
	}
	st := s.Run(400_000)
	if st.StealFails == 0 {
		t.Error("expected failed optimistic steals under contention")
	}
	if st.Completed != 10 {
		t.Errorf("Completed = %d, want 10", st.Completed)
	}
}

func TestTraceEvents(t *testing.T) {
	ring := trace.NewRing(1024)
	s := New(Config{Cores: 2, Policy: policy.NewDelta2(), Ring: ring, Seed: 3})
	s.SpawnAt(0, 0, 1024, RunOnce(6000))
	s.SpawnAt(0, 0, 1024, RunOnce(6000))
	s.Run(50_000)
	if len(ring.Filter(trace.KindSpawn)) != 2 {
		t.Errorf("spawn events = %d", len(ring.Filter(trace.KindSpawn)))
	}
	if len(ring.Filter(trace.KindExit)) != 2 {
		t.Errorf("exit events = %d", len(ring.Filter(trace.KindExit)))
	}
	if len(ring.Filter(trace.KindSteal)) == 0 {
		t.Error("no steal events")
	}
	if len(ring.Filter(trace.KindRound)) == 0 {
		t.Error("no round events")
	}
}

func TestRunIsResumable(t *testing.T) {
	s := newSim(1)
	s.SpawnAt(0, 0, 1024, RunOnce(10_000))
	st1 := s.Run(5_000)
	if st1.Completed != 0 {
		t.Errorf("completed early: %d", st1.Completed)
	}
	st2 := s.Run(20_000)
	if st2.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st2.Completed)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no cores", Config{Policy: policy.NewDelta2()}},
		{"no policy", Config{Cores: 2}},
		{"bad groups", Config{Cores: 2, Policy: policy.NewDelta2(), Groups: []int{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			New(tc.cfg)
		})
	}
}

func TestSpawnValidation(t *testing.T) {
	s := newSim(1)
	for _, f := range []func(){
		func() { s.SpawnAt(0, 5, 1024, RunOnce(1)) }, // bad core
		func() { s.SpawnAt(0, 0, 1024, nil) },        // nil behavior
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestSpawnInThePastPanics(t *testing.T) {
	s := newSim(1)
	s.SpawnAt(0, 0, 1024, RunOnce(100))
	s.Run(10_000)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.SpawnAt(5, 0, 1024, RunOnce(1))
}

func TestMachineStaysValid(t *testing.T) {
	s := newSim(4)
	b := NewBarrier(3)
	for i := 0; i < 3; i++ {
		s.SpawnAt(int64(i*500), 0, 1024, BarrierLoop(b, 2000, 10))
	}
	for i := 0; i < 6; i++ {
		s.SpawnAt(int64(i*1000), i%4, 1024, RunBlockLoop(800, 1500, 8))
	}
	for step := int64(10_000); step <= 100_000; step += 10_000 {
		s.Run(step)
		if err := s.Machine().Validate(); err != nil {
			t.Fatalf("at t=%d: %v", step, err)
		}
	}
}

func TestRNG(t *testing.T) {
	r := NewRNG(0) // remapped seed
	if r.Uint64() == 0 {
		t.Error("zero state not remapped")
	}
	r2 := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r2.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn coverage = %d/10", len(seen))
	}
	p := r2.Perm(6)
	mask := 0
	for _, v := range p {
		mask |= 1 << v
	}
	if mask != 63 {
		t.Errorf("Perm not a permutation: %v", p)
	}
	mean := 0.0
	for i := 0; i < 10_000; i++ {
		mean += float64(r2.ExpTicks(100))
	}
	mean /= 10_000
	if mean < 80 || mean > 120 {
		t.Errorf("ExpTicks mean = %.1f, want ≈100", mean)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestFailCoreRescuesQueuedTasks(t *testing.T) {
	rescue, err := policy.New("delta2-rescue")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Cores: 3, Policy: rescue, Seed: 42})
	// Nine tasks land on core 0; it fail-stops before the first balance
	// round (t=4000), so the rescue rule — not stealing — must re-home
	// the whole queue onto cores 1 and 2.
	for i := 0; i < 9; i++ {
		s.SpawnAt(0, 0, 1024, RunOnce(5000))
	}
	s.FailAt(2000, 0)
	st := s.Run(200_000)
	if st.Completed != 9 {
		t.Fatalf("Completed = %d, want 9 (orphans lost to the failure)", st.Completed)
	}
	if st.Faults != 1 {
		t.Errorf("Faults = %d, want 1", st.Faults)
	}
	if st.Rescued == 0 {
		t.Error("no tasks counted as rescued despite the loaded core failing")
	}
	if st.Orphaned != 0 {
		t.Errorf("Orphaned = %d after the run, want 0", st.Orphaned)
	}
}

func TestFailCoreWithoutRescueStrandsUntilRevive(t *testing.T) {
	// Null policy: no stealing, no rescue rule. The failed core's tasks
	// are stranded — visible as Orphaned mid-run — until the scripted
	// revival brings the core and its queue back.
	s := New(Config{Cores: 2, Policy: policy.NewNull(), Seed: 1})
	for i := 0; i < 4; i++ {
		s.SpawnAt(0, 0, 1024, RunOnce(1000))
	}
	s.FailAt(500, 0)
	s.ReviveAt(10_000, 0)

	st := s.Run(5000) // past the failure, before the revival
	if st.Completed != 0 {
		t.Fatalf("Completed = %d before revival under a no-steal policy, want 0", st.Completed)
	}
	if st.Orphaned != 4 {
		t.Errorf("Orphaned = %d while core 0 is down, want 4", st.Orphaned)
	}

	st = s.Run(100_000)
	if st.Completed != 4 {
		t.Fatalf("Completed = %d after revival, want 4", st.Completed)
	}
	if st.Orphaned != 0 {
		t.Errorf("Orphaned = %d after revival, want 0", st.Orphaned)
	}
	if st.Faults != 2 {
		t.Errorf("Faults = %d, want 2 (one fail + one revive)", st.Faults)
	}
	if st.Rescued != 0 {
		t.Errorf("Rescued = %d under a rescue-less policy, want 0", st.Rescued)
	}
}

func TestFailAndReviveEmitTraceEvents(t *testing.T) {
	ring := trace.NewRing(64)
	s := New(Config{Cores: 2, Policy: policy.NewDelta2(), Ring: ring, Seed: 1})
	s.SpawnAt(0, 0, 1024, RunOnce(2000))
	s.FailAt(500, 1)
	s.ReviveAt(1500, 1)
	s.Run(10_000)
	fails, revives := ring.Filter(trace.KindFail), ring.Filter(trace.KindRevive)
	if len(fails) != 1 || fails[0].Core != 1 || fails[0].Time != 500 {
		t.Errorf("fail events = %+v, want one on core 1 at t=500", fails)
	}
	if len(revives) != 1 || revives[0].Core != 1 || revives[0].Time != 1500 {
		t.Errorf("revive events = %+v, want one on core 1 at t=1500", revives)
	}
}

func TestFailReviveValidation(t *testing.T) {
	s := newSim(2)
	s.Run(1000)
	for name, f := range map[string]func(){
		"fail core out of range":   func() { s.FailAt(2000, 2) },
		"revive core out of range": func() { s.ReviveAt(2000, -1) },
		"fail in the past":         func() { s.FailAt(500, 0) },
		"revive in the past":       func() { s.ReviveAt(500, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
