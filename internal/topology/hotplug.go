package topology

import (
	"fmt"
	"sync"
)

// HotplugEvent is one core transition: Core went offline (fail-stop) or
// came back online (hotplug add).
type HotplugEvent struct {
	Core   int
	Online bool
}

// String renders the event as e.g. "core 2 offline".
func (e HotplugEvent) String() string {
	state := "offline"
	if e.Online {
		state = "online"
	}
	return fmt.Sprintf("core %d %s", e.Core, state)
}

// OnlineState tracks which cores of a topology are currently online and
// notifies subscribers of hotplug transitions. The Topology itself stays
// immutable (it describes the hardware); OnlineState is the dynamic
// availability layer the fail-stop fault model operates on.
//
// The guarantees mirror the verifier's fault-script validity rules:
// failing an offline core or reviving an online one is rejected, and the
// last online core can never be failed — a machine with zero online
// cores has no scheduler left to reason about.
//
// OnlineState is safe for concurrent use; subscribers are invoked
// synchronously under the state lock, in subscription order, so they
// observe transitions in a single global order.
type OnlineState struct {
	mu      sync.Mutex
	offline []bool
	online  int
	subs    []func(HotplugEvent)
	history []HotplugEvent
}

// NewOnlineState returns the all-online state for an n-core machine.
func NewOnlineState(n int) *OnlineState {
	if n <= 0 {
		panic(fmt.Sprintf("topology: NewOnlineState(%d)", n))
	}
	return &OnlineState{offline: make([]bool, n), online: n}
}

// NumCores returns the tracked machine width.
func (s *OnlineState) NumCores() int { return len(s.offline) }

// Online reports whether core id is online.
func (s *OnlineState) Online(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.offline[id]
}

// OnlineCores returns the IDs of the online cores, ascending.
func (s *OnlineState) OnlineCores() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, s.online)
	for id, off := range s.offline {
		if !off {
			ids = append(ids, id)
		}
	}
	return ids
}

// NumOnline returns the number of online cores.
func (s *OnlineState) NumOnline() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online
}

// Fail takes core id offline (fail-stop). It rejects out-of-range and
// already-offline cores, and refuses to fail the last online core.
func (s *OnlineState) Fail(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.offline) {
		return fmt.Errorf("topology: Fail(%d) on a %d-core machine", id, len(s.offline))
	}
	if s.offline[id] {
		return fmt.Errorf("topology: core %d is already offline", id)
	}
	if s.online == 1 {
		return fmt.Errorf("topology: cannot fail core %d, it is the last online core", id)
	}
	s.offline[id] = true
	s.online--
	s.notifyLocked(HotplugEvent{Core: id, Online: false})
	return nil
}

// Revive brings core id back online (hotplug add). It rejects
// out-of-range and already-online cores.
func (s *OnlineState) Revive(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.offline) {
		return fmt.Errorf("topology: Revive(%d) on a %d-core machine", id, len(s.offline))
	}
	if !s.offline[id] {
		return fmt.Errorf("topology: core %d is already online", id)
	}
	s.offline[id] = false
	s.online++
	s.notifyLocked(HotplugEvent{Core: id, Online: true})
	return nil
}

// Subscribe registers fn to be called on every subsequent transition.
// Callbacks run synchronously under the state lock and must not call
// back into the OnlineState.
func (s *OnlineState) Subscribe(fn func(HotplugEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// History returns the transitions applied so far, in order.
func (s *OnlineState) History() []HotplugEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HotplugEvent(nil), s.history...)
}

func (s *OnlineState) notifyLocked(e HotplugEvent) {
	s.history = append(s.history, e)
	for _, fn := range s.subs {
		fn(e)
	}
}
