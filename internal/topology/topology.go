// Package topology models machine topologies for scheduling: cores grouped
// into NUMA nodes and hierarchical scheduling domains, with a distance
// metric between cores.
//
// The paper's step-2 (Choose) heuristics and §5 hierarchical balancing are
// the consumers: a topology never influences the step-1 filter, which is
// how NUMA-awareness stays proof-free.
package topology

import "fmt"

// Level identifies a scheduling-domain level, smallest first, mirroring
// the Linux sched-domain hierarchy.
type Level int

const (
	// LevelSMT groups hardware threads of one physical core.
	LevelSMT Level = iota
	// LevelCore groups cores sharing a last-level cache.
	LevelCore
	// LevelNode groups cores of one NUMA node.
	LevelNode
	// LevelMachine is the root domain covering every core.
	LevelMachine
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelSMT:
		return "smt"
	case LevelCore:
		return "core"
	case LevelNode:
		return "node"
	case LevelMachine:
		return "machine"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Domain is one node of the scheduling-domain tree: a set of cores at some
// level, partitioned into child domains.
type Domain struct {
	// Level is the domain's position in the hierarchy.
	Level Level
	// Cores lists the core IDs covered by this domain, ascending.
	Cores []int
	// Children partitions Cores at the next level down; empty for leaf
	// domains.
	Children []*Domain
}

// Contains reports whether the domain covers core id.
func (d *Domain) Contains(id int) bool {
	for _, c := range d.Cores {
		if c == id {
			return true
		}
	}
	return false
}

// Topology describes a machine: core count, per-core NUMA node, inter-node
// distances and the domain tree.
type Topology struct {
	// NCores is the total number of cores.
	NCores int
	// NodeOf maps core ID to NUMA node index.
	NodeOf []int
	// NodeDistance[i][j] is the access distance from node i to node j.
	// Diagonal entries are the local distance (conventionally 10, as in
	// ACPI SLIT tables); remote entries are larger.
	NodeDistance [][]int
	// Root is the top of the scheduling-domain tree.
	Root *Domain
}

// NumNodes returns the number of NUMA nodes.
func (t *Topology) NumNodes() int { return len(t.NodeDistance) }

// Node returns the NUMA node of core id.
func (t *Topology) Node(id int) int { return t.NodeOf[id] }

// Distance returns the topological distance between two cores: 0 for the
// same core, the local node distance for two cores of one node, and the
// inter-node distance otherwise.
func (t *Topology) Distance(a, b int) int {
	if a == b {
		return 0
	}
	return t.NodeDistance[t.NodeOf[a]][t.NodeOf[b]]
}

// CoresOfNode returns the IDs of the cores on the given node, ascending.
func (t *Topology) CoresOfNode(node int) []int {
	var ids []int
	for id, n := range t.NodeOf {
		if n == node {
			ids = append(ids, id)
		}
	}
	return ids
}

// Validate checks structural consistency and returns the first problem
// found, or nil.
func (t *Topology) Validate() error {
	if t.NCores <= 0 {
		return fmt.Errorf("topology: NCores = %d", t.NCores)
	}
	if len(t.NodeOf) != t.NCores {
		return fmt.Errorf("topology: NodeOf has %d entries for %d cores", len(t.NodeOf), t.NCores)
	}
	n := t.NumNodes()
	for id, node := range t.NodeOf {
		if node < 0 || node >= n {
			return fmt.Errorf("topology: core %d on invalid node %d", id, node)
		}
	}
	for i, row := range t.NodeDistance {
		if len(row) != n {
			return fmt.Errorf("topology: distance row %d has %d entries for %d nodes", i, len(row), n)
		}
		for j, d := range row {
			if d <= 0 {
				return fmt.Errorf("topology: distance[%d][%d] = %d", i, j, d)
			}
			if i != j && d < row[i] {
				return fmt.Errorf("topology: remote distance[%d][%d]=%d below local %d", i, j, d, row[i])
			}
		}
	}
	if t.Root == nil {
		return fmt.Errorf("topology: missing root domain")
	}
	if len(t.Root.Cores) != t.NCores {
		return fmt.Errorf("topology: root domain covers %d of %d cores", len(t.Root.Cores), t.NCores)
	}
	return validateDomain(t.Root)
}

func validateDomain(d *Domain) error {
	if len(d.Children) == 0 {
		return nil
	}
	covered := make(map[int]bool)
	for _, child := range d.Children {
		if child.Level >= d.Level {
			return fmt.Errorf("topology: child level %v not below parent %v", child.Level, d.Level)
		}
		for _, c := range child.Cores {
			if covered[c] {
				return fmt.Errorf("topology: core %d in two sibling domains", c)
			}
			covered[c] = true
			if !d.Contains(c) {
				return fmt.Errorf("topology: child core %d outside parent domain", c)
			}
		}
		if err := validateDomain(child); err != nil {
			return err
		}
	}
	if len(covered) != len(d.Cores) {
		return fmt.Errorf("topology: children cover %d of %d cores", len(covered), len(d.Cores))
	}
	return nil
}

// Flat returns a single-node topology with n cores — the machine model of
// the paper's examples.
func Flat(n int) *Topology {
	if n <= 0 {
		panic(fmt.Sprintf("topology: Flat(%d)", n))
	}
	nodeOf := make([]int, n)
	cores := make([]int, n)
	for i := range cores {
		cores[i] = i
	}
	return &Topology{
		NCores:       n,
		NodeOf:       nodeOf,
		NodeDistance: [][]int{{10}},
		Root:         &Domain{Level: LevelMachine, Cores: cores},
	}
}

// NUMA returns a topology with `nodes` NUMA nodes of `perNode` cores each.
// Cores are numbered node-major: node 0 holds cores [0, perNode), node 1
// holds [perNode, 2*perNode), and so on. Local distance is 10, remote 20,
// matching a typical two-hop SLIT table.
func NUMA(nodes, perNode int) *Topology {
	if nodes <= 0 || perNode <= 0 {
		panic(fmt.Sprintf("topology: NUMA(%d, %d)", nodes, perNode))
	}
	n := nodes * perNode
	nodeOf := make([]int, n)
	dist := make([][]int, nodes)
	root := &Domain{Level: LevelMachine, Cores: make([]int, n)}
	for i := range root.Cores {
		root.Cores[i] = i
	}
	for node := 0; node < nodes; node++ {
		dist[node] = make([]int, nodes)
		for other := 0; other < nodes; other++ {
			if node == other {
				dist[node][other] = 10
			} else {
				dist[node][other] = 20
			}
		}
		child := &Domain{Level: LevelNode}
		for i := 0; i < perNode; i++ {
			id := node*perNode + i
			nodeOf[id] = node
			child.Cores = append(child.Cores, id)
		}
		root.Children = append(root.Children, child)
	}
	return &Topology{NCores: n, NodeOf: nodeOf, NodeDistance: dist, Root: root}
}

// DualSocket returns the common two-socket shape: NUMA(2, perSocket).
func DualSocket(perSocket int) *Topology { return NUMA(2, perSocket) }

// Groups returns the per-node core ID sets, in node order — the "groups of
// cores" of §5's hierarchical balancing.
func (t *Topology) Groups() [][]int {
	groups := make([][]int, t.NumNodes())
	for node := range groups {
		groups[node] = t.CoresOfNode(node)
	}
	return groups
}
