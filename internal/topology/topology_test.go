package topology

import (
	"testing"
	"testing/quick"
)

func TestFlat(t *testing.T) {
	top := Flat(4)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if top.NCores != 4 || top.NumNodes() != 1 {
		t.Errorf("NCores=%d NumNodes=%d", top.NCores, top.NumNodes())
	}
	for i := 0; i < 4; i++ {
		if top.Node(i) != 0 {
			t.Errorf("Node(%d) = %d, want 0", i, top.Node(i))
		}
	}
	if top.Distance(0, 0) != 0 {
		t.Errorf("self distance = %d", top.Distance(0, 0))
	}
	if top.Distance(0, 3) != 10 {
		t.Errorf("Distance(0,3) = %d, want 10", top.Distance(0, 3))
	}
}

func TestFlatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Flat(0) did not panic")
		}
	}()
	Flat(0)
}

func TestNUMA(t *testing.T) {
	top := NUMA(2, 3)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if top.NCores != 6 || top.NumNodes() != 2 {
		t.Errorf("NCores=%d NumNodes=%d", top.NCores, top.NumNodes())
	}
	// Node-major numbering.
	for i := 0; i < 3; i++ {
		if top.Node(i) != 0 {
			t.Errorf("core %d on node %d, want 0", i, top.Node(i))
		}
		if top.Node(i+3) != 1 {
			t.Errorf("core %d on node %d, want 1", i+3, top.Node(i+3))
		}
	}
	if d := top.Distance(0, 1); d != 10 {
		t.Errorf("local distance = %d, want 10", d)
	}
	if d := top.Distance(0, 5); d != 20 {
		t.Errorf("remote distance = %d, want 20", d)
	}
}

func TestNUMAPanics(t *testing.T) {
	for _, args := range [][2]int{{0, 4}, {2, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NUMA(%d,%d) did not panic", args[0], args[1])
				}
			}()
			NUMA(args[0], args[1])
		}()
	}
}

func TestDualSocket(t *testing.T) {
	top := DualSocket(8)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if top.NCores != 16 || top.NumNodes() != 2 {
		t.Errorf("NCores=%d NumNodes=%d", top.NCores, top.NumNodes())
	}
}

func TestCoresOfNodeAndGroups(t *testing.T) {
	top := NUMA(3, 2)
	groups := top.Groups()
	if len(groups) != 3 {
		t.Fatalf("Groups count = %d", len(groups))
	}
	want := [][]int{{0, 1}, {2, 3}, {4, 5}}
	for node, g := range groups {
		if len(g) != 2 || g[0] != want[node][0] || g[1] != want[node][1] {
			t.Errorf("Groups[%d] = %v, want %v", node, g, want[node])
		}
	}
	if got := top.CoresOfNode(1); len(got) != 2 || got[0] != 2 {
		t.Errorf("CoresOfNode(1) = %v", got)
	}
}

func TestDomainContains(t *testing.T) {
	d := &Domain{Level: LevelNode, Cores: []int{2, 3}}
	if !d.Contains(2) || d.Contains(0) {
		t.Error("Contains misbehaves")
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelSMT: "smt", LevelCore: "core", LevelNode: "node",
		LevelMachine: "machine", Level(9): "Level(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestValidateCatchesBrokenTopologies(t *testing.T) {
	// Wrong NodeOf length.
	bad := Flat(2)
	bad.NodeOf = []int{0}
	if bad.Validate() == nil {
		t.Error("short NodeOf accepted")
	}
	// Invalid node index.
	bad2 := Flat(2)
	bad2.NodeOf[1] = 5
	if bad2.Validate() == nil {
		t.Error("out-of-range node accepted")
	}
	// Missing root.
	bad3 := Flat(2)
	bad3.Root = nil
	if bad3.Validate() == nil {
		t.Error("nil root accepted")
	}
	// Root not covering all cores.
	bad4 := Flat(3)
	bad4.Root.Cores = bad4.Root.Cores[:2]
	if bad4.Validate() == nil {
		t.Error("partial root accepted")
	}
	// Overlapping children.
	bad5 := NUMA(2, 2)
	bad5.Root.Children[1].Cores = []int{0, 1}
	if bad5.Validate() == nil {
		t.Error("overlapping children accepted")
	}
	// Remote distance below local.
	bad6 := NUMA(2, 1)
	bad6.NodeDistance[0][1] = 5
	if bad6.Validate() == nil {
		t.Error("remote < local distance accepted")
	}
	// Child at same level as parent.
	bad7 := NUMA(2, 1)
	bad7.Root.Children[0].Level = LevelMachine
	if bad7.Validate() == nil {
		t.Error("child at parent level accepted")
	}
}

// Property: NUMA topologies of any small shape validate, cover every core
// exactly once across groups, and have symmetric distances.
func TestNUMAProperty(t *testing.T) {
	f := func(nodesRaw, perRaw uint8) bool {
		nodes := int(nodesRaw%4) + 1
		per := int(perRaw%4) + 1
		top := NUMA(nodes, per)
		if top.Validate() != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, g := range top.Groups() {
			for _, c := range g {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		if len(seen) != top.NCores {
			return false
		}
		for i := 0; i < top.NCores; i++ {
			for j := 0; j < top.NCores; j++ {
				if top.Distance(i, j) != top.Distance(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
