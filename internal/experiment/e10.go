package experiment

import (
	"context"
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/metrics"
)

// E10ServiceTail runs the open-loop service workload — heavy-tailed
// request sizes, 25% malleable parallel jobs, arrivals skewed onto one
// core — at 90% load and compares tail latency and wasted cores across
// policies. It is the simulator-side companion to E6: where E6 counts
// lost throughput on closed scenarios, E10 measures what the paper's §1
// motivation costs an open-loop service at the p99/p999, where a
// non-work-conserving balancer cannot hide behind self-throttling
// clients.
func E10ServiceTail(ctx context.Context) Result {
	t := metrics.NewTable("policy", "jobs", "p50", "p99", "p999", "wasted%", "steals")
	cfg := loadgen.SweepConfig{
		Policies: []string{"delta2", "weighted", "cfs-group-buggy", "null"},
		Loads:    []float64{0.9},
		Cores:    8,
		Horizon:  400_000,
		Seed:     11,
	}
	rep, err := loadgen.RunSweep(ctx, cfg)
	if err != nil {
		if ctx.Err() != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-", "-", "-")
			return Result{ID: "E10", Title: serviceTailTitle, Table: t,
				Notes: []string{"cancelled before completion"}}
		}
		panic(err)
	}
	var d2P99, nullP99 int64
	for _, c := range rep.Policies {
		pt := c.Points[0]
		t.AddRow(c.Policy, fmt.Sprint(pt.JobsCompleted),
			fmt.Sprint(pt.Latency.P50), fmt.Sprint(pt.Latency.P99), fmt.Sprint(pt.Latency.P999),
			fmt.Sprintf("%.1f", pt.WastedPct), fmt.Sprint(pt.Steals))
		switch c.Policy {
		case "delta2":
			d2P99 = pt.Latency.P99
		case "null":
			nullP99 = pt.Latency.P99
		}
	}
	notes := []string{
		"open-loop M/G/k at ρ=0.9: bounded-Pareto work (α=1.5), arrivals on 2 of 8 cores, 25% of jobs fork 2–4 malleable tasks",
		"schedbench -workload service sweeps the full 60–95% curve into BENCH_service.json",
	}
	if d2P99 > 0 && nullP99 > d2P99 {
		notes = append(notes, fmt.Sprintf(
			"never balancing inflates p99 %.1fx over delta2 — the tail price of wasted cores",
			float64(nullP99)/float64(d2P99)))
	}
	return Result{ID: "E10", Title: serviceTailTitle, Table: t, Notes: notes}
}

const serviceTailTitle = "Service tail latency at 90% load (open-loop, heavy-tailed)"
