package experiment

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestE1Lemma1Shape(t *testing.T) {
	r := E1Lemma1(context.Background())
	out := r.Table.String()
	// The sound policies must be proved, the CFS model refuted.
	for _, frag := range []string{"delta2", "weighted", "hierarchical", "cfs-group-buggy"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	if !rowVerdict(out, "cfs-group-buggy", "REFUTED") {
		t.Errorf("cfs-group-buggy should be refuted:\n%s", out)
	}
	if !rowVerdict(out, "delta2", "PROVED") {
		t.Errorf("delta2 should be proved:\n%s", out)
	}
	// The paper's subtle point: greedy *passes* Lemma 1.
	if !rowVerdict(out, "greedy-buggy", "PROVED") {
		t.Errorf("greedy-buggy should pass Lemma 1:\n%s", out)
	}
}

func rowVerdict(table, policy, verdict string) bool {
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(line, policy+" ") || strings.HasPrefix(line, policy+"  ") {
			return strings.Contains(line, verdict)
		}
	}
	return false
}

func TestE2SequentialShape(t *testing.T) {
	r := E2SequentialConvergence(context.Background())
	out := r.Table.String()
	// Everything passes sequentially, including greedy.
	if strings.Contains(out, "REFUTED") {
		t.Errorf("no policy should fail sequential WC:\n%s", out)
	}
	if !strings.Contains(out, "greedy-buggy") {
		t.Errorf("greedy row missing:\n%s", out)
	}
}

func TestE3CounterexampleShape(t *testing.T) {
	r := E3Counterexample(context.Background())
	out := r.Table.String()
	if !rowVerdict(out, "delta2", "PROVED") {
		t.Errorf("delta2 should pass concurrent WC:\n%s", out)
	}
	if !rowVerdict(out, "greedy-buggy", "REFUTED") {
		t.Errorf("greedy should fail concurrent WC:\n%s", out)
	}
	foundWitness := false
	for _, n := range r.Notes {
		if strings.Contains(n, "livelock") {
			foundWitness = true
		}
	}
	if !foundWitness {
		t.Errorf("notes lack the livelock witness: %v", r.Notes)
	}
}

func TestE4PotentialShape(t *testing.T) {
	r := E4Potential(context.Background())
	out := r.Table.String()
	if !rowVerdict(out, "delta2", "PROVED") || !rowVerdict(out, "weighted", "PROVED") {
		t.Errorf("sound policies should pass potential decrease:\n%s", out)
	}
	if !rowVerdict(out, "greedy-buggy", "REFUTED") || !rowVerdict(out, "delta1-aggressive", "REFUTED") {
		t.Errorf("unsound policies should fail potential decrease:\n%s", out)
	}
}

func TestE5RoundCostShape(t *testing.T) {
	r := E5RoundCost(context.Background())
	out := r.Table.String()
	for _, cores := range []string{"4", "16", "64"} {
		if !strings.Contains(out, cores) {
			t.Errorf("missing %s-core row:\n%s", cores, out)
		}
	}
	if !strings.Contains(out, "x") {
		t.Errorf("missing overhead ratio:\n%s", out)
	}
}

func TestE6WastedCoresShape(t *testing.T) {
	r := E6WastedCores(context.Background())
	out := r.Table.String()
	// Null must be the worst; buggy must lose vs weighted.
	if !strings.Contains(out, "cfs-group-buggy") || !strings.Contains(out, "null") {
		t.Fatalf("rows missing:\n%s", out)
	}
	// Check the loss column shows a meaningful db loss for the bug.
	foundLoss := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cfs-group-buggy") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && strings.HasSuffix(fields[2], "%") {
				foundLoss = true
			}
		}
	}
	if !foundLoss {
		t.Errorf("no db loss percentage for cfs-group-buggy:\n%s", out)
	}
}

func TestE7HierarchicalShape(t *testing.T) {
	r := E7Hierarchical(context.Background())
	out := r.Table.String()
	if strings.Contains(out, "REFUTED") {
		t.Errorf("hierarchical obligations should all pass:\n%s", out)
	}
	if !strings.Contains(out, "steal locality") {
		t.Errorf("locality rows missing:\n%s", out)
	}
}

func TestE8ConcurrentShape(t *testing.T) {
	r := E8Concurrent(context.Background())
	out := r.Table.String()
	if !strings.Contains(out, "failure implies success") {
		t.Errorf("missing failure-implies-success row:\n%s", out)
	}
	if !strings.Contains(out, "soundness violations") {
		t.Errorf("missing ablation row:\n%s", out)
	}
	// The ablation must find at least one violation.
	if strings.Contains(out, "0 soundness violations") {
		t.Errorf("ablation found nothing:\n%s", out)
	}
}

func TestE9ConvergenceShape(t *testing.T) {
	r := E9ConvergenceRate(context.Background())
	out := r.Table.String()
	for _, n := range []string{"8", "16", "32"} {
		if !strings.Contains(out, n) {
			t.Errorf("missing n=%s row:\n%s", n, out)
		}
	}
	// Shape: steal-WC converges in very few rounds on every row; the
	// table must not contain the not-converged sentinel (100001).
	if strings.Contains(out, "100001") {
		t.Errorf("some scheme failed to converge:\n%s", out)
	}
}

func TestE10ServiceTailShape(t *testing.T) {
	r := E10ServiceTail(context.Background())
	out := r.Table.String()
	for _, p := range []string{"delta2", "weighted", "cfs-group-buggy", "null"} {
		if !strings.Contains(out, p) {
			t.Errorf("missing %s row:\n%s", p, out)
		}
	}
	// The tail-inflation note requires null's p99 to exceed delta2's —
	// the experiment's whole point.
	foundInflation := false
	for _, n := range r.Notes {
		if strings.Contains(n, "inflates p99") {
			foundInflation = true
		}
	}
	if !foundInflation {
		t.Errorf("notes lack the p99 inflation finding: %v", r.Notes)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in short mode")
	}
	rs := All(context.Background())
	if len(rs) != 10 {
		t.Fatalf("All(context.Background()) = %d experiments, want 10", len(rs))
	}
	for i, r := range rs {
		want := fmt.Sprintf("E%d", i+1)
		if r.ID != want {
			t.Errorf("experiment %d ID = %s, want %s", i, r.ID, want)
		}
		if r.Table == nil || len(r.Notes) == 0 {
			t.Errorf("%s incomplete", r.ID)
		}
		if !strings.Contains(r.String(), r.Title) {
			t.Errorf("%s String() lacks title", r.ID)
		}
	}
}
