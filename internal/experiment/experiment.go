// Package experiment regenerates every experiment in EXPERIMENTS.md:
// each E* function reproduces one of the paper's artifacts (listings,
// figure, counterexample, motivation claims) and returns a formatted
// table plus notes. cmd/schedbench prints them all; the root bench suite
// wraps each in a testing.B benchmark.
package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/dsl"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/topology"
	"repro/internal/verify"
	"repro/internal/workload"
)

// numaTopology is the 2-node × 4-core machine used by the locality
// sample.
func numaTopology() *topology.Topology { return topology.NUMA(2, 4) }

// Result is one regenerated experiment.
type Result struct {
	// ID is the experiment identifier (E1..E8).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Table holds the regenerated rows.
	Table *metrics.Table
	// Notes carry the shape findings (who wins, by how much).
	Notes []string
}

// String renders the experiment in the report format.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// defaultUniverse is the bounded space shared by the verification
// experiments (kept small enough that the full suite runs in seconds).
func defaultUniverse() statespace.Universe {
	return statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
}

func verdict(passed bool) string {
	if passed {
		return "PROVED (bounded)"
	}
	return "REFUTED"
}

// resultVerdict renders one obligation result, distinguishing a
// cancelled (partial) check from a genuine refutation.
func resultVerdict(res verify.Result) string {
	if res.Aborted {
		return "ABORTED (partial)"
	}
	return verdict(res.Passed)
}

func factoryOf(name string) verify.Factory {
	return func() sched.Policy {
		p, err := policy.New(name)
		if err != nil {
			panic(err)
		}
		return p
	}
}

// E1Lemma1 reproduces Listing 2: the Lemma 1 check for each policy over
// the bounded universe. The paper proves it for the simple and weighted
// balancers; the CFS group-average model must fail it (that failure *is*
// the wasted-cores bug).
func E1Lemma1(ctx context.Context) Result {
	t := metrics.NewTable("policy", "universe", "states", "lemma1", "witness")
	type row struct {
		name string
		u    statespace.Universe
	}
	rows := []row{
		{"delta2", defaultUniverse()},
		{"weighted", statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4,
			Weights: []int64{1, 3}, IncludeUnscheduled: true}},
		{"greedy-buggy", defaultUniverse()},
		{"hierarchical", statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 4,
			IncludeUnscheduled: true, Groups: []int{0, 0, 1, 1}}},
		{"cfs-group-buggy", statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 5,
			Weights: []int64{1, 8}, Groups: []int{0, 0, 1, 1}}},
	}
	var failedCFS bool
	for _, r := range rows {
		res := verify.CheckLemma1(ctx, factoryOf(r.name), r.u)
		witness := res.Witness
		if len(witness) > 60 {
			witness = witness[:57] + "..."
		}
		t.AddRow(r.name, universeLabel(r.u), fmt.Sprint(res.StatesChecked), resultVerdict(res), witness)
		if r.name == "cfs-group-buggy" && !res.Passed && !res.Aborted {
			failedCFS = true
		}
	}
	notes := []string{"paper: Leon proves Lemma 1 automatically for the simple and weighted balancers"}
	if failedCFS {
		notes = append(notes, "the CFS group-average model fails the exists-direction: the group-imbalance bug, caught at the cheapest obligation")
	}
	return Result{ID: "E1", Title: "Lemma 1 (Listing 2) over the bounded universe", Table: t, Notes: notes}
}

func universeLabel(u statespace.Universe) string {
	label := fmt.Sprintf("%dc/%dmax", u.Cores, u.MaxPerCore)
	if len(u.Weights) > 0 {
		label += "/w"
	}
	if u.Groups != nil {
		label += "/grp"
	}
	return label
}

// E2SequentialConvergence reproduces §4.2: sequential rounds are
// work-conserving, with the worst-case N measured per machine size.
func E2SequentialConvergence(ctx context.Context) Result {
	t := metrics.NewTable("policy", "cores", "maxPerCore", "states", "verdict", "worst-N")
	shapes := []struct{ cores, maxPer, maxTotal int }{
		{2, 4, 0}, {3, 3, 5}, {4, 2, 6},
	}
	for _, name := range []string{"delta2", "greedy-buggy", "weighted"} {
		for _, s := range shapes {
			u := statespace.Universe{Cores: s.cores, MaxPerCore: s.maxPer,
				MaxTotal: s.maxTotal, IncludeUnscheduled: true}
			res := verify.CheckWorkConservationSequential(ctx, factoryOf(name), u, 0)
			t.AddRow(name, fmt.Sprint(s.cores), fmt.Sprint(s.maxPer),
				fmt.Sprint(res.StatesChecked), resultVerdict(res), fmt.Sprint(res.Bound))
		}
	}
	return Result{
		ID: "E2", Title: "Sequential work conservation (§4.2)", Table: t,
		Notes: []string{
			"every policy converges without concurrency — even the greedy filter (the paper's point: only concurrency breaks it)",
			"worst-N = 1 in the sequential setting: an idle core's steal cannot fail in isolation, so one round always clears every idle core; N > 1 appears only under concurrency (E3, E8)",
		},
	}
}

// E3Counterexample reproduces §4.3's ping-pong: the model checker finds
// the livelock for the greedy filter and proves its absence for Delta2.
func E3Counterexample(ctx context.Context) Result {
	t := metrics.NewTable("policy", "states", "schedules", "verdict", "worst-N")
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 3}
	var witness string
	for _, name := range []string{"delta2", "greedy-buggy"} {
		res := verify.CheckWorkConservationConcurrent(ctx, factoryOf(name), u)
		t.AddRow(name, fmt.Sprint(res.StatesChecked), fmt.Sprint(res.SchedulesChecked),
			resultVerdict(res), fmt.Sprint(res.Bound))
		if !res.Passed && !res.Aborted && witness == "" {
			witness = res.Witness
		}
	}
	notes := []string{"paper §4.3: cores 0/1/2 with loads 0/1/2; the spare thread ping-pongs between the non-idle cores"}
	if witness != "" {
		notes = append(notes, "found automatically: "+witness)
	}
	return Result{ID: "E3", Title: "Concurrent counterexample (§4.3 ping-pong)", Table: t, Notes: notes}
}

// E4Potential reproduces the §4.3 bounded-successes argument: the
// pairwise imbalance strictly decreases per successful steal for sound
// policies, refuted with a witness for the greedy filter; the potential
// bound is compared against observed steal counts.
func E4Potential(ctx context.Context) Result {
	t := metrics.NewTable("policy", "states", "verdict", "example machine", "d0", "bound", "observed steals")
	for _, name := range []string{"delta2", "weighted", "greedy-buggy", "delta1-aggressive"} {
		res := verify.CheckPotentialDecrease(ctx, factoryOf(name), defaultUniverse())
		// Observed steals to fixpoint on a canonical machine.
		p := factoryOf(name)()
		m := sched.MachineFromLoads(0, 6, 2, 0)
		d0 := sched.PairwiseImbalance(p, m)
		bound := sched.PotentialBound(p, m, 2)
		steals := 0
		for i := 0; i < 64; i++ {
			rr := sched.SequentialRound(p, m)
			steals += rr.Successes()
			if rr.TasksMoved() == 0 {
				break
			}
		}
		t.AddRow(name, fmt.Sprint(res.StatesChecked), resultVerdict(res),
			"[0 6 2 0]", fmt.Sprint(d0), fmt.Sprint(bound), fmt.Sprint(steals))
	}
	return Result{
		ID: "E4", Title: "Potential function d = ΣΣ|loadᵢ−loadⱼ| (§4.3)", Table: t,
		Notes: []string{
			"observed steals ≤ d0/minDrop for every policy whose steals strictly decrease d",
			"greedy and delta1 violate strict decrease — their steal counts are not bounded by the potential",
		},
	}
}

// E5RoundCost reproduces the Figure 1 overhead story: the cost of a
// balancing round by core count, the concurrent (snapshot) mode's
// premium, and the DSL-interpreter's overhead versus the native policy —
// design constraint (iii), "incurring low overhead".
func E5RoundCost(ctx context.Context) Result {
	t := metrics.NewTable("cores", "sequential ns/round", "concurrent ns/round", "dsl ns/round", "dsl overhead")
	src := `policy delta2_dsl {
    load   = self.ready.size + self.current.size
    filter = stealee.load - thief.load >= 2
    steal  = 1
    choose = max_load
}`
	dslPolicy, _, err := dsl.CompileSource(src)
	if err != nil {
		panic(err)
	}
	for _, cores := range []int{4, 16, 64} {
		if ctx.Err() != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-")
			break
		}
		loads := make([]int, cores)
		for i := range loads {
			loads[i] = (i * 7 % 5)
		}
		native := policy.NewDelta2()
		seq := timeRound(func(m *sched.Machine) { sched.SequentialRound(native, m) }, loads)
		conc := timeRound(func(m *sched.Machine) {
			sched.ConcurrentRound(native, m, sched.IdentityOrder(cores))
		}, loads)
		dslT := timeRound(func(m *sched.Machine) { sched.SequentialRound(dslPolicy, m) }, loads)
		overhead := float64(dslT) / float64(seq)
		t.AddRow(fmt.Sprint(cores), fmt.Sprint(seq), fmt.Sprint(conc),
			fmt.Sprint(dslT), fmt.Sprintf("%.2fx", overhead))
	}
	return Result{
		ID: "E5", Title: "Balancing-round cost and DSL overhead (Figure 1, constraint iii)", Table: t,
		Notes: []string{
			"concurrent rounds pay for the stale snapshot (clone) — the price of lock-free selection in the model checker; the real executor (E8) publishes load counters instead",
			"the interpreted DSL policy costs ≈3x over native Go at scale; the generated-code backend (scheddsl -gen) removes the interpreter entirely",
		},
	}
}

// timeRound measures ns per round over fresh machines.
func timeRound(round func(*sched.Machine), loads []int) int64 {
	const iters = 200
	machines := make([]*sched.Machine, iters)
	for i := range machines {
		machines[i] = sched.MachineFromLoads(loads...)
	}
	start := time.Now()
	for _, m := range machines {
		round(m)
	}
	return time.Since(start).Nanoseconds() / iters
}

// E6WastedCores reproduces the §1 motivation (Lozi et al.): the database
// trap (up to ~25% throughput loss) and the barrier trap (many-fold
// slowdown) under the buggy group-average policy versus work-conserving
// policies.
func E6WastedCores(ctx context.Context) Result {
	t := metrics.NewTable("policy", "db req/1.5Mticks", "db loss", "barrier gens/400k", "slowdown", "wasted%")
	const horizon = 1_500_000
	dbBase, barBase := int64(0), int64(0)
	policies := []string{"weighted", "hierarchical", "delta2", "cfs-group-buggy", "null"}
	for _, name := range policies {
		if ctx.Err() != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-", "-")
			break
		}
		dbTrap := workload.NewDBTrap()
		s := sim.New(sim.Config{Cores: dbTrap.Cores(), Policy: mustPolicy(name),
			Groups: dbTrap.Groups(), Seed: 11})
		dbTrap.Setup(s)
		st, err := s.RunContext(ctx, horizon)
		if err != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-", "-")
			break
		}
		req := dbTrap.Server.Requests()

		barTrap := workload.NewBarrierTrap(1700)
		s2 := sim.New(sim.Config{Cores: barTrap.Cores(), Policy: mustPolicy(name),
			Groups: barTrap.Groups(), Seed: 11})
		barTrap.Setup(s2)
		if _, err := s2.RunContext(ctx, 400_000); err != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-", "-")
			break
		}
		gens := barTrap.Barrier.Generations()

		if name == "weighted" {
			dbBase, barBase = req, gens
		}
		loss := "-"
		if dbBase > 0 && name != "weighted" {
			loss = fmt.Sprintf("%.1f%%", 100*float64(dbBase-req)/float64(dbBase))
		}
		slowdown := "-"
		if barBase > 0 && gens > 0 && name != "weighted" {
			slowdown = fmt.Sprintf("%.1fx", float64(barBase)/float64(gens))
		}
		t.AddRow(name, fmt.Sprint(req), loss, fmt.Sprint(gens), slowdown,
			fmt.Sprintf("%.1f", st.WastedPct))
	}
	return Result{
		ID: "E6", Title: "Wasted cores: the §1 motivation numbers (Lozi et al.)", Table: t,
		Notes: []string{
			"paper: 'up to 25% decrease in throughput for realistic database workloads' — the cfs-group-buggy row",
			"paper: 'many-fold performance degradation in the case of scientific applications' — the barrier slowdown column",
		},
	}
}

func mustPolicy(name string) sched.Policy {
	p, err := policy.New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// E7Hierarchical reproduces the §5 extension: two-level balancing passes
// the identical obligations (no new proof work), and NUMA-aware choice
// changes steal locality without touching the filter.
func E7Hierarchical(ctx context.Context) Result {
	t := metrics.NewTable("check", "policy", "result", "detail")
	u := statespace.Universe{Cores: 4, MaxPerCore: 2, MaxTotal: 4,
		IncludeUnscheduled: true, Groups: []int{0, 0, 1, 1}}
	for _, ob := range []verify.ObligationID{verify.ObLemma1, verify.ObStealSoundness,
		verify.ObPotentialDecrease, verify.ObWorkConservSeq, verify.ObChoiceIndependence} {
		rep, _ := verify.PolicyContext(ctx, "hierarchical", factoryOf("hierarchical"),
			verify.Config{Universe: u, Obligations: []verify.ObligationID{ob}})
		res := rep.Results[0]
		detail := fmt.Sprintf("states=%d", res.StatesChecked)
		if res.SchedulesChecked > 0 {
			detail += fmt.Sprintf(" schedules=%d", res.SchedulesChecked)
		}
		t.AddRow(string(ob), "hierarchical", resultVerdict(res), detail)
	}
	// Locality: fraction of intra-group steals, NUMA-aware vs plain.
	for _, variant := range []string{"delta2", "numa-aware"} {
		intra, total := localitySample(variant)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(intra) / float64(total)
		}
		t.AddRow("steal locality", variant, fmt.Sprintf("%.0f%% intra-group", pct),
			fmt.Sprintf("%d/%d steals", intra, total))
	}
	return Result{
		ID: "E7", Title: "Hierarchical balancing and NUMA-aware choice (§5)", Table: t,
		Notes: []string{
			"the hierarchical filter is a restriction of Delta2 plus an idle-escape clause, so every obligation transfers",
			"the NUMA-aware step-2 heuristic raises intra-group steal locality at zero proof cost — the paper's central claim about the choice step",
		},
	}
}

// localitySample runs a skewed workload on a 2x4 NUMA machine and counts
// intra-group steals.
func localitySample(variant string) (intra, total int) {
	top := numaTopology()
	var p sched.Policy
	if variant == "numa-aware" {
		p = policy.NewNUMAAware(top)
	} else {
		p = policy.NewDelta2()
	}
	// Overload one core per node; let everyone balance for some rounds.
	for trial := 0; trial < 20; trial++ {
		m := sched.MachineFromLoads(6, 0, 0, 0, 6, 0, 0, 0)
		policy.AssignGroups(m, top)
		for round := 0; round < 6; round++ {
			rr := sched.SequentialRound(p, m)
			for _, att := range rr.Attempts {
				if att.Succeeded() {
					total++
					if m.Core(att.Thief).Group == m.Core(att.Victim).Group {
						intra++
					}
				}
			}
		}
	}
	return intra, total
}

// E8Concurrent reproduces the §3.1/§4.3 optimistic-concurrency story:
// failure⇒success holds over every adversarial schedule, the
// re-validation ablation breaks soundness, and the real executor shows
// the protocol live (steals succeed, optimistic failures happen, nothing
// corrupts).
func E8Concurrent(ctx context.Context) Result {
	t := metrics.NewTable("check", "policy", "result", "detail")
	u := defaultUniverse()
	res := verify.CheckFailureImpliesSuccess(ctx, factoryOf("delta2"), u)
	t.AddRow("failure implies success", "delta2", resultVerdict(res),
		fmt.Sprintf("%d schedules", res.SchedulesChecked))
	resC := verify.CheckWorkConservationConcurrent(ctx, factoryOf("delta2"), u)
	t.AddRow("concurrent WC", "delta2", resultVerdict(resC),
		fmt.Sprintf("worst-N=%d over %d schedules", resC.Bound, resC.SchedulesChecked))
	abl := verify.CheckRevalidationAblation(ctx, factoryOf("delta2"),
		statespace.Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true})
	ablResult := fmt.Sprintf("%d soundness violations", abl.SoundnessViolations)
	if abl.Aborted {
		ablResult = "ABORTED (partial): " + ablResult
	}
	t.AddRow("ablation: no re-validation", "delta2", ablResult,
		fmt.Sprintf("%d schedules; e.g. %s", abl.SchedulesChecked, clip(abl.FirstWitness, 48)))
	return Result{
		ID: "E8", Title: "Optimistic concurrency: failures, ablation (§3.1, §4.3)", Table: t,
		Notes: []string{
			"removing Listing 1 line 12 (the locked re-check) lets two thieves drain an overloaded core to idle — the executor and simulator keep it for exactly this reason",
		},
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// All regenerates every experiment in order, stopping early when ctx is
// cancelled (the experiments already produced are returned).
func All(ctx context.Context) []Result {
	runners := []func(context.Context) Result{
		E1Lemma1, E2SequentialConvergence, E3Counterexample, E4Potential,
		E5RoundCost, E6WastedCores, E7Hierarchical, E8Concurrent,
		E9ConvergenceRate, E10ServiceTail,
	}
	var results []Result
	for _, run := range runners {
		if ctx.Err() != nil {
			break
		}
		results = append(results, run(ctx))
	}
	return results
}
