package experiment

import (
	"context"
	"fmt"

	"repro/internal/convergence"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// E9ConvergenceRate extends the paper's §2 plan ("we plan to build upon
// [Xu & Lau 1996] to prove latency limits on the work-conserving
// property"): it measures rounds-to-convergence for the classical
// iterative schemes (first-order diffusion per topology, dimension
// exchange on the hypercube) against the paper's optimistic
// work-stealing rounds, from the worst-case spike placement.
//
// Two notions of "converged" are reported for stealing: the paper's weak
// work conservation (no idle core while one is overloaded) and full ±1
// balance. Work conservation is dramatically cheaper — the point of the
// paper's relaxed definition.
func E9ConvergenceRate(ctx context.Context) Result {
	t := metrics.NewTable("n", "spike", "diffusion ring", "diffusion cube", "dim-exchange", "steal WC", "steal ±1")
	const maxRounds = 1_000_000
	const tol = 1.0 // converged when max−min ≤ 1 task, same bar as steal ±1
	for _, dim := range []int{3, 4, 5} {
		if ctx.Err() != nil {
			t.AddRow("(cancelled)", "-", "-", "-", "-", "-", "-")
			break
		}
		n := 1 << dim
		total := int64(4 * n)
		ring := convergence.Ring(n)
		cube := convergence.Hypercube(dim)

		ringRounds := convergence.RoundsToFloat(func(l []float64) {
			convergence.DiffusionRoundFloat(ring, l)
		}, convergence.SpikeLoadFloat(n, float64(total)), tol, maxRounds)

		cubeRounds := convergence.RoundsToFloat(func(l []float64) {
			convergence.DiffusionRoundFloat(cube, l)
		}, convergence.SpikeLoadFloat(n, float64(total)), tol, maxRounds)

		deLoad := convergence.SpikeLoad(n, total)
		deRounds := convergence.RoundsTo(func(l []int64) int64 {
			return convergence.DimensionExchangeRound(dim, l)
		}, deLoad, 1, maxRounds)

		wc := convergence.WorkConservationRounds(policy.NewDelta2(), convergence.SpikeLoad(n, total), maxRounds)
		full := convergence.StealingRounds(policy.NewDelta2(), convergence.SpikeLoad(n, total), 1, maxRounds)

		t.AddRow(fmt.Sprint(n), fmt.Sprint(total),
			fmt.Sprint(ringRounds), fmt.Sprint(cubeRounds), fmt.Sprint(deRounds),
			fmt.Sprint(wc), fmt.Sprint(full))
	}
	return Result{
		ID:    "E9",
		Title: "Convergence rates: Xu & Lau baselines vs optimistic stealing (§2 future work)",
		Table: t,
		Notes: []string{
			"work conservation (the paper's property) is reached in O(1) rounds even from the worst spike: every idle core steals successfully once",
			"full ±1 balance costs more rounds and is topology-sensitive for diffusion (ring slowest) — motivating the paper's weaker, provable property",
		},
	}
}
