// Package statespace provides bounded enumeration and exploration
// utilities over scheduler machine states. internal/verify uses it to
// replace the paper's Leon deductive proofs with exhaustive checking:
// every lemma quantified over "all machines" is checked over all machines
// up to a bound (cores × threads × weights), and every claim about
// concurrent rounds is checked over all adversarial steal orders.
package statespace

import (
	"fmt"

	"repro/internal/sched"
)

// Universe describes a bounded set of machine states to enumerate.
type Universe struct {
	// Cores is the number of cores of every enumerated machine.
	Cores int
	// MaxPerCore bounds the threads owned by a single core.
	MaxPerCore int
	// MaxTotal bounds the total thread count (0 means Cores*MaxPerCore).
	MaxTotal int
	// Weights is the set of task weights to draw from; nil means
	// unit-weight tasks only. Weighted universes grow quickly; keep the
	// set small (≤ 2 weights) for exhaustive runs.
	Weights []int64
	// IncludeUnscheduled also enumerates states where a core has queued
	// tasks but no current task (e.g. just after its current exited).
	// These states exercise the Idle/Overloaded corner cases.
	IncludeUnscheduled bool
	// Groups optionally assigns each core to a scheduling group (and
	// NUMA node), for verifying hierarchical policies. Length must equal
	// Cores when set.
	Groups []int
	// MaxFaults bounds the fail-stop fault dimension: every machine is
	// additionally enumerated under every valid fault script of up to
	// MaxFaults fail/revive events (the empty script included, so the
	// healthy states are a subset of the fault-extended universe). A
	// script is valid when each fail targets an online core that is not
	// the last one online and each revive targets an offline core.
	// Scripts expand below the enumeration rank — the rank still
	// identifies the thread-count vector — so the shard partition and
	// witness ordering guarantees are unchanged. Zero disables the
	// dimension entirely.
	MaxFaults int
}

// Validate checks the universe's structural invariants and returns the
// first problem found, or nil — the error-returning counterpart of the
// panics Enumerate raises on malformed universes.
func (u Universe) Validate() error {
	if u.Cores <= 0 {
		return fmt.Errorf("statespace: universe with %d cores", u.Cores)
	}
	if u.MaxPerCore < 0 || u.MaxTotal < 0 {
		return fmt.Errorf("statespace: negative MaxPerCore/MaxTotal")
	}
	if u.Groups != nil && len(u.Groups) != u.Cores {
		return fmt.Errorf("statespace: %d group assignments for %d cores", len(u.Groups), u.Cores)
	}
	for _, w := range u.Weights {
		if w <= 0 {
			return fmt.Errorf("statespace: non-positive task weight %d", w)
		}
	}
	if u.MaxFaults < 0 {
		return fmt.Errorf("statespace: negative MaxFaults %d", u.MaxFaults)
	}
	return nil
}

// String renders the universe in the canonical single-line form used in
// verify.Report headers: every field in declaration order, nil slices as
// `[]`. Two universes with the same String enumerate the same states in
// the same order.
func (u Universe) String() string {
	return fmt.Sprintf("universe{cores:%d maxPerCore:%d maxTotal:%d weights:%v unscheduled:%v groups:%v maxFaults:%d}",
		u.Cores, u.MaxPerCore, u.MaxTotal, u.Weights, u.IncludeUnscheduled, u.Groups, u.MaxFaults)
}

// Canonical is the universe's content identity for memoization: String
// with the MaxTotal=0 shorthand expanded to its Cores*MaxPerCore
// meaning, so the two spellings of the same state space hash alike.
// (Report headers keep the submitted spelling; only cache keys use the
// canonical form.)
func (u Universe) Canonical() string {
	if u.MaxTotal == 0 {
		u.MaxTotal = u.Cores * u.MaxPerCore
	}
	return u.String()
}

// Size returns the number of states Enumerate will produce. It mirrors
// Enumerate's loop structure rather than a closed formula so the two can
// never disagree.
func (u Universe) Size() int {
	n := 0
	u.Enumerate(func(*sched.Machine) bool { n++; return true })
	return n
}

// Enumerate calls fn for every machine in the universe. fn may mutate the
// machine it receives (each call gets a fresh one). Enumeration stops
// early if fn returns false; Enumerate reports whether it ran to
// completion.
func (u Universe) Enumerate(fn func(*sched.Machine) bool) bool {
	return u.enumerate(0, 1, func(_ int, m *sched.Machine) bool { return fn(m) })
}

// EnumerateShard calls fn for every machine in one shard of a total-way
// partition of the universe. The partition splits the search at the
// top-level per-core thread-count recursion: complete thread-count
// vectors are dealt round-robin to shards in enumeration order, so the
// shards are pairwise disjoint, their union is exactly Enumerate's
// output, and concurrent shards need no coordination. EnumerateShard(0, 1, fn)
// is Enumerate(fn). Like Enumerate, it stops early when fn returns false
// and reports whether it ran to completion.
func (u Universe) EnumerateShard(shard, total int, fn func(*sched.Machine) bool) bool {
	return u.enumerate(shard, total, func(_ int, m *sched.Machine) bool { return fn(m) })
}

// EnumerateShardRank is EnumerateShard with provenance: fn also receives
// the rank — the zero-based index of the machine's thread-count vector in
// the full Enumerate order. Ranks are disjoint across the shards of one
// partition (shard s owns exactly the ranks ≡ s mod total), so a caller
// fanning shards out in parallel can merge per-shard findings back into
// the deterministic sequential order by comparing ranks.
func (u Universe) EnumerateShardRank(shard, total int, fn func(rank int, m *sched.Machine) bool) bool {
	return u.enumerate(shard, total, fn)
}

func (u Universe) enumerate(shard, total int, fn func(int, *sched.Machine) bool) bool {
	if u.Cores <= 0 {
		panic(fmt.Sprintf("statespace: universe with %d cores", u.Cores))
	}
	if total <= 0 || shard < 0 || shard >= total {
		panic(fmt.Sprintf("statespace: shard %d of %d", shard, total))
	}
	maxTotal := u.MaxTotal
	if maxTotal == 0 {
		maxTotal = u.Cores * u.MaxPerCore
	}
	weights := u.Weights
	if len(weights) == 0 {
		// Default to the canonical unit weight so enumerated states share
		// keys with machines built by sched.MachineFromLoads.
		weights = []int64{sched.DefaultWeight}
	}
	// Enumerate per-core thread counts, then (optionally) the scheduled
	// bit, then weight assignments. Only the count vectors owned by the
	// shard are expanded; walking the skipped vectors costs a few integer
	// ops each, negligible next to the expansion they gate.
	counts := make([]int, u.Cores)
	rank := 0
	var rec func(core, used int) bool
	rec = func(core, used int) bool {
		if core == u.Cores {
			r := rank
			rank++
			if r%total != shard {
				return true
			}
			return u.enumerateSchedBits(counts, weights, func(m *sched.Machine) bool {
				return fn(r, m)
			})
		}
		for n := 0; n <= u.MaxPerCore && used+n <= maxTotal; n++ {
			counts[core] = n
			if !rec(core+1, used+n) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// enumerateSchedBits expands one thread-count vector into machines: for
// each loaded core, either the first thread is running (always) or — when
// IncludeUnscheduled — all threads are queued.
func (u Universe) enumerateSchedBits(counts []int, weights []int64, fn func(*sched.Machine) bool) bool {
	loaded := 0
	for _, n := range counts {
		if n > 0 {
			loaded++
		}
	}
	variants := 1
	if u.IncludeUnscheduled {
		variants = 1 << loaded
	}
	for v := 0; v < variants; v++ {
		ok := u.enumerateWeights(counts, v, weights, fn)
		if !ok {
			return false
		}
	}
	return true
}

// enumerateWeights expands one (counts, scheduled-bits) pair over all
// weight assignments. To keep the space canonical, weights within a
// core's queue are non-decreasing (queue order is irrelevant to
// policies that pick tasks by weight).
func (u Universe) enumerateWeights(counts []int, schedBits int, weights []int64, fn func(*sched.Machine) bool) bool {
	specs := make([]sched.CoreSpec, len(counts))
	loadedIdx := 0
	if u.Groups != nil && len(u.Groups) != len(counts) {
		panic(fmt.Sprintf("statespace: %d group assignments for %d cores", len(u.Groups), len(counts)))
	}
	build := func(faults []sched.FaultEvent) bool {
		m := sched.MachineFromSpec(specs...)
		for id, g := range u.Groups {
			m.Core(id).Group = g
			m.Core(id).Node = g
		}
		m.Faults = faults
		return fn(m)
	}
	var rec func(core int) bool
	rec = func(core int) bool {
		if core == len(counts) {
			if u.MaxFaults <= 0 {
				return build(nil)
			}
			return u.enumerateFaultScripts(build)
		}
		n := counts[core]
		if n == 0 {
			specs[core] = sched.CoreSpec{}
			return rec(core + 1)
		}
		idx := loadedIdx
		loadedIdx++
		unscheduled := u.IncludeUnscheduled && schedBits&(1<<idx) != 0
		ok := enumerateCoreWeights(n, weights, func(ws []int64) bool {
			if unscheduled {
				specs[core] = sched.CoreSpec{Queued: append([]int64(nil), ws...)}
			} else {
				specs[core] = sched.CoreSpec{Running: ws[0], Queued: append([]int64(nil), ws[1:]...)}
			}
			return rec(core + 1)
		})
		loadedIdx--
		return ok
	}
	return rec(0)
}

// enumerateFaultScripts yields every valid fail-stop fault script of
// length 0..MaxFaults over the universe's cores, in deterministic DFS
// order (the empty script first, then each script before its
// extensions; extensions try fail(0..n-1) then revive(0..n-1)). A
// prefix of every emitted script is itself emitted, which is what lets
// the degraded-mode checkers treat "bounded recovery after the last
// event" as covering recovery after *any* event. fn receives a fresh
// slice per call (nil for the empty script).
func (u Universe) enumerateFaultScripts(fn func([]sched.FaultEvent) bool) bool {
	offline := make([]bool, u.Cores)
	online := u.Cores
	script := make([]sched.FaultEvent, 0, u.MaxFaults)
	var rec func() bool
	rec = func() bool {
		if !fn(append([]sched.FaultEvent(nil), script...)) {
			return false
		}
		if len(script) == u.MaxFaults {
			return true
		}
		for c := 0; c < u.Cores; c++ {
			if offline[c] || online == 1 {
				continue
			}
			offline[c] = true
			online--
			script = append(script, sched.FaultEvent{Core: c})
			ok := rec()
			script = script[:len(script)-1]
			offline[c] = false
			online++
			if !ok {
				return false
			}
		}
		for c := 0; c < u.Cores; c++ {
			if !offline[c] {
				continue
			}
			offline[c] = false
			online++
			script = append(script, sched.FaultEvent{Core: c, Revive: true})
			ok := rec()
			script = script[:len(script)-1]
			offline[c] = true
			online--
			if !ok {
				return false
			}
		}
		return true
	}
	return rec()
}

// enumerateCoreWeights yields every non-decreasing weight vector of length
// n drawn from weights.
func enumerateCoreWeights(n int, weights []int64, fn func([]int64) bool) bool {
	ws := make([]int64, n)
	var rec func(i, minIdx int) bool
	rec = func(i, minIdx int) bool {
		if i == n {
			return fn(ws)
		}
		for w := minIdx; w < len(weights); w++ {
			ws[i] = weights[w]
			if !rec(i+1, w) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// Permutations calls fn with every permutation of [0, n), reusing one
// backing slice. fn must not retain the slice. Iteration stops early if fn
// returns false; Permutations reports whether it ran to completion.
// Classic Heap's algorithm, allocation-free per permutation.
func Permutations(n int, fn func([]int) bool) bool {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n == 0 {
		return fn(perm)
	}
	c := make([]int, n)
	if !fn(perm) {
		return false
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return false
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return true
}

// Visited is a set of canonical machine keys, used for cycle detection and
// fixpoint exploration.
type Visited map[string]bool

// Add inserts the machine's key and reports whether it was new.
func (v Visited) Add(m *sched.Machine) bool {
	k := m.Key()
	if v[k] {
		return false
	}
	v[k] = true
	return true
}

// Has reports whether the machine's key is present.
func (v Visited) Has(m *sched.Machine) bool { return v[m.Key()] }
