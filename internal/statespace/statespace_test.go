package statespace

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sched"
)

func TestUniverseEnumerateCounts(t *testing.T) {
	// 2 cores, up to 2 threads each, unit weights, scheduled-only:
	// counts (0,0),(0,1),(0,2),(1,0),(1,1),(1,2),(2,0),(2,1),(2,2) = 9.
	u := Universe{Cores: 2, MaxPerCore: 2}
	if got := u.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
}

func TestUniverseMaxTotal(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2, MaxTotal: 2}
	// (0,0),(0,1),(0,2),(1,0),(1,1),(2,0) = 6.
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	u.Enumerate(func(m *sched.Machine) bool {
		if m.TotalThreads() > 2 {
			t.Errorf("machine %v exceeds MaxTotal", m.Loads())
		}
		return true
	})
}

func TestUniverseIncludeUnscheduled(t *testing.T) {
	// 1 core, up to 1 thread: states are (), (running), (queued-only) = 3.
	u := Universe{Cores: 1, MaxPerCore: 1, IncludeUnscheduled: true}
	if got := u.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	seenUnscheduled := false
	u.Enumerate(func(m *sched.Machine) bool {
		c := m.Core(0)
		if c.Current == nil && len(c.Ready) == 1 {
			seenUnscheduled = true
		}
		return true
	})
	if !seenUnscheduled {
		t.Error("unscheduled state not enumerated")
	}
}

func TestUniverseWeights(t *testing.T) {
	// 1 core, exactly 2 threads, weights {1,2}: non-decreasing vectors
	// (1,1),(1,2),(2,2) = 3, plus counts 0 and 1 states: (0 threads)=1,
	// (1 thread)=2 → total 6.
	u := Universe{Cores: 1, MaxPerCore: 2, Weights: []int64{1, 2}}
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	distinct := make(Visited)
	u.Enumerate(func(m *sched.Machine) bool {
		if !distinct.Add(m) {
			t.Errorf("duplicate state %q", m.Key())
		}
		return true
	})
}

func TestUniverseStatesAreValidAndFresh(t *testing.T) {
	u := Universe{Cores: 3, MaxPerCore: 2, IncludeUnscheduled: true}
	var prev *sched.Machine
	u.Enumerate(func(m *sched.Machine) bool {
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid state: %v", err)
		}
		if m == prev {
			t.Fatal("enumerate reused a machine")
		}
		prev = m
		return true
	})
}

func TestUniverseEarlyStop(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2}
	n := 0
	complete := u.Enumerate(func(*sched.Machine) bool {
		n++
		return n < 3
	})
	if complete {
		t.Error("Enumerate should report early stop")
	}
	if n != 3 {
		t.Errorf("visited %d states, want 3", n)
	}
}

func TestUniversePanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-core universe did not panic")
		}
	}()
	Universe{}.Enumerate(func(*sched.Machine) bool { return true })
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		seen := make(map[string]bool)
		Permutations(n, func(p []int) bool {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Errorf("n=%d: duplicate permutation %q", n, key)
			}
			seen[key] = true
			return true
		})
		if len(seen) != want {
			t.Errorf("n=%d: %d permutations, want %d", n, len(seen), want)
		}
	}
}

func TestPermutationsAreValid(t *testing.T) {
	Permutations(4, func(p []int) bool {
		seen := [4]bool{}
		for _, v := range p {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
		return true
	})
}

func TestPermutationsEarlyStop(t *testing.T) {
	n := 0
	complete := Permutations(3, func([]int) bool {
		n++
		return n < 2
	})
	if complete || n != 2 {
		t.Errorf("complete=%v n=%d, want early stop after 2", complete, n)
	}
}

func TestVisited(t *testing.T) {
	v := make(Visited)
	a := sched.MachineFromLoads(0, 2)
	b := sched.MachineFromLoads(2, 0)
	if !v.Add(a) {
		t.Error("first Add should be new")
	}
	if v.Add(a) {
		t.Error("second Add should not be new")
	}
	if v.Has(b) {
		t.Error("different state reported as visited")
	}
	if !v.Has(a) {
		t.Error("added state not found")
	}
}

// shardTestUniverses are the partition-property fixtures: plain,
// unscheduled, weighted, and grouped universes all must shard cleanly.
func shardTestUniverses() map[string]Universe {
	return map[string]Universe{
		"plain":       {Cores: 3, MaxPerCore: 2, MaxTotal: 4},
		"unscheduled": {Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true},
		"weighted":    {Cores: 2, MaxPerCore: 3, Weights: []int64{1, 3}, IncludeUnscheduled: true},
		"grouped":     {Cores: 4, MaxPerCore: 2, MaxTotal: 5, Groups: []int{0, 0, 1, 1}, IncludeUnscheduled: true},
	}
}

func TestEnumerateShardPartition(t *testing.T) {
	// For every shard count, the union of the shards' outputs must be
	// exactly Enumerate's output: same multiset of keys, no duplicates,
	// nothing missing. This is the property that lets the verifier fan
	// shards out with no locking.
	for name, u := range shardTestUniverses() {
		full := make(map[string]int)
		order := []string{}
		u.Enumerate(func(m *sched.Machine) bool {
			full[m.Key()]++
			order = append(order, m.Key())
			return true
		})
		if len(order) == 0 {
			t.Fatalf("%s: empty universe", name)
		}
		for total := 1; total <= 8; total++ {
			union := make(map[string]int)
			n := 0
			for shard := 0; shard < total; shard++ {
				complete := u.EnumerateShard(shard, total, func(m *sched.Machine) bool {
					union[m.Key()]++
					n++
					return true
				})
				if !complete {
					t.Errorf("%s total=%d shard=%d: reported early stop", name, total, shard)
				}
			}
			if n != len(order) {
				t.Errorf("%s total=%d: shards yielded %d states, Enumerate %d", name, total, n, len(order))
			}
			for k, c := range union {
				if full[k] != c {
					t.Errorf("%s total=%d: key %q appears %d times in shards, %d in Enumerate", name, total, k, c, full[k])
				}
			}
			for k := range full {
				if union[k] == 0 {
					t.Errorf("%s total=%d: key %q missing from every shard", name, total, k)
				}
			}
		}
	}
}

func TestEnumerateShardSingleIsEnumerate(t *testing.T) {
	u := Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	var seq, shard []string
	u.Enumerate(func(m *sched.Machine) bool { seq = append(seq, m.Key()); return true })
	u.EnumerateShard(0, 1, func(m *sched.Machine) bool { shard = append(shard, m.Key()); return true })
	if len(seq) != len(shard) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(shard))
	}
	for i := range seq {
		if seq[i] != shard[i] {
			t.Fatalf("order differs at %d: %q vs %q", i, seq[i], shard[i])
		}
	}
}

func TestEnumerateShardRank(t *testing.T) {
	// Ranks identify the state's thread-count vector in global
	// enumeration order: within a shard they are non-decreasing and
	// congruent to the shard index mod total; across shards each rank
	// belongs to exactly one shard.
	u := Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	const total = 4
	owner := make(map[int]int)
	for shard := 0; shard < total; shard++ {
		last := -1
		u.EnumerateShardRank(shard, total, func(rank int, m *sched.Machine) bool {
			if rank%total != shard {
				t.Fatalf("shard %d saw rank %d", shard, rank)
			}
			if rank < last {
				t.Fatalf("shard %d: rank went backwards (%d after %d)", shard, rank, last)
			}
			last = rank
			if prev, ok := owner[rank]; ok && prev != shard {
				t.Fatalf("rank %d owned by shards %d and %d", rank, prev, shard)
			}
			owner[rank] = shard
			return true
		})
	}
}

func TestEnumerateShardEarlyStop(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2}
	n := 0
	complete := u.EnumerateShard(0, 2, func(*sched.Machine) bool {
		n++
		return false
	})
	if complete || n != 1 {
		t.Errorf("complete=%v n=%d, want early stop after 1", complete, n)
	}
}

func TestEnumerateShardBadArgsPanic(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 1}
	for name, call := range map[string]func(){
		"total=0":      func() { u.EnumerateShard(0, 0, func(*sched.Machine) bool { return true }) },
		"shard<0":      func() { u.EnumerateShard(-1, 2, func(*sched.Machine) bool { return true }) },
		"shard==total": func() { u.EnumerateShard(2, 2, func(*sched.Machine) bool { return true }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

func TestValidateRejectsZeroCores(t *testing.T) {
	// Validate documents itself as the error-returning counterpart of
	// Enumerate's panics — and Enumerate panics on Cores <= 0, so a
	// zero-core universe (with or without Groups) must not validate.
	for name, u := range map[string]Universe{
		"zero cores":             {},
		"zero cores with bounds": {MaxPerCore: 2, MaxTotal: 4},
		"zero cores with groups": {Groups: []int{0, 1}},
		"negative cores":         {Cores: -1},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, u)
		}
	}
}

func TestValidateAcceptsAndRejects(t *testing.T) {
	if err := (Universe{Cores: 3, MaxPerCore: 2, Groups: []int{0, 0, 1}, Weights: []int64{1, 2}}).Validate(); err != nil {
		t.Errorf("valid universe rejected: %v", err)
	}
	for name, u := range map[string]Universe{
		"group mismatch":  {Cores: 3, MaxPerCore: 2, Groups: []int{0, 1}},
		"negative bounds": {Cores: 2, MaxPerCore: -1},
		"bad weight":      {Cores: 2, MaxPerCore: 1, Weights: []int64{0}},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, u)
		}
	}
}

func TestUniverseFieldsCoveredByValidateAndCanonical(t *testing.T) {
	// Validate, String/Canonical and this table must move together: every
	// Universe field needs a mutation that changes Canonical() (content
	// identity — a field Canonical misses silently aliases distinct state
	// spaces in the memo cache) and, where the field has invalid values,
	// one that Validate rejects. Reflection makes a new field fail this
	// test until the table — and therefore both methods — is extended.
	base := Universe{Cores: 2, MaxPerCore: 2}
	fields := map[string]struct {
		mutate  func(*Universe) // must change Canonical()
		invalid func(*Universe) // must fail Validate; nil = every value valid
	}{
		"Cores": {
			mutate:  func(u *Universe) { u.Cores = 3 },
			invalid: func(u *Universe) { u.Cores = 0 },
		},
		"MaxPerCore": {
			mutate:  func(u *Universe) { u.MaxPerCore = 3 },
			invalid: func(u *Universe) { u.MaxPerCore = -1 },
		},
		"MaxTotal": {
			// 3, not Cores*MaxPerCore: the zero shorthand canonicalizes
			// to exactly that product, by design.
			mutate:  func(u *Universe) { u.MaxTotal = 3 },
			invalid: func(u *Universe) { u.MaxTotal = -1 },
		},
		"Weights": {
			mutate:  func(u *Universe) { u.Weights = []int64{1, 3} },
			invalid: func(u *Universe) { u.Weights = []int64{0} },
		},
		"IncludeUnscheduled": {
			mutate: func(u *Universe) { u.IncludeUnscheduled = true },
		},
		"Groups": {
			mutate:  func(u *Universe) { u.Groups = []int{0, 1} },
			invalid: func(u *Universe) { u.Groups = []int{0} },
		},
		"MaxFaults": {
			mutate:  func(u *Universe) { u.MaxFaults = 1 },
			invalid: func(u *Universe) { u.MaxFaults = -1 },
		},
	}
	typ := reflect.TypeOf(Universe{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		spec, ok := fields[name]
		if !ok {
			t.Errorf("Universe.%s is not covered: extend Validate, String/Canonical and this table", name)
			continue
		}
		if err := base.Validate(); err != nil {
			t.Fatalf("base universe invalid: %v", err)
		}
		mutated := base
		spec.mutate(&mutated)
		if mutated.Canonical() == base.Canonical() {
			t.Errorf("Universe.%s: mutation did not change Canonical() (%q)", name, base.Canonical())
		}
		if spec.invalid != nil {
			bad := base
			spec.invalid(&bad)
			if err := bad.Validate(); err == nil {
				t.Errorf("Universe.%s: Validate accepted invalid value %+v", name, bad)
			}
		}
	}
	for name := range fields {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("table covers %s, which is no longer a Universe field", name)
		}
	}
}

// faultKey distinguishes fault-script variants of the same machine:
// enumeration attaches scripts to online machines, so Key() alone would
// collide across scripts.
func faultKey(m *sched.Machine) string {
	return m.Key() + "|" + fmt.Sprint(m.Faults)
}

// faultShardUniverses are the fault-dimension partition fixtures.
func faultShardUniverses() map[string]Universe {
	return map[string]Universe{
		"faults1":         {Cores: 3, MaxPerCore: 2, MaxTotal: 3, MaxFaults: 1},
		"faults2":         {Cores: 2, MaxPerCore: 2, MaxFaults: 2, IncludeUnscheduled: true},
		"faults-weighted": {Cores: 2, MaxPerCore: 2, Weights: []int64{1, 3}, MaxFaults: 1},
		"faults-deep":     {Cores: 2, MaxPerCore: 1, MaxFaults: 3},
	}
}

func TestEnumerateShardPartitionWithFaults(t *testing.T) {
	// The PR 2 partition property extended to the fault dimension: for
	// every shard count, the union of the shards' (machine, script) pairs
	// is exactly Enumerate's multiset. Scripts expand below the rank
	// level, so a shard owns every script of each thread-count vector it
	// owns — nothing is split mid-vector.
	for name, u := range faultShardUniverses() {
		full := make(map[string]int)
		states := 0
		u.Enumerate(func(m *sched.Machine) bool {
			full[faultKey(m)]++
			states++
			return true
		})
		if states == 0 {
			t.Fatalf("%s: empty universe", name)
		}
		for total := 1; total <= 8; total++ {
			union := make(map[string]int)
			n := 0
			for shard := 0; shard < total; shard++ {
				complete := u.EnumerateShard(shard, total, func(m *sched.Machine) bool {
					union[faultKey(m)]++
					n++
					return true
				})
				if !complete {
					t.Errorf("%s total=%d shard=%d: reported early stop", name, total, shard)
				}
			}
			if n != states {
				t.Errorf("%s total=%d: shards yielded %d states, Enumerate %d", name, total, n, states)
			}
			for k, c := range union {
				if full[k] != c {
					t.Errorf("%s total=%d: key %q appears %d times in shards, %d in Enumerate", name, total, k, c, full[k])
				}
			}
			for k := range full {
				if union[k] == 0 {
					t.Errorf("%s total=%d: key %q missing from every shard", name, total, k)
				}
			}
		}
	}
}

func TestFaultScriptsValidAndPrefixClosed(t *testing.T) {
	// Every enumerated script must be valid under fail-stop rules (fail
	// only online non-last cores, revive only offline cores) and the set
	// must be prefix-closed — the property the degraded-mode checkers
	// lean on to treat "recovered after the last event" as covering
	// recovery after any event. The empty script (healthy machine) must
	// appear for every machine, so healthy states are a subset.
	u := Universe{Cores: 3, MaxPerCore: 1, MaxTotal: 2, MaxFaults: 2}
	scripts := make(map[string]bool)
	healthy, total := 0, 0
	u.Enumerate(func(m *sched.Machine) bool {
		total++
		if len(m.Faults) == 0 {
			healthy++
		}
		if len(m.Faults) > u.MaxFaults {
			t.Fatalf("script %v longer than MaxFaults=%d", m.Faults, u.MaxFaults)
		}
		offline := make([]bool, u.Cores)
		online := u.Cores
		for _, ev := range m.Faults {
			if ev.Core < 0 || ev.Core >= u.Cores {
				t.Fatalf("script %v: core %d out of range", m.Faults, ev.Core)
			}
			if ev.Revive {
				if !offline[ev.Core] {
					t.Fatalf("script %v revives online core %d", m.Faults, ev.Core)
				}
				offline[ev.Core] = false
				online++
			} else {
				if offline[ev.Core] {
					t.Fatalf("script %v fails offline core %d", m.Faults, ev.Core)
				}
				if online == 1 {
					t.Fatalf("script %v fails the last online core %d", m.Faults, ev.Core)
				}
				offline[ev.Core] = true
				online--
			}
		}
		scripts[fmt.Sprint(m.Faults)] = true
		return true
	})
	if healthy == 0 {
		t.Fatal("no healthy (empty-script) states enumerated")
	}
	if len(scripts) < 2 {
		t.Fatalf("only %d distinct scripts — fault dimension not exercised", len(scripts))
	}
	// Prefix closure: every proper prefix of an enumerated script must
	// itself be an enumerated script.
	u.Enumerate(func(m *sched.Machine) bool {
		for i := range m.Faults {
			prefix := fmt.Sprint(m.Faults[:i])
			if !scripts[prefix] {
				t.Fatalf("script %v: prefix %s not enumerated", m.Faults, prefix)
			}
		}
		return true
	})
}

func TestMaxFaultsZeroMatchesHealthyUniverse(t *testing.T) {
	// MaxFaults: 0 must be exactly the healthy universe — same states,
	// same order, nil scripts — so legacy obligations see no change.
	healthy := Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 3, IncludeUnscheduled: true}
	faulty := healthy
	faulty.MaxFaults = 0
	var a, b []string
	healthy.Enumerate(func(m *sched.Machine) bool { a = append(a, m.Key()); return true })
	faulty.Enumerate(func(m *sched.Machine) bool {
		if m.Faults != nil {
			t.Fatalf("MaxFaults=0 attached script %v", m.Faults)
		}
		b = append(b, m.Key())
		return true
	})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("MaxFaults=0 changed enumeration: %d vs %d states", len(a), len(b))
	}
}

func TestUniverseCoversDocumentedStates(t *testing.T) {
	// The §4.3 counterexample machine [0 1 2] must be in the universe the
	// verifier uses for 3-core checks.
	u := Universe{Cores: 3, MaxPerCore: 3}
	target := sched.MachineFromLoads(0, 1, 2).Key()
	found := false
	u.Enumerate(func(m *sched.Machine) bool {
		if m.Key() == target {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("universe misses the 0/1/2 counterexample state")
	}
}
