package statespace

import (
	"testing"

	"repro/internal/sched"
)

func TestUniverseEnumerateCounts(t *testing.T) {
	// 2 cores, up to 2 threads each, unit weights, scheduled-only:
	// counts (0,0),(0,1),(0,2),(1,0),(1,1),(1,2),(2,0),(2,1),(2,2) = 9.
	u := Universe{Cores: 2, MaxPerCore: 2}
	if got := u.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
}

func TestUniverseMaxTotal(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2, MaxTotal: 2}
	// (0,0),(0,1),(0,2),(1,0),(1,1),(2,0) = 6.
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	u.Enumerate(func(m *sched.Machine) bool {
		if m.TotalThreads() > 2 {
			t.Errorf("machine %v exceeds MaxTotal", m.Loads())
		}
		return true
	})
}

func TestUniverseIncludeUnscheduled(t *testing.T) {
	// 1 core, up to 1 thread: states are (), (running), (queued-only) = 3.
	u := Universe{Cores: 1, MaxPerCore: 1, IncludeUnscheduled: true}
	if got := u.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	seenUnscheduled := false
	u.Enumerate(func(m *sched.Machine) bool {
		c := m.Core(0)
		if c.Current == nil && len(c.Ready) == 1 {
			seenUnscheduled = true
		}
		return true
	})
	if !seenUnscheduled {
		t.Error("unscheduled state not enumerated")
	}
}

func TestUniverseWeights(t *testing.T) {
	// 1 core, exactly 2 threads, weights {1,2}: non-decreasing vectors
	// (1,1),(1,2),(2,2) = 3, plus counts 0 and 1 states: (0 threads)=1,
	// (1 thread)=2 → total 6.
	u := Universe{Cores: 1, MaxPerCore: 2, Weights: []int64{1, 2}}
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	distinct := make(Visited)
	u.Enumerate(func(m *sched.Machine) bool {
		if !distinct.Add(m) {
			t.Errorf("duplicate state %q", m.Key())
		}
		return true
	})
}

func TestUniverseStatesAreValidAndFresh(t *testing.T) {
	u := Universe{Cores: 3, MaxPerCore: 2, IncludeUnscheduled: true}
	var prev *sched.Machine
	u.Enumerate(func(m *sched.Machine) bool {
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid state: %v", err)
		}
		if m == prev {
			t.Fatal("enumerate reused a machine")
		}
		prev = m
		return true
	})
}

func TestUniverseEarlyStop(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2}
	n := 0
	complete := u.Enumerate(func(*sched.Machine) bool {
		n++
		return n < 3
	})
	if complete {
		t.Error("Enumerate should report early stop")
	}
	if n != 3 {
		t.Errorf("visited %d states, want 3", n)
	}
}

func TestUniversePanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-core universe did not panic")
		}
	}()
	Universe{}.Enumerate(func(*sched.Machine) bool { return true })
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		seen := make(map[string]bool)
		Permutations(n, func(p []int) bool {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Errorf("n=%d: duplicate permutation %q", n, key)
			}
			seen[key] = true
			return true
		})
		if len(seen) != want {
			t.Errorf("n=%d: %d permutations, want %d", n, len(seen), want)
		}
	}
}

func TestPermutationsAreValid(t *testing.T) {
	Permutations(4, func(p []int) bool {
		seen := [4]bool{}
		for _, v := range p {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
		return true
	})
}

func TestPermutationsEarlyStop(t *testing.T) {
	n := 0
	complete := Permutations(3, func([]int) bool {
		n++
		return n < 2
	})
	if complete || n != 2 {
		t.Errorf("complete=%v n=%d, want early stop after 2", complete, n)
	}
}

func TestVisited(t *testing.T) {
	v := make(Visited)
	a := sched.MachineFromLoads(0, 2)
	b := sched.MachineFromLoads(2, 0)
	if !v.Add(a) {
		t.Error("first Add should be new")
	}
	if v.Add(a) {
		t.Error("second Add should not be new")
	}
	if v.Has(b) {
		t.Error("different state reported as visited")
	}
	if !v.Has(a) {
		t.Error("added state not found")
	}
}

// shardTestUniverses are the partition-property fixtures: plain,
// unscheduled, weighted, and grouped universes all must shard cleanly.
func shardTestUniverses() map[string]Universe {
	return map[string]Universe{
		"plain":       {Cores: 3, MaxPerCore: 2, MaxTotal: 4},
		"unscheduled": {Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true},
		"weighted":    {Cores: 2, MaxPerCore: 3, Weights: []int64{1, 3}, IncludeUnscheduled: true},
		"grouped":     {Cores: 4, MaxPerCore: 2, MaxTotal: 5, Groups: []int{0, 0, 1, 1}, IncludeUnscheduled: true},
	}
}

func TestEnumerateShardPartition(t *testing.T) {
	// For every shard count, the union of the shards' outputs must be
	// exactly Enumerate's output: same multiset of keys, no duplicates,
	// nothing missing. This is the property that lets the verifier fan
	// shards out with no locking.
	for name, u := range shardTestUniverses() {
		full := make(map[string]int)
		order := []string{}
		u.Enumerate(func(m *sched.Machine) bool {
			full[m.Key()]++
			order = append(order, m.Key())
			return true
		})
		if len(order) == 0 {
			t.Fatalf("%s: empty universe", name)
		}
		for total := 1; total <= 8; total++ {
			union := make(map[string]int)
			n := 0
			for shard := 0; shard < total; shard++ {
				complete := u.EnumerateShard(shard, total, func(m *sched.Machine) bool {
					union[m.Key()]++
					n++
					return true
				})
				if !complete {
					t.Errorf("%s total=%d shard=%d: reported early stop", name, total, shard)
				}
			}
			if n != len(order) {
				t.Errorf("%s total=%d: shards yielded %d states, Enumerate %d", name, total, n, len(order))
			}
			for k, c := range union {
				if full[k] != c {
					t.Errorf("%s total=%d: key %q appears %d times in shards, %d in Enumerate", name, total, k, c, full[k])
				}
			}
			for k := range full {
				if union[k] == 0 {
					t.Errorf("%s total=%d: key %q missing from every shard", name, total, k)
				}
			}
		}
	}
}

func TestEnumerateShardSingleIsEnumerate(t *testing.T) {
	u := Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	var seq, shard []string
	u.Enumerate(func(m *sched.Machine) bool { seq = append(seq, m.Key()); return true })
	u.EnumerateShard(0, 1, func(m *sched.Machine) bool { shard = append(shard, m.Key()); return true })
	if len(seq) != len(shard) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(shard))
	}
	for i := range seq {
		if seq[i] != shard[i] {
			t.Fatalf("order differs at %d: %q vs %q", i, seq[i], shard[i])
		}
	}
}

func TestEnumerateShardRank(t *testing.T) {
	// Ranks identify the state's thread-count vector in global
	// enumeration order: within a shard they are non-decreasing and
	// congruent to the shard index mod total; across shards each rank
	// belongs to exactly one shard.
	u := Universe{Cores: 3, MaxPerCore: 2, MaxTotal: 4, IncludeUnscheduled: true}
	const total = 4
	owner := make(map[int]int)
	for shard := 0; shard < total; shard++ {
		last := -1
		u.EnumerateShardRank(shard, total, func(rank int, m *sched.Machine) bool {
			if rank%total != shard {
				t.Fatalf("shard %d saw rank %d", shard, rank)
			}
			if rank < last {
				t.Fatalf("shard %d: rank went backwards (%d after %d)", shard, rank, last)
			}
			last = rank
			if prev, ok := owner[rank]; ok && prev != shard {
				t.Fatalf("rank %d owned by shards %d and %d", rank, prev, shard)
			}
			owner[rank] = shard
			return true
		})
	}
}

func TestEnumerateShardEarlyStop(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2}
	n := 0
	complete := u.EnumerateShard(0, 2, func(*sched.Machine) bool {
		n++
		return false
	})
	if complete || n != 1 {
		t.Errorf("complete=%v n=%d, want early stop after 1", complete, n)
	}
}

func TestEnumerateShardBadArgsPanic(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 1}
	for name, call := range map[string]func(){
		"total=0":      func() { u.EnumerateShard(0, 0, func(*sched.Machine) bool { return true }) },
		"shard<0":      func() { u.EnumerateShard(-1, 2, func(*sched.Machine) bool { return true }) },
		"shard==total": func() { u.EnumerateShard(2, 2, func(*sched.Machine) bool { return true }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

func TestValidateRejectsZeroCores(t *testing.T) {
	// Validate documents itself as the error-returning counterpart of
	// Enumerate's panics — and Enumerate panics on Cores <= 0, so a
	// zero-core universe (with or without Groups) must not validate.
	for name, u := range map[string]Universe{
		"zero cores":             {},
		"zero cores with bounds": {MaxPerCore: 2, MaxTotal: 4},
		"zero cores with groups": {Groups: []int{0, 1}},
		"negative cores":         {Cores: -1},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, u)
		}
	}
}

func TestValidateAcceptsAndRejects(t *testing.T) {
	if err := (Universe{Cores: 3, MaxPerCore: 2, Groups: []int{0, 0, 1}, Weights: []int64{1, 2}}).Validate(); err != nil {
		t.Errorf("valid universe rejected: %v", err)
	}
	for name, u := range map[string]Universe{
		"group mismatch":  {Cores: 3, MaxPerCore: 2, Groups: []int{0, 1}},
		"negative bounds": {Cores: 2, MaxPerCore: -1},
		"bad weight":      {Cores: 2, MaxPerCore: 1, Weights: []int64{0}},
	} {
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, u)
		}
	}
}

func TestUniverseCoversDocumentedStates(t *testing.T) {
	// The §4.3 counterexample machine [0 1 2] must be in the universe the
	// verifier uses for 3-core checks.
	u := Universe{Cores: 3, MaxPerCore: 3}
	target := sched.MachineFromLoads(0, 1, 2).Key()
	found := false
	u.Enumerate(func(m *sched.Machine) bool {
		if m.Key() == target {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("universe misses the 0/1/2 counterexample state")
	}
}
