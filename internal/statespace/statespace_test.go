package statespace

import (
	"testing"

	"repro/internal/sched"
)

func TestUniverseEnumerateCounts(t *testing.T) {
	// 2 cores, up to 2 threads each, unit weights, scheduled-only:
	// counts (0,0),(0,1),(0,2),(1,0),(1,1),(1,2),(2,0),(2,1),(2,2) = 9.
	u := Universe{Cores: 2, MaxPerCore: 2}
	if got := u.Size(); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
}

func TestUniverseMaxTotal(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2, MaxTotal: 2}
	// (0,0),(0,1),(0,2),(1,0),(1,1),(2,0) = 6.
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	u.Enumerate(func(m *sched.Machine) bool {
		if m.TotalThreads() > 2 {
			t.Errorf("machine %v exceeds MaxTotal", m.Loads())
		}
		return true
	})
}

func TestUniverseIncludeUnscheduled(t *testing.T) {
	// 1 core, up to 1 thread: states are (), (running), (queued-only) = 3.
	u := Universe{Cores: 1, MaxPerCore: 1, IncludeUnscheduled: true}
	if got := u.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	seenUnscheduled := false
	u.Enumerate(func(m *sched.Machine) bool {
		c := m.Core(0)
		if c.Current == nil && len(c.Ready) == 1 {
			seenUnscheduled = true
		}
		return true
	})
	if !seenUnscheduled {
		t.Error("unscheduled state not enumerated")
	}
}

func TestUniverseWeights(t *testing.T) {
	// 1 core, exactly 2 threads, weights {1,2}: non-decreasing vectors
	// (1,1),(1,2),(2,2) = 3, plus counts 0 and 1 states: (0 threads)=1,
	// (1 thread)=2 → total 6.
	u := Universe{Cores: 1, MaxPerCore: 2, Weights: []int64{1, 2}}
	if got := u.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	distinct := make(Visited)
	u.Enumerate(func(m *sched.Machine) bool {
		if !distinct.Add(m) {
			t.Errorf("duplicate state %q", m.Key())
		}
		return true
	})
}

func TestUniverseStatesAreValidAndFresh(t *testing.T) {
	u := Universe{Cores: 3, MaxPerCore: 2, IncludeUnscheduled: true}
	var prev *sched.Machine
	u.Enumerate(func(m *sched.Machine) bool {
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid state: %v", err)
		}
		if m == prev {
			t.Fatal("enumerate reused a machine")
		}
		prev = m
		return true
	})
}

func TestUniverseEarlyStop(t *testing.T) {
	u := Universe{Cores: 2, MaxPerCore: 2}
	n := 0
	complete := u.Enumerate(func(*sched.Machine) bool {
		n++
		return n < 3
	})
	if complete {
		t.Error("Enumerate should report early stop")
	}
	if n != 3 {
		t.Errorf("visited %d states, want 3", n)
	}
}

func TestUniversePanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-core universe did not panic")
		}
	}()
	Universe{}.Enumerate(func(*sched.Machine) bool { return true })
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24} {
		seen := make(map[string]bool)
		Permutations(n, func(p []int) bool {
			key := ""
			for _, v := range p {
				key += string(rune('0' + v))
			}
			if seen[key] {
				t.Errorf("n=%d: duplicate permutation %q", n, key)
			}
			seen[key] = true
			return true
		})
		if len(seen) != want {
			t.Errorf("n=%d: %d permutations, want %d", n, len(seen), want)
		}
	}
}

func TestPermutationsAreValid(t *testing.T) {
	Permutations(4, func(p []int) bool {
		seen := [4]bool{}
		for _, v := range p {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
		return true
	})
}

func TestPermutationsEarlyStop(t *testing.T) {
	n := 0
	complete := Permutations(3, func([]int) bool {
		n++
		return n < 2
	})
	if complete || n != 2 {
		t.Errorf("complete=%v n=%d, want early stop after 2", complete, n)
	}
}

func TestVisited(t *testing.T) {
	v := make(Visited)
	a := sched.MachineFromLoads(0, 2)
	b := sched.MachineFromLoads(2, 0)
	if !v.Add(a) {
		t.Error("first Add should be new")
	}
	if v.Add(a) {
		t.Error("second Add should not be new")
	}
	if v.Has(b) {
		t.Error("different state reported as visited")
	}
	if !v.Has(a) {
		t.Error("added state not found")
	}
}

func TestUniverseCoversDocumentedStates(t *testing.T) {
	// The §4.3 counterexample machine [0 1 2] must be in the universe the
	// verifier uses for 3-core checks.
	u := Universe{Cores: 3, MaxPerCore: 3}
	target := sched.MachineFromLoads(0, 1, 2).Key()
	found := false
	u.Enumerate(func(m *sched.Machine) bool {
		if m.Key() == target {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("universe misses the 0/1/2 counterexample state")
	}
}
