package dsl

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/statespace"
	"repro/internal/verify"
)

// listing1 is the paper's Listing 1 transcribed into the DSL.
const listing1 = `
# The simple load balancer of Listing 1.
policy delta2 {
    load   = self.ready.size + self.current.size
    filter = stealee.load() - self.load() >= 2
    steal  = 1
    choose = max_load
}
`

const buggyGreedy = `
policy greedy {
    filter = stealee.load >= 2   # the §4.3 counterexample
    choose = max_load
}
`

func TestParseListing1(t *testing.T) {
	p, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "delta2" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Choose.Name != "max_load" {
		t.Errorf("Choose = %+v", p.Choose)
	}
	if got := p.String(); !strings.Contains(got, "filter = ((stealee.load - self.load) >= 2)") {
		t.Errorf("round-trip:\n%s", got)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse(`policy d { filter = stealee.nthreads - thief.nthreads >= 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: load = nthreads, steal = 1, choose = first.
	if p.Load == nil || p.Steal == nil || p.Choose.Name != "first" {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantFrag string
	}{
		{"no filter", `policy p { load = nthreads }`, "no filter"},
		{"bad clause", `policy p { filtr = true }`, "unknown clause"},
		{"dup clause", `policy p { filter = true filter = true }`, "duplicate"},
		{"trailing", `policy p { filter = true } x`, "trailing"},
		{"bad chooser", `policy p { filter = true choose = coolest }`, "chooser"},
		{"type mismatch filter", `policy p { filter = 1 + 2 }`, "type"},
		{"type mismatch steal", `policy p { filter = true steal = true }`, "type"},
		{"bool arith", `policy p { filter = (1 < 2) + 3 >= 1 }`, "needs ints"},
		{"unknown attr", `policy p { filter = stealee.magic >= 2 }`, "unknown core attribute"},
		{"bare path in filter", `policy p { filter = nthreads >= 2 }`, "must start with"},
		{"stealee in load", `policy p { load = stealee.nthreads filter = true }`, "not available"},
		{"thief in load", `policy p { load = thief.nthreads filter = true }`, "not available"},
		{"load recursion", `policy p { load = load filter = true }`, "cannot reference"},
		{"lex error", "policy p { filter = @ }", "unexpected character"},
		{"no name", `policy { filter = true }`, "policy name"},
		{"not a policy", `module p {}`, "expected \"policy\""},
		{"unclosed paren", `policy p { filter = (true }`, "expected \")\""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantFrag)
			}
			if !strings.Contains(err.Error(), tc.wantFrag) {
				t.Errorf("error = %q, want fragment %q", err, tc.wantFrag)
			}
		})
	}
}

func TestCompiledListing1MatchesNative(t *testing.T) {
	pol, _, err := CompileSource(listing1)
	if err != nil {
		t.Fatal(err)
	}
	m := sched.MachineFromLoads(0, 1, 2, 3)
	for ti := range m.Cores {
		for si := range m.Cores {
			if ti == si {
				continue
			}
			want := int64(m.Core(si).NThreads())-int64(m.Core(ti).NThreads()) >= 2
			if got := pol.CanSteal(m.Core(ti), m.Core(si)); got != want {
				t.Errorf("CanSteal(c%d, c%d) = %v, want %v", ti, si, got, want)
			}
		}
	}
	if pol.Name() != "delta2" {
		t.Errorf("Name = %q", pol.Name())
	}
}

func TestCompiledPolicyBalances(t *testing.T) {
	pol, _, err := CompileSource(listing1)
	if err != nil {
		t.Fatal(err)
	}
	m := sched.MachineFromLoads(0, 6, 0, 2)
	for i := 0; i < 16 && !m.WorkConserved(); i++ {
		sched.SequentialRound(pol, m)
	}
	if !m.WorkConserved() {
		t.Errorf("DSL policy did not converge: %v", m.Loads())
	}
}

func TestDSLThroughVerifier(t *testing.T) {
	// The paper's pipeline: one DSL source, execution + verification.
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 4, IncludeUnscheduled: true}
	factory := func() sched.Policy {
		p, _, err := CompileSource(listing1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rep := verify.Policy("dsl-delta2", factory, verify.Config{Universe: u})
	if !rep.Passed() {
		t.Fatalf("DSL delta2 failed verification:\n%s", rep)
	}

	buggy := func() sched.Policy {
		p, _, err := CompileSource(buggyGreedy)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	repBad := verify.Policy("dsl-greedy", buggy, verify.Config{Universe: u})
	if repBad.Passed() {
		t.Fatal("DSL greedy policy passed verification — livelock missed")
	}
	if res := repBad.Result(verify.ObWorkConservConc); res == nil || res.Passed {
		t.Error("concurrent WC should have failed for the greedy DSL policy")
	}
}

func TestWeightedDSLPolicy(t *testing.T) {
	src := `
policy weighted_gap {
    load   = self.weight.sum
    filter = stealee.load - thief.load >= 2048 && stealee.ready.size >= 1
    steal  = 1
    choose = max_load
}
`
	pol, ast, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Choose.Name != "max_load" {
		t.Errorf("chooser = %q", ast.Choose.Name)
	}
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Running: 1024, Queued: []int64{1024}},
	)
	if !pol.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("weighted DSL filter rejected a 2048 gap")
	}
}

func TestChoosers(t *testing.T) {
	m := sched.MachineFromLoads(0, 2, 5, 3)
	cands := []*sched.Core{m.Core(1), m.Core(2), m.Core(3)}
	mk := func(choose string) sched.Policy {
		p, _, err := CompileSource(`policy p { filter = stealee.load >= 2 choose = ` + choose + ` }`)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := mk("first").Choose(m.Core(0), cands); got.ID != 1 {
		t.Errorf("first chose c%d", got.ID)
	}
	if got := mk("max_load").Choose(m.Core(0), cands); got.ID != 2 {
		t.Errorf("max_load chose c%d", got.ID)
	}
	if got := mk("min_load").Choose(m.Core(0), cands); got.ID != 1 {
		t.Errorf("min_load chose c%d", got.ID)
	}
	rand := mk("random(7)")
	for i := 0; i < 20; i++ {
		got := rand.Choose(m.Core(0), cands)
		if got.ID < 1 || got.ID > 3 {
			t.Fatalf("random chose c%d", got.ID)
		}
	}
}

func TestDivisionTotalSemantics(t *testing.T) {
	// x/0 and x%0 evaluate to 0 (total semantics), not panic.
	src := `policy p { filter = stealee.load / (thief.load - thief.load) >= 0 }`
	pol, _, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	m := sched.MachineFromLoads(1, 2)
	if !pol.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("0/0 >= 0 should hold under total semantics")
	}
}

func TestOperatorsAndPrecedence(t *testing.T) {
	src := `policy p {
	    filter = stealee.load * 2 - 1 >= 3 && !(thief.load == 1) || thief.id != 0
	}`
	pol, _, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	m := sched.MachineFromLoads(0, 2)
	// stealee.load*2-1 = 3 >= 3 true; thief.load==0 so !(==1) true -> true.
	if !pol.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("expression evaluated incorrectly")
	}
	m2 := sched.MachineFromLoads(1, 1)
	// 2*1-1=1 >= 3 false; thief.id != 0 false -> false.
	if pol.CanSteal(m2.Core(0), m2.Core(1)) {
		t.Error("expression should be false")
	}
}

func TestUnaryMinusAndModulo(t *testing.T) {
	src := `policy p { filter = -(0 - stealee.load) % 2 == 0 }`
	pol, _, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	even := sched.MachineFromLoads(0, 2)
	odd := sched.MachineFromLoads(0, 3)
	if !pol.CanSteal(even.Core(0), even.Core(1)) {
		t.Error("2 %% 2 == 0 should hold")
	}
	if pol.CanSteal(odd.Core(0), odd.Core(1)) {
		t.Error("3 %% 2 == 0 should not hold")
	}
}

func TestGenerateGoCode(t *testing.T) {
	ast, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	code := Generate(ast, "policies")
	for _, frag := range []string{
		"package policies",
		"type Delta2 struct{}",
		`func (p *Delta2) Name() string { return "delta2" }`,
		"func (p *Delta2) Load(c *sched.Core) int64",
		"func (p *Delta2) CanSteal(thief, stealee *sched.Core) bool",
		"(p.Load(stealee) - p.Load(thief)) >= int64(2)",
		"sched.ChooseMaxLoad",
		"DO NOT EDIT",
	} {
		if !strings.Contains(code, frag) {
			t.Errorf("generated code missing %q:\n%s", frag, code)
		}
	}
	support := GenerateSupport("policies")
	if !strings.Contains(support, "func currentSize") {
		t.Errorf("support missing currentSize:\n%s", support)
	}
}

func TestGenerateAllChoosers(t *testing.T) {
	for _, choose := range []string{"first", "max_load", "min_load", "random(3)"} {
		ast, err := Parse(`policy gen_test { filter = stealee.load >= 2 choose = ` + choose + ` }`)
		if err != nil {
			t.Fatal(err)
		}
		code := Generate(ast, "p")
		if !strings.Contains(code, "func (p *GenTest) Choose") {
			t.Errorf("chooser %s: missing Choose method", choose)
		}
	}
}

func TestExportedName(t *testing.T) {
	cases := map[string]string{
		"delta2": "Delta2", "my_policy": "MyPolicy", "a-b": "AB", "": "Policy",
	}
	for in, want := range cases {
		if got := exportedName(in); got != want {
			t.Errorf("exportedName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNumericUnderscores(t *testing.T) {
	pol, _, err := CompileSource(`policy p { load = self.weight.sum filter = stealee.load >= 2_048 }`)
	if err != nil {
		t.Fatal(err)
	}
	m := sched.MachineFromSpec(sched.CoreSpec{}, sched.CoreSpec{Running: 2048})
	if !pol.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("underscore literal mis-lexed")
	}
}
