package dsl

import "strings"

// exprContext says which core roots an expression may reference.
type exprContext int8

const (
	ctxLoad   exprContext = iota // roots: self / core (the measured core)
	ctxFilter                    // roots: self / thief, stealee
)

// checkPolicy type-checks the policy and resolves attribute paths.
func checkPolicy(p *Policy) error {
	if err := check(p.Load, ctxLoad, typInt); err != nil {
		return err
	}
	if err := check(p.Filter, ctxFilter, typBool); err != nil {
		return err
	}
	if err := check(p.Steal, ctxFilter, typInt); err != nil {
		return err
	}
	return nil
}

// check verifies e has type want in context ctx, annotating nodes.
func check(e expr, ctx exprContext, want typ) error {
	got, err := infer(e, ctx)
	if err != nil {
		return err
	}
	if got != want {
		return errf(0, 0, "expression %s has type %s, want %s", e, got, want)
	}
	return nil
}

func infer(e expr, ctx exprContext) (typ, error) {
	switch n := e.(type) {
	case *intLit:
		return typInt, nil
	case *boolLit:
		return typBool, nil
	case *attrRef:
		return typInt, resolveAttr(n, ctx)
	case *unary:
		t, err := infer(n.x, ctx)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "-":
			if t != typInt {
				return 0, errf(0, 0, "operator - needs an int, got %s in %s", t, e)
			}
			n.t = typInt
		case "!":
			if t != typBool {
				return 0, errf(0, 0, "operator ! needs a bool, got %s in %s", t, e)
			}
			n.t = typBool
		}
		return n.t, nil
	case *binary:
		lt, err := infer(n.l, ctx)
		if err != nil {
			return 0, err
		}
		rt, err := infer(n.r, ctx)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "&&", "||":
			if lt != typBool || rt != typBool {
				return 0, errf(n.line, n.col, "operator %s needs bools, got %s and %s", n.op, lt, rt)
			}
			n.t = typBool
		case "==", "!=", "<", "<=", ">", ">=":
			if lt != typInt || rt != typInt {
				return 0, errf(n.line, n.col, "comparison %s needs ints, got %s and %s", n.op, lt, rt)
			}
			n.t = typBool
		default: // + - * / %
			if lt != typInt || rt != typInt {
				return 0, errf(n.line, n.col, "operator %s needs ints, got %s and %s", n.op, lt, rt)
			}
			n.t = typInt
		}
		return n.t, nil
	}
	return 0, errf(0, 0, "unknown expression node %T", e)
}

// resolveAttr binds a dotted path to (root, attribute).
func resolveAttr(ref *attrRef, ctx exprContext) error {
	path := ref.path
	if len(path) == 0 {
		return errf(ref.line, ref.col, "empty path")
	}
	// Determine the root.
	switch path[0] {
	case "self", "core", "thief":
		if ctx == ctxLoad && path[0] == "thief" {
			return errf(ref.line, ref.col, "`thief` is not available in the load clause; use `self`")
		}
		ref.root = rootSelf
		path = path[1:]
	case "stealee", "victim":
		if ctx == ctxLoad {
			return errf(ref.line, ref.col, "`%s` is not available in the load clause", ref.path[0])
		}
		ref.root = rootStealee
		path = path[1:]
	default:
		// Bare attribute: refers to the measured core in load context.
		if ctx != ctxLoad {
			return errf(ref.line, ref.col,
				"path %q must start with thief/self or stealee in this clause", strings.Join(ref.path, "."))
		}
		ref.root = rootSelf
	}
	attr, ok := attrFromPath(path)
	if !ok {
		return errf(ref.line, ref.col, "unknown core attribute %q (known: load, nthreads, ready.size, current.size, weight.sum, id, group, node)",
			strings.Join(path, "."))
	}
	if attr == attrLoad && ctx == ctxLoad {
		return errf(ref.line, ref.col, "the load clause cannot reference `load` (it defines it)")
	}
	ref.attr = attr
	return nil
}

func attrFromPath(path []string) (coreAttr, bool) {
	switch strings.Join(path, ".") {
	case "load":
		return attrLoad, true
	case "nthreads", "threads":
		return attrNThreads, true
	case "ready.size", "ready_size", "nready":
		return attrReadySize, true
	case "current.size", "current_size", "running":
		return attrCurrent, true
	case "weight.sum", "weight_sum", "weightsum":
		return attrWeightSum, true
	case "id":
		return attrID, true
	case "group":
		return attrGroup, true
	case "node":
		return attrNode, true
	}
	return 0, false
}
