package dsl

import "strings"

// lexer turns policy source into tokens. '#' starts a comment running to
// end of line; whitespace separates tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// twoCharOps are the multi-character operators, checked before single
// characters.
var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

const singleOps = "{}()=+-*/%<>!.,"

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.advance()
		}
		return token{kind: tokInt, text: strings.ReplaceAll(l.src[start:l.pos], "_", ""), line: line, col: col}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	for _, op := range twoCharOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.advance()
			l.advance()
			return token{kind: tokPunct, text: op, line: line, col: col}, nil
		}
	}
	if strings.IndexByte(singleOps, c) >= 0 {
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		default:
			return
		}
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// lexAll tokenizes the whole source (used by the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
