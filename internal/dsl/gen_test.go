package dsl

import (
	goparser "go/parser"
	gotoken "go/token"
	"os"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestGeneratedCodeIsValidGo runs every codegen path through the stdlib
// Go parser: the generated backend must always be syntactically valid.
func TestGeneratedCodeIsValidGo(t *testing.T) {
	sources := []string{
		listing1,
		buggyGreedy,
		`policy w { load = self.weight.sum filter = stealee.load - thief.load >= 2048 choose = min_load }`,
		`policy r { filter = stealee.nthreads >= 2 && !(thief.id == 0) || stealee.group != thief.group choose = random(5) }`,
		`policy m { filter = stealee.load % 2 == 0 steal = stealee.load / 2 }`,
	}
	fset := gotoken.NewFileSet()
	for _, src := range sources {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src[:20], err)
		}
		code := Generate(ast, "generated")
		if _, err := goparser.ParseFile(fset, ast.Name+".go", code, 0); err != nil {
			t.Errorf("policy %s: generated code does not parse: %v\n%s", ast.Name, err, code)
		}
	}
	if _, err := goparser.ParseFile(fset, "support.go", GenerateSupport("generated"), 0); err != nil {
		t.Errorf("support code does not parse: %v", err)
	}
}

// TestGeneratedDelta2Golden pins the committed generated policy
// (internal/policy/gen_delta2.go) to the current code generator and the
// checked-in DSL source: regenerating must be a no-op. If this fails,
// re-run:
//
//	go run ./cmd/scheddsl -in internal/dsl/testdata/delta2.pol \
//	    -gen internal/policy/gen_delta2.go -pkg policy
func TestGeneratedDelta2Golden(t *testing.T) {
	src, err := os.ReadFile("testdata/delta2.pol")
	if err != nil {
		t.Fatal(err)
	}
	ast, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../policy/gen_delta2.go")
	if err != nil {
		t.Fatal(err)
	}
	got := Generate(ast, "policy")
	if normalize(got) != normalize(string(want)) {
		t.Errorf("gen_delta2.go is stale; regenerate with scheddsl.\n--- generated now ---\n%s", got)
	}
	wantSupport, err := os.ReadFile("../policy/gen_delta2_support.go")
	if err != nil {
		t.Fatal(err)
	}
	if normalize(GenerateSupport("policy")) != normalize(string(wantSupport)) {
		t.Error("gen_delta2_support.go is stale; regenerate with scheddsl")
	}
}

// normalize strips trailing whitespace per line (gofmt may have touched
// the committed file).
func normalize(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	return strings.TrimSpace(strings.Join(lines, "\n"))
}

// TestInterpreterMatchesGeneratorSemantics drives the interpreted policy
// and a hand-translation of its generated code over random states and
// checks decision equality — the two-backend equivalence the paper's
// pipeline relies on.
func TestInterpreterMatchesGeneratorSemantics(t *testing.T) {
	src := `policy eq {
	    load   = self.ready.size * 2 + self.current.size
	    filter = stealee.load - thief.load >= 3 && stealee.ready.size >= 1
	    steal  = 1
	}`
	interp, _, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// The generated code for this policy, hand-checked: load(c) =
	// len(Ready)*2 + current; filter as written.
	genLoad := func(c *sched.Core) int64 {
		cur := int64(0)
		if c.Current != nil {
			cur = 1
		}
		return int64(len(c.Ready))*2 + cur
	}
	genFilter := func(thief, stealee *sched.Core) bool {
		return genLoad(stealee)-genLoad(thief) >= 3 && len(stealee.Ready) >= 1
	}
	for a := 0; a <= 4; a++ {
		for b := 0; b <= 4; b++ {
			m := sched.MachineFromLoads(a, b)
			thief, stealee := m.Core(0), m.Core(1)
			if interp.CanSteal(thief, stealee) != genFilter(thief, stealee) {
				t.Errorf("loads (%d,%d): backends disagree", a, b)
			}
			if interp.Load(stealee) != genLoad(stealee) {
				t.Errorf("loads (%d,%d): load metric disagrees", a, b)
			}
		}
	}
}
