package dsl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// This file computes canonical compiled forms of DSL policies for
// content-addressed verification caching (cmd/schedverifyd). The cache
// must key policies by what they *compute*, not by their source bytes:
// whitespace, comments, attribute aliases (thief/self, victim/stealee,
// threads/nthreads), Listing-1 method parens (`load()` vs `load`),
// redundant grouping parens and omitted-clause defaults all evaporate
// during parsing and checking, so two sources that compile to the same
// decision procedure must hash identically. Rendering therefore walks
// the *checked* AST and prints resolved roots and attributes, never the
// surface spelling; every binary is fully parenthesized so the
// canonical text is unambiguous without precedence rules.
//
// The policy's declared name is deliberately excluded: renaming a
// policy does not change what the verifier proves about it.

// ComponentForm returns the canonical compiled form of one policy
// component ("load", "filter", "steal", "choose" or "rescue" — the
// parts of sched.Policy; verify.ObligationDeps speaks the same names,
// with "rescue" covering the optional fail-stop rescue rule). The form
// is closed over the load clause: a filter or steal expression that
// references `x.load`, and a chooser (max_load/min_load) defined in
// terms of the load metric, embed the load clause's canonical form — so
// editing the load clause changes exactly the components that can
// observe it. p must come from Parse (checked and default-filled).
func ComponentForm(p *Policy, comp string) string {
	switch comp {
	case "load":
		return "load = " + canonExpr(p.Load)
	case "filter":
		return closeOverLoad(p, "filter = "+canonExpr(p.Filter), refersToLoad(p.Filter))
	case "steal":
		return closeOverLoad(p, "steal = "+canonExpr(p.Steal), refersToLoad(p.Steal))
	case "choose":
		form := "choose = " + canonChooser(p.Choose)
		return closeOverLoad(p, form, chooserUsesLoad(p.Choose))
	case "rescue":
		if p.Rescue.Name == "" {
			// No rescue clause: orphans stay stranded. Canonicalized as
			// "none" so rescue-less policies share one stable form.
			return "rescue = none"
		}
		form := "rescue = " + canonChooser(p.Rescue)
		return closeOverLoad(p, form, chooserUsesLoad(p.Rescue))
	}
	panic(fmt.Sprintf("dsl: unknown policy component %q", comp))
}

// ComponentForms returns every component's canonical form, keyed by
// component name.
func ComponentForms(p *Policy) map[string]string {
	return map[string]string{
		"load":   ComponentForm(p, "load"),
		"filter": ComponentForm(p, "filter"),
		"steal":  ComponentForm(p, "steal"),
		"choose": ComponentForm(p, "choose"),
		"rescue": ComponentForm(p, "rescue"),
	}
}

// Fingerprint hashes a canonical form to the hex digest used in cache
// keys.
func Fingerprint(form string) string {
	sum := sha256.Sum256([]byte(form))
	return hex.EncodeToString(sum[:])
}

// closeOverLoad appends the load clause's canonical form when the
// component references the load metric.
func closeOverLoad(p *Policy, form string, refs bool) string {
	if !refs {
		return form
	}
	return form + "\nload = " + canonExpr(p.Load)
}

// canonChooser renders a chooser canonically; random always prints its
// seed, since random() and random(0) drive the same xorshift stream.
func canonChooser(c Chooser) string {
	name := c.Name
	if name == "" {
		name = "first"
	}
	if name == "random" {
		return fmt.Sprintf("random(%d)", c.Seed)
	}
	return name
}

// chooserUsesLoad reports whether the chooser's semantics depend on the
// policy's load metric (max_load and min_load rank candidates by it;
// first and random never look at it).
func chooserUsesLoad(c Chooser) bool {
	return c.Name == "max_load" || c.Name == "min_load"
}

// canonExpr renders a checked expression canonically: resolved roots
// (self/stealee), canonical attribute spellings, full parenthesization.
func canonExpr(e expr) string {
	var b strings.Builder
	writeCanon(&b, e)
	return b.String()
}

func writeCanon(b *strings.Builder, e expr) {
	switch n := e.(type) {
	case *intLit:
		fmt.Fprintf(b, "%d", n.val)
	case *boolLit:
		fmt.Fprintf(b, "%v", n.val)
	case *attrRef:
		root := "self"
		if n.root == rootStealee {
			root = "stealee"
		}
		b.WriteString(root)
		b.WriteString(".")
		b.WriteString(attrNames[n.attr])
	case *unary:
		b.WriteString(n.op)
		writeCanon(b, n.x)
	case *binary:
		b.WriteString("(")
		writeCanon(b, n.l)
		b.WriteString(" ")
		b.WriteString(n.op)
		b.WriteString(" ")
		writeCanon(b, n.r)
		b.WriteString(")")
	default:
		panic(fmt.Sprintf("dsl: canonExpr on %T", e))
	}
}

// refersToLoad walks e for references to the policy's load metric.
func refersToLoad(e expr) bool {
	switch n := e.(type) {
	case *attrRef:
		return n.attr == attrLoad
	case *unary:
		return refersToLoad(n.x)
	case *binary:
		return refersToLoad(n.l) || refersToLoad(n.r)
	}
	return false
}
