package dsl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// This file is the DSL's semantic linter: checks on a parsed policy
// that are not type errors (check.go rejects those) but are almost
// certainly not what the author meant — a filter that never fires, a
// disjunct another disjunct shadows, a load clause nothing reads, a
// rescue clause missing from a policy about to be verified under
// faults. Findings are warnings, never errors: every frontend
// (scheddsl -lint, schedverify, schedverifyd's /v1/verify) surfaces
// them without blocking compilation or verification, in the spirit of
// the paper's "the DSL makes concise *and analyzable* policies" claim.
//
// The expression checks are decided over a bounded probe universe: a
// fixed grid of synthetic cores varying every attribute the DSL can
// observe (queue length, running task, weights, id, group, node), with
// the policy's own load metric evaluated on each. "Never true" below
// always means "never true on that grid" — the grid is deliberately
// diverse enough that a predicate false everywhere on it is wrong in
// practice, but the verdicts are heuristic, which is the second reason
// findings stay warnings. Everything is deterministic: fixed grid,
// fixed check order, findings sorted by position.

// A Diagnostic is one linter finding. Line/Col point into the policy
// source when the finding anchors to an expression; both are 0 for
// policy-level findings (missing rescue, unused load).
type Diagnostic struct {
	// Code identifies the check: rescue-missing, filter-false,
	// self-steal, shadowed-clause, vacuous-conjunct, steal-nonpositive,
	// load-unused or alias-mixed.
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
}

func (d Diagnostic) String() string {
	if d.Line > 0 {
		return fmt.Sprintf("%d:%d: %s: %s", d.Line, d.Col, d.Code, d.Message)
	}
	return fmt.Sprintf("%s: %s", d.Code, d.Message)
}

// AnalyzeOptions parameterizes Analyze with the verification context
// the policy is headed for.
type AnalyzeOptions struct {
	// MaxFaults is the target universe's fault budget. When it is
	// positive the fault obligations will run, and a policy without a
	// rescue clause is guaranteed to fail no-task-lost on any script
	// that never revives — worth a warning at submit time, before the
	// enumeration spends the cycles.
	MaxFaults int
}

// Analyze lints a parsed, checked policy and returns its findings in
// deterministic order (byte-identical across runs for the same input).
func Analyze(p *Policy, opts AnalyzeOptions) []Diagnostic {
	var ds []Diagnostic

	if opts.MaxFaults > 0 && p.Rescue.Name == "" {
		ds = append(ds, Diagnostic{
			Code: "rescue-missing",
			Message: fmt.Sprintf("policy %q has no rescue clause but the target universe allows %d fault(s): no-task-lost fails on any script that fails a non-empty core and never revives it",
				p.Name, opts.MaxFaults),
		})
	}

	load := loadOf(p)
	proper, identical := probePairs()

	ds = append(ds, analyzeFilter(p, proper, identical, load)...)
	ds = append(ds, analyzeSteal(p, proper, load)...)
	ds = append(ds, analyzeLoadUse(p)...)
	ds = append(ds, analyzeAliases(p)...)

	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return ds
}

// analyzeFilter decides filter-false / self-steal for the whole
// predicate and shadowed-clause / vacuous-conjunct for its &&/||
// operands.
func analyzeFilter(p *Policy, proper, identical []probePair, load func(*sched.Core) int64) []Diagnostic {
	var ds []Diagnostic

	acceptsProper := false
	for _, pr := range proper {
		if evalBool(p.Filter, pr.self, pr.stealee, load) {
			acceptsProper = true
			break
		}
	}
	if !acceptsProper {
		acceptsSelf := false
		for _, pr := range identical {
			if evalBool(p.Filter, pr.self, pr.stealee, load) {
				acceptsSelf = true
				break
			}
		}
		line, col := exprPos(p.Filter)
		if acceptsSelf {
			ds = append(ds, Diagnostic{
				Code:    "self-steal",
				Message: "the filter only accepts a core stealing from itself (e.g. it requires self.id == stealee.id): the runtime never offers a core as its own victim, so the policy never steals",
				Line:    line, Col: col,
			})
		} else {
			ds = append(ds, Diagnostic{
				Code:    "filter-false",
				Message: "the filter never accepts any (thief, stealee) pair on the probe universe: the policy never steals, which fails work conservation on any imbalanced state",
				Line:    line, Col: col,
			})
		}
		// The whole predicate is degenerate; per-operand shadowing
		// verdicts under it would be noise.
		return ds
	}

	walkExprs(p.Filter, func(e expr) {
		b, ok := e.(*binary)
		if !ok || (b.op != "&&" && b.op != "||") {
			return
		}
		lv := truthVector(b.l, proper, load)
		rv := truthVector(b.r, proper, load)
		switch b.op {
		case "||":
			// A disjunct is shadowed when every state it accepts is
			// already accepted by the other side: deleting it changes
			// nothing.
			if implies(rv, lv) {
				ds = append(ds, Diagnostic{
					Code:    "shadowed-clause",
					Message: fmt.Sprintf("in %s, the right operand of || is unreachable: every state it accepts is already accepted by %s", b, b.l),
					Line:    b.line, Col: b.col,
				})
			} else if implies(lv, rv) {
				ds = append(ds, Diagnostic{
					Code:    "shadowed-clause",
					Message: fmt.Sprintf("in %s, the left operand of || is redundant: every state it accepts is already accepted by %s", b, b.r),
					Line:    b.line, Col: b.col,
				})
			}
		case "&&":
			// A conjunct is vacuous when it is true whenever the other
			// side is: it filters nothing out.
			if implies(lv, rv) {
				ds = append(ds, Diagnostic{
					Code:    "vacuous-conjunct",
					Message: fmt.Sprintf("in %s, the right operand of && never rejects anything the left operand accepts: it can be dropped", b),
					Line:    b.line, Col: b.col,
				})
			} else if implies(rv, lv) {
				ds = append(ds, Diagnostic{
					Code:    "vacuous-conjunct",
					Message: fmt.Sprintf("in %s, the left operand of && never rejects anything the right operand accepts: it can be dropped", b),
					Line:    b.line, Col: b.col,
				})
			}
		}
	})
	return ds
}

// analyzeSteal flags a steal count that is never positive on any
// filter-accepted pair: the policy elects victims and then moves
// nothing.
func analyzeSteal(p *Policy, proper []probePair, load func(*sched.Core) int64) []Diagnostic {
	accepted := 0
	positive := false
	for _, pr := range proper {
		if !evalBool(p.Filter, pr.self, pr.stealee, load) {
			continue
		}
		accepted++
		if evalInt(p.Steal, pr.self, pr.stealee, load) > 0 {
			positive = true
			break
		}
	}
	if accepted == 0 || positive {
		return nil // filter-false owns the no-accepted-pair case
	}
	line, col := exprPos(p.Steal)
	return []Diagnostic{{
		Code:    "steal-nonpositive",
		Message: "the steal clause never yields a positive count on any filter-accepted pair: the policy selects victims and then moves nothing",
		Line:    line, Col: col,
	}}
}

// analyzeLoadUse flags a declared load clause that nothing consumes:
// no x.load reference in filter or steal, and no load-driven chooser.
func analyzeLoadUse(p *Policy) []Diagnostic {
	if !p.LoadDeclared {
		return nil
	}
	usesLoad := false
	for _, e := range []expr{p.Filter, p.Steal} {
		walkExprs(e, func(e expr) {
			if ref, ok := e.(*attrRef); ok && ref.attr == attrLoad {
				usesLoad = true
			}
		})
	}
	for _, c := range []Chooser{p.Choose, p.Rescue} {
		if c.Name == "max_load" || c.Name == "min_load" {
			usesLoad = true
		}
	}
	if usesLoad {
		return nil
	}
	line, col := exprPos(p.Load)
	return []Diagnostic{{
		Code:    "load-unused",
		Message: fmt.Sprintf("policy %q declares a load metric but no clause consumes it: filter and steal never mention load, and neither chooser is load-driven", p.Name),
		Line:    line, Col: col,
	}}
}

// analyzeAliases flags one attribute spelled through different aliases
// (nthreads vs threads, ready.size vs nready, …) and one core root
// spelled differently within a single clause (thief vs self): both
// compile identically, and mixed spellings read as two different
// quantities.
func analyzeAliases(p *Policy) []Diagnostic {
	var ds []Diagnostic

	attrSpellings := map[coreAttr]map[string]bool{}
	var attrOrder []coreAttr
	clauses := []struct {
		name string
		e    expr
	}{{"load", p.Load}, {"filter", p.Filter}, {"steal", p.Steal}}
	for _, cl := range clauses {
		rootSpellings := map[coreRoot]map[string]bool{}
		walkExprs(cl.e, func(e expr) {
			ref, ok := e.(*attrRef)
			if !ok {
				return
			}
			root, attrPath := splitRoot(ref.path)
			if attrSpellings[ref.attr] == nil {
				attrSpellings[ref.attr] = map[string]bool{}
				attrOrder = append(attrOrder, ref.attr)
			}
			attrSpellings[ref.attr][attrPath] = true
			if root != "" {
				if rootSpellings[ref.root] == nil {
					rootSpellings[ref.root] = map[string]bool{}
				}
				rootSpellings[ref.root][root] = true
			}
		})
		for _, root := range []coreRoot{rootSelf, rootStealee} {
			if sp := rootSpellings[root]; len(sp) > 1 {
				ds = append(ds, Diagnostic{
					Code: "alias-mixed",
					Message: fmt.Sprintf("the %s clause spells the same core both %s: pick one alias",
						cl.name, quotedList(sp)),
				})
			}
		}
	}
	for _, attr := range attrOrder {
		if sp := attrSpellings[attr]; len(sp) > 1 {
			ds = append(ds, Diagnostic{
				Code: "alias-mixed",
				Message: fmt.Sprintf("attribute %q is spelled both %s: pick one alias",
					attrNames[attr], quotedList(sp)),
			})
		}
	}
	return ds
}

// walkExprs visits e and every subexpression, parents before children,
// left before right.
func walkExprs(e expr, visit func(expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *unary:
		walkExprs(n.x, visit)
	case *binary:
		walkExprs(n.l, visit)
		walkExprs(n.r, visit)
	}
}

// exprPos returns the best source anchor an expression offers.
func exprPos(e expr) (line, col int) {
	switch n := e.(type) {
	case *attrRef:
		return n.line, n.col
	case *binary:
		return n.line, n.col
	case *unary:
		return exprPos(n.x)
	}
	return 0, 0
}

// splitRoot splits a surface path into its root spelling (self, core,
// thief, stealee, victim — "" when the path is a bare attribute) and
// the attribute spelling.
func splitRoot(path []string) (root, attr string) {
	if len(path) > 1 {
		switch path[0] {
		case "self", "core", "thief", "stealee", "victim":
			return path[0], strings.Join(path[1:], ".")
		}
	}
	return "", strings.Join(path, ".")
}

func quotedList(set map[string]bool) string {
	items := make([]string, 0, len(set))
	//schedlint:allow determinism items are sorted before joining
	for s := range set {
		items = append(items, fmt.Sprintf("%q", s))
	}
	sort.Strings(items)
	return strings.Join(items, " and ")
}

// probePair is one (thief, stealee) grid point.
type probePair struct {
	self, stealee *sched.Core
}

// probeCores builds the probe universe's cores: every DSL-observable
// attribute varies somewhere in the set, so a predicate that is
// constant across all of it has no input left to depend on.
func probeCores() []*sched.Core {
	mk := func(id, node, group, ready int, current bool, weight int64) *sched.Core {
		c := &sched.Core{ID: id, Node: node, Group: group}
		if current {
			c.Current = &sched.Task{ID: sched.TaskID(100*id + 99), Weight: weight, NodeHint: -1}
		}
		for i := 0; i < ready; i++ {
			c.Ready = append(c.Ready, &sched.Task{ID: sched.TaskID(100*id + i), Weight: weight, NodeHint: -1})
		}
		return c
	}
	return []*sched.Core{
		mk(0, 0, 0, 0, false, 1),  // idle
		mk(1, 0, 0, 0, true, 1),   // running, empty queue
		mk(2, 0, 0, 1, true, 1),   // queue 1
		mk(3, 0, 0, 3, true, 1),   // queue 3
		mk(4, 0, 0, 2, true, 5),   // heavy weights
		mk(5, 1, 1, 5, true, 1),   // busy, other node/group
		mk(6, 1, 0, 8, true, 2),   // very busy
		mk(7, 0, 1, 12, false, 1), // deep queue, nothing running
	}
}

// probePairs returns the ordered pairs of distinct cores (proper:
// what the runtime actually offers a filter) and the identical pairs
// (self-steal probes).
func probePairs() (proper, identical []probePair) {
	cores := probeCores()
	for _, a := range cores {
		for _, b := range cores {
			if a.ID == b.ID {
				identical = append(identical, probePair{a, b})
			} else {
				proper = append(proper, probePair{a, b})
			}
		}
	}
	return proper, identical
}

// truthVector evaluates a bool expression over the pairs.
func truthVector(e expr, pairs []probePair, load func(*sched.Core) int64) []bool {
	out := make([]bool, len(pairs))
	for i, pr := range pairs {
		out[i] = evalBool(e, pr.self, pr.stealee, load)
	}
	return out
}

// implies reports pointwise a ⇒ b.
func implies(a, b []bool) bool {
	for i := range a {
		if a[i] && !b[i] {
			return false
		}
	}
	return true
}
