package dsl

import (
	"fmt"

	"repro/internal/sched"
)

// Compile turns a checked policy into an executable sched.Policy — the
// DSL's "kernel backend". The same object is what internal/verify checks,
// so execution and verification consume one artifact, like the paper's
// single DSL source feeding both C and Scala.
func Compile(p *Policy) sched.Policy {
	loadFn := func(c *sched.Core) int64 {
		return evalInt(p.Load, c, nil, loadOf(p))
	}
	fp := &sched.FuncPolicy{
		PolicyName: p.Name,
		LoadFn:     loadFn,
		FilterFn: func(thief, stealee *sched.Core) bool {
			return evalBool(p.Filter, thief, stealee, loadOf(p))
		},
		ChooseFn: compileChooser(p.Choose, loadFn),
		CountFn: func(thief, stealee *sched.Core) int {
			return int(evalInt(p.Steal, thief, stealee, loadOf(p)))
		},
	}
	if p.Rescue.Name != "" {
		// The rescue rule reuses the chooser vocabulary: the chooser
		// picks, among the online cores, the one that adopts each orphan
		// of the failed core. Policies without a rescue clause leave
		// RescueFn nil, i.e. orphans stay stranded.
		rescue := compileChooser(p.Rescue, loadFn)
		fp.RescueFn = func(failed *sched.Core, _ *sched.Task, candidates []*sched.Core) *sched.Core {
			return rescue(failed, candidates)
		}
	}
	return fp
}

// CompileSource parses, checks and compiles in one step.
func CompileSource(src string) (sched.Policy, *Policy, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return Compile(ast), ast, nil
}

// loadOf returns the policy's load evaluator (used by `x.load` references
// inside filter/steal expressions).
func loadOf(p *Policy) func(*sched.Core) int64 {
	return func(c *sched.Core) int64 {
		return evalInt(p.Load, c, nil, nil) // load cannot reference load
	}
}

func compileChooser(c Chooser, load func(*sched.Core) int64) sched.ChooseFunc {
	switch c.Name {
	case "", "first":
		return sched.ChooseFirst
	case "max_load":
		return sched.ChooseMaxLoad(load)
	case "min_load":
		return func(_ *sched.Core, candidates []*sched.Core) *sched.Core {
			best := candidates[0]
			bestLoad := load(best)
			for _, cand := range candidates[1:] {
				if l := load(cand); l < bestLoad || (l == bestLoad && cand.ID < best.ID) {
					best, bestLoad = cand, l
				}
			}
			return best
		}
	case "random":
		state := uint64(c.Seed)
		if state == 0 {
			state = 0x9E3779B97F4A7C15
		}
		return func(_ *sched.Core, candidates []*sched.Core) *sched.Core {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return candidates[state%uint64(len(candidates))]
		}
	}
	panic(fmt.Sprintf("dsl: unknown chooser %q", c.Name))
}

// evalInt evaluates an int-typed expression. self is the thief (or the
// measured core in load context); stealee may be nil in load context.
func evalInt(e expr, self, stealee *sched.Core, load func(*sched.Core) int64) int64 {
	switch n := e.(type) {
	case *intLit:
		return n.val
	case *attrRef:
		core := self
		if n.root == rootStealee {
			core = stealee
		}
		return attrValue(n.attr, core, load)
	case *unary: // "-"
		return -evalInt(n.x, self, stealee, load)
	case *binary:
		l := evalInt(n.l, self, stealee, load)
		r := evalInt(n.r, self, stealee, load)
		switch n.op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r == 0 {
				return 0 // total semantics: x/0 = 0, as in Leon/SMT practice
			}
			return l / r
		case "%":
			if r == 0 {
				return 0
			}
			return l % r
		}
	}
	panic(fmt.Sprintf("dsl: evalInt on %T", e))
}

// evalBool evaluates a bool-typed expression.
func evalBool(e expr, self, stealee *sched.Core, load func(*sched.Core) int64) bool {
	switch n := e.(type) {
	case *boolLit:
		return n.val
	case *unary: // "!"
		return !evalBool(n.x, self, stealee, load)
	case *binary:
		switch n.op {
		case "&&":
			return evalBool(n.l, self, stealee, load) && evalBool(n.r, self, stealee, load)
		case "||":
			return evalBool(n.l, self, stealee, load) || evalBool(n.r, self, stealee, load)
		}
		l := evalInt(n.l, self, stealee, load)
		r := evalInt(n.r, self, stealee, load)
		switch n.op {
		case "==":
			return l == r
		case "!=":
			return l != r
		case "<":
			return l < r
		case "<=":
			return l <= r
		case ">":
			return l > r
		case ">=":
			return l >= r
		}
	}
	panic(fmt.Sprintf("dsl: evalBool on %T", e))
}

func attrValue(a coreAttr, c *sched.Core, load func(*sched.Core) int64) int64 {
	switch a {
	case attrLoad:
		if load == nil {
			panic("dsl: load reference without a load function")
		}
		return load(c)
	case attrNThreads:
		return int64(c.NThreads())
	case attrReadySize:
		return int64(len(c.Ready))
	case attrCurrent:
		if c.Current != nil {
			return 1
		}
		return 0
	case attrWeightSum:
		return c.WeightSum()
	case attrID:
		return int64(c.ID)
	case attrGroup:
		return int64(c.Group)
	case attrNode:
		return int64(c.Node)
	}
	panic(fmt.Sprintf("dsl: unknown attribute %d", a))
}
