// Package dsl implements the paper's scheduling-policy domain-specific
// language. The paper compiles one policy source to two backends — C for
// the Linux kernel and Scala for the Leon verifier; this package mirrors
// the pipeline with two Go backends: an interpreted sched.Policy for
// execution (simulator, executor, verifier) and a Go source-code
// generator (Generate) standing in for the kernel backend.
//
// A policy file looks like Listing 1:
//
//	# The simple balancer of Listing 1.
//	policy delta2 {
//	    load   = self.ready.size + self.current.size
//	    filter = stealee.load - thief.load >= 2
//	    steal  = 1
//	    choose = max_load
//	}
//
// `load` defines the per-core load metric (paths rooted at self/core),
// `filter` is the step-1 predicate over thief/stealee, `steal` sizes the
// step-3 migration, and `choose` picks a step-2 heuristic by name —
// heuristics are deliberately *names, not expressions*, because the
// paper's proofs never depend on the choice step.
package dsl

import "fmt"

// tokenKind classifies lexical tokens.
type tokenKind int8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokPunct // single/double-character operators and delimiters
)

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokInt:
		return fmt.Sprintf("number %q", t.text)
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a DSL front-end error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("dsl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
