package dsl

import (
	"encoding/json"
	"os"
	"testing"
)

func mustParseFile(t *testing.T, name string) *Policy {
	t.Helper()
	src, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	p, err := Parse(string(src))
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	return p
}

func codes(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestAnalyzeClean(t *testing.T) {
	p := mustParseFile(t, "delta2.pol")
	if ds := Analyze(p, AnalyzeOptions{}); len(ds) != 0 {
		t.Errorf("delta2 should lint clean, got %v", ds)
	}
}

func TestAnalyzeShadowedAndRescue(t *testing.T) {
	p := mustParseFile(t, "shadowed.pol")

	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "shadowed-clause") {
		t.Errorf("shadowed.pol: want shadowed-clause, got %v", codes(ds))
	}
	if hasCode(ds, "rescue-missing") {
		t.Errorf("rescue-missing reported without a fault budget: %v", codes(ds))
	}

	ds = Analyze(p, AnalyzeOptions{MaxFaults: 1})
	if !hasCode(ds, "rescue-missing") {
		t.Errorf("shadowed.pol with MaxFaults=1: want rescue-missing, got %v", codes(ds))
	}
}

func TestAnalyzeSelfSteal(t *testing.T) {
	p := mustParseFile(t, "selfsteal.pol")
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "self-steal") {
		t.Errorf("want self-steal, got %v", codes(ds))
	}
	if hasCode(ds, "filter-false") {
		t.Errorf("self-steal case must not double-report filter-false: %v", codes(ds))
	}
}

func TestAnalyzeFilterFalse(t *testing.T) {
	p, err := Parse("policy never { filter = false choose = first }")
	if err != nil {
		t.Fatal(err)
	}
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "filter-false") {
		t.Errorf("want filter-false, got %v", codes(ds))
	}
}

func TestAnalyzeVacuousConjunct(t *testing.T) {
	p, err := Parse("policy vac { filter = stealee.nthreads > self.nthreads && stealee.nthreads >= 0 choose = first }")
	if err != nil {
		t.Fatal(err)
	}
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "vacuous-conjunct") {
		t.Errorf("want vacuous-conjunct, got %v", codes(ds))
	}
}

func TestAnalyzeStealNonpositive(t *testing.T) {
	p, err := Parse("policy zero { filter = stealee.nthreads > self.nthreads steal = 0 - 1 choose = first }")
	if err != nil {
		t.Fatal(err)
	}
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "steal-nonpositive") {
		t.Errorf("want steal-nonpositive, got %v", codes(ds))
	}
}

func TestAnalyzeLoadUnused(t *testing.T) {
	p := mustParseFile(t, "loadunused.pol")
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "load-unused") {
		t.Errorf("want load-unused, got %v", codes(ds))
	}

	// The same metric consumed by a load-driven chooser is not unused.
	used, err := Parse("policy used { load = self.weight.sum filter = stealee.nthreads - self.nthreads >= 2 choose = max_load }")
	if err != nil {
		t.Fatal(err)
	}
	if ds := Analyze(used, AnalyzeOptions{}); hasCode(ds, "load-unused") {
		t.Errorf("max_load consumes the load metric, got %v", codes(ds))
	}

	// The parser's default load never counts as declared.
	def, err := Parse("policy def { filter = stealee.nthreads - self.nthreads >= 2 choose = first }")
	if err != nil {
		t.Fatal(err)
	}
	if ds := Analyze(def, AnalyzeOptions{}); hasCode(ds, "load-unused") {
		t.Errorf("default load flagged as unused: %v", codes(ds))
	}
}

func TestAnalyzeAliasMixed(t *testing.T) {
	p := mustParseFile(t, "aliasmixed.pol")
	ds := Analyze(p, AnalyzeOptions{})
	if !hasCode(ds, "alias-mixed") {
		t.Errorf("want alias-mixed, got %v", codes(ds))
	}
}

// TestAnalyzeDeterministic pins the warning path's byte-level
// determinism: the JSON document schedverifyd embeds in /v1/verify
// responses must be identical run to run.
func TestAnalyzeDeterministic(t *testing.T) {
	p := mustParseFile(t, "shadowed.pol")
	first, err := json.Marshal(Analyze(p, AnalyzeOptions{MaxFaults: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := mustParseFile(t, "shadowed.pol")
		again, err := json.Marshal(Analyze(q, AnalyzeOptions{MaxFaults: 2}))
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(again) {
			t.Fatalf("run %d: warnings differ:\n%s\n%s", i, first, again)
		}
	}
}
