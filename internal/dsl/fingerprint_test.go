package dsl

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Policy {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

// Whitespace, comments, alias spellings, Listing-1 method parens,
// redundant grouping and omitted-clause defaults must all hash
// identically — the naive source-bytes trap the cache must not ship
// with.
func TestComponentFormsIgnoreSurfaceSyntax(t *testing.T) {
	base := mustParse(t, `policy a {
    load   = self.ready.size + self.current.size
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = first
}`)
	variants := []string{
		// Comments, blank lines, crushed whitespace.
		"# leading comment\npolicy b {\n\n  load=self.ready.size+self.current.size # trailing\n  filter=stealee.load-self.load>=2\n  steal=1\n  choose=first\n}",
		// Alias roots and attribute spellings, method parens.
		`policy c {
    load   = core.nready + self.running
    filter = victim.load() - thief.load() >= 2
    steal  = 1
    choose = first
}`,
		// Redundant grouping parens and omitted steal/choose defaults.
		`policy d {
    load   = ((self.ready.size) + (self.current.size))
    filter = ((stealee.load - self.load) >= 2)
}`,
	}
	for comp, want := range ComponentForms(base) {
		for i, src := range variants {
			got := ComponentForm(mustParse(t, src), comp)
			if got != want {
				t.Errorf("variant %d component %s:\n got  %q\n want %q", i, comp, got, want)
			}
		}
	}
}

// The declared policy name is not part of any component form.
func TestComponentFormsExcludeName(t *testing.T) {
	a := mustParse(t, "policy alpha { filter = stealee.nthreads - self.nthreads >= 2 }")
	b := mustParse(t, "policy bravo { filter = stealee.nthreads - self.nthreads >= 2 }")
	for comp, form := range ComponentForms(a) {
		if got := ComponentForm(b, comp); got != form {
			t.Errorf("component %s differs across names: %q vs %q", comp, form, got)
		}
		if strings.Contains(form, "alpha") {
			t.Errorf("component %s leaks the policy name: %q", comp, form)
		}
	}
}

// A semantic edit to one clause changes that clause's form (and the
// forms closed over it) while leaving the others untouched.
func TestComponentFormsIsolateEdits(t *testing.T) {
	base := mustParse(t, `policy p {
    load   = self.nthreads
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = max_load
}`)
	edited := mustParse(t, `policy p {
    load   = self.nthreads
    filter = stealee.load - self.load >= 2
    steal  = 2
    choose = max_load
}`)
	for _, comp := range []string{"load", "filter", "choose"} {
		if ComponentForm(base, comp) != ComponentForm(edited, comp) {
			t.Errorf("steal edit changed the %s form", comp)
		}
	}
	if ComponentForm(base, "steal") == ComponentForm(edited, "steal") {
		t.Error("steal edit did not change the steal form")
	}
}

// Load closure: components that reference the load metric embed it, so
// a load edit flows into them — and only them.
func TestComponentFormsLoadClosure(t *testing.T) {
	loadFree := mustParse(t, `policy p {
    load   = self.weight.sum
    filter = stealee.nthreads - self.nthreads >= 2
    steal  = 1
    choose = first
}`)
	loadEdited := mustParse(t, `policy p {
    load   = self.nthreads
    filter = stealee.nthreads - self.nthreads >= 2
    steal  = 1
    choose = first
}`)
	for _, comp := range []string{"filter", "steal", "choose"} {
		if ComponentForm(loadFree, comp) != ComponentForm(loadEdited, comp) {
			t.Errorf("load edit reached load-free component %s", comp)
		}
	}
	if ComponentForm(loadFree, "load") == ComponentForm(loadEdited, "load") {
		t.Error("load edit did not change the load form")
	}

	// max_load ranks by the load metric, so the choose form must embed it.
	maxLoad := mustParse(t, `policy p {
    load   = self.weight.sum
    filter = stealee.nthreads - self.nthreads >= 2
    choose = max_load
}`)
	if got := ComponentForm(maxLoad, "choose"); !strings.Contains(got, "weight.sum") {
		t.Errorf("max_load choose form does not embed the load clause: %q", got)
	}
	// A filter referencing x.load embeds it too.
	if got := ComponentForm(mustParse(t, `policy p {
    load   = self.weight.sum
    filter = stealee.load - self.load >= 2
}`), "filter"); !strings.Contains(got, "weight.sum") {
		t.Errorf("load-referencing filter form does not embed the load clause: %q", got)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint("filter = x"), Fingerprint("filter = x")
	if a != b || len(a) != 64 {
		t.Fatalf("Fingerprint unstable or malformed: %q vs %q", a, b)
	}
	if Fingerprint("filter = y") == a {
		t.Fatal("distinct forms collide")
	}
}
