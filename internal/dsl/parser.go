package dsl

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses and type-checks a policy definition.
func Parse(src string) (*Policy, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pol, err := p.parsePolicy()
	if err != nil {
		return nil, err
	}
	if err := checkPolicy(pol); err != nil {
		return nil, err
	}
	return pol, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return errf(t.line, t.col, "expected %q, found %s", s, t)
	}
	p.bump()
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != s {
		return errf(t.line, t.col, "expected %q, found %s", s, t)
	}
	p.bump()
	return nil
}

func (p *parser) parsePolicy() (*Policy, error) {
	if err := p.expectIdent("policy"); err != nil {
		return nil, err
	}
	nameTok := p.cur()
	if nameTok.kind != tokIdent {
		return nil, errf(nameTok.line, nameTok.col, "expected policy name, found %s", nameTok)
	}
	p.bump()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	pol := &Policy{Name: nameTok.text, Choose: Chooser{Name: "first"}}
	seen := map[string]bool{}
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.bump()
			break
		}
		if t.kind != tokIdent {
			return nil, errf(t.line, t.col, "expected a clause (load/filter/steal/choose/rescue), found %s", t)
		}
		clause := t.text
		p.bump()
		if seen[clause] {
			return nil, errf(t.line, t.col, "duplicate %q clause", clause)
		}
		seen[clause] = true
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		switch clause {
		case "load":
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			pol.Load = e
			pol.LoadDeclared = true
		case "filter":
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			pol.Filter = e
		case "steal":
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			pol.Steal = e
		case "choose":
			c, err := p.parseChooser()
			if err != nil {
				return nil, err
			}
			pol.Choose = c
		case "rescue":
			c, err := p.parseChooser()
			if err != nil {
				return nil, err
			}
			pol.Rescue = c
		default:
			return nil, errf(t.line, t.col, "unknown clause %q (want load, filter, steal, choose or rescue)", clause)
		}
	}
	eof := p.cur()
	if eof.kind != tokEOF {
		return nil, errf(eof.line, eof.col, "trailing input after policy body: %s", eof)
	}
	if pol.Filter == nil {
		return nil, errf(nameTok.line, nameTok.col, "policy %q has no filter clause", pol.Name)
	}
	if pol.Load == nil {
		pol.Load = &attrRef{path: []string{"self", "nthreads"}, root: rootSelf, attr: attrNThreads}
	}
	if pol.Steal == nil {
		pol.Steal = &intLit{val: 1}
	}
	return pol, nil
}

// validChoosers names the step-2 heuristics the DSL exposes.
var validChoosers = map[string]bool{"first": true, "max_load": true, "min_load": true, "random": true}

func (p *parser) parseChooser() (Chooser, error) {
	t := p.cur()
	if t.kind != tokIdent || !validChoosers[t.text] {
		return Chooser{}, errf(t.line, t.col,
			"expected a chooser (first, max_load, min_load, random), found %s", t)
	}
	p.bump()
	c := Chooser{Name: t.text}
	if t.text == "random" {
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.bump()
			seedTok := p.cur()
			if seedTok.kind != tokInt {
				return Chooser{}, errf(seedTok.line, seedTok.col, "expected seed, found %s", seedTok)
			}
			p.bump()
			seed, err := strconv.ParseInt(seedTok.text, 10, 64)
			if err != nil {
				return Chooser{}, errf(seedTok.line, seedTok.col, "bad seed: %v", err)
			}
			c.Seed = seed
			if err := p.expectPunct(")"); err != nil {
				return Chooser{}, err
			}
		}
	}
	return c, nil
}

// Expression grammar, standard precedence climbing.

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		t := p.bump()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binary{op: "||", l: l, r: r, line: t.line, col: t.col}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		t := p.bump()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binary{op: "&&", l: l, r: r, line: t.line, col: t.col}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.cur().kind == tokPunct && p.cur().text == "!" {
		p.bump()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unary{op: "!", x: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && cmpOps[p.cur().text] {
		t := p.bump()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &binary{op: t.text, l: l, r: r, line: t.line, col: t.col}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		t := p.bump()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &binary{op: t.text, l: l, r: r, line: t.line, col: t.col}
	}
	return l, nil
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		t := p.bump()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binary{op: t.text, l: l, r: r, line: t.line, col: t.col}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		p.bump()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unary{op: "-", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.bump()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.line, t.col, "bad number: %v", err)
		}
		return &intLit{val: v}, nil
	case t.kind == tokIdent && t.text == "true":
		p.bump()
		return &boolLit{val: true}, nil
	case t.kind == tokIdent && t.text == "false":
		p.bump()
		return &boolLit{val: false}, nil
	case t.kind == tokIdent:
		return p.parsePath()
	case t.kind == tokPunct && t.text == "(":
		p.bump()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.line, t.col, "expected an expression, found %s", t)
}

func (p *parser) parsePath() (expr, error) {
	t := p.cur()
	ref := &attrRef{line: t.line, col: t.col}
	for {
		id := p.cur()
		if id.kind != tokIdent {
			return nil, errf(id.line, id.col, "expected identifier in path, found %s", id)
		}
		p.bump()
		ref.path = append(ref.path, id.text)
		// Tolerate Listing-1 style method parens: load() ≡ load.
		if p.cur().kind == tokPunct && p.cur().text == "(" &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
			p.bump()
			p.bump()
		}
		if p.cur().kind == tokPunct && p.cur().text == "." {
			p.bump()
			continue
		}
		return ref, nil
	}
}
