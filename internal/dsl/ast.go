package dsl

import (
	"fmt"
	"strings"
)

// typ is the DSL's two-type system.
type typ int8

const (
	typInt typ = iota
	typBool
)

func (t typ) String() string {
	if t == typBool {
		return "bool"
	}
	return "int"
}

// expr is a typed expression node.
type expr interface {
	fmt.Stringer
	// typ is set during checking; nodes are created untyped by the
	// parser and annotated by the checker.
	exprType() typ
}

// intLit is an integer literal.
type intLit struct {
	val int64
}

func (e *intLit) exprType() typ  { return typInt }
func (e *intLit) String() string { return fmt.Sprintf("%d", e.val) }

// boolLit is true/false.
type boolLit struct {
	val bool
}

func (e *boolLit) exprType() typ  { return typBool }
func (e *boolLit) String() string { return fmt.Sprintf("%v", e.val) }

// attrRef is a dotted path like `stealee.load` or `self.ready.size`. The
// checker resolves root (which core) and attribute (which metric).
type attrRef struct {
	path []string
	line int
	col  int

	// Resolved by the checker:
	root coreRoot
	attr coreAttr
}

func (e *attrRef) exprType() typ  { return typInt }
func (e *attrRef) String() string { return strings.Join(e.path, ".") }

// coreRoot identifies which core a path refers to.
type coreRoot int8

const (
	rootSelf    coreRoot = iota // the measured core (load) / the thief (filter, steal)
	rootStealee                 // the filter/steal counterpart
)

// coreAttr identifies the resolved core metric.
type coreAttr int8

const (
	attrLoad      coreAttr = iota // the policy's own load function
	attrNThreads                  // thread count including current
	attrReadySize                 // runqueue length
	attrCurrent                   // 0 or 1
	attrWeightSum                 // sum of weights
	attrID                        // core ID
	attrGroup                     // scheduling group
	attrNode                      // NUMA node
)

var attrNames = map[coreAttr]string{
	attrLoad: "load", attrNThreads: "nthreads", attrReadySize: "ready.size",
	attrCurrent: "current.size", attrWeightSum: "weight.sum",
	attrID: "id", attrGroup: "group", attrNode: "node",
}

// unary is -x or !x.
type unary struct {
	op string
	x  expr
	t  typ
}

func (e *unary) exprType() typ  { return e.t }
func (e *unary) String() string { return e.op + e.x.String() }

// binary is a two-operand operation.
type binary struct {
	op   string
	l, r expr
	t    typ
	line int
	col  int
}

func (e *binary) exprType() typ { return e.t }
func (e *binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
}

// Chooser names a step-2 heuristic.
type Chooser struct {
	// Name is one of first, max_load, min_load, random.
	Name string
	// Seed parameterizes random.
	Seed int64
}

// Policy is a parsed, checked policy definition.
type Policy struct {
	// Name is the policy's declared name.
	Name string
	// Load is the load metric expression (int, roots: self).
	Load expr
	// LoadDeclared records whether the source had an explicit load
	// clause, as opposed to the parser's self.nthreads default — the
	// linter flags a declared load that nothing consumes.
	LoadDeclared bool
	// Filter is the step-1 predicate (bool, roots: thief/self, stealee).
	Filter expr
	// Steal is the step-3 count expression (int, roots: thief/self,
	// stealee).
	Steal expr
	// Choose is the step-2 heuristic.
	Choose Chooser
	// Rescue is the fail-stop rescue rule: the chooser that picks which
	// online core adopts each task orphaned by a core failure. A nil
	// Name means no rescue — orphans stay stranded until the core
	// revives, which is the behavior the no-task-lost obligation
	// refutes.
	Rescue Chooser
}

// String renders the policy back to canonical DSL form.
func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s {\n", p.Name)
	fmt.Fprintf(&b, "    load   = %s\n", p.Load)
	fmt.Fprintf(&b, "    filter = %s\n", p.Filter)
	fmt.Fprintf(&b, "    steal  = %s\n", p.Steal)
	if p.Choose.Name == "random" {
		fmt.Fprintf(&b, "    choose = random(%d)\n", p.Choose.Seed)
	} else {
		fmt.Fprintf(&b, "    choose = %s\n", p.Choose.Name)
	}
	if p.Rescue.Name != "" {
		if p.Rescue.Name == "random" {
			fmt.Fprintf(&b, "    rescue = random(%d)\n", p.Rescue.Seed)
		} else {
			fmt.Fprintf(&b, "    rescue = %s\n", p.Rescue.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
