package lint

import (
	"go/ast"
	"strings"
)

// Suppression directives.
//
// A finding is silenced by a line comment
//
//	//schedlint:allow <pass> <reason>
//
// placed either on the offending line itself (trailing comment) or
// alone on the line directly above it. The reason is mandatory and the
// pass name must exist: a directive that names no known pass or gives
// no reason is itself a diagnostic, so annotations stay reviewed
// decisions rather than typo-prone noise.

const directivePrefix = "//schedlint:allow"

// allowSet records which (pass, file, line) triples are suppressed.
type allowSet map[string]map[int]bool // "pass\x00file" -> covered lines

func (s allowSet) add(pass, file string, line int) {
	key := pass + "\x00" + file
	if s[key] == nil {
		s[key] = make(map[int]bool)
	}
	s[key][line] = true
}

func (s allowSet) covers(pass, file string, line int) bool {
	return s[pass+"\x00"+file][line]
}

// directives scans a package's comments for //schedlint:allow lines,
// returning the suppression set and any hygiene diagnostics.
func directives(prog *Program, pkg *Package) (allowSet, []Diagnostic) {
	allows := make(allowSet)
	var bad []Diagnostic
	for _, file := range pkg.Files {
		// hasCode[line] records lines on which some non-comment syntax
		// node ends — used to tell a trailing comment (suppresses its own
		// line) from a standalone one (suppresses the next line too).
		hasCode := map[int]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return false
			}
			hasCode[prog.Fset.Position(n.End()).Line] = true
			return true
		})
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pass: "schedlint", Pos: pos,
						Message: "malformed directive: want //schedlint:allow <pass> <reason>",
					})
					continue
				}
				pass := fields[0]
				known := pass == "schedlint"
				if !known {
					_, known = ByName(pass)
				}
				if !known {
					bad = append(bad, Diagnostic{
						Pass: "schedlint", Pos: pos,
						Message: "directive names unknown pass " + quoted(pass),
					})
					continue
				}
				allows.add(pass, pos.Filename, pos.Line)
				if !hasCode[pos.Line] {
					// Standalone comment: nothing but the directive on its
					// line, so it guards the line below.
					allows.add(pass, pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return allows, bad
}

func quoted(s string) string { return `"` + s + `"` }
