// Package fixture is the negative depsaudit case from the issue: a
// checker that calls Choose without declaring CompChoose must draw
// exactly one diagnostic, on the row. A second obligation declares a
// component its checker never reaches.
package fixture

type Core struct{ ID int }

type Policy interface {
	Load(c *Core) int64
	CanSteal(self, stealee *Core) bool
	Choose(self *Core, cands []*Core) *Core
	StealCount(self, stealee *Core) int
}

type ObligationID string

const (
	ObUndeclared ObligationID = "undeclared-choose"
	ObUnreached  ObligationID = "unreached-steal"
)

const (
	CompFilter = "filter"
	CompChoose = "choose"
	CompSteal  = "steal"
)

var obligationDeps = map[ObligationID][]string{
	ObUndeclared: {CompFilter},            // want "reaches policy component .choose. .via checkUndeclared -> Policy.Choose. but its obligationDeps row does not declare it"
	ObUnreached:  {CompFilter, CompSteal}, // want "declares component .steal. but the checker never reaches it"
}

func dispatch(id ObligationID, p Policy) {
	switch id {
	case ObUndeclared:
		checkUndeclared(p)
	case ObUnreached:
		checkUnreached(p)
	}
}

func checkUndeclared(p Policy) {
	var a, b Core
	if p.CanSteal(&a, &b) {
		_ = p.Choose(&a, []*Core{&b})
	}
}

func checkUnreached(p Policy) {
	var a, b Core
	_ = p.CanSteal(&a, &b)
}
