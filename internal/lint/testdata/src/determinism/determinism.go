// Package fixture exercises the determinism analyzer: banned
// wall-clock and global-rand references, order-sensitive map ranges,
// map-typed JSON fields — and the safe counterparts that must stay
// silent, plus an //schedlint:allow suppression.
package fixture

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Report has one flagged field (Tags) and two clean ones: slices
// marshal in order, json:"-" fields never reach the encoder.
type Report struct {
	Names []string          `json:"names"`
	Tags  map[string]string `json:"tags"` // want "map-typed JSON field Tags"
	Skip  map[string]int    `json:"-"`
	State map[string]int    // untagged: never marshaled by the report path
}

func now() time.Time { return time.Now() } // want "time.Now reads the wall clock"

func since(t time.Time) time.Duration { return time.Since(t) } // want "time.Since reads the wall clock"

func roll() int { return rand.Intn(6) } // want "rand.Intn draws from the process-global source"

func seeded() *rand.Rand { return rand.New(rand.NewSource(1)) }

func first(m map[string]int) int {
	for _, v := range m { // want "map iteration order flows into output"
		return v
	}
	return 0
}

func firstOver(m map[string]int, lim int) (k string) {
	for key, v := range m { // want "map iteration order flows into output"
		if v > lim {
			k = key
			break
		}
	}
	return k
}

func collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order flows into output"
		out = append(out, k)
	}
	return out
}

func render(m map[string]int) {
	for k := range m { // want "map iteration order flows into output"
		fmt.Println(k)
	}
}

func join(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration order flows into output"
		b.WriteString(k)
	}
	return b.String()
}

// count is order-insensitive: compound assignment accumulates
// commutatively.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes through keys — order never shows in the result.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// innerBreak's break exits the nested switch, not the map range.
func innerBreak(m map[string]int) int {
	n := 0
	for _, v := range m {
		switch {
		case v > 0:
			n++
		default:
			break
		}
	}
	return n
}

// literals: a closure body formats output but runs outside the
// iteration, so the range body itself stays clean (FuncLit is skipped).
func literals(m map[string]int) int {
	n := 0
	for _, v := range m {
		f := func() { fmt.Println(v) }
		_ = f
		n++
	}
	return n
}

// allowed exercises trailing-comment suppression.
func allowed() time.Time {
	return time.Now() //schedlint:allow determinism fixture exercising trailing suppression
}

// allowedAbove exercises standalone-comment suppression of the next
// line.
func allowedAbove() time.Time {
	//schedlint:allow determinism fixture exercising standalone suppression
	return time.Now()
}
