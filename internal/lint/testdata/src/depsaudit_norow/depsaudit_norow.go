// Package fixture covers the table/dispatch mismatches: an obligation
// dispatched with no obligationDeps row (the issue's deleted-row
// acceptance case) and a row whose obligation no dispatch case names.
package fixture

type Core struct{ ID int }

type Policy interface {
	Load(c *Core) int64
	CanSteal(self, stealee *Core) bool
	Choose(self *Core, cands []*Core) *Core
	StealCount(self, stealee *Core) int
}

type ObligationID string

const (
	ObDeleted ObligationID = "deleted-row"
	ObStale   ObligationID = "stale-row"
)

const (
	CompFilter = "filter"
)

var obligationDeps = map[ObligationID][]string{
	ObStale: {CompFilter}, // want "obligationDeps row .stale-row. matches no checker dispatch case"
}

func dispatch(id ObligationID, p Policy) {
	switch id {
	case ObDeleted: // want "obligation .deleted-row. is dispatched to a checker but has no obligationDeps row"
		checkDeleted(p)
	}
}

func checkDeleted(p Policy) {
	var a, b Core
	_ = p.CanSteal(&a, &b)
}
