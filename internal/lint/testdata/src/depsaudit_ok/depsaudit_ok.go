// Package fixture is a self-contained miniature of internal/verify's
// obligation machinery on which depsaudit must stay silent: rows that
// match their checkers' reach exactly, a load-closure case (Load
// reached, CompLoad undeclared, another component declared), and an
// allow-annotated discarded-Choose row.
package fixture

type Core struct{ ID int }
type Machine struct{ Cores []Core }

// Policy mirrors sched.Policy's shape; depsaudit keys on the interface
// and method names, not the defining package.
type Policy interface {
	Load(c *Core) int64
	CanSteal(self, stealee *Core) bool
	Choose(self *Core, cands []*Core) *Core
	StealCount(self, stealee *Core) int
}

type Rescuer interface {
	RescueTarget(m *Machine, failed int) int
}

type ObligationID string

const (
	ObExact    ObligationID = "exact"
	ObDirect   ObligationID = "direct-load"
	ObClosure  ObligationID = "load-closure"
	ObDiscard  ObligationID = "discarded-choose"
	ObIndirect ObligationID = "indirect"
	ObRescue   ObligationID = "rescue"
)

const (
	CompLoad   = "load"
	CompFilter = "filter"
	CompChoose = "choose"
	CompSteal  = "steal"
	CompRescue = "rescue"
)

var obligationDeps = map[ObligationID][]string{
	ObExact:    {CompFilter, CompSteal},
	ObDirect:   {CompLoad, CompChoose},
	ObClosure:  {CompFilter},
	ObDiscard:  {CompFilter}, //schedlint:allow depsaudit fixture: Choose is called and discarded on purpose
	ObIndirect: {CompFilter, CompChoose},
	ObRescue:   {CompRescue},
}

func dispatch(id ObligationID, p Policy, r Rescuer) {
	switch id {
	case ObExact:
		checkExact(p)
	case ObDirect:
		checkDirect(p)
	case ObClosure:
		checkClosure(p)
	case ObDiscard:
		checkDiscard(p)
	case ObIndirect:
		checkIndirect(p)
	case ObRescue:
		checkRescue(r)
	}
}

func checkExact(p Policy) {
	var a, b Core
	if p.CanSteal(&a, &b) {
		_ = p.StealCount(&a, &b)
	}
}

func checkDirect(p Policy) {
	var c Core
	_ = p.Load(&c)
	_ = p.Choose(&c, nil)
}

// checkClosure observes load only alongside a declared component: the
// row omits CompLoad because DSL component hashing closes filter forms
// over the load clause.
func checkClosure(p Policy) {
	var a, b Core
	if p.CanSteal(&a, &b) {
		_ = p.Load(&a)
	}
}

// checkDiscard calls Choose and throws the result away — the verdict
// quantifies over every choice, so the row intentionally omits
// CompChoose and carries an allow directive.
func checkDiscard(p Policy) {
	var a, b Core
	if p.CanSteal(&a, &b) {
		_ = p.Choose(&a, []*Core{&b})
	}
}

// checkIndirect reaches the policy only through helpers, one of them
// passed as a function value.
func checkIndirect(p Policy) {
	var a Core
	walk(p, &a, successors)
}

func walk(p Policy, c *Core, next func(Policy, *Core) []*Core) {
	for _, s := range next(p, c) {
		_ = p.Choose(c, []*Core{s})
	}
}

func successors(p Policy, c *Core) []*Core {
	var other Core
	if p.CanSteal(c, &other) {
		return []*Core{&other}
	}
	return nil
}

func checkRescue(r Rescuer) {
	var m Machine
	_ = r.RescueTarget(&m, 0)
}
