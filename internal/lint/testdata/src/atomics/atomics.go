// Package fixture exercises the atomicsdiscipline analyzer: plain
// accesses of address-taken atomics, by-value copies of typed atomics,
// and the accesses that must stay silent (atomic calls, method calls,
// address-of).
package fixture

import "sync/atomic"

var counter int64
var plain int64
var flag atomic.Bool

type state struct {
	n      int32
	b      atomic.Int32
	normal int32
}

func inc() { atomic.AddInt64(&counter, 1) }

func load() int64 { return atomic.LoadInt64(&counter) }

func bad() int64 { return counter } // want "plain access of counter"

func badWrite() { counter = 0 } // want "plain access of counter"

// plain is never touched by sync/atomic, so ordinary use is fine.
func plainUse() int64 { plain++; return plain }

func (s *state) inc() { atomic.AddInt32(&s.n, 1) }

func (s *state) bad() int32 { return s.n } // want "plain access of n"

func (s *state) normalUse() int32 { return s.normal }

func methodOK() bool { return flag.Load() }

func addrOK() *atomic.Bool { return &flag }

func copyBad() atomic.Bool { return flag } // want "flag has a sync/atomic type and is used by value"

func (s *state) typedMethodOK() int32 { return s.b.Load() }

func (s *state) typedCopyBad() atomic.Int32 { return s.b } // want "b has a sync/atomic type and is used by value"

func allowed() int64 {
	return counter //schedlint:allow atomicsdiscipline fixture exercising suppression
}
