// Package fixture holds deliberately broken //schedlint:allow
// directives for the hygiene test: no want comments here because the
// hygiene diagnostics land on the directive lines themselves, so the
// test asserts on the diagnostic list directly.
package fixture

//schedlint:allow determinism
func missingReason() {}

//schedlint:allow nosuchpass because reasons
func unknownPass() {}

// A hygiene finding is itself suppressible under the schedlint
// pseudo-pass: the malformed directive below draws no diagnostic.

//schedlint:allow schedlint the malformed directive below is fixture material
//schedlint:allow determinism
func suppressedHygiene() {}
