package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// The depsaudit analyzer machine-checks the obligationDeps table in
// internal/verify — the row set that tells schedverifyd which policy
// components each obligation's cache key must cover. The table used to
// be "audited against the checker implementations, not guessed" by
// hand; this pass re-derives it from the code on every run:
//
//  1. find the package-level `var obligationDeps map[K][]C` literal and
//     read its rows (obligation -> declared component values);
//  2. find the dispatch switches on K (verify.rawShardCheck) and map
//     each obligation constant to the checker functions its case body
//     references — including successor functions passed as values;
//  3. walk the call graph from those entries, across packages (the
//     sched helpers), down to references of the policy interface
//     methods: Load→load, CanSteal→filter, Choose→choose,
//     StealCount→steal, PickTasks→steal on Policy/TaskPicker, and
//     RescueTarget→rescue on Rescuer — method calls and method values
//     alike;
//  4. fail on any disagreement between the reached set and the row.
//
// An undeclared-but-reached component means cache keys miss edits that
// can change the verdict (stale memoized results — unsound); a
// declared-but-unreached component means spurious invalidation (sound
// but wasteful). Both directions break, in both directions the fix is
// a reviewed edit: either the row or the checker, or a
// //schedlint:allow depsaudit directive on the row when the reach is
// intentional (choice-independence calls Choose and discards it).
//
// One reach is legal without a row entry: Load. DSL component hashing
// is closed over load references (dsl.ComponentForm embeds the load
// clause into every component form that mentions `x.load`), so a
// checker that observes load only through another declared component
// is already covered — the row needs CompLoad only when the checker
// calls p.Load directly (potential-decrease). Concretely: reaching
// Load is accepted iff the row declares at least one closure component
// (filter/choose/steal/rescue), and declaring CompLoad requires Load
// to actually be reached.

// DepsAudit is the obligation-dependency analyzer. It no-ops on
// packages without an obligationDeps table.
var DepsAudit = &Analyzer{
	Name: "depsaudit",
	Doc:  "check the obligationDeps rows against the checker call graphs' actually-reached policy components",
	Run:  runDepsAudit,
}

// policyMethodComponents maps policy interface methods to the
// component their canonical form is hashed under (see
// verify.PolicyComponent and dsl.ComponentForm).
var policyMethodComponents = map[string]string{
	"Load":         "load",
	"CanSteal":     "filter",
	"Choose":       "choose",
	"StealCount":   "steal",
	"PickTasks":    "steal",
	"RescueTarget": "rescue",
}

// policyInterfaces names the interfaces whose methods count:
// sched.Policy and its extension interfaces.
var policyInterfaces = map[string]bool{
	"Policy": true, "Rescuer": true, "TaskPicker": true,
}

// knownComponents is the component vocabulary, in the canonical
// verify.AllComponents order.
var knownComponents = []string{"load", "filter", "choose", "steal", "rescue"}

func runDepsAudit(pass *Pass) error {
	table := findDepsTable(pass)
	if table == nil {
		return nil
	}
	dispatch := findDispatch(pass, table.keyType)

	ids := make([]string, 0, len(table.rows)+len(dispatch))
	seen := map[string]bool{}
	for id := range table.rows {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range dispatch {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	for _, id := range ids {
		row, hasRow := table.rows[id]
		entry, hasDispatch := dispatch[id]
		switch {
		case !hasRow:
			pass.Reportf(entry.pos,
				"obligation %q is dispatched to a checker but has no obligationDeps row: the memoizer cannot key its results", id)
			continue
		case !hasDispatch:
			pass.Reportf(row.pos,
				"obligationDeps row %q matches no checker dispatch case: stale row?", id)
			continue
		}
		declared := map[string]bool{}
		for _, c := range row.components {
			declared[c] = true
		}
		reached := reachComponents(pass, entry.funcs)
		closure := declared["filter"] || declared["choose"] || declared["steal"] || declared["rescue"]
		for _, c := range knownComponents {
			path, isReached := reached[c]
			switch {
			case isReached && !declared[c]:
				if c == "load" && closure {
					continue // load closure: a declared component's form embeds the load clause
				}
				pass.Reportf(row.pos,
					"checker for %q reaches policy component %q (via %s) but its obligationDeps row does not declare it: memoized results would survive edits that can change the verdict", id, c, path)
			case !isReached && declared[c]:
				pass.Reportf(row.pos,
					"obligationDeps row for %q declares component %q but the checker never reaches it: edits there would invalidate cached results for nothing", id, c)
			}
		}
	}
	return nil
}

// depsTable is the parsed obligationDeps literal.
type depsTable struct {
	keyType types.Type
	rows    map[string]depsRow
}

type depsRow struct {
	components []string
	pos        token.Pos
}

// findDepsTable locates a package-level `var obligationDeps = map…{…}`
// and parses its rows. Non-constant keys or components are reported and
// skipped.
func findDepsTable(pass *Pass) *depsTable {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "obligationDeps" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					mt, ok := info.TypeOf(lit).Underlying().(*types.Map)
					if !ok {
						continue
					}
					table := &depsTable{keyType: mt.Key(), rows: map[string]depsRow{}}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := constString(info, kv.Key)
						if !ok {
							pass.Reportf(kv.Key.Pos(), "obligationDeps key is not a constant; the audit cannot read this row")
							continue
						}
						row := depsRow{pos: kv.Key.Pos()}
						val, ok := kv.Value.(*ast.CompositeLit)
						if !ok {
							pass.Reportf(kv.Value.Pos(), "obligationDeps row %q is not a component list literal; the audit cannot read it", key)
							continue
						}
						bad := false
						for _, ce := range val.Elts {
							comp, ok := constString(info, ce)
							if !ok {
								pass.Reportf(ce.Pos(), "obligationDeps row %q holds a non-constant component; the audit cannot read it", key)
								bad = true
								break
							}
							if !isKnownComponent(comp) {
								pass.Reportf(ce.Pos(), "obligationDeps row %q names unknown component %q (known: %v)", key, comp, knownComponents)
								bad = true
								break
							}
							row.components = append(row.components, comp)
						}
						if !bad {
							table.rows[key] = row
						}
					}
					return table
				}
			}
		}
	}
	return nil
}

// dispatchEntry is one obligation's checker entry points.
type dispatchEntry struct {
	funcs []*types.Func
	pos   token.Pos
}

// findDispatch scans every switch on the deps-map key type and maps
// each case constant to the functions the case body references — the
// checker plus any successor/helper functions passed as values.
func findDispatch(pass *Pass, keyType types.Type) map[string]*dispatchEntry {
	info := pass.Pkg.Info
	out := map[string]*dispatchEntry{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := info.TypeOf(sw.Tag)
			if tagType == nil || !types.Identical(tagType, keyType) {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok || len(cc.List) == 0 {
					continue // default clause
				}
				funcs := referencedFuncs(info, cc.Body)
				for _, caseExpr := range cc.List {
					id, ok := constString(info, caseExpr)
					if !ok {
						continue
					}
					e := out[id]
					if e == nil {
						e = &dispatchEntry{pos: caseExpr.Pos()}
						out[id] = e
					}
					e.funcs = append(e.funcs, funcs...)
				}
			}
			return true
		})
	}
	return out
}

// reachComponents walks the call graph from the entry functions and
// returns each reached policy component with one witness path.
func reachComponents(pass *Pass, entries []*types.Func) map[string]string {
	reached := map[string]string{}
	visited := map[string]bool{}
	type item struct {
		fn   *types.Func
		path string
	}
	var queue []item
	push := func(f *types.Func, path string) {
		key := f.FullName()
		if visited[key] {
			return
		}
		visited[key] = true
		queue = append(queue, item{f, path})
	}
	for _, f := range entries {
		if comp, iface, ok := policyComponentOf(f); ok {
			if _, dup := reached[comp]; !dup {
				reached[comp] = iface + "." + f.Name()
			}
			continue
		}
		push(f, f.Name())
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		decl, dpkg := pass.Prog.FuncDecl(cur.fn)
		if decl == nil {
			continue // no source: standard library or func-typed value
		}
		for _, ref := range referencedFuncs(dpkg.Info, []ast.Stmt{decl.Body}) {
			if comp, iface, ok := policyComponentOf(ref); ok {
				if _, dup := reached[comp]; !dup {
					reached[comp] = cur.path + " -> " + iface + "." + ref.Name()
				}
				continue
			}
			push(ref, cur.path+" -> "+ref.Name())
		}
	}
	return reached
}

// referencedFuncs collects every function object referenced in the
// statements — calls, method calls, and bare references passed as
// values — in source order, deduplicated.
func referencedFuncs(info *types.Info, stmts []ast.Stmt) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := info.Uses[id].(*types.Func)
			if !ok || seen[f] {
				return true
			}
			seen[f] = true
			out = append(out, f)
			return true
		})
	}
	return out
}

// policyComponentOf maps an interface-method reference to its policy
// component; ok is false for anything that is not a policy interface
// method.
func policyComponentOf(f *types.Func) (comp, iface string, ok bool) {
	recv := sigRecv(f)
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return "", "", false
	}
	name := named.Obj().Name()
	if !policyInterfaces[name] {
		return "", "", false
	}
	comp, ok = policyMethodComponents[f.Name()]
	return comp, name, ok
}

func isKnownComponent(c string) bool {
	for _, k := range knownComponents {
		if k == c {
			return true
		}
	}
	return false
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
