// Package linttest is the expectation harness for the lint suite's
// fixture tests, in the style of x/tools' analysistest: a fixture
// package under testdata/src carries `// want "regexp"` comments on the
// lines where diagnostics are expected, and Run fails the test on any
// unmatched expectation or unexpected diagnostic — so each fixture pins
// the exact diagnostic set, not just "at least one finding".
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantArg extracts the quoted regexps after `// want`; escaped quotes
// are allowed inside.
var wantArg = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	pos     string
	matched bool
}

// Run loads the single fixture package named by pattern (a package
// pattern relative to the test's working directory, e.g.
// "./testdata/src/determinism"), runs the analyzers through
// lint.RunPackage — directives and all — and checks the resulting
// diagnostics against the fixture's `// want` comments. It returns the
// diagnostics for any extra assertions the caller wants to make.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	prog, targets, err := lint.Load(".", pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(targets) != 1 {
		t.Fatalf("fixture %s: want exactly one package, got %d", pattern, len(targets))
	}
	pkg := targets[0]
	diags, err := lint.RunPackage(prog, pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pattern, err)
	}

	wants := map[string][]*expectation{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				args := wantArg.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment (no quoted regexp): %s", key, c.Text)
					continue
				}
				for _, m := range args {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, m[1], err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, pos: key})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Pass, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
			}
		}
	}
	return diags
}
