package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		{"repro/internal/verify", []string{"depsaudit", "determinism"}},
		{"repro/internal/service/store", []string{"depsaudit", "determinism"}},
		{"repro/internal/engine", []string{"depsaudit", "atomicsdiscipline"}},
		{"repro/internal/sched", []string{"depsaudit"}},
		{"repro/internal/simx", []string{"depsaudit"}}, // segment-aware: not internal/sim
		{"repro/cmd/schedverify", []string{"depsaudit"}},
	}
	for _, c := range cases {
		got := lint.AnalyzersFor(c.path)
		var names []string
		for _, a := range got {
			names = append(names, a.Name)
		}
		if strings.Join(names, ",") != strings.Join(c.want, ",") {
			t.Errorf("AnalyzersFor(%q) = %v, want %v", c.path, names, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.Analyzers() {
		got, ok := lint.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := lint.ByName("nosuchpass"); ok {
		t.Error("ByName accepted an unknown pass")
	}
}

// TestLoadRepo loads the real module and sanity-checks the program
// index: target packages resolve, and a cross-package function
// declaration is reachable by its types.Func — the property depsaudit's
// call-graph walk rests on.
func TestLoadRepo(t *testing.T) {
	prog, targets, err := lint.Load("../..", "./internal/verify", "./internal/sched")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(targets) != 2 {
		t.Fatalf("got %d targets, want 2", len(targets))
	}
	for _, want := range []string{"repro/internal/verify", "repro/internal/sched"} {
		if _, ok := prog.Package(want); !ok {
			t.Errorf("package %s not loaded", want)
		}
	}
	verifyPkg, _ := prog.Package("repro/internal/verify")
	if verifyPkg.Info == nil || verifyPkg.Types == nil || len(verifyPkg.Files) == 0 {
		t.Fatal("verify package loaded without syntax or type info")
	}
}

// TestDirectiveHygiene checks that malformed and unknown-pass
// directives are themselves diagnostics, and that the schedlint
// pseudo-pass can suppress them.
func TestDirectiveHygiene(t *testing.T) {
	prog, targets, err := lint.Load(".", "./testdata/src/directives")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := lint.RunPackage(prog, targets[0], nil)
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed directive") {
		t.Errorf("first diagnostic = %v, want malformed-directive", diags[0])
	}
	if !strings.Contains(diags[1].Message, `unknown pass "nosuchpass"`) {
		t.Errorf("second diagnostic = %v, want unknown-pass", diags[1])
	}
	for _, d := range diags {
		if d.Pass != "schedlint" {
			t.Errorf("hygiene diagnostic carries pass %q, want schedlint", d.Pass)
		}
	}
}

// TestRepoClean is the acceptance gate in test form: the suite runs
// clean over the whole module, with every remaining wall-clock or
// map-order use annotated.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	prog, targets, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range targets {
		diags, err := lint.RunPackage(prog, pkg, lint.AnalyzersFor(pkg.Path))
		if err != nil {
			t.Fatalf("RunPackage(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
