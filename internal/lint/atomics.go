package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The atomicsdiscipline analyzer guards the lock-free executor
// (internal/engine). Motivated by Alistarh et al. (PAPERS.md): the
// executor's progress argument depends on every cross-thread field
// access being atomic, and the classic way that rots is one forgotten
// plain read. Two checks:
//
//   - address-based discipline: a field (or package-level variable)
//     whose address is ever passed to a sync/atomic function must be
//     accessed through sync/atomic everywhere — a plain read can tear
//     or miss a published write, a plain write races;
//   - typed-atomic discipline: a sync/atomic.{Bool,Int32,…,Value} field
//     may only be used as a method-call receiver or through its
//     address; copying one by value forks the atomic state.

// AtomicsDiscipline is the atomics analyzer.
var AtomicsDiscipline = &Analyzer{
	Name: "atomicsdiscipline",
	Doc:  "flag plain accesses to fields accessed via sync/atomic elsewhere, and by-value copies of sync/atomic values",
	Run:  runAtomics,
}

var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomics(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: collect every variable whose address flows into a
	// sync/atomic call, and remember those exact &x expressions so pass
	// 2 can exempt them.
	atomicVars := map[*types.Var]bool{}
	atomicUses := map[ast.Expr]bool{} // the x in atomic.Op(&x, …)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := calleeFunc(info, call)
			if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" || sigRecv(callee) != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				target := ast.Unparen(un.X)
				if v := varOf(info, target); v != nil {
					atomicVars[v] = true
					atomicUses[target] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses of those variables, plus by-value
	// copies of typed sync/atomic values. parent tracking tells a
	// method-call receiver (fine) from a copy (flagged).
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				checkAtomicAccess(pass, e, stack, atomicVars, atomicUses)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

func checkAtomicAccess(pass *Pass, e ast.Expr, stack []ast.Node, atomicVars map[*types.Var]bool, atomicUses map[ast.Expr]bool) {
	info := pass.Pkg.Info
	v := useOf(info, e)
	if v == nil {
		return
	}
	parent := parentNode(stack)

	// Skip the inner X of a.b when the whole selector is the variable
	// access being considered separately, and skip selector Sel idents
	// (the enclosing SelectorExpr is the access).
	if sel, ok := parent.(*ast.SelectorExpr); ok {
		if sel.Sel == e || useOf(info, sel) == v {
			return
		}
	}

	if atomicVars[v] {
		if atomicUses[e] || addressedBy(parent, e) {
			return
		}
		// Receiver position of a method call (e.g. a future typed-atomic
		// migration) is fine; everything else is a plain access.
		pass.Reportf(e.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere: a plain read can tear and a plain write races", v.Name())
		return
	}

	// Typed atomics: the access itself is fine, but using the value
	// outside a method call or address-of copies the atomic.
	if !isAtomicValueType(v.Type()) {
		return
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.field.Load() — the method selector; the grandparent call uses
		// it as a receiver. Field accesses deeper in are caught on their
		// own selector.
		return
	case *ast.UnaryExpr:
		if addressedBy(p, e) {
			return
		}
	case *ast.KeyValueExpr:
		if p.Key == e {
			return // field name in a composite literal, not a value use
		}
	case nil:
	}
	pass.Reportf(e.Pos(), "%s has a sync/atomic type and is used by value here: copying an atomic forks its state; call its methods or take its address", v.Name())
}

// varOf resolves an expression to the field or variable it denotes,
// declarations included.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	if v := useOf(info, e); v != nil {
		return v
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		v, _ := info.Defs[id].(*types.Var)
		return v
	}
	return nil
}

// useOf resolves an expression to the field or variable it *uses* —
// declaration sites (struct fields, var specs) resolve to nil.
func useOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

func parentNode(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func addressedBy(parent ast.Node, e ast.Expr) bool {
	un, ok := parent.(*ast.UnaryExpr)
	return ok && un.Op == token.AND && ast.Unparen(un.X) == e
}

func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}
