// Package lint is the repository's static-analysis suite: machine
// checks for the meta-level invariants the verifier's soundness rests
// on. The paper replaces "we believe the scheduler is work-conserving"
// with a checked proof; this package applies the same move to the
// verifier itself — the hand-audited obligationDeps table (what makes
// schedverifyd memoization sound), the byte-identical-report
// determinism discipline, and the atomics discipline of the lock-free
// executor are enforced by analyzers instead of comments.
//
// The design mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is self-contained: the repository builds with the
// standard library only, so the loader (load.go) drives `go list
// -export` and go/types directly instead of importing x/tools.
//
// Three analyzers ship:
//
//   - depsaudit: walks the call graph from every obligation checker in
//     internal/verify down to the sched.Policy interface methods and
//     fails when the reached component set disagrees with the
//     obligationDeps row the memoizer trusts.
//   - determinism: forbids wall-clock reads, global math/rand, map
//     iteration feeding order-sensitive code, and map-typed fields in
//     JSON structs inside the deterministic packages.
//   - atomicsdiscipline: flags plain reads/writes of fields that are
//     elsewhere accessed through sync/atomic, and by-value copies of
//     sync/atomic values.
//
// Findings are suppressed one line at a time with
//
//	//schedlint:allow <pass> <reason>
//
// where the reason is mandatory — an annotation is a reviewed
// decision, not a blanket ignore (directives.go).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //schedlint:allow directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run analyzes one package, reporting findings via pass.Report.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole loaded program: depsaudit follows calls across
	// package boundaries through it.
	Prog *Program
	// Pkg is the package under analysis.
	Pkg *Package

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pass:    p.Analyzer.Name,
		Pos:     p.Prog.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Pass, d.Message)
}

// Analyzers returns every analyzer in the suite, in fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DepsAudit, Determinism, AtomicsDiscipline}
}

// ByName resolves an analyzer by its directive/flag name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// DeterministicPackages lists the import paths (as path prefixes: a
// listed path covers its subpackages) the determinism analyzer guards.
// These are the packages whose outputs must be byte-identical run to
// run — reports, canonical forms, histograms, simulation traces — plus
// internal/service, whose legitimate wall-clock uses carry reviewed
// //schedlint:allow annotations instead of being exempted wholesale.
var DeterministicPackages = []string{
	"repro/internal/verify",
	"repro/internal/statespace",
	"repro/internal/dsl",
	"repro/internal/loadgen",
	"repro/internal/metrics",
	"repro/internal/sim",
	"repro/internal/service",
}

// AtomicsPackages lists the import-path prefixes the atomicsdiscipline
// analyzer guards: the lock-free executor.
var AtomicsPackages = []string{
	"repro/internal/engine",
}

// pathIn reports whether importPath equals one of the prefixes or is a
// subpackage of one (segment-aware, so "…/sim" does not match
// "…/simx").
func pathIn(importPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if importPath == p || (len(importPath) > len(p) && importPath[:len(p)] == p && importPath[len(p)] == '/') {
			return true
		}
	}
	return false
}

// AnalyzersFor selects the suite's analyzers that apply to a package:
// depsaudit everywhere (it no-ops without an obligationDeps table), the
// guarded analyzers only inside their package sets.
func AnalyzersFor(importPath string) []*Analyzer {
	out := []*Analyzer{DepsAudit}
	if pathIn(importPath, DeterministicPackages) {
		out = append(out, Determinism)
	}
	if pathIn(importPath, AtomicsPackages) {
		out = append(out, AtomicsDiscipline)
	}
	return out
}

// RunPackage runs the given analyzers over one package, applies
// //schedlint:allow suppression, appends directive-hygiene findings
// (malformed or unknown-pass directives), and returns the surviving
// diagnostics sorted by position.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Prog:     prog,
			Pkg:      pkg,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, hygiene := directives(prog, pkg)
	var kept []Diagnostic
	for _, d := range append(hygiene, raw...) {
		if allows.covers(d.Pass, d.Pos.Filename, d.Pos.Line) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}
