package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism analyzer enforces the byte-identical-output
// discipline of the deterministic packages (DeterministicPackages):
// verification reports, canonical component forms, histograms and
// simulation traces must not depend on the wall clock, on the global
// math/rand source, on map iteration order, or on encoding/json's
// key-sorted map rendering. Four checks, all per-file and skipping
// _test.go files (tests may time things):
//
//   - calls to (or references of) time.Now, time.Since, time.Until;
//   - references to math/rand (and math/rand/v2) package-level
//     functions other than the constructors — the global source is
//     process-shared and unseedable per component;
//   - `range` over a map whose body is order-sensitive: it returns or
//     breaks (first-match selection), appends, formats/writes output,
//     or plainly assigns a non-constant to a variable declared outside
//     the loop (argmax/argmin over map order);
//   - map-typed fields carrying a json tag: report structs marshal in
//     declaration order, maps in sorted-key order — a map field hands
//     part of the document's shape to the encoder.

// Determinism is the determinism analyzer.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, order-sensitive map iteration and map JSON fields in deterministic packages",
	Run:  runDeterminism,
}

var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand identifiers that do NOT touch the
// global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for i, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.GoFiles[i], "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := info.Uses[n.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if bannedTimeFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; deterministic packages must not", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if sigRecv(obj) == nil && !randConstructors[obj.Name()] {
						pass.Reportf(n.Pos(), "rand.%s draws from the process-global source; use a seeded rand.New(rand.NewSource(…)) or a local generator", obj.Name())
					}
				}
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if why := orderSensitive(pass, n); why != "" {
					pass.Reportf(n.Pos(), "map iteration order flows into output (%s); sort the keys or iterate a deterministic index", why)
				}
			case *ast.StructType:
				checkJSONFields(pass, n)
			}
			return true
		})
	}
	return nil
}

func sigRecv(f *types.Func) *types.Var {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// orderSensitive reports why a map-range body is order-sensitive, or ""
// when every statement in it is order-insensitive (counting, summing,
// keyed writes into other maps, deletes). Returns and breaks are
// order-sensitive because they select "the first entry map order
// happens to produce"; appends, prints and buffer writes lay values
// down in iteration order; a plain assignment to an outer variable is
// an argmax/argmin whose tie-breaking follows map order.
func orderSensitive(pass *Pass, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	var why string
	note := func(s string) {
		if why == "" {
			why = s
		}
	}
	// stack tracks the enclosing nodes inside the body, so a plain
	// `break` can be attributed: with a nested breakable construct on
	// the stack it exits that construct, otherwise it exits our loop.
	var stack []ast.Node
	breakableOnStack := func() bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				return true
			}
		}
		return false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a stored/deferred closure runs outside this iteration
		case *ast.ReturnStmt:
			note("returns from inside the loop")
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (n.Label != nil || !breakableOnStack()) {
				note("breaks out of the loop")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin && id.Name == "append" {
					note("appends to a slice")
				}
			}
			if obj, ok := calleeFunc(info, n); ok {
				if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && strings.Contains(obj.Name(), "rint") {
					note("formats output")
				}
				if recv := sigRecv(obj); recv != nil && writerReceiver(recv.Type()) && strings.HasPrefix(obj.Name(), "Write") {
					note("writes to a buffer/writer")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if !outerPlainTarget(info, lhs, rng) {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if rhs == nil || !isConstExpr(info, rhs) {
						note("assigns " + exprString(lhs) + " declared outside the loop")
						break
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return why
}

// outerPlainTarget reports whether an assignment target is (or roots
// at) a variable declared outside the range statement. Writes through
// index expressions (m[k] = v) are keyed, hence order-insensitive.
func outerPlainTarget(info *types.Info, lhs ast.Expr, rng *ast.RangeStmt) bool {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return false
		}
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	case *ast.SelectorExpr:
		return outerPlainTarget(info, rootExpr(e), rng)
	case *ast.StarExpr:
		return outerPlainTarget(info, rootExpr(e.X), rng)
	}
	return false
}

func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// calleeFunc resolves a call's static callee.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, ok := info.Uses[fun].(*types.Func)
		return f, ok
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			return f, ok
		}
		f, ok := info.Uses[fun.Sel].(*types.Func)
		return f, ok
	}
	return nil, false
}

// writerReceiver recognizes buffer-like receivers whose Write* methods
// lay bytes down in call order.
func writerReceiver(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// checkJSONFields flags map-typed fields that carry a json tag.
func checkJSONFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		tag := field.Tag.Value
		if !strings.Contains(tag, `json:"`) || strings.Contains(tag, `json:"-"`) {
			continue
		}
		t := pass.Pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		name := "(embedded)"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "map-typed JSON field %s: encoding/json renders maps in sorted-key order, outside the declaration-order report discipline; prefer a slice of structs", name)
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
