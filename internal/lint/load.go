package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader. golang.org/x/tools is not a dependency of this module, so
// there is no go/packages to lean on; instead `go list -deps -export
// -json` supplies, for every package in the dependency closure, both
// the file lists and a compiled export-data file. Packages under
// analysis are parsed and type-checked from source; every import —
// standard library or module-local — resolves through the gc importer
// over that export data. Cross-package references (depsaudit follows
// checker calls from internal/verify into internal/sched) are linked by
// types.Func.FullName rather than object identity, which makes the
// export-data objects in one package's types.Info and the
// source-checked declarations of another package agree.

// Package is one source-loaded, type-checked package.
type Package struct {
	Path    string
	Name    string
	GoFiles []string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is a loaded program: the type-checked source packages plus
// the machinery to resolve more of them on demand.
type Program struct {
	Fset *token.FileSet

	pkgs map[string]*Package
	// goFiles maps import path -> source files, for packages known but
	// not yet type-checked (lazy loading in vettool mode).
	goFiles map[string][]string
	imp     types.Importer
	// decls indexes every loaded function/method declaration by its
	// types.Func FullName.
	decls map[string]declSite
}

type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load runs `go list -deps -export -json` from dir over the patterns,
// type-checks every module-local package in the closure from source,
// and returns the program plus the pattern-matched target packages in
// command-line order.
func Load(dir string, patterns ...string) (*Program, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var metas []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		metas = append(metas, &m)
	}

	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	prog := newProgram(func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var targets []*Package
	for _, m := range metas {
		if m.Standard {
			continue
		}
		if len(m.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("lint: package %s uses cgo, which the loader does not support", m.ImportPath)
		}
		files := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, f)
		}
		prog.goFiles[m.ImportPath] = files
		pkg, err := prog.ensure(m.ImportPath)
		if err != nil {
			return nil, nil, err
		}
		if !m.DepOnly {
			targets = append(targets, pkg)
		}
	}
	return prog, targets, nil
}

func newProgram(lookup func(path string) (io.ReadCloser, error)) *Program {
	fset := token.NewFileSet()
	return &Program{
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		goFiles: make(map[string][]string),
		imp:     importer.ForCompiler(fset, "gc", lookup),
		decls:   make(map[string]declSite),
	}
}

// AddSourceDir registers a directory's build-selected Go files under an
// import path without type-checking it yet — the vettool unit mode uses
// this to let depsaudit descend into module-local dependencies it only
// has export data for.
func (prog *Program) AddSourceDir(importPath, dir string) error {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return fmt.Errorf("lint: listing %s: %v", dir, err)
	}
	files := make([]string, len(bp.GoFiles))
	for i, f := range bp.GoFiles {
		files[i] = filepath.Join(dir, f)
	}
	prog.goFiles[importPath] = files
	return nil
}

// AddFiles registers explicit source files under an import path.
func (prog *Program) AddFiles(importPath string, files []string) {
	prog.goFiles[importPath] = files
}

// Package returns the already-loaded package for an import path.
func (prog *Program) Package(path string) (*Package, bool) {
	p, ok := prog.pkgs[path]
	return p, ok
}

// ensure parses and type-checks the package registered for path,
// memoized.
func (prog *Program) ensure(path string) (*Package, error) {
	if p, ok := prog.pkgs[path]; ok {
		return p, nil
	}
	files, ok := prog.goFiles[path]
	if !ok {
		return nil, fmt.Errorf("lint: no source registered for package %q", path)
	}
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(prog.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: prog.imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	name := "unknown"
	if len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	tpkg, _ := conf.Check(path, prog.Fset, syntax, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for _, e := range terrs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 3 {
			msgs = append(msgs[:3], fmt.Sprintf("… and %d more", len(terrs)-3))
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	pkg := &Package{
		Path:    path,
		Name:    name,
		GoFiles: files,
		Files:   syntax,
		Types:   tpkg,
		Info:    info,
	}
	prog.pkgs[path] = pkg
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				prog.decls[obj.FullName()] = declSite{decl: fd, pkg: pkg}
			}
		}
	}
	return pkg, nil
}

// FuncDecl resolves a function object — possibly one materialized from
// export data — to its source declaration, lazily loading the package
// that declares it when its sources are registered. Returns nil when no
// source is available (standard library, interface methods, func-typed
// variables).
func (prog *Program) FuncDecl(obj *types.Func) (*ast.FuncDecl, *Package) {
	if obj == nil || obj.Pkg() == nil {
		return nil, nil
	}
	key := obj.FullName()
	if site, ok := prog.decls[key]; ok {
		return site.decl, site.pkg
	}
	path := obj.Pkg().Path()
	if _, loaded := prog.pkgs[path]; !loaded {
		if _, ok := prog.goFiles[path]; ok {
			if _, err := prog.ensure(path); err == nil {
				if site, ok := prog.decls[key]; ok {
					return site.decl, site.pkg
				}
			}
		}
	}
	return nil, nil
}

// Packages returns every loaded package, sorted by import path.
func (prog *Program) Packages() []*Package {
	paths := make([]string, 0, len(prog.pkgs))
	for p := range prog.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = prog.pkgs[p]
	}
	return out
}

// LoadFiles type-checks one package given explicit file names and an
// export-data lookup — the vettool unit-checker entry: cmd/go hands the
// tool a config naming the package's files and an export file for each
// import.
func LoadFiles(importPath string, files []string, lookup func(path string) (io.ReadCloser, error)) (*Program, *Package, error) {
	prog := newProgram(lookup)
	prog.AddFiles(importPath, files)
	pkg, err := prog.ensure(importPath)
	if err != nil {
		return nil, nil, err
	}
	return prog, pkg, nil
}
