package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/determinism", lint.Determinism)
}

func TestAtomicsFixture(t *testing.T) {
	linttest.Run(t, "./testdata/src/atomics", lint.AtomicsDiscipline)
}

func TestDepsAuditOK(t *testing.T) {
	diags := linttest.Run(t, "./testdata/src/depsaudit_ok", lint.DepsAudit)
	if len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics", len(diags))
	}
}

// TestDepsAuditBad pins the issue's negative case: a checker calling
// Choose without CompChoose in its row draws exactly one diagnostic on
// that row (plus the one unreached-steal diagnostic the fixture also
// carries).
func TestDepsAuditBad(t *testing.T) {
	diags := linttest.Run(t, "./testdata/src/depsaudit_bad", lint.DepsAudit)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	undeclared := 0
	for _, d := range diags {
		if strings.Contains(d.Message, `reaches policy component "choose"`) {
			undeclared++
		}
	}
	if undeclared != 1 {
		t.Errorf("undeclared-Choose drew %d diagnostics, want exactly 1", undeclared)
	}
}

func TestDepsAuditNoRow(t *testing.T) {
	linttest.Run(t, "./testdata/src/depsaudit_norow", lint.DepsAudit)
}

// TestDepsAuditRealTable runs the audit over the real internal/verify
// package: the shipped table must agree with the shipped checkers, with
// the one reviewed exception (choice-independence's discarded Choose)
// suppressed by its row annotation.
func TestDepsAuditRealTable(t *testing.T) {
	prog, targets, err := lint.Load("../..", "./internal/verify")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := lint.RunPackage(prog, targets[0], []*lint.Analyzer{lint.DepsAudit})
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
