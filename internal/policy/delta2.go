// Package policy provides the scheduling policies studied in the paper:
// the provably work-conserving balancers (Delta2 from Listing 1, its
// weighted variant, the hierarchical §5 extension and NUMA-aware step-2
// variants), the §4.3 GreedyBuggy counterexample, a model of the CFS
// "group imbalance" bug that motivates the work, and baselines.
//
// Every policy implements sched.Policy; some additionally implement
// sched.RoundObserver (group-statistics policies) or sched.TaskPicker
// (weighted stealing). internal/verify checks each against the paper's
// proof obligations — see EXPERIMENTS.md for which pass and which fail,
// and with what witnesses.
package policy

import (
	"repro/internal/sched"
)

// Delta2 is the simple load balancer of Listing 1: core A steals one task
// from core B iff B has at least two more threads than A. It is the
// paper's running example of a provably work-conserving policy:
//
//   - Lemma 1: an idle core (load 0) can steal from any overloaded core
//     (load ≥ 2) since 2 − 0 ≥ 2, and the filter passes only cores with
//     load ≥ 2, which are overloaded.
//   - Soundness: one task moves, so the stealee keeps ≥ 1 thread.
//   - Potential: a single-task steal across a gap ≥ 2 strictly decreases
//     the pairwise imbalance.
type Delta2 struct {
	// Chooser is the step-2 heuristic; nil means lowest-ID candidate.
	// Swapping it never affects the proofs — the paper's core claim.
	Chooser sched.ChooseFunc
}

// NewDelta2 returns the Listing 1 balancer with the deterministic
// lowest-ID choice.
func NewDelta2() *Delta2 { return &Delta2{} }

// Name implements sched.Policy.
func (p *Delta2) Name() string { return "delta2" }

// Load implements sched.Policy: the thread count, as in Listing 1.
func (p *Delta2) Load(c *sched.Core) int64 { return int64(c.NThreads()) }

// CanSteal implements sched.Policy: Listing 1 line 6.
func (p *Delta2) CanSteal(thief, stealee *sched.Core) bool {
	return p.Load(stealee)-p.Load(thief) >= 2
}

// Choose implements sched.Policy (step 2).
func (p *Delta2) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	if p.Chooser == nil {
		return sched.ChooseFirst(thief, candidates)
	}
	return p.Chooser(thief, candidates)
}

// StealCount implements sched.Policy: stealOneThread, Listing 1 line 13.
func (p *Delta2) StealCount(_, _ *sched.Core) int { return 1 }

var _ sched.Policy = (*Delta2)(nil)
