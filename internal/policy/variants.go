package policy

import (
	"repro/internal/sched"
	"repro/internal/topology"
)

// NewNUMAAware returns a Delta2 balancer whose step-2 choice prefers the
// topologically nearest candidate (same NUMA node first), falling back to
// the most loaded. It demonstrates the paper's central claim about the
// three-step decomposition: NUMA-aware placement lives entirely in Choose,
// so the policy inherits Delta2's work-conservation proof verbatim —
// internal/verify checks it against the identical obligations.
func NewNUMAAware(top *topology.Topology) *Delta2 {
	load := func(c *sched.Core) int64 { return int64(c.NThreads()) }
	distance := func(a, b *sched.Core) int { return top.Distance(a.ID, b.ID) }
	return &Delta2{Chooser: sched.ChooseNearest(distance, load)}
}

// NewRandomChoice returns a Delta2 balancer whose step-2 choice picks a
// pseudo-random candidate from a deterministic xorshift stream. Its
// existence in the verified set shows choice-independence of the proofs:
// even an arbitrary choice cannot break work conservation as long as the
// filter is sound.
func NewRandomChoice(seed uint64) *Delta2 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	state := seed
	return &Delta2{Chooser: func(_ *sched.Core, candidates []*sched.Core) *sched.Core {
		// xorshift64: deterministic, dependency-free randomness.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return candidates[state%uint64(len(candidates))]
	}}
}

// Null is the no-balancing baseline: its filter rejects every core, so no
// task ever migrates. It is trivially safe and maximally non-work-
// conserving; experiment E6 uses it as the "scheduler with no load
// balancer" lower bound.
type Null struct{}

// NewNull returns the no-op balancer.
func NewNull() *Null { return &Null{} }

// Name implements sched.Policy.
func (*Null) Name() string { return "null" }

// Load implements sched.Policy.
func (*Null) Load(c *sched.Core) int64 { return int64(c.NThreads()) }

// CanSteal implements sched.Policy: never.
func (*Null) CanSteal(_, _ *sched.Core) bool { return false }

// Choose implements sched.Policy. It is unreachable (no candidates ever
// pass the filter) but must still honor the contract.
func (*Null) Choose(_ *sched.Core, candidates []*sched.Core) *sched.Core {
	return candidates[0]
}

// StealCount implements sched.Policy.
func (*Null) StealCount(_, _ *sched.Core) int { return 0 }

var _ sched.Policy = (*Null)(nil)

// Delta1Aggressive steals whenever the gap is at least 1 — an
// over-aggressive filter used by the verifier's negative tests: it can
// swap a task back and forth between a load-0 and load-1 core
// (0/1 → 1/0 → 0/1 ...), so its steals do not decrease the potential and
// it fails the bounded-successes obligation even though it satisfies
// Lemma 1.
type Delta1Aggressive struct{}

// NewDelta1Aggressive returns the over-aggressive balancer.
func NewDelta1Aggressive() *Delta1Aggressive { return &Delta1Aggressive{} }

// Name implements sched.Policy.
func (*Delta1Aggressive) Name() string { return "delta1-aggressive" }

// Load implements sched.Policy.
func (*Delta1Aggressive) Load(c *sched.Core) int64 { return int64(c.NThreads()) }

// CanSteal implements sched.Policy: gap ≥ 1 — too eager.
func (p *Delta1Aggressive) CanSteal(thief, stealee *sched.Core) bool {
	return p.Load(stealee)-p.Load(thief) >= 1 && len(stealee.Ready) > 0
}

// Choose implements sched.Policy.
func (*Delta1Aggressive) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	return sched.ChooseFirst(thief, candidates)
}

// StealCount implements sched.Policy.
func (*Delta1Aggressive) StealCount(_, _ *sched.Core) int { return 1 }

var _ sched.Policy = (*Delta1Aggressive)(nil)
