package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/topology"
)

func TestDelta2Filter(t *testing.T) {
	p := NewDelta2()
	m := sched.MachineFromLoads(0, 1, 2, 3)
	cases := []struct {
		thief, stealee int
		want           bool
	}{
		{0, 2, true},  // 2-0 >= 2
		{0, 3, true},  // 3-0 >= 2
		{0, 1, false}, // 1-0 < 2
		{1, 2, false}, // 2-1 < 2
		{1, 3, true},  // 3-1 >= 2
		{3, 0, false}, // stealing downhill
		{2, 2, false}, // self-gap 0
	}
	for _, tc := range cases {
		got := p.CanSteal(m.Core(tc.thief), m.Core(tc.stealee))
		if got != tc.want {
			t.Errorf("CanSteal(c%d, c%d) = %v, want %v", tc.thief, tc.stealee, got, tc.want)
		}
	}
}

func TestDelta2Lemma1Instances(t *testing.T) {
	// Listing 2's Lemma1 on concrete machines: an idle thief can steal
	// iff some core is overloaded, and only from overloaded cores.
	p := NewDelta2()
	m := sched.MachineFromLoads(0, 1, 2)
	thief := m.Core(0)
	canFromOverloaded := p.CanSteal(thief, m.Core(2))
	if !canFromOverloaded {
		t.Error("idle thief cannot steal from overloaded core")
	}
	if p.CanSteal(thief, m.Core(1)) {
		t.Error("idle thief may steal from a non-overloaded core")
	}
}

func TestDelta2SequentialConvergence(t *testing.T) {
	p := NewDelta2()
	m := sched.MachineFromLoads(0, 8, 0, 4)
	for i := 0; i < 32 && !m.WorkConserved(); i++ {
		sched.SequentialRound(p, m)
	}
	if !m.WorkConserved() {
		t.Fatalf("no convergence: %v", m.Loads())
	}
	if m.TotalThreads() != 12 {
		t.Errorf("threads not conserved: %v", m.Loads())
	}
}

func TestDelta2StealCountIsOne(t *testing.T) {
	p := NewDelta2()
	if p.StealCount(nil, nil) != 1 {
		t.Error("Delta2 must steal exactly one task")
	}
}

func TestWeightedPickTasks(t *testing.T) {
	p := NewWeighted()
	// Thief idle; stealee runs w=4 and queues w=1, w=2, w=8.
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Running: 4, Queued: []int64{1, 2, 8}},
	)
	thief, stealee := m.Core(0), m.Core(1)
	// gap = 15; every queued task is admissible (w < 15). Residuals
	// |15-2w|: w=1 -> 13, w=2 -> 11, w=8 -> 1. The picker wants w=8.
	ids := p.PickTasks(thief, stealee)
	if len(ids) != 1 {
		t.Fatalf("PickTasks = %v", ids)
	}
	picked := stealee.Remove(ids[0])
	if picked == nil || picked.Weight != 8 {
		t.Errorf("picked %v, want the weight-8 task", picked)
	}
}

func TestWeightedFilterRequiresAdmissibleTask(t *testing.T) {
	p := NewWeighted()
	// gap = 8 but the only queued task weighs 8: 2*8 > 8, inadmissible —
	// migrating it would just swap the imbalance.
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Queued: []int64{8}},
	)
	if p.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("filter admitted a steal that cannot decrease the gap")
	}
	// With an extra small task the steal becomes possible.
	m2 := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Queued: []int64{8, 3}},
	)
	if !p.CanSteal(m2.Core(0), m2.Core(1)) {
		t.Error("filter rejected an admissible steal")
	}
}

func TestWeightedStealDecreasesWeightedPotential(t *testing.T) {
	p := NewWeighted()
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Running: 1, Queued: []int64{1, 2, 4}},
		sched.CoreSpec{Running: 2},
	)
	for i := 0; i < 16; i++ {
		before := sched.PairwiseImbalance(p, m)
		res := sched.SequentialRound(p, m)
		after := sched.PairwiseImbalance(p, m)
		if res.TasksMoved() == 0 {
			break
		}
		if after >= before {
			t.Fatalf("round %d: weighted potential %d -> %d", i, before, after)
		}
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWeightedUnitWeightsBehaveLikeDelta2(t *testing.T) {
	// On unit-weight workloads the weighted filter must coincide with
	// Delta2's decisions.
	w, d := NewWeighted(), NewDelta2()
	f := func(a, b uint8) bool {
		la, lb := int(a%6), int(b%6)
		m := sched.MachineFromSpec(
			sched.CoreSpec{Queued: unitWeights(la)},
			sched.CoreSpec{Queued: unitWeights(lb)},
		)
		return w.CanSteal(m.Core(0), m.Core(1)) == d.CanSteal(m.Core(0), m.Core(1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func unitWeights(n int) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = 1
	}
	return ws
}

func TestGreedyBuggyAcceptsDownhillSteal(t *testing.T) {
	p := NewGreedyBuggy()
	m := sched.MachineFromLoads(1, 2)
	// A load-1 core may steal from a load-2 core: the ping-pong enabler.
	if !p.CanSteal(m.Core(0), m.Core(1)) {
		t.Error("greedy filter should accept the load-1 thief")
	}
}

func TestGreedyBuggyPingPong(t *testing.T) {
	// Reproduce the §4.3 scenario concretely: rounds alternate and core 0
	// remains idle while the machine keeps an overloaded core.
	p := NewGreedyBuggy()
	m := sched.MachineFromLoads(0, 1, 2)
	for round := 0; round < 6; round++ {
		// Adversarial order: the non-idle thief steals first.
		var order []int
		if m.Core(1).NThreads() < m.Core(2).NThreads() {
			order = []int{1, 0, 2}
		} else {
			order = []int{2, 0, 1}
		}
		sched.ConcurrentRound(p, m, order)
		if !m.Core(0).Idle() {
			t.Fatalf("round %d: core 0 escaped idleness — adversary broken", round)
		}
		if m.WorkConserved() {
			t.Fatalf("round %d: machine became work-conserved", round)
		}
	}
}

func TestCFSGroupBuggyWitness(t *testing.T) {
	// The E6 witness: group 0 = {idle, one heavy thread}, group 1 = {two
	// overloaded cores}. The buggy filter must refuse the cross-group
	// steal; Delta2 must accept it.
	m := sched.MachineFromSpec(
		sched.CoreSpec{},                                     // core 0: idle (group 0)
		sched.CoreSpec{Running: 8192},                        // core 1: one heavy thread (group 0)
		sched.CoreSpec{Running: 1024, Queued: []int64{1024}}, // core 2 (group 1)
		sched.CoreSpec{Running: 1024, Queued: []int64{1024}}, // core 3 (group 1)
	)
	top := topology.NUMA(2, 2)
	AssignGroups(m, top)

	buggy := NewCFSGroupBuggy()
	buggy.BeginRound(m)
	if buggy.CanSteal(m.Core(0), m.Core(2)) {
		t.Error("buggy filter should refuse the cross-group steal (avg trap)")
	}
	// The whole selection finds nothing for core 0.
	att := sched.Select(buggy, m, 0)
	if att.Victim != -1 {
		t.Errorf("buggy policy selected victim %d for the idle core", att.Victim)
	}

	d := NewDelta2()
	if !d.CanSteal(m.Core(0), m.Core(2)) {
		t.Error("Delta2 should accept the steal the buggy policy refuses")
	}
}

func TestCFSGroupBuggyIntraGroupStillWorks(t *testing.T) {
	m := sched.MachineFromSpec(
		sched.CoreSpec{}, // idle, group 0
		sched.CoreSpec{Running: 1024, Queued: []int64{1024, 1024}}, // group 0
		sched.CoreSpec{Running: 1024},                              // group 1
		sched.CoreSpec{Running: 1024},                              // group 1
	)
	AssignGroups(m, topology.NUMA(2, 2))
	p := NewCFSGroupBuggy()
	res := sched.SequentialRound(p, m)
	if res.TasksMoved() == 0 {
		t.Error("intra-group steal should succeed under the buggy policy")
	}
	if m.Core(0).Idle() {
		t.Error("core 0 still idle after intra-group balancing")
	}
}

func TestHierarchicalIdleEscape(t *testing.T) {
	// Same witness as the buggy test: the sound hierarchical policy must
	// let the idle core escape its heavy-looking group.
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Running: 8192},
		sched.CoreSpec{Running: 1024, Queued: []int64{1024}},
		sched.CoreSpec{Running: 1024, Queued: []int64{1024}},
	)
	AssignGroups(m, topology.NUMA(2, 2))
	p := NewHierarchical()
	p.BeginRound(m)
	if !p.CanSteal(m.Core(0), m.Core(2)) {
		t.Error("hierarchical policy must allow the idle-escape steal")
	}
	res := sched.SequentialRound(p, m)
	if res.TasksMoved() == 0 || m.Core(0).Idle() {
		t.Errorf("idle core not rescued: %v", m.Loads())
	}
}

func TestHierarchicalPrefersOwnGroup(t *testing.T) {
	// Loads: thief idle in group 0; both a same-group and a cross-group
	// core are overloaded. Choose must prefer the same-group one.
	m := sched.MachineFromLoads(0, 3, 3, 0)
	AssignGroups(m, topology.NUMA(2, 2))
	p := NewHierarchical()
	att := sched.Select(p, m, 0)
	if att.Victim != 1 {
		t.Errorf("Victim = %d, want same-group core 1", att.Victim)
	}
}

func TestHierarchicalRestrictsNonIdleCrossGroup(t *testing.T) {
	// A non-idle thief in the heavier group must not steal cross-group.
	m := sched.MachineFromLoads(1, 4, 3, 0)
	AssignGroups(m, topology.NUMA(2, 2))
	p := NewHierarchical()
	p.BeginRound(m)
	// Thief core 3 (load 0, idle) may take from group 0.
	if !p.CanSteal(m.Core(3), m.Core(1)) {
		t.Error("idle cross-group steal refused")
	}
	// Thief core 2 (load 3, group 1, group sum 3) vs stealee core 1
	// (load 4... gap 1 < 2): filter already rejects by Delta2.
	if p.CanSteal(m.Core(2), m.Core(1)) {
		t.Error("gap-1 steal accepted")
	}
	// Make the gap 2 but keep thief's group heavier: loads 1,6,3,0 —
	// wait, group 0 sum=7 > group 1 sum=3, so core 2 (load 3) stealing
	// from core 1 (load 6) is allowed (stealee group heavier). Invert:
	// thief in heavy group, stealee lighter group with local gap >= 2.
	m2 := sched.MachineFromLoads(9, 1, 3, 0)
	AssignGroups(m2, topology.NUMA(2, 2))
	p2 := NewHierarchical()
	p2.BeginRound(m2)
	// Core 1 (load 1, group 0 sum 10) vs core 2 (load 3, group 1 sum 3):
	// Delta2 gap = 2 passes, but thief's group is heavier and thief is
	// not idle: refused.
	if p2.CanSteal(m2.Core(1), m2.Core(2)) {
		t.Error("non-idle thief in heavier group stole cross-group")
	}
}

func TestNUMAAwareChoosesLocalVictim(t *testing.T) {
	top := topology.NUMA(2, 2)
	p := NewNUMAAware(top)
	// Core 0 idle; overloaded cores on both nodes; the remote one is more
	// loaded. NUMA-aware choice must still pick the local one.
	m := sched.MachineFromLoads(0, 3, 5, 1)
	AssignGroups(m, top)
	att := sched.Select(p, m, 0)
	if att.Victim != 1 {
		t.Errorf("Victim = %d, want local core 1", att.Victim)
	}
	// And it behaves exactly like Delta2 on the filter.
	d := NewDelta2()
	for _, c := range m.Cores {
		if p.CanSteal(m.Core(0), c) != d.CanSteal(m.Core(0), c) {
			t.Error("NUMA-aware filter diverged from Delta2")
		}
	}
}

func TestRandomChoiceStaysInCandidates(t *testing.T) {
	p := NewRandomChoice(42)
	m := sched.MachineFromLoads(0, 3, 4, 5)
	for i := 0; i < 50; i++ {
		att := sched.Select(p, m, 0)
		found := false
		for _, c := range att.Candidates {
			if c == att.Victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("victim %d not among candidates %v", att.Victim, att.Candidates)
		}
	}
}

func TestRandomChoiceZeroSeed(t *testing.T) {
	p := NewRandomChoice(0)
	m := sched.MachineFromLoads(0, 3)
	att := sched.Select(p, m, 0)
	if att.Victim != 1 {
		t.Errorf("Victim = %d", att.Victim)
	}
}

func TestNullNeverSteals(t *testing.T) {
	p := NewNull()
	m := sched.MachineFromLoads(0, 10)
	res := sched.SequentialRound(p, m)
	if res.TasksMoved() != 0 {
		t.Error("null policy moved tasks")
	}
	if m.WorkConserved() {
		t.Error("machine should remain in violation under null policy")
	}
}

func TestDelta1AggressiveSwaps(t *testing.T) {
	p := NewDelta1Aggressive()
	// 0/1 with the only thread queued (not running): the aggressive
	// filter admits the steal, producing 1/0 — a swap that does not
	// decrease the potential.
	m := sched.MachineFromSpec(
		sched.CoreSpec{},
		sched.CoreSpec{Queued: []int64{1024}},
	)
	before := sched.PairwiseImbalance(p, m)
	res := sched.SequentialRound(p, m)
	if res.TasksMoved() == 0 {
		t.Fatal("aggressive policy did not steal")
	}
	if got := sched.PairwiseImbalance(p, m); got != before {
		t.Errorf("potential changed %d -> %d, expected a pure swap", before, got)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Errorf("Names() = %v, want 11 policies", names)
	}
	for _, n := range names {
		p, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has empty Name", n)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New of unknown policy should fail")
	}
	// Factories must return fresh instances.
	a, _ := New("hierarchical")
	b, _ := New("hierarchical")
	if a == b {
		t.Error("registry returned a shared instance")
	}
}

func TestAssignGroups(t *testing.T) {
	m := sched.MachineFromLoads(1, 1, 1, 1, 1, 1)
	top := topology.NUMA(3, 2)
	AssignGroups(m, top)
	for i, c := range m.Cores {
		if c.Group != i/2 || c.Node != i/2 {
			t.Errorf("core %d: group=%d node=%d", i, c.Group, c.Node)
		}
	}
}

// Property: Delta2's filter passes only overloaded stealees (the second
// conjunct of Lemma 1) for arbitrary two-core states.
func TestDelta2OnlyOverloadedProperty(t *testing.T) {
	p := NewDelta2()
	f := func(a, b uint8) bool {
		m := sched.MachineFromLoads(int(a%8), int(b%8))
		if p.CanSteal(m.Core(0), m.Core(1)) && !m.Core(1).Overloaded() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the weighted picker, when it picks, always picks a queued task
// that strictly decreases the weighted gap.
func TestWeightedPickerSoundProperty(t *testing.T) {
	p := NewWeighted()
	f := func(run uint8, queued []uint8) bool {
		if len(queued) > 5 {
			queued = queued[:5]
		}
		spec := sched.CoreSpec{}
		if run%4 > 0 {
			spec.Running = int64(run%4) * 512
		}
		for _, q := range queued {
			spec.Queued = append(spec.Queued, int64(q%7)+1)
		}
		m := sched.MachineFromSpec(sched.CoreSpec{}, spec)
		thief, stealee := m.Core(0), m.Core(1)
		ids := p.PickTasks(thief, stealee)
		if len(ids) == 0 {
			return true
		}
		gap := p.Load(stealee) - p.Load(thief)
		task := stealee.Remove(ids[0])
		if task == nil {
			return false // picked a non-queued task
		}
		// The strict-decrease condition of the potential proof.
		return sched.StealDecreasesPotential(0, gap, task.Weight)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegistrySpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != len(Names()) {
		t.Fatalf("Specs() has %d entries, Names() %d", len(specs), len(Names()))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Name >= specs[i].Name {
			t.Errorf("Specs() not sorted: %q before %q", specs[i-1].Name, specs[i].Name)
		}
	}
	for _, s := range specs {
		if s.Doc == "" || s.Provenance == "" {
			t.Errorf("spec %q missing metadata: %+v", s.Name, s)
		}
		if s.NeedsTopology != (s.TopologyFactory != nil) {
			t.Errorf("spec %q: NeedsTopology=%v but TopologyFactory set=%v", s.Name, s.NeedsTopology, s.TopologyFactory != nil)
		}
		if p := s.New(nil); p == nil || p.Name() == "" {
			t.Errorf("spec %q built an unnamed policy", s.Name)
		}
	}
}

func TestRegistryNUMAAware(t *testing.T) {
	s, ok := Lookup("numa-aware")
	if !ok || !s.NeedsTopology {
		t.Fatalf("numa-aware not registered as topology-needing: %+v", s)
	}
	// Constructible without a topology (default 2×4 NUMA machine)…
	p, err := New("numa-aware")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
	// …and with an explicit one.
	if _, err := NewWithTopology("numa-aware", topology.NUMA(4, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mustPanic := func(name string, s Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("empty name", Spec{})
	mustPanic("duplicate", Spec{Name: "delta2", Factory: func() sched.Policy { return NewDelta2() }})
	mustPanic("both factories", Spec{Name: "x", Factory: func() sched.Policy { return NewDelta2() },
		TopologyFactory: func(*topology.Topology) sched.Policy { return NewDelta2() }, NeedsTopology: true})
	mustPanic("no factory", Spec{Name: "y"})
}
