package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

// These tests pin the DSL code-generation backend: gen_delta2.go was
// produced by `scheddsl -in internal/dsl/testdata/delta2.pol -gen ...`
// and must stay behaviorally identical to the hand-written Delta2 and to
// the DSL interpreter (checked on the dsl side).

func TestGeneratedDelta2MatchesEverything(t *testing.T) {
	gen := &Delta2Gen{}
	native := NewDelta2()
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 5)
		}
		m := sched.MachineFromLoads(loads...)
		for ti := range m.Cores {
			for si := range m.Cores {
				if ti == si {
					continue
				}
				a, b := m.Core(ti), m.Core(si)
				if gen.CanSteal(a, b) != native.CanSteal(a, b) {
					return false
				}
				if gen.Load(b) != native.Load(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestGeneratedDelta2Registered(t *testing.T) {
	p, err := New("delta2-gen")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "delta2_gen" {
		t.Errorf("Name = %q", p.Name())
	}
	// The generated chooser is max_load, unlike native delta2's
	// lowest-ID default: on two candidates it must pick the heavier.
	m := sched.MachineFromLoads(0, 2, 4)
	att := sched.Select(p, m, 0)
	if att.Victim != 2 {
		t.Errorf("Victim = %d, want max-load core 2", att.Victim)
	}
}

func TestGeneratedDelta2Balances(t *testing.T) {
	p := &Delta2Gen{}
	m := sched.MachineFromLoads(0, 5, 0, 3)
	for i := 0; i < 16 && !m.WorkConserved(); i++ {
		sched.SequentialRound(p, m)
	}
	if !m.WorkConserved() {
		t.Fatalf("generated policy did not converge: %v", m.Loads())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGeneratedSupportHelpers(t *testing.T) {
	c := sched.NewCore(0)
	if currentSize(c) != 0 {
		t.Error("currentSize of empty core != 0")
	}
	c.Current = sched.NewTask(1)
	if currentSize(c) != 1 {
		t.Error("currentSize of running core != 1")
	}
}
