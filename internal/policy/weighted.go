package policy

import (
	"repro/internal/sched"
)

// Weighted is the niceness-weighted variant of Listing 1 that the paper
// reports Leon still proves automatically: the balancer equalizes the sum
// of task weights instead of the thread count. The filter admits a steal
// only when the stealee owns a *queued* task whose migration strictly
// decreases the weighted load gap — the inductive step of the
// potential-function proof:
//
//	|gap − 2w| < gap  ⟺  0 < w < gap
//
// Overshoot (the thief ending up heavier than the stealee) is permitted
// as long as the gap shrinks; convexity extends the local decrease to the
// global pairwise imbalance, which internal/verify checks exhaustively.
//
// Weighted implements sched.TaskPicker to migrate the admissible task
// closest to gap/2, shrinking the gap the most per steal.
type Weighted struct {
	// Chooser is the step-2 heuristic; nil means lowest-ID candidate.
	Chooser sched.ChooseFunc
}

// NewWeighted returns the weighted balancer with the deterministic
// lowest-ID choice.
func NewWeighted() *Weighted { return &Weighted{} }

// Name implements sched.Policy.
func (p *Weighted) Name() string { return "weighted" }

// Load implements sched.Policy: the sum of thread weights.
func (p *Weighted) Load(c *sched.Core) int64 { return c.WeightSum() }

// CanSteal implements sched.Policy: some queued task on stealee strictly
// shrinks the load gap. This is the weakest filter for which every steal
// decreases the potential, and it satisfies Lemma 1: an overloaded core
// owns a queued task, and any queued task's weight is below the core's
// total (the gap seen from an idle thief), so an idle thief always has a
// candidate when an overloaded core exists.
func (p *Weighted) CanSteal(thief, stealee *sched.Core) bool {
	return p.pickTask(thief, stealee) != nil
}

// Choose implements sched.Policy (step 2).
func (p *Weighted) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	if p.Chooser == nil {
		return sched.ChooseFirst(thief, candidates)
	}
	return p.Chooser(thief, candidates)
}

// StealCount implements sched.Policy. The actual migration is driven by
// PickTasks; the count is advisory.
func (p *Weighted) StealCount(_, _ *sched.Core) int { return 1 }

// PickTasks implements sched.TaskPicker: the admissible queued task whose
// weight is closest to gap/2 (maximal gap shrinkage per steal).
func (p *Weighted) PickTasks(thief, stealee *sched.Core) []sched.TaskID {
	t := p.pickTask(thief, stealee)
	if t == nil {
		return nil
	}
	return []sched.TaskID{t.ID}
}

func (p *Weighted) pickTask(thief, stealee *sched.Core) *sched.Task {
	gap := p.Load(stealee) - p.Load(thief)
	var best *sched.Task
	var bestResidual int64
	for _, t := range stealee.Ready {
		if t.Weight >= gap {
			continue // would not strictly shrink the gap
		}
		residual := gap - 2*t.Weight
		if residual < 0 {
			residual = -residual
		}
		if best == nil || residual < bestResidual ||
			(residual == bestResidual && t.Weight < best.Weight) {
			best, bestResidual = t, residual
		}
	}
	return best
}

var (
	_ sched.Policy     = (*Weighted)(nil)
	_ sched.TaskPicker = (*Weighted)(nil)
)
