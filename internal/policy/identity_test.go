package policy

import (
	"testing"

	"repro/internal/dsl"
	"repro/internal/sched"
	"repro/internal/statespace"
)

// Every spec that asserts a DSL equivalence must actually be
// behaviorally identical to its DSL's compiled form — same load, same
// filter decisions, same choice, same steal sizing — over every state
// of the verifier's default universe. This is what licenses schedverifyd
// to share cache entries between the Go spec and equivalent DSL
// submissions.
func TestSpecDSLEquivalence(t *testing.T) {
	u := statespace.Universe{Cores: 3, MaxPerCore: 3, MaxTotal: 5, IncludeUnscheduled: true}
	for _, spec := range Specs() {
		if spec.DSL == "" {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ast, err := dsl.Parse(spec.DSL)
			if err != nil {
				t.Fatalf("spec %q carries broken DSL: %v", spec.Name, err)
			}
			u.Enumerate(func(m *sched.Machine) bool {
				goP, dslP := spec.New(nil), dsl.Compile(ast)
				for _, c := range m.Cores {
					if gl, dl := goP.Load(c), dslP.Load(c); gl != dl {
						t.Fatalf("state %v: Load(c%d) Go=%d DSL=%d", m.Loads(), c.ID, gl, dl)
					}
				}
				var candidates []*sched.Core
				for _, thief := range m.Cores {
					candidates = candidates[:0]
					for _, stealee := range m.Cores {
						if stealee.ID == thief.ID {
							continue
						}
						gc, dc := goP.CanSteal(thief, stealee), dslP.CanSteal(thief, stealee)
						if gc != dc {
							t.Fatalf("state %v: CanSteal(c%d,c%d) Go=%v DSL=%v",
								m.Loads(), thief.ID, stealee.ID, gc, dc)
						}
						if gc {
							candidates = append(candidates, stealee)
							gn, dn := goP.StealCount(thief, stealee), dslP.StealCount(thief, stealee)
							if gn != dn {
								t.Fatalf("state %v: StealCount(c%d,c%d) Go=%d DSL=%d",
									m.Loads(), thief.ID, stealee.ID, gn, dn)
							}
						}
					}
					if len(candidates) > 0 {
						gch, dch := goP.Choose(thief, candidates), dslP.Choose(thief, candidates)
						if gch.ID != dch.ID {
							t.Fatalf("state %v: Choose(c%d) Go=c%d DSL=c%d",
								m.Loads(), thief.ID, gch.ID, dch.ID)
						}
					}
				}
				return true
			})
		})
	}
}

// Plain Go specs hash opaquely by name; DSL-backed specs hash by
// compiled clause. delta2 and delta2-gen differ only in choose.
func TestSpecComponentForms(t *testing.T) {
	d2, _ := Lookup("delta2")
	gen, _ := Lookup("delta2-gen")
	f1, err := d2.ComponentForms()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := gen.ComponentForms()
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"load", "filter", "steal"} {
		if f1[comp] != f2[comp] {
			t.Errorf("delta2 and delta2-gen disagree on %s:\n %q\n %q", comp, f1[comp], f2[comp])
		}
	}
	if f1["choose"] == f2["choose"] {
		t.Error("delta2 (first) and delta2-gen (max_load) share a choose form")
	}

	h, _ := Lookup("hierarchical")
	forms, err := h.ComponentForms()
	if err != nil {
		t.Fatal(err)
	}
	for comp, form := range forms {
		if form != "go:hierarchical" {
			t.Errorf("plain Go spec component %s = %q, want opaque name identity", comp, form)
		}
	}

	broken := Spec{Name: "broken", DSL: "policy x {"}
	if _, err := broken.ComponentForms(); err == nil {
		t.Error("broken DSL accepted")
	}
}
