package policy

import (
	"fmt"

	"repro/internal/dsl"
)

// ComponentForms returns the spec's per-component content identity for
// verification caching, keyed by the component names of sched.Policy
// ("load", "filter", "choose", "steal", "rescue" — the vocabulary of
// verify.ObligationDeps).
//
// Specs carrying a DSL equivalence hash like a direct DSL submission:
// each component's identity is the canonical compiled form of the
// corresponding clause (dsl.ComponentForm), so `-policy delta2` and a
// POST of Listing 1's source coalesce onto the same cache entries, and
// two registered specs that differ only in one clause (delta2 vs
// delta2-gen, which differ only in choose) share the entries for the
// obligations that never consult that clause.
//
// Plain Go specs get the opaque identity "go:<name>" for every
// component. That is sound for schedverifyd's in-process cache — a Go
// implementation cannot change within one process lifetime — but it is
// deliberately all-or-nothing: without a clause-level description there
// is nothing finer to hash, and restarting a rebuilt daemon starts with
// an empty cache anyway.
func (s Spec) ComponentForms() (map[string]string, error) {
	if s.DSL == "" {
		opaque := "go:" + s.Name
		forms := make(map[string]string, 5)
		for _, comp := range []string{"load", "filter", "choose", "steal", "rescue"} {
			forms[comp] = opaque
		}
		return forms, nil
	}
	ast, err := dsl.Parse(s.DSL)
	if err != nil {
		return nil, fmt.Errorf("policy: spec %q carries broken DSL: %w", s.Name, err)
	}
	return dsl.ComponentForms(ast), nil
}
