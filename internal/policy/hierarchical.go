package policy

import (
	"repro/internal/sched"
	"repro/internal/topology"
)

// groupStats caches per-group aggregate loads for one balancing round.
// Policies that compare groups implement sched.RoundObserver and refresh
// this from the round's view, giving cached statistics exactly the
// staleness the optimistic model allows.
type groupStats struct {
	sum   []int64 // total load per group
	count []int   // cores per group
}

func (s *groupStats) reset(groups int) {
	if cap(s.sum) < groups {
		s.sum = make([]int64, groups)
		s.count = make([]int, groups)
	}
	s.sum = s.sum[:groups]
	s.count = s.count[:groups]
	for i := range s.sum {
		s.sum[i], s.count[i] = 0, 0
	}
}

func (s *groupStats) observe(view *sched.Machine, load func(*sched.Core) int64) {
	groups := 1
	for _, c := range view.Cores {
		if c.Group+1 > groups {
			groups = c.Group + 1
		}
	}
	s.reset(groups)
	for _, c := range view.Cores {
		s.sum[c.Group] += load(c)
		s.count[c.Group]++
	}
}

// avg returns the group's mean load, scaled by 1024 to stay integral.
func (s *groupStats) avg(group int) int64 {
	if s.count[group] == 0 {
		return 0
	}
	return s.sum[group] * 1024 / int64(s.count[group])
}

// Hierarchical is the §5 "remaining challenges" extension implemented
// soundly: balance between groups of cores, then inside groups. The
// filter is a *restriction* of Delta2 — a steal additionally requires the
// stealee's group to be heavier, except that an idle thief may always
// escape the hierarchy — so the potential-function argument is inherited
// unchanged, and Lemma 1 holds because idle thieves see every Delta2
// candidate:
//
//	CanSteal(t, s) = delta2(t, s) ∧ (idle(t) ∨ group(t) = group(s)
//	                                          ∨ sum(group(s)) > sum(group(t)))
//
// The idle-escape clause is the crucial difference from the buggy CFS
// averaging policy (CFSGroupBuggy): it is what preserves work
// conservation while still localizing most migrations.
type Hierarchical struct {
	// Chooser is the step-2 heuristic; nil prefers same-group
	// candidates, then the most loaded.
	Chooser sched.ChooseFunc

	stats groupStats
}

// NewHierarchical returns the two-level balancer.
func NewHierarchical() *Hierarchical { return &Hierarchical{} }

// Name implements sched.Policy.
func (p *Hierarchical) Name() string { return "hierarchical" }

// Load implements sched.Policy.
func (p *Hierarchical) Load(c *sched.Core) int64 { return int64(c.NThreads()) }

// BeginRound implements sched.RoundObserver.
func (p *Hierarchical) BeginRound(view *sched.Machine) {
	p.stats.observe(view, p.Load)
}

// CanSteal implements sched.Policy.
func (p *Hierarchical) CanSteal(thief, stealee *sched.Core) bool {
	if p.Load(stealee)-p.Load(thief) < 2 {
		return false
	}
	if thief.Idle() || thief.Group == stealee.Group {
		return true
	}
	if stealee.Group >= len(p.stats.sum) || thief.Group >= len(p.stats.sum) {
		// No observation yet (standalone filter call): fall back to the
		// safe Delta2 behaviour.
		return true
	}
	return p.stats.sum[stealee.Group] > p.stats.sum[thief.Group]
}

// Choose implements sched.Policy: same-group candidates first, then the
// most loaded, ties to the lowest ID.
func (p *Hierarchical) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	if p.Chooser != nil {
		return p.Chooser(thief, candidates)
	}
	var best *sched.Core
	bestKey := int64(-1 << 62)
	for _, c := range candidates {
		key := p.Load(c)
		if c.Group == thief.Group {
			key += 1 << 32 // same-group candidates dominate
		}
		if best == nil || key > bestKey || (key == bestKey && c.ID < best.ID) {
			best, bestKey = c, key
		}
	}
	return best
}

// StealCount implements sched.Policy.
func (p *Hierarchical) StealCount(_, _ *sched.Core) int { return 1 }

// AssignGroups sets each core's Group from the topology's NUMA nodes.
// Call it once on a machine before balancing with a hierarchical policy.
func AssignGroups(m *sched.Machine, top *topology.Topology) {
	for _, c := range m.Cores {
		c.Node = top.Node(c.ID)
		c.Group = top.Node(c.ID)
	}
}

var (
	_ sched.Policy        = (*Hierarchical)(nil)
	_ sched.RoundObserver = (*Hierarchical)(nil)
)
