package policy

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// Factory constructs a fresh policy instance. Policies carrying per-round
// caches (RoundObservers) are stateful, so every consumer that needs
// isolation — each verifier run, each simulated machine, each executor
// worker set — must construct its own instance through a Factory.
type Factory func() sched.Policy

// registry maps policy names to factories for the command-line tools.
var registry = map[string]Factory{
	"delta2":            func() sched.Policy { return NewDelta2() },
	"weighted":          func() sched.Policy { return NewWeighted() },
	"greedy-buggy":      func() sched.Policy { return NewGreedyBuggy() },
	"cfs-group-buggy":   func() sched.Policy { return NewCFSGroupBuggy() },
	"hierarchical":      func() sched.Policy { return NewHierarchical() },
	"random-choice":     func() sched.Policy { return NewRandomChoice(1) },
	"null":              func() sched.Policy { return NewNull() },
	"delta1-aggressive": func() sched.Policy { return NewDelta1Aggressive() },
	// delta2-gen is the DSL code-generation backend's output for
	// Listing 1 (internal/dsl/testdata/delta2.pol), committed as
	// gen_delta2.go and kept behaviorally identical to delta2 by
	// TestGeneratedDelta2MatchesEverything.
	"delta2-gen": func() sched.Policy { return &Delta2Gen{} },
}

// New returns a fresh instance of the named built-in policy.
func New(name string) (sched.Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
