package policy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dsl"
	"repro/internal/sched"
	"repro/internal/topology"
)

// delta2RescueDSL is the committed source of delta2-rescue; the registry
// factory compiles it directly, so name and source submissions are the
// same policy by construction.
const delta2RescueDSL = `policy delta2_rescue {
    load   = self.ready.size + self.current.size
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = first
    rescue = min_load
}`

// mustCompileDSL compiles registry-committed DSL source; the source is
// code, not input, so failure is a programming error.
func mustCompileDSL(src string) sched.Policy {
	p, _, err := dsl.CompileSource(src)
	if err != nil {
		panic(fmt.Sprintf("policy: registry DSL does not compile: %v", err))
	}
	return p
}

// Factory constructs a fresh policy instance. Policies carrying per-round
// caches (RoundObservers) are stateful, so every consumer that needs
// isolation — each verifier run, each simulated machine, each executor
// worker set — must construct its own instance through a Factory.
type Factory func() sched.Policy

// Provenance classifies how a registered policy relates to the paper's
// verification story. It is informational metadata for listings and docs;
// nothing dispatches on it.
type Provenance string

const (
	// ProvenanceProved marks policies that pass every proof obligation
	// over the default bounded universe.
	ProvenanceProved Provenance = "proved"
	// ProvenanceRefuted marks the paper's counterexamples: policies the
	// checker refutes with a concrete witness.
	ProvenanceRefuted Provenance = "refuted"
	// ProvenanceBaseline marks measurement baselines (e.g. the null
	// balancer) that are trivially safe but not work-conserving.
	ProvenanceBaseline Provenance = "baseline"
	// ProvenanceGenerated marks policies emitted by the DSL code
	// generator and committed to the tree.
	ProvenanceGenerated Provenance = "generated"
)

// Spec describes one registered policy: how to build it plus the metadata
// the facade and the command-line tools surface in listings.
type Spec struct {
	// Name is the registry key (e.g. "delta2").
	Name string
	// Factory builds a fresh instance for topology-free policies. Exactly
	// one of Factory and TopologyFactory must be set, matching
	// NeedsTopology.
	Factory Factory
	// TopologyFactory builds a fresh instance of a policy that needs a
	// machine topology (set iff NeedsTopology).
	TopologyFactory func(*topology.Topology) sched.Policy
	// NeedsTopology reports whether construction requires a topology;
	// New falls back to DefaultTopology when the caller supplies none.
	NeedsTopology bool
	// Provenance classifies the policy's verification status.
	Provenance Provenance
	// Doc is a one-line description for listings.
	Doc string
	// DSL, when set, is DSL source the registrant asserts to be
	// behaviorally identical to the Go implementation — same load,
	// filter, choice and steal semantics over every machine state. The
	// incremental verification service then identifies the policy by its
	// canonical compiled form (see ComponentForms), so submitting this
	// spec by name and submitting equivalent DSL source share one cache
	// entry. Leave it empty unless the equivalence is test-enforced:
	// a wrong assertion here replays another policy's verdicts.
	DSL string
}

// New builds a fresh instance from the spec. A nil topology selects
// DefaultTopology for topology-needing policies and is ignored otherwise.
func (s Spec) New(top *topology.Topology) sched.Policy {
	if s.NeedsTopology {
		if top == nil {
			top = DefaultTopology()
		}
		return s.TopologyFactory(top)
	}
	return s.Factory()
}

// DefaultTopology is the topology used when a topology-needing policy is
// constructed without one: 2 NUMA nodes × 4 cores, the smallest machine
// on which locality preferences are observable.
func DefaultTopology() *topology.Topology { return topology.NUMA(2, 4) }

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds a policy spec to the registry. It panics on duplicate
// names or structurally invalid specs — registration is code, not input.
func Register(s Spec) {
	if s.Name == "" {
		panic("policy: Register with empty Name")
	}
	if s.NeedsTopology != (s.TopologyFactory != nil) || s.NeedsTopology == (s.Factory != nil) {
		panic(fmt.Sprintf("policy: Register(%q) must set exactly one of Factory (NeedsTopology=false) or TopologyFactory (NeedsTopology=true)", s.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("policy: Register(%q) called twice", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Specs lists every registered spec, sorted by name — the deterministic
// listing the facade and the CLIs render.
func Specs() []Spec {
	registryMu.RLock()
	defer registryMu.RUnlock()
	specs := make([]Spec, 0, len(registry))
	for _, s := range registry {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Names lists the registered policy names, sorted.
func Names() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// New returns a fresh instance of the named built-in policy,
// constructing topology-needing policies over DefaultTopology.
func New(name string) (sched.Policy, error) {
	return NewWithTopology(name, nil)
}

// NewWithTopology returns a fresh instance of the named policy built for
// the given topology (nil = DefaultTopology for policies that need one;
// topology-free policies ignore it).
func NewWithTopology(name string, top *topology.Topology) (sched.Policy, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
	}
	return s.New(top), nil
}

func init() {
	// The DSL equivalences below are test-enforced: delta2 by
	// TestSpecDSLEquivalence (this package), delta2-gen additionally by
	// TestGeneratedDelta2MatchesEverything. They let schedverifyd share
	// cache entries between name submissions and equivalent DSL source.
	// NewDelta2's load is NThreads = ready.size + current.size; the DSL
	// spells it out because that is the committed delta2.pol form.
	Register(Spec{
		Name:       "delta2",
		Factory:    func() sched.Policy { return NewDelta2() },
		Provenance: ProvenanceProved,
		Doc:        "Listing 1's simple balancer: steal one task across a load gap >= 2",
		DSL: `policy delta2 {
    load   = self.ready.size + self.current.size
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = first
}`,
	})
	Register(Spec{
		Name:       "weighted",
		Factory:    func() sched.Policy { return NewWeighted() },
		Provenance: ProvenanceProved,
		Doc:        "niceness-weighted balancer over per-task load weights",
	})
	Register(Spec{
		Name:       "greedy-buggy",
		Factory:    func() sched.Policy { return NewGreedyBuggy() },
		Provenance: ProvenanceRefuted,
		Doc:        "the §4.3 counterexample: concurrent rounds livelock (ping-pong)",
	})
	Register(Spec{
		Name:       "cfs-group-buggy",
		Factory:    func() sched.Policy { return NewCFSGroupBuggy() },
		Provenance: ProvenanceRefuted,
		Doc:        "Lozi et al.'s group-imbalance bug: group averages hide idle cores",
	})
	Register(Spec{
		Name:       "hierarchical",
		Factory:    func() sched.Policy { return NewHierarchical() },
		Provenance: ProvenanceProved,
		Doc:        "§5 two-level balancer: steal within the group, then across",
	})
	Register(Spec{
		Name:       "random-choice",
		Factory:    func() sched.Policy { return NewRandomChoice(1) },
		Provenance: ProvenanceProved,
		Doc:        "Delta2 with a pseudo-random step-2 choice (choice independence demo)",
	})
	Register(Spec{
		Name:       "null",
		Factory:    func() sched.Policy { return NewNull() },
		Provenance: ProvenanceBaseline,
		Doc:        "no balancing at all: the E6 lower bound",
	})
	Register(Spec{
		Name:       "delta1-aggressive",
		Factory:    func() sched.Policy { return NewDelta1Aggressive() },
		Provenance: ProvenanceRefuted,
		Doc:        "over-eager gap>=1 filter: unbounded steal sequences",
	})
	// delta2-gen is the DSL code-generation backend's output for
	// Listing 1 (internal/dsl/testdata/delta2.pol), committed as
	// gen_delta2.go and kept behaviorally identical to delta2 by
	// TestGeneratedDelta2MatchesEverything.
	Register(Spec{
		Name:       "delta2-gen",
		Factory:    func() sched.Policy { return &Delta2Gen{} },
		Provenance: ProvenanceGenerated,
		Doc:        "Listing 1 as emitted by the DSL Go backend (scheddsl -gen)",
		// testdata/delta2.pol, the source gen_delta2.go was generated
		// from. Differs from delta2 only in choose, so the two specs
		// share cache entries for every choose-independent obligation.
		DSL: `policy delta2_gen {
    load   = self.ready.size + self.current.size
    filter = stealee.load - self.load >= 2
    steal  = 1
    choose = max_load
}`,
	})
	// delta2-rescue is delta2 plus a rescue rule for fail-stop core
	// faults: orphans of a failed core are adopted by the least-loaded
	// online core. The factory compiles the DSL itself, so the Spec.DSL
	// equivalence is exact by construction; the policy exists as the
	// PROVE side of the fault obligations (no-task-lost,
	// degraded-wasted-cores), with plain delta2 as the REFUTE side.
	Register(Spec{
		Name:       "delta2-rescue",
		Factory:    func() sched.Policy { return mustCompileDSL(delta2RescueDSL) },
		Provenance: ProvenanceProved,
		Doc:        "delta2 plus a min_load rescue rule: orphans of failed cores are re-homed",
		DSL:        delta2RescueDSL,
	})
	Register(Spec{
		Name:            "numa-aware",
		TopologyFactory: func(top *topology.Topology) sched.Policy { return NewNUMAAware(top) },
		NeedsTopology:   true,
		Provenance:      ProvenanceProved,
		Doc:             "Delta2 with a locality-preferring step-2 choice over the machine topology",
	})
}
