package policy

import (
	"repro/internal/sched"
)

// CFSGroupBuggy models the "Group Imbalance" bug of Lozi et al. (EuroSys
// 2016, "The Linux Scheduler: a Decade of Wasted Cores"), the motivating
// failure of this paper's introduction: CFS compares scheduling groups by
// their *average* load, so a group containing one very heavy thread and
// several idle cores looks as loaded as a group of uniformly busy cores,
// and the idle cores never steal across groups.
//
// The filter:
//
//   - same group: weighted Delta2 (intra-group balancing works fine);
//   - different group: requires avg(group(stealee)) > avg(group(thief)),
//     with no idle-thief escape — the bug.
//
// Witness state (experiment E6): group 0 = {idle core, core running one
// weight-8192 thread}, group 1 = {two cores each running two weight-1024
// threads}. avg(g0) = 4096 > avg(g1) = 2048, so the idle core refuses to
// steal from the overloaded group 1 forever: a permanent work-conservation
// violation that Delta2 and Hierarchical resolve in one round.
type CFSGroupBuggy struct {
	// Chooser is the step-2 heuristic; nil means most-loaded candidate.
	Chooser sched.ChooseFunc

	stats groupStats
}

// NewCFSGroupBuggy returns the group-imbalance-bugged balancer.
func NewCFSGroupBuggy() *CFSGroupBuggy { return &CFSGroupBuggy{} }

// Name implements sched.Policy.
func (p *CFSGroupBuggy) Name() string { return "cfs-group-buggy" }

// Load implements sched.Policy: weight sums, as CFS balances load, not
// thread counts — that is precisely what lets one heavy thread mask idle
// cores.
func (p *CFSGroupBuggy) Load(c *sched.Core) int64 { return c.WeightSum() }

// BeginRound implements sched.RoundObserver.
func (p *CFSGroupBuggy) BeginRound(view *sched.Machine) {
	p.stats.observe(view, p.Load)
}

// CanSteal implements sched.Policy: the buggy averaged filter.
func (p *CFSGroupBuggy) CanSteal(thief, stealee *sched.Core) bool {
	gap := p.Load(stealee) - p.Load(thief)
	if thief.Group == stealee.Group {
		// Intra-group: sound weighted balancing; require a queued task
		// small enough to shrink the gap.
		return hasAdmissibleTask(stealee, gap)
	}
	if stealee.Group >= len(p.stats.sum) || thief.Group >= len(p.stats.sum) {
		return false
	}
	// Inter-group: compare averages. No idle escape — the bug.
	if p.stats.avg(stealee.Group) <= p.stats.avg(thief.Group) {
		return false
	}
	return hasAdmissibleTask(stealee, gap)
}

// hasAdmissibleTask reports whether stealee queues a task whose migration
// strictly shrinks the gap (the sound weighted-steal condition, 0<w<gap).
func hasAdmissibleTask(stealee *sched.Core, gap int64) bool {
	if gap < 2 {
		return false
	}
	for _, t := range stealee.Ready {
		if t.Weight < gap {
			return true
		}
	}
	return false
}

// Choose implements sched.Policy.
func (p *CFSGroupBuggy) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	if p.Chooser == nil {
		return sched.ChooseMaxLoad(p.Load)(thief, candidates)
	}
	return p.Chooser(thief, candidates)
}

// StealCount implements sched.Policy.
func (p *CFSGroupBuggy) StealCount(_, _ *sched.Core) int { return 1 }

// PickTasks implements sched.TaskPicker: the admissible queued task
// closest to gap/2, like Weighted.
func (p *CFSGroupBuggy) PickTasks(thief, stealee *sched.Core) []sched.TaskID {
	gap := p.Load(stealee) - p.Load(thief)
	if gap < 2 {
		return nil
	}
	var best *sched.Task
	var bestResidual int64
	for _, t := range stealee.Ready {
		if t.Weight >= gap {
			continue
		}
		residual := gap - 2*t.Weight
		if residual < 0 {
			residual = -residual
		}
		if best == nil || residual < bestResidual ||
			(residual == bestResidual && t.Weight < best.Weight) {
			best, bestResidual = t, residual
		}
	}
	if best == nil {
		return nil
	}
	return []sched.TaskID{best.ID}
}

var (
	_ sched.Policy        = (*CFSGroupBuggy)(nil)
	_ sched.RoundObserver = (*CFSGroupBuggy)(nil)
	_ sched.TaskPicker    = (*CFSGroupBuggy)(nil)
)
