package policy

import (
	"repro/internal/sched"
)

// GreedyBuggy is the §4.3 counterexample filter:
//
//	def canSteal(stealee) = { stealee.load() >= 2 }
//
// Any core may steal from any overloaded core, regardless of its own load.
// Sequentially this looks fine — it even satisfies Lemma 1 — but under
// concurrency it is not work-conserving: on the 0/1/2 machine, cores 0
// and 1 both target core 2; if core 1 wins, the next round can reproduce
// the mirror-image state with cores 1 and 2 swapped, and core 0 can fail
// to steal forever. The stolen task ping-pongs between two non-idle cores
// while the idle core starves. internal/verify discovers this cycle
// automatically (experiment E3).
//
// The root cause, in potential-function terms: a steal between loads 1
// and 2 does not decrease the pairwise imbalance, so the number of
// successful steals is unbounded and failures cannot be bounded either.
type GreedyBuggy struct {
	// Chooser is the step-2 heuristic; nil means most-loaded candidate,
	// which is what makes the ping-pong schedule realizable (both the
	// idle and the load-1 core chase the same victim).
	Chooser sched.ChooseFunc
}

// NewGreedyBuggy returns the counterexample policy.
func NewGreedyBuggy() *GreedyBuggy { return &GreedyBuggy{} }

// Name implements sched.Policy.
func (p *GreedyBuggy) Name() string { return "greedy-buggy" }

// Load implements sched.Policy.
func (p *GreedyBuggy) Load(c *sched.Core) int64 { return int64(c.NThreads()) }

// CanSteal implements sched.Policy: the buggy filter.
func (p *GreedyBuggy) CanSteal(_, stealee *sched.Core) bool {
	return p.Load(stealee) >= 2
}

// Choose implements sched.Policy.
func (p *GreedyBuggy) Choose(thief *sched.Core, candidates []*sched.Core) *sched.Core {
	if p.Chooser == nil {
		return sched.ChooseMaxLoad(p.Load)(thief, candidates)
	}
	return p.Chooser(thief, candidates)
}

// StealCount implements sched.Policy.
func (p *GreedyBuggy) StealCount(_, _ *sched.Core) int { return 1 }

var _ sched.Policy = (*GreedyBuggy)(nil)
